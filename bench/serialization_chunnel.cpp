// §3.2 "Serialization": modeling serialization as a chunnel lets an
// application pick up faster implementations with no code change.
//
// Two measurements:
//  1. codec microbenchmark: encode+decode throughput of the binary
//     serializer vs the portable text fallback across object sizes,
//  2. end-to-end: the same client code negotiates serialize/text when
//     that is all it has registered, and serialize/binary once the
//     faster library is registered — message rate improves with zero
//     application changes.
#include <thread>

#include "apps/kvproto.hpp"
#include "bench_util.hpp"
#include "chunnels/serialize_chunnel.hpp"
#include "serialize/text_codec.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct Record {
  uint64_t id = 0;
  std::string key;
  std::string blob;
  std::vector<uint64_t> tags;
};

}  // namespace

namespace bertha {
template <>
struct Serde<Record> {
  static void put(Writer& w, const Record& r) {
    w.put_varint(r.id);
    w.put_string(r.key);
    w.put_string(r.blob);
    serde_put(w, r.tags);
  }
  static Result<Record> get(Reader& rd) {
    Record r;
    BERTHA_TRY_ASSIGN(id, rd.get_varint());
    BERTHA_TRY_ASSIGN(key, rd.get_string());
    BERTHA_TRY_ASSIGN(blob, rd.get_string());
    BERTHA_TRY_ASSIGN(tags, serde_get<std::vector<uint64_t>>(rd));
    r.id = id;
    r.key = std::move(key);
    r.blob = std::move(blob);
    r.tags = std::move(tags);
    return r;
  }
};
}  // namespace bertha

namespace {

Record make_record(size_t blob_size) {
  Record r;
  r.id = 42;
  r.key = "user000000001234";
  r.blob.assign(blob_size, 'x');
  r.tags = {1, 2, 3, 999999};
  return r;
}

double run_e2e(bool client_has_binary, int msgs) {
  auto discovery = std::make_shared<DiscoveryState>();
  auto make_rt = [&](bool with_binary) {
    RuntimeConfig cfg;
    cfg.host_id = "ser-host";
    cfg.transports = std::make_shared<DefaultTransportFactory>();
    cfg.discovery = discovery;
    auto rt = Runtime::create(cfg).value();
    if (with_binary)
      die_on_err(rt->register_chunnel(std::make_shared<BinarySerializeChunnel>()),
                 "binary");
    die_on_err(rt->register_chunnel(std::make_shared<TextSerializeChunnel>()),
               "text");
    return rt;
  };
  auto srv_rt = make_rt(true);
  auto cli_rt = make_rt(client_has_binary);

  auto listener = die_on_err(
      srv_rt->endpoint("records", wrap(ChunnelSpec("serialize")))
          .value()
          .listen(Addr::udp("127.0.0.1", 0)),
      "listen");
  std::thread server([&] {
    auto conn = listener->accept(Deadline::after(seconds(10)));
    if (!conn.ok()) return;
    ObjectConnection<Record> typed(conn.value());
    for (;;) {
      auto r = typed.recv(Deadline::after(seconds(10)));
      if (!r.ok()) return;
      if (!typed.send(r.value()).ok()) return;
    }
  });

  auto conn = die_on_err(cli_rt->endpoint("records-cli", ChunnelDag::empty())
                             .value()
                             .connect(listener->addr(),
                                      Deadline::after(seconds(10))),
                         "connect");
  ObjectConnection<Record> typed(conn);
  Record rec = make_record(512);
  Stopwatch sw;
  int done = 0;
  for (int i = 0; i < msgs; i++) {
    if (!typed.send(rec).ok()) break;
    if (!typed.recv(Deadline::after(seconds(10))).ok()) break;
    done++;
  }
  double secs = std::chrono::duration<double>(sw.elapsed()).count();
  typed.close();
  server.join();
  return done / secs;
}

}  // namespace

int main() {
  print_header("§3.2 serialization chunnel: implementation switching",
               "Bertha §3.2 'Serialization' (codec swap, no app change)");

  // --- codec microbenchmark ---
  std::printf("%-10s %-8s %12s %12s %8s\n", "codec", "object", "enc+dec/s",
              "MB/s", "bytes");
  for (size_t blob : {64u, 1024u, 16384u}) {
    Record rec = make_record(blob);
    const int iters = scaled(20000, 1000);

    // binary: Serde bytes straight to the wire.
    {
      Stopwatch sw;
      size_t wire = 0;
      for (int i = 0; i < iters; i++) {
        Bytes b = serialize_to_bytes(rec);
        wire = b.size();
        auto back = deserialize_from_bytes<Record>(b);
        if (!back.ok()) return 1;
      }
      double secs = std::chrono::duration<double>(sw.elapsed()).count();
      std::printf("%-10s %6zuB %12.0f %12.1f %8zu\n", "binary", blob,
                  iters / secs,
                  iters * static_cast<double>(wire) / secs / 1e6, wire);
    }
    // text: Serde bytes hex-armored (the portable fallback).
    {
      Stopwatch sw;
      size_t wire = 0;
      for (int i = 0; i < iters; i++) {
        Bytes b = text_encode(serialize_to_bytes(rec));
        wire = b.size();
        auto raw = text_decode(b);
        if (!raw.ok()) return 1;
        auto back = deserialize_from_bytes<Record>(raw.value());
        if (!back.ok()) return 1;
      }
      double secs = std::chrono::duration<double>(sw.elapsed()).count();
      std::printf("%-10s %6zuB %12.0f %12.1f %8zu\n", "text", blob,
                  iters / secs,
                  iters * static_cast<double>(wire) / secs / 1e6, wire);
    }
  }

  // --- end-to-end implementation switching ---
  const int msgs = scaled(4000, 300);
  double text_rate = run_e2e(/*client_has_binary=*/false, msgs);
  double binary_rate = run_e2e(/*client_has_binary=*/true, msgs);
  std::printf("\nend-to-end RPC rate (512B records, same client code):\n");
  std::printf("  client registered text only   -> negotiated serialize/text:"
              "   %8.0f msg/s\n", text_rate);
  std::printf("  client registered binary too  -> negotiated serialize/binary:"
              " %8.0f msg/s\n", binary_rate);
  std::printf("  => %.2fx faster from registering a better implementation; "
              "zero app changes\n", binary_rate / text_rate);
  return 0;
}
