// Figure 5: sharded key-value store under YCSB load.
//
// "We measure the p95 latency over ... YCSB requests (workload A,
// read-heavy) with a uniform distribution of keys. We evaluate
// performance in four scenarios:" Client Push / Server Accelerated /
// Mixed / Server Fallback. Two load-generating clients, one server
// with three shards (threads), exactly as in §5.
//
// Which implementation each connection binds is decided purely by what
// each process registered plus the default policy — the scenarios below
// differ ONLY in registration, never in client/server code (the
// paper's point).
//
// Open-loop load: each client paces requests with a token bucket and a
// separate receiver thread matches responses by request id, so queueing
// delay shows up as p95/p99 inflation and losses once a steering stage
// saturates.
#include <mutex>
#include <thread>
#include <unordered_map>

#include "apps/kvserver.hpp"
#include "apps/ycsb.hpp"
#include "bench_util.hpp"
#include "util/rate_limiter.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct ClientKind {
  bool client_push;  // registers the shard/client-push fallback
};

struct Scenario {
  const char* name;
  bool server_xdp;
  bool server_fallback;
  ClientKind clients[2];
};

struct LoadResult {
  uint64_t sent = 0;
  uint64_t received = 0;
  double send_secs = 0;  // wall time of the paced sending phase
  Summary latency_us;
};

// One open-loop client: sender paced at `rate` req/s for `duration`,
// receiver matches ids.
LoadResult run_client(Connection& conn, double rate, Duration duration,
                      uint64_t seed,
                      KeyDistribution dist = KeyDistribution::uniform) {
  YcsbConfig wl;
  wl.workload = YcsbWorkload::a;
  wl.distribution = dist;
  wl.record_count = 1000;
  wl.value_size = 100;
  wl.seed = seed;
  YcsbGenerator gen(wl);

  std::mutex mu;
  std::unordered_map<uint64_t, TimePoint> in_flight;
  SampleSet latencies;
  std::atomic<uint64_t> sent{0}, received{0};
  std::atomic<bool> done{false};

  std::thread receiver([&] {
    for (;;) {
      auto reply = conn.recv(Deadline::after(ms(100)));
      if (!reply.ok()) {
        if (done.load()) return;
        continue;
      }
      auto rsp = decode_kv_response(reply.value().payload);
      if (!rsp.ok()) continue;
      TimePoint t0;
      {
        std::lock_guard<std::mutex> lk(mu);
        auto it = in_flight.find(rsp.value().id);
        if (it == in_flight.end()) continue;
        t0 = it->second;
        in_flight.erase(it);
      }
      latencies.add_duration_us(now() - t0);
      received.fetch_add(1, std::memory_order_relaxed);
    }
  });

  TokenBucket bucket(rate, std::max(rate / 100.0, 1.0));
  Stopwatch wall;
  while (wall.elapsed() < duration) {
    bucket.acquire();
    KvRequest req = gen.next();
    Msg m;
    m.payload = encode_kv_request(req);
    {
      std::lock_guard<std::mutex> lk(mu);
      in_flight[req.id] = now();
    }
    if (!conn.send(std::move(m)).ok()) break;
    sent.fetch_add(1, std::memory_order_relaxed);
  }
  double send_secs = std::chrono::duration<double>(wall.elapsed()).count();
  sleep_for(ms(200));  // drain
  done.store(true);
  receiver.join();

  LoadResult r;
  r.send_secs = send_secs;
  r.sent = sent.load();
  r.received = received.load();
  r.latency_us = latencies.summarize();
  return r;
}

}  // namespace

int main() {
  print_header(
      "Fig 5 — sharded KV store: p95 latency vs offered load, 4 scenarios",
      "Bertha Fig. 5 (HotNets '20), shard chunnel / YCSB-A uniform");

  const Scenario scenarios[] = {
      {"client-push", true, true, {{true}, {true}}},
      {"server-xdp", true, true, {{false}, {false}}},
      {"mixed", true, true, {{true}, {false}}},
      {"server-fallback", false, true, {{false}, {false}}},
  };
  std::vector<double> total_rates;
  if (quick_mode())
    total_rates = {5000, 20000};
  else
    total_rates = {10000, 25000, 50000, 100000, 200000};
  const Duration duration = quick_mode() ? ms(400) : ms(1200);

  std::printf("%-16s %10s %10s %9s %9s %9s %7s\n", "scenario", "offered/s",
              "achieved", "p50(us)", "p95(us)", "p99(us)", "loss%");

  for (const Scenario& sc : scenarios) {
    for (double rate : total_rates) {
      auto discovery = std::make_shared<DiscoveryState>();
      auto srv_rt = real_runtime("kv-server-host", discovery, false);
      die_on_err(register_shard_chunnels(*srv_rt, false, sc.server_xdp,
                                         sc.server_fallback),
                 "server chunnels");

      auto backend = die_on_err(
          KvBackend::start(srv_rt->transports(), Addr::udp("127.0.0.1", 0),
                           "kv-server-host", 3),
          "backend");

      ChunnelArgs args;
      args.set("shards", format_addr_list(backend->shard_addrs()));
      args.set_u64("field_offset", kKvShardFieldOffset);
      args.set_u64("field_len", kKvShardFieldLen);
      auto listener = die_on_err(
          srv_rt->endpoint("my-kv-srv", wrap(ChunnelSpec("shard", args)))
              .value()
              .listen(Addr::udp("127.0.0.1", 0)),
          "listen");

      // Preload: place records directly into the owning shard's store.
      {
        ShardArgs sargs = ShardArgs::from(args).value();
        YcsbConfig wl;
        wl.record_count = 1000;
        YcsbGenerator gen(wl);
        for (uint64_t i = 0; i < wl.record_count; i++) {
          KvRequest put = gen.load_request(i);
          size_t shard = sargs.pick(encode_kv_request(put));
          backend->shard(shard).store().put(put.key, put.value);
        }
      }

      // Two clients, each at half the offered load.
      LoadResult results[2];
      std::thread client_threads[2];
      for (int c = 0; c < 2; c++) {
        client_threads[c] = std::thread([&, c] {
          auto cli_rt = real_runtime("client-" + std::to_string(c), discovery,
                                     false);
          die_on_err(register_shard_chunnels(*cli_rt,
                                             sc.clients[c].client_push,
                                             sc.server_xdp, sc.server_fallback),
                     "client chunnels");
          auto conn = die_on_err(
              cli_rt->endpoint("kv-client", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(10))),
              "connect");
          results[c] = run_client(*conn, rate / 2.0, duration,
                                  1000 + static_cast<uint64_t>(c));
          conn->close();
        });
      }
      for (auto& t : client_threads) t.join();

      SampleSet all;
      uint64_t sent = 0, received = 0;
      for (const auto& r : results) {
        sent += r.sent;
        received += r.received;
      }
      // Merge by re-summarizing the two latency summaries is lossy;
      // print the worse p95 of the two clients plus combined throughput.
      Summary worst = results[0].latency_us.p95 >= results[1].latency_us.p95
                          ? results[0].latency_us
                          : results[1].latency_us;
      double dur_s = std::max(results[0].send_secs, results[1].send_secs);
      double loss = sent ? 100.0 * static_cast<double>(sent - received) /
                               static_cast<double>(sent)
                         : 0.0;
      std::printf("%-16s %10.0f %10.0f %9.1f %9.1f %9.1f %6.2f%%\n", sc.name,
                  rate, static_cast<double>(received) / dur_s, worst.p50,
                  worst.p95, worst.p99, loss);

      backend->stop();
    }
    std::printf("\n");
  }
  std::printf(
      "=> expected shape: client-push sustains the highest load at flat p95;\n"
      "   server-xdp close behind until its steering thread saturates; mixed\n"
      "   in between; server-fallback inflates earliest (single in-app\n"
      "   dispatcher doing full parses)\n\n");

  // --- ablation: key-distribution skew (uniform vs zipfian) ---
  // The paper uses uniform keys; under zipfian skew hot keys concentrate
  // on single shards, so the same offered load produces shard imbalance
  // and earlier tail inflation even on the best (client-push) path.
  std::printf("key-distribution ablation (client-push, fixed offered load):\n");
  std::printf("%-10s %10s %9s %9s   per-shard requests\n", "keys",
              "achieved", "p50(us)", "p95(us)");
  const double ablation_rate = quick_mode() ? 10000 : 50000;
  for (KeyDistribution dist :
       {KeyDistribution::uniform, KeyDistribution::zipfian}) {
    auto discovery = std::make_shared<DiscoveryState>();
    auto srv_rt = real_runtime("kv-server-host", discovery, false);
    die_on_err(register_shard_chunnels(*srv_rt, false, true, true),
               "server chunnels");
    auto backend = die_on_err(
        KvBackend::start(srv_rt->transports(), Addr::udp("127.0.0.1", 0),
                         "kv-server-host", 3),
        "backend");
    ChunnelArgs args;
    args.set("shards", format_addr_list(backend->shard_addrs()));
    args.set_u64("field_offset", kKvShardFieldOffset);
    args.set_u64("field_len", kKvShardFieldLen);
    auto listener = die_on_err(
        srv_rt->endpoint("my-kv-srv", wrap(ChunnelSpec("shard", args)))
            .value()
            .listen(Addr::udp("127.0.0.1", 0)),
        "listen");

    LoadResult results[2];
    std::thread client_threads[2];
    for (int c = 0; c < 2; c++) {
      client_threads[c] = std::thread([&, c] {
        auto cli_rt =
            real_runtime("client-" + std::to_string(c), discovery, false);
        die_on_err(register_shard_chunnels(*cli_rt, true, true, true),
                   "client chunnels");
        auto conn = die_on_err(
            cli_rt->endpoint("kv-client", ChunnelDag::empty())
                .value()
                .connect(listener->addr(), Deadline::after(seconds(10))),
            "connect");
        results[c] = run_client(*conn, ablation_rate / 2.0, duration,
                                2000 + static_cast<uint64_t>(c), dist);
        conn->close();
      });
    }
    for (auto& t : client_threads) t.join();
    Summary worst = results[0].latency_us.p95 >= results[1].latency_us.p95
                        ? results[0].latency_us
                        : results[1].latency_us;
    double dur_s = std::max(results[0].send_secs, results[1].send_secs);
    uint64_t received = results[0].received + results[1].received;
    std::printf("%-10s %10.0f %9.1f %9.1f   ",
                dist == KeyDistribution::uniform ? "uniform" : "zipfian",
                static_cast<double>(received) / dur_s, worst.p50, worst.p95);
    for (size_t i = 0; i < backend->size(); i++)
      std::printf("s%zu=%llu ", i,
                  static_cast<unsigned long long>(
                      backend->shard(i).requests_served()));
    std::printf("\n");
    backend->stop();
  }
  std::printf("=> zipfian skew concentrates hot keys on single shards: the\n"
              "   same offered load shows shard imbalance and a fatter tail\n");
  return 0;
}
