// Sharded, replicated discovery control plane: establishment latency
// with the catalogue served by a 2-partition x 3-replica cluster,
// steady-state vs during a single-replica failure.
//
// The claim under test: killing one replica of the partition the
// establishment path depends on costs the clients one RPC timeout (they
// rotate to a live replica and resubscribe watch streams by seq), not an
// outage — establishment keeps succeeding and the during-failover p99
// stays bounded.
//
// BERTHA_CONTROL_GATE=1 turns the run into a pass/fail check: any
// failed establishment, or a during-failover p99 above
// BERTHA_CONTROL_P99_MS (default 250), exits non-zero. CI runs this in
// the bench-smoke job.
#include "apps/ping.hpp"
#include "bench_util.hpp"
#include "control/cluster.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct Phase {
  Summary connect_us;
  int failures = 0;
};

Phase measure(Endpoint& ep, const Addr& server, int n) {
  Phase ph;
  SampleSet samples;
  for (int i = 0; i < n; i++) {
    auto run = ping_over_new_connection(ep, server, 32, 1,
                                        Deadline::after(seconds(10)));
    if (run.ok())
      samples.add_duration_us(run.value().connect_time);
    else
      ph.failures++;
  }
  ph.connect_us = samples.summarize();
  return ph;
}

}  // namespace

int main() {
  print_header(
      "control-plane failover — establishment latency, steady vs one dead "
      "replica",
      "Bertha §4.2 discovery (HotNets '20), replicated via §3.2 ordered "
      "multicast");

  const int steady_conns = scaled(300, 40);
  const int failover_conns = scaled(100, 20);
  const bool gate = std::getenv("BERTHA_CONTROL_GATE") != nullptr;
  double p99_bound_ms = 250;
  if (const char* env = std::getenv("BERTHA_CONTROL_P99_MS"))
    p99_bound_ms = std::atof(env);

  auto net = MemNetwork::create();
  auto factory =
      std::make_shared<DefaultTransportFactory>(net, nullptr, "ctrl");

  DiscoveryCluster::Config ccfg;
  ccfg.partitions = 2;
  ccfg.replicas = 3;
  ccfg.transports = factory;
  ccfg.replica.apply_timeout = ms(250);
  ccfg.replica.sweep_period = ms(25);
  ccfg.replica.server.keepalive = ms(50);
  auto cluster = die_on_err(DiscoveryCluster::start(std::move(ccfg)),
                            "cluster");

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(50);
  rpc.retries = 5;
  rpc.backoff = {ms(2), 2.0, ms(20), 0.3};
  rpc.watch_failover_timeout = ms(250);

  auto make_rt = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(net, nullptr, host);
    cfg.discovery =
        die_on_err(cluster->client(host + "-disc", rpc), "cluster client");
    auto rt = die_on_err(Runtime::create(std::move(cfg)), "runtime");
    die_on_err(register_builtin_chunnels(*rt), "builtins");
    return rt;
  };
  auto srv_rt = make_rt("bench-srv");
  auto cli_rt = make_rt("bench-cli");

  auto server = die_on_err(
      PingServer::start(srv_rt, wrap(ChunnelSpec("reliable")),
                        Addr::mem("bench-srv", 100)),
      "ping server");
  auto ep = die_on_err(cli_rt->endpoint("cli", ChunnelDag::empty()), "ep");

  Phase steady = measure(ep, server->addr(), steady_conns);

  // Kill the replica currently serving the partition the establishment
  // path hashes to ("reliable" queries), as seen by the server's client.
  auto srv_disc =
      std::dynamic_pointer_cast<ClusterDiscovery>(srv_rt->config().discovery);
  size_t part = srv_disc->partition_map().index_for_type("reliable");
  Addr active = srv_disc->partition_client(part).active_server();
  size_t victim = 0;
  const auto& servers = cluster->partition_servers(part);
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(part, victim);

  Phase failover = measure(ep, server->addr(), failover_conns);

  size_t rotations = srv_disc->server_failovers();
  auto cli_disc =
      std::dynamic_pointer_cast<ClusterDiscovery>(cli_rt->config().discovery);
  rotations += cli_disc->server_failovers();

  std::printf("\n%-28s %8s %10s %10s %10s %6s\n", "phase", "conns", "p50(us)",
              "p95(us)", "p99(us)", "fail");
  std::printf("%-28s %8d %10.1f %10.1f %10.1f %6d\n", "steady (3/3 replicas)",
              steady_conns, steady.connect_us.p50, steady.connect_us.p95,
              steady.connect_us.p99, steady.failures);
  std::printf("%-28s %8d %10.1f %10.1f %10.1f %6d\n",
              "failover (replica killed)", failover_conns,
              failover.connect_us.p50, failover.connect_us.p95,
              failover.connect_us.p99, failover.failures);
  std::printf("=> killed p%zu-r%zu mid-run; clients rotated %zu time(s); the\n"
              "   failover p99 absorbs one RPC timeout (%lldms) + retry, then\n"
              "   establishment returns to steady-state latency\n",
              part, victim, rotations,
              static_cast<long long>(rpc.rpc_timeout.count() / 1000000));

  if (gate) {
    bool ok = true;
    if (steady.failures || failover.failures) {
      std::fprintf(stderr, "GATE FAIL: %d steady + %d failover establishment "
                           "failures (want 0)\n",
                   steady.failures, failover.failures);
      ok = false;
    }
    if (failover.connect_us.p99 > p99_bound_ms * 1000.0) {
      std::fprintf(stderr,
                   "GATE FAIL: during-failover p99 %.1fus exceeds %.0fms\n",
                   failover.connect_us.p99, p99_bound_ms);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("GATE PASS: zero failures, failover p99 %.1fus <= %.0fms\n",
                failover.connect_us.p99, p99_bound_ms);
  }
  return 0;
}
