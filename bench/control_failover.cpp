// Sharded, replicated discovery control plane: establishment latency
// with the catalogue served by a 2-partition x 3-replica cluster, across
// the full self-healing ladder — steady state, one replica dead, the
// dead replica restarted (peer-snapshot catch-up), and the active
// sequencer killed (view change to the standby candidate).
//
// The claims under test: a replica kill costs clients one RPC timeout
// (rotate + seq-resume), a replica restart converges by snapshot +
// suffix replay without touching the serving path, and a sequencer kill
// costs one view-change round — establishment keeps succeeding through
// all of it.
//
// BERTHA_CONTROL_GATE=1 turns the run into a pass/fail check: any
// failed establishment, a during-failover p99 above
// BERTHA_CONTROL_P99_MS (default 250), or a during-view-change worst
// establishment above BERTHA_CONTROL_VIEW_MAX_MS (default 1000) exits
// non-zero. CI runs this in the bench-smoke job.
#include <algorithm>
#include <atomic>
#include <thread>

#include "apps/ping.hpp"
#include "bench_util.hpp"
#include "control/cluster.hpp"
#include "control/reshard.hpp"
#include "util/clock.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct Phase {
  Summary connect_us;
  int failures = 0;
};

Phase measure(Endpoint& ep, const Addr& server, int n) {
  Phase ph;
  SampleSet samples;
  for (int i = 0; i < n; i++) {
    auto run = ping_over_new_connection(ep, server, 32, 1,
                                        Deadline::after(seconds(10)));
    if (run.ok())
      samples.add_duration_us(run.value().connect_time);
    else
      ph.failures++;
  }
  ph.connect_us = samples.summarize();
  return ph;
}

}  // namespace

int main() {
  print_header(
      "control-plane failover — establishment latency, steady vs one dead "
      "replica",
      "Bertha §4.2 discovery (HotNets '20), replicated via §3.2 ordered "
      "multicast");

  const int steady_conns = scaled(300, 40);
  const int failover_conns = scaled(100, 20);
  const bool gate = std::getenv("BERTHA_CONTROL_GATE") != nullptr;
  double p99_bound_ms = 250;
  if (const char* env = std::getenv("BERTHA_CONTROL_P99_MS"))
    p99_bound_ms = std::atof(env);
  double view_max_ms = 1000;
  if (const char* env = std::getenv("BERTHA_CONTROL_VIEW_MAX_MS"))
    view_max_ms = std::atof(env);

  auto net = MemNetwork::create();
  auto factory =
      std::make_shared<DefaultTransportFactory>(net, nullptr, "ctrl");

  DiscoveryCluster::Config ccfg;
  ccfg.partitions = 2;
  ccfg.replicas = 3;
  ccfg.sequencer_candidates = 2;  // standby for the view-change phase
  ccfg.transports = factory;
  ccfg.replica.apply_timeout = ms(250);
  ccfg.replica.sweep_period = ms(25);
  ccfg.replica.server.keepalive = ms(50);
  ccfg.tuning.view_silence_timeout = ms(120);
  ccfg.tuning.view_ack_timeout = ms(25);
  auto cluster = die_on_err(DiscoveryCluster::start(std::move(ccfg)),
                            "cluster");

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(50);
  rpc.retries = 5;
  rpc.backoff = {ms(2), 2.0, ms(20), 0.3};
  rpc.watch_failover_timeout = ms(250);

  auto make_rt = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(net, nullptr, host);
    cfg.discovery =
        die_on_err(cluster->client(host + "-disc", rpc), "cluster client");
    auto rt = die_on_err(Runtime::create(std::move(cfg)), "runtime");
    die_on_err(register_builtin_chunnels(*rt), "builtins");
    return rt;
  };
  auto srv_rt = make_rt("bench-srv");
  auto cli_rt = make_rt("bench-cli");

  auto server = die_on_err(
      PingServer::start(srv_rt, wrap(ChunnelSpec("reliable")),
                        Addr::mem("bench-srv", 100)),
      "ping server");
  auto ep = die_on_err(cli_rt->endpoint("cli", ChunnelDag::empty()), "ep");

  Phase steady = measure(ep, server->addr(), steady_conns);

  // Kill the replica currently serving the partition the establishment
  // path hashes to ("reliable" queries), as seen by the server's client.
  auto srv_disc =
      std::dynamic_pointer_cast<ClusterDiscovery>(srv_rt->config().discovery);
  size_t part = srv_disc->partition_map().index_for_type("reliable");
  Addr active = srv_disc->partition_client(part).active_server();
  size_t victim = 0;
  const auto& servers = cluster->partition_servers(part);
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(part, victim);

  Phase failover = measure(ep, server->addr(), failover_conns);

  // Phase 3: restart the killed replica. It catches up from a peer
  // snapshot + sequenced suffix off the serving path; we time the full
  // rejoin (boot -> installed -> converged with the group).
  Stopwatch rejoin_sw;
  die_on_err(cluster->restart_replica(part, victim), "restart_replica");
  if (!cluster->replica(part, victim)->wait_ready(seconds(30))) {
    std::fprintf(stderr, "restarted replica never became ready\n");
    return 1;
  }
  double ready_ms = rejoin_sw.elapsed_us() / 1000.0;
  auto converged = [&] {
    auto [e0, s0] = cluster->replica(part, 0)->state()->catalogue_snapshot();
    auto [e1, s1] =
        cluster->replica(part, victim)->state()->catalogue_snapshot();
    return s1 == s0 && e1.size() == e0.size();
  };
  Deadline conv_dl = Deadline::after(seconds(30));
  while (!converged() && !conv_dl.expired()) sleep_for(ms(5));
  double converge_ms = rejoin_sw.elapsed_us() / 1000.0;
  bool conv_ok = converged();
  Phase rejoined = measure(ep, server->addr(), failover_conns);

  // Phase 4: kill the active sequencer of the partition the
  // establishment path depends on. Replicas detect the sequenced-stream
  // silence (replicated sweeps double as keepalives), elect the standby
  // candidate, and re-propose in-flight ops. The election time IS the
  // mutation outage; establishments run right through it.
  cluster->kill_sequencer(part, 0);
  Stopwatch vc_sw;
  Phase viewchange = measure(ep, server->addr(), failover_conns);
  auto in_next_view = [&] {
    for (size_t r = 0; r < 3; r++)
      if (cluster->alive(part, r) &&
          cluster->replica(part, r)->current_view() >= 1)
        return true;
    return false;
  };
  Deadline vc_dl = Deadline::after(seconds(10));
  while (!in_next_view() && !vc_dl.expired()) sleep_for(ms(2));
  double election_ms = vc_sw.elapsed_us() / 1000.0;
  bool elected = in_next_view();
  // A post-election mutation on the affected partition ("reliable"
  // hashes there by construction) proves the new sequencer serves
  // writes.
  auto probe = die_on_err(cluster->client("vc-probe", rpc), "probe client");
  ImplInfo probe_info;
  probe_info.type = "reliable";
  probe_info.name = "reliable/vc-probe";
  probe_info.scope = Scope::host;
  probe_info.endpoints = EndpointConstraint::server;
  bool write_ok = probe->register_impl(probe_info).ok();
  double write_ms = vc_sw.elapsed_us() / 1000.0;

  // Phase 5: online repartitioning. Steady-state mutation baseline
  // first, then a live 2 -> 4 split followed by a 4 -> 2 merge while a
  // mutation loop keeps writing. Every mutation retries until it lands,
  // so its observed latency IS the write unavailability it sat through;
  // with BERTHA_RESHARD_GATE=1 the migration must keep the worst one
  // under BERTHA_RESHARD_UNAVAIL_MS (default 1000) and the
  // during-migration mutation p99 within BERTHA_RESHARD_P99_X (default
  // 4x) of the steady-state mutation p99.
  const bool reshard_gate = std::getenv("BERTHA_RESHARD_GATE") != nullptr;
  double reshard_p99_x = 4.0;
  if (const char* env = std::getenv("BERTHA_RESHARD_P99_X"))
    reshard_p99_x = std::atof(env);
  double reshard_unavail_ms = 1000;
  if (const char* env = std::getenv("BERTHA_RESHARD_UNAVAIL_MS"))
    reshard_unavail_ms = std::atof(env);

  auto wr = die_on_err(cluster->client("reshard-wr", rpc), "reshard writer");
  std::atomic<int> mut_id{0};
  std::atomic<int> mut_failures{0};
  auto mutate = [&](SampleSet& out) {
    int i = mut_id.fetch_add(1);
    ImplInfo mi;
    mi.type = "rsb.t" + std::to_string(i % 64);
    mi.name = mi.type + "/m" + std::to_string(i);
    mi.scope = Scope::host;
    mi.endpoints = EndpointConstraint::server;
    Stopwatch sw;
    Deadline dl = Deadline::after(seconds(10));
    bool landed = false;
    while (!landed && !dl.expired()) landed = wr->register_impl(mi).ok();
    if (landed)
      out.add(sw.elapsed_us());
    else
      mut_failures.fetch_add(1);
  };

  SampleSet steady_mut;
  const int mut_n = scaled(300, 50);
  for (int i = 0; i < mut_n; i++) mutate(steady_mut);
  Summary steady_mut_s = steady_mut.summarize();

  SampleSet migrate_mut;
  std::atomic<bool> reshard_done{false};
  std::thread mut_thread([&] {
    while (!reshard_done.load()) mutate(migrate_mut);
  });
  auto coord =
      die_on_err(ReshardCoordinator::create(*cluster), "reshard coordinator");
  Stopwatch split_sw;
  die_on_err(coord->split(), "split");
  double split_ms = split_sw.elapsed_us() / 1000.0;
  Stopwatch merge_sw;
  die_on_err(coord->merge(), "merge");
  double merge_ms = merge_sw.elapsed_us() / 1000.0;
  reshard_done.store(true);
  mut_thread.join();
  Summary migrate_mut_s = migrate_mut.summarize();
  Phase resharded = measure(ep, server->addr(), failover_conns);

  size_t rotations = srv_disc->server_failovers();
  auto cli_disc =
      std::dynamic_pointer_cast<ClusterDiscovery>(cli_rt->config().discovery);
  rotations += cli_disc->server_failovers();
  uint64_t view_changes = 0, catchups = 0, skips = 0;
  for (size_t r = 0; r < 3; r++) {
    if (!cluster->alive(part, r)) continue;
    view_changes =
        std::max(view_changes, cluster->replica(part, r)->view_changes());
    catchups += cluster->replica(part, r)->catchups();
    skips += cluster->replica(part, r)->gaps_skipped();
  }

  std::printf("\n%-28s %8s %10s %10s %10s %10s %6s\n", "phase", "conns",
              "p50(us)", "p95(us)", "p99(us)", "max(us)", "fail");
  auto row = [](const char* name, int n, const Phase& ph) {
    std::printf("%-28s %8d %10.1f %10.1f %10.1f %10.1f %6d\n", name, n,
                ph.connect_us.p50, ph.connect_us.p95, ph.connect_us.p99,
                ph.connect_us.max, ph.failures);
  };
  row("steady (3/3 replicas)", steady_conns, steady);
  row("failover (replica killed)", failover_conns, failover);
  row("rejoined (after catch-up)", failover_conns, rejoined);
  row("view change (seq killed)", failover_conns, viewchange);
  row("resharded (split + merge)", failover_conns, resharded);
  std::printf("=> killed p%zu-r%zu mid-run; clients rotated %zu time(s); the\n"
              "   failover p99 absorbs one RPC timeout (%lldms) + retry\n",
              part, victim, rotations,
              static_cast<long long>(rpc.rpc_timeout.count() / 1000000));
  std::printf("=> restart: ready (snapshot installed) in %.1fms, converged\n"
              "   with the group in %.1fms (%llu catch-up(s), %llu skips)\n",
              ready_ms, converge_ms, static_cast<unsigned long long>(catchups),
              static_cast<unsigned long long>(skips));
  std::printf("=> sequencer kill: standby elected (view %llu) in %.1fms, "
              "first post-\n   election write landed at %.1fms; worst "
              "establishment during the\n   change %.1fms\n",
              static_cast<unsigned long long>(view_changes), election_ms,
              write_ms, viewchange.connect_us.max / 1000.0);
  std::printf("=> reshard: split 2->4 in %.1fms, merge 4->2 in %.1fms\n"
              "   mutations: steady p50/p99 %.1f/%.1fus (%zu), during "
              "migration\n   p50/p99 %.1f/%.1fus (%zu), worst "
              "time-to-land %.1fms, %d never landed\n",
              split_ms, merge_ms, steady_mut_s.p50, steady_mut_s.p99,
              steady_mut_s.count, migrate_mut_s.p50, migrate_mut_s.p99,
              migrate_mut_s.count, migrate_mut_s.max / 1000.0,
              mut_failures.load());

  if (gate) {
    bool ok = true;
    int fails = steady.failures + failover.failures + rejoined.failures +
                viewchange.failures;
    if (fails) {
      std::fprintf(stderr,
                   "GATE FAIL: %d establishment failures across phases "
                   "(want 0)\n",
                   fails);
      ok = false;
    }
    if (failover.connect_us.p99 > p99_bound_ms * 1000.0) {
      std::fprintf(stderr,
                   "GATE FAIL: during-failover p99 %.1fus exceeds %.0fms\n",
                   failover.connect_us.p99, p99_bound_ms);
      ok = false;
    }
    if (viewchange.connect_us.max > view_max_ms * 1000.0) {
      std::fprintf(stderr,
                   "GATE FAIL: during-view-change worst establishment "
                   "%.1fus exceeds %.0fms\n",
                   viewchange.connect_us.max, view_max_ms);
      ok = false;
    }
    if (!elected || !write_ok || write_ms > view_max_ms) {
      std::fprintf(stderr,
                   "GATE FAIL: view change did not restore writes within "
                   "%.0fms (elected=%d write_ok=%d at %.1fms)\n",
                   view_max_ms, elected ? 1 : 0, write_ok ? 1 : 0, write_ms);
      ok = false;
    }
    if (!conv_ok) {
      std::fprintf(stderr,
                   "GATE FAIL: restarted replica never converged\n");
      ok = false;
    }
    if (skips) {
      std::fprintf(stderr,
                   "GATE FAIL: %llu bounded skips (recovery must use "
                   "catch-up)\n",
                   static_cast<unsigned long long>(skips));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("GATE PASS: zero failures, failover p99 %.1fus <= %.0fms, "
                "view-change max %.1fus <= %.0fms, catch-up converged\n",
                failover.connect_us.p99, p99_bound_ms,
                viewchange.connect_us.max, view_max_ms);
  }

  if (reshard_gate) {
    bool ok = true;
    if (mut_failures.load() > 0) {
      std::fprintf(stderr,
                   "RESHARD GATE FAIL: %d mutation(s) never landed "
                   "(writes unavailable > 10s)\n",
                   mut_failures.load());
      ok = false;
    }
    if (resharded.failures > 0) {
      std::fprintf(stderr,
                   "RESHARD GATE FAIL: %d establishment failures after the "
                   "split + merge (want 0)\n",
                   resharded.failures);
      ok = false;
    }
    if (migrate_mut_s.count > 0) {
      if (migrate_mut_s.p99 > reshard_p99_x * steady_mut_s.p99) {
        std::fprintf(stderr,
                     "RESHARD GATE FAIL: during-migration mutation p99 "
                     "%.1fus exceeds %.1fx steady p99 %.1fus\n",
                     migrate_mut_s.p99, reshard_p99_x, steady_mut_s.p99);
        ok = false;
      }
      if (migrate_mut_s.max > reshard_unavail_ms * 1000.0) {
        std::fprintf(stderr,
                     "RESHARD GATE FAIL: worst mutation time-to-land "
                     "%.1fms exceeds %.0fms\n",
                     migrate_mut_s.max / 1000.0, reshard_unavail_ms);
        ok = false;
      }
    }
    if (cluster->active_partitions() != 2) {
      std::fprintf(stderr,
                   "RESHARD GATE FAIL: %zu partitions active after merge "
                   "(want 2)\n",
                   cluster->active_partitions());
      ok = false;
    }
    if (!ok) return 1;
    std::printf("RESHARD GATE PASS: mutation p99 %.1fus <= %.1fx steady "
                "%.1fus, worst %.1fms <= %.0fms, zero stuck writes\n",
                migrate_mut_s.p99, reshard_p99_x, steady_mut_s.p99,
                migrate_mut_s.max / 1000.0, reshard_unavail_ms);
  }
  return 0;
}
