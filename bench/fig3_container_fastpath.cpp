// Figure 3: container-networking RPC latency.
//
// "a client makes a connection to the server on the same host, and
// measures the latency of 3 requests on that connection. We repeat this
// measurement across 10,000 connections. ... the Bertha implementation
// has latency similar to a specialized implementation that hardcodes
// the use of IPCs."
//
// Three series per request size:
//   bertha/local_or_remote  full Bertha endpoint with the fast-path
//                           chunnel: negotiates, then rebases onto a
//                           unix socket (the paper's Bertha client),
//   hardcoded-ipc           a pre-wired unix socketpair, no addressing,
//                           no negotiation (the specialized baseline),
//   udp-stack               plain UDP sockets through the kernel
//                           network stack (what containers pay today).
//
// Also reports the connection-establishment cost: Bertha's extra round
// trips (negotiation + the server's discovery query) vs a raw UDP
// exchange.
#include <thread>

#include "apps/ping.hpp"
#include "bench_util.hpp"
#include "net/pipe.hpp"
#include "net/udp.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

// Raw request/response over a transport pair (no bertha framing).
Summary raw_transport_rtts(Transport& cli, Transport& srv, const Addr& srv_addr,
                           size_t payload_size, int conns, int pings_per_conn,
                           std::thread& echo_thread_out) {
  (void)echo_thread_out;
  SampleSet rtts;
  Bytes payload(payload_size, 0xab);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    for (;;) {
      auto pkt = srv.recv();
      if (!pkt.ok()) return;
      (void)srv.send_to(pkt.value().src, pkt.value().payload);
    }
  });
  for (int c = 0; c < conns; c++) {
    for (int i = 0; i < pings_per_conn; i++) {
      Stopwatch sw;
      (void)cli.send_to(srv_addr, payload);
      auto echo_pkt = cli.recv(Deadline::after(seconds(5)));
      if (echo_pkt.ok()) rtts.add_duration_us(sw.elapsed());
    }
  }
  stop.store(true);
  srv.close();
  echo.join();
  return rtts.summarize();
}

}  // namespace

int main() {
  print_header("Fig 3 — container networking: RPC latency by request size",
               "Bertha Fig. 3 (HotNets '20), local fast-path chunnel");

  const int conns = scaled(1500, 100);
  const int pings = 3;
  const size_t sizes[] = {64, 1024, 16384};

  auto discovery = std::make_shared<DiscoveryState>();

  // Connection-setup comparison, measured on the first size only.
  SampleSet bertha_connect_us;

  for (size_t payload : sizes) {
    // --- bertha with local_or_remote (same host => unix socket) ---
    {
      auto rt = real_runtime("fig3-host", discovery);
      auto server = die_on_err(
          PingServer::start(rt, wrap(ChunnelSpec("local_or_remote")),
                            Addr::udp("127.0.0.1", 0)),
          "ping server");
      auto ep = die_on_err(rt->endpoint("fig3-cli", ChunnelDag::empty()),
                           "endpoint");
      SampleSet rtts;
      for (int c = 0; c < conns; c++) {
        auto run = ping_over_new_connection(ep, server->addr(), payload, pings,
                                            Deadline::after(seconds(10)));
        if (!run.ok()) continue;
        for (auto d : run.value().rtts) rtts.add_duration_us(d);
        if (payload == sizes[0])
          bertha_connect_us.add_duration_us(run.value().connect_time);
      }
      print_box_row("bertha/local_or_remote", payload, rtts.summarize());
      server->stop();
    }

    // --- bertha WITHOUT the fast-path chunnel: same framework, but the
    //     connection stays on the UDP network path (what a container
    //     pays without the offload). The delta to the series above is
    //     the local_or_remote chunnel's contribution in isolation.
    {
      auto rt = real_runtime("fig3-host", discovery);
      auto server = die_on_err(PingServer::start(rt, ChunnelDag::empty(),
                                                 Addr::udp("127.0.0.1", 0)),
                               "ping server");
      auto ep = die_on_err(rt->endpoint("fig3-cli", ChunnelDag::empty()),
                           "endpoint");
      SampleSet rtts;
      for (int c = 0; c < conns; c++) {
        auto run = ping_over_new_connection(ep, server->addr(), payload, pings,
                                            Deadline::after(seconds(10)));
        if (!run.ok()) continue;
        for (auto d : run.value().rtts) rtts.add_duration_us(d);
      }
      print_box_row("bertha/no-fastpath", payload, rtts.summarize());
      server->stop();
    }

    // --- hardcoded unix-socketpair IPC ---
    {
      SampleSet rtts;
      Bytes buf(payload, 0xab);
      for (int c = 0; c < std::max(conns / 10, 20); c++) {
        auto pair = die_on_err(make_pipe_pair(), "socketpair");
        std::thread echo([&] {
          for (;;) {
            auto pkt = pair.b->recv();
            if (!pkt.ok()) return;
            (void)pair.b->send_to(Addr(), pkt.value().payload);
          }
        });
        for (int i = 0; i < pings; i++) {
          Stopwatch sw;
          (void)pair.a->send_to(Addr(), buf);
          if (pair.a->recv(Deadline::after(seconds(5))).ok())
            rtts.add_duration_us(sw.elapsed());
        }
        pair.b->close();
        echo.join();
      }
      print_box_row("hardcoded-ipc", payload, rtts.summarize());
    }

    // --- plain UDP through the kernel stack ---
    {
      auto srv = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)),
                            "udp srv");
      auto cli = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)),
                            "udp cli");
      std::thread dummy;
      Summary s = raw_transport_rtts(*cli, *srv, srv->local_addr(), payload,
                                     std::max(conns / 10, 20), pings, dummy);
      print_box_row("udp-stack", payload, s);
    }
    std::printf("\n");
  }

  // --- connection establishment cost ---
  std::printf("connection establishment (64B pings):\n");
  Summary cs = bertha_connect_us.summarize();
  std::printf("  bertha connect (hello/accept + server discovery query): "
              "p50=%.1fus p95=%.1fus\n",
              cs.p50, cs.p95);
  std::printf("  => paid once per connection; per-message latency above shows "
              "no residual overhead\n");
  return 0;
}
