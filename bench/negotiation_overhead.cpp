// §5 claim: "Establishing a Bertha connection requires two additional
// IPC round trips to query the discovery service and negotiate the
// connection mechanism. However, subsequent messages on an established
// connection do not encounter additional latency."
//
// This harness quantifies both halves:
//  1. connection setup: raw UDP round trip vs Bertha connect with an
//     *in-process* discovery handle vs Bertha connect where the server
//     consults a real discovery daemon over a unix socket (the
//     deployment §4.2 describes),
//  2. established-connection overhead: per-message RTT on a negotiated
//     Bertha connection vs the raw transport (the 11-byte header parse
//     is the only difference).
#include <thread>

#include "apps/ping.hpp"
#include "bench_util.hpp"
#include "net/uds.hpp"
#include "net/udp.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

Summary measure_connects(Endpoint& ep, const Addr& server, int n) {
  SampleSet us_samples;
  for (int i = 0; i < n; i++) {
    auto run = ping_over_new_connection(ep, server, 32, 1,
                                        Deadline::after(seconds(10)));
    if (run.ok()) us_samples.add_duration_us(run.value().connect_time);
  }
  return us_samples.summarize();
}

}  // namespace

int main() {
  print_header("negotiation & discovery overhead at connection establishment",
               "Bertha §5 'two additional IPC round trips' claim");
  const int conns = scaled(800, 50);

  // --- baseline: one raw UDP round trip (what a minimal handshake costs).
  {
    auto srv = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)), "srv");
    auto cli = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)), "cli");
    std::thread echo([&] {
      for (;;) {
        auto p = srv->recv();
        if (!p.ok()) return;
        (void)srv->send_to(p.value().src, p.value().payload);
      }
    });
    SampleSet rtt;
    Bytes b(32, 1);
    for (int i = 0; i < conns; i++) {
      Stopwatch sw;
      (void)cli->send_to(srv->local_addr(), b);
      if (cli->recv(Deadline::after(seconds(5))).ok())
        rtt.add_duration_us(sw.elapsed());
    }
    std::printf("raw UDP round trip:                 p50=%7.1fus p95=%7.1fus\n",
                rtt.summarize().p50, rtt.summarize().p95);
    srv->close();
    echo.join();
  }

  // --- bertha connect, in-process discovery.
  {
    auto discovery = std::make_shared<DiscoveryState>();
    auto rt = real_runtime("neg-host", discovery);
    auto server = die_on_err(PingServer::start(rt, wrap(ChunnelSpec("reliable")),
                                               Addr::udp("127.0.0.1", 0)),
                             "server");
    auto ep = die_on_err(rt->endpoint("cli", ChunnelDag::empty()), "ep");
    Summary s = measure_connects(ep, server->addr(), conns);
    std::printf("bertha connect (local discovery):   p50=%7.1fus p95=%7.1fus\n",
                s.p50, s.p95);
  }

  // --- bertha connect, discovery daemon over a unix socket: the
  //     negotiation handler pays a real IPC round trip per chunnel type.
  {
    auto state = std::make_shared<DiscoveryState>();
    auto daemon_sock = die_on_err(
        UdsTransport::bind(Addr::uds("neg-bench-disc-" + make_unique_id())),
        "daemon sock");
    DiscoveryServer daemon(std::move(daemon_sock), state);
    auto client_sock =
        die_on_err(UdsTransport::bind(Addr::uds("")), "disc client sock");
    auto remote = std::make_shared<RemoteDiscovery>(std::move(client_sock),
                                                    daemon.addr());

    RuntimeConfig cfg;
    cfg.host_id = "neg-host";
    cfg.transports = std::make_shared<DefaultTransportFactory>();
    cfg.discovery = remote;
    auto rt = Runtime::create(cfg).value();
    die_on_err(register_builtin_chunnels(*rt), "builtins");

    auto server = die_on_err(PingServer::start(rt, wrap(ChunnelSpec("reliable")),
                                               Addr::udp("127.0.0.1", 0)),
                             "server");
    auto ep = die_on_err(rt->endpoint("cli", ChunnelDag::empty()), "ep");
    Summary s = measure_connects(ep, server->addr(), conns);
    std::printf("bertha connect (discovery daemon):  p50=%7.1fus p95=%7.1fus "
                "(%llu daemon requests)\n",
                s.p50, s.p95,
                static_cast<unsigned long long>(daemon.requests_served()));
  }

  // --- established connection: per-message overhead vs raw transport.
  {
    auto discovery = std::make_shared<DiscoveryState>();
    auto rt = real_runtime("neg-host", discovery);
    auto server = die_on_err(
        PingServer::start(rt, ChunnelDag::empty(), Addr::udp("127.0.0.1", 0)),
        "server");
    auto ep = die_on_err(rt->endpoint("cli", ChunnelDag::empty()), "ep");
    auto conn = die_on_err(
        ep.connect(server->addr(), Deadline::after(seconds(10))), "connect");
    SampleSet rtts;
    for (int i = 0; i < conns * 3; i++) {
      auto d = ping_once(*conn, 32, Deadline::after(seconds(5)));
      if (d.ok()) rtts.add_duration_us(d.value());
    }
    std::printf("established bertha conn, per msg:   p50=%7.1fus p95=%7.1fus "
                "(vs raw UDP above: framing only)\n",
                rtts.summarize().p50, rtts.summarize().p95);
    conn->close();
  }
  return 0;
}
