// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "chunnels/builtin.hpp"
#include "core/endpoint.hpp"
#include "net/factory.hpp"
#include "util/stats.hpp"

namespace bertha::bench {

// BERTHA_BENCH_QUICK=1 shrinks every harness for smoke runs.
inline bool quick_mode() { return std::getenv("BERTHA_BENCH_QUICK") != nullptr; }

inline int scaled(int full, int quick) { return quick_mode() ? quick : full; }

// A runtime over the real OS transports (udp + unix sockets).
inline std::shared_ptr<Runtime> real_runtime(
    const std::string& host_id, DiscoveryPtr discovery,
    bool builtins = true) {
  RuntimeConfig cfg;
  cfg.host_id = host_id;
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  cfg.discovery = std::move(discovery);
  auto rt = Runtime::create(std::move(cfg)).value();
  if (builtins) {
    auto r = register_builtin_chunnels(*rt);
    if (!r.ok()) {
      std::fprintf(stderr, "register_builtin_chunnels: %s\n",
                   r.error().to_string().c_str());
      std::exit(1);
    }
  }
  return rt;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

// Box-stat row in the format Fig 3 plots (values in microseconds).
inline void print_box_row(const char* series, size_t payload,
                          const Summary& s) {
  std::printf("%-22s %8zuB  p5=%8.1f p25=%8.1f p50=%8.1f p75=%8.1f p95=%8.1f  (n=%zu)\n",
              series, payload, s.p5, s.p25, s.p50, s.p75, s.p95, s.count);
}

template <typename T>
T die_on_err(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline void die_on_err(Result<void> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().to_string().c_str());
    std::exit(1);
  }
}

}  // namespace bertha::bench
