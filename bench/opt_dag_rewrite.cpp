// §6 "Performance Optimization": DAG rewriting vs PCIe traffic.
//
// "consider a Bertha connection with the pipeline encrypt |> http2 |>
// tcp running on a host where a SmartNIC can be used to offload
// encryption and TCP functionality. When implemented as specified, the
// Bertha runtime must either use a fallback implementation for
// encryption or incur a 3x increase (NIC-CPU-NIC) in the amount of data
// sent over PCIe. Reordering this pipeline as http2 |> encrypt |> tcp
// allows the use of the offloaded implementation without increased
// PCIe overhead. ... if the SmartNIC ... did offer one for TLS, Bertha
// could reorder and then merge the last two Chunnels."
//
// The harness runs the optimizer on that pipeline under three hardware
// profiles and reports PCIe crossings, bytes moved per message size,
// and modeled bus time from the SimNic cost model.
#include "bench_util.hpp"
#include "core/optimizer.hpp"
#include "sim/simnic.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

OptStage stage(std::string type, bool offload,
               std::set<std::string> commutes) {
  OptStage s;
  s.type = std::move(type);
  s.offloadable = offload;
  s.commutes_with = std::move(commutes);
  return s;
}

void report(const char* label, const std::vector<OptStage>& as_written,
            const DagOptimizer& opt, SimNic& nic) {
  auto plan = opt.optimize(as_written).value();
  std::string pipeline;
  for (const auto& s : plan.stages) {
    if (!pipeline.empty()) pipeline += " |> ";
    pipeline += s.type + (s.offloadable ? "[nic]" : "[cpu]");
  }
  std::printf("%-34s %s\n", label, pipeline.c_str());
  std::printf("    as-written: %d crossings (%.1fx bytes)   optimized: %d "
              "crossings (%.1fx bytes)\n",
              DagOptimizer::count_crossings(as_written),
              DagOptimizer::pcie_cost(as_written), plan.pcie_crossings,
              plan.pcie_bytes_per_input_byte);
  for (const auto& a : plan.applied) std::printf("    rewrite: %s\n", a.c_str());

  std::printf("    modeled PCIe bus time per message:\n");
  for (size_t msg : {1024u, 16384u, 65536u}) {
    auto bus = [&](double factor) {
      // One transfer per crossing, each carrying ~factor/crossings of
      // the message (the model charges per crossing at current size;
      // for unit size factors every crossing carries the full message).
      Duration total{};
      int crossings = static_cast<int>(factor + 0.5);
      for (int c = 0; c < crossings; c++)
        total += nic.record_pcie_transfer(msg);
      return std::chrono::duration<double, std::micro>(total).count();
    };
    double before = bus(DagOptimizer::pcie_cost(as_written));
    double after = bus(plan.pcie_bytes_per_input_byte);
    std::printf("      %6zuB: %8.1fus -> %8.1fus (%.1fx less bus traffic)\n",
                msg, before, after, before / std::max(after, 1e-9));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("§6 — DAG optimizer: reorder & merge vs PCIe traffic",
               "Bertha §6 encrypt |> http2 |> tcp example");

  auto discovery = std::make_shared<DiscoveryState>();
  SimNic::Config nic_cfg;
  nic_cfg.pcie_per_kib = us(2);
  nic_cfg.pcie_setup = us(1);
  auto nic = die_on_err(SimNic::create(discovery, nic_cfg), "nic");

  // Profile 1: NIC offloads encrypt and tcp separately; http2 commutes
  // with encrypt (framing bytes are opaque to the cipher).
  {
    DagOptimizer opt;
    std::vector<OptStage> pipeline{
        stage("encrypt", true, {"http2"}),
        stage("http2", false, {"encrypt", "tcp"}),
        stage("tcp", true, {"http2"}),
    };
    report("separate crypto+tcp engines:", pipeline, opt, *nic);
  }

  // Profile 2: only a combined TLS engine exists; the optimizer must
  // reorder and then merge encrypt+tcp -> tls.
  {
    DagOptimizer opt;
    opt.add_merge_rule({"encrypt", "tcp", "tls", true});
    std::vector<OptStage> pipeline{
        stage("encrypt", false, {"http2"}),
        stage("http2", false, {"encrypt", "tcp"}),
        stage("tcp", false, {"http2"}),
    };
    report("combined TLS engine only:", pipeline, opt, *nic);
  }

  // Profile 3: nothing commutes (the safety case) — no rewrite legal,
  // optimizer must keep 3 crossings.
  {
    DagOptimizer opt;
    std::vector<OptStage> pipeline{
        stage("encrypt", true, {}),
        stage("http2", false, {}),
        stage("tcp", true, {}),
    };
    report("no commutativity declared:", pipeline, opt, *nic);
  }

  std::printf("=> the optimizer reproduces the paper's 3x -> 1x PCIe "
              "reduction, and falls back to the as-written order when "
              "reordering is not provably safe\n");
  return 0;
}
