// Figure 4: dynamic name resolution.
//
// "When the client starts, the only server running is placed on a
// remote machine. ... At t = 4 sec., an instance of the server is
// started locally; subsequent client connections choose the local
// instance and communicate using UNIX domain sockets. As a result, the
// subsequent requests have lower latency."
//
// The client resolves the service name through the Bertha discovery
// service *on every connection* and never changes: the latency drop at
// t=4s comes entirely from the directory update plus the
// local_or_remote chunnel switching to the unix socket.
//
// To make the remote/local contrast visible on one machine, the
// "remote" instance applies a small per-message service delay standing
// in for cross-machine network latency (DESIGN.md §1.4); the structure
// of the experiment — re-resolution per connection, zero client-side
// changes — is the paper's.
#include <thread>

#include "apps/ping.hpp"
#include "bench_util.hpp"
#include "chunnels/directory.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

// An echo server that injects a fixed delay per request (the stand-in
// for the remote machine's network distance).
class DelayedEchoServer {
 public:
  DelayedEchoServer(std::shared_ptr<Runtime> rt, Duration delay) {
    listener_ = die_on_err(rt->endpoint("echo",
                                        wrap(ChunnelSpec("local_or_remote")))
                               .value()
                               .listen(Addr::udp("127.0.0.1", 0)),
                           "listen");
    accept_thread_ = std::thread([this, delay] {
      for (;;) {
        auto conn = listener_->accept();
        if (!conn.ok()) return;
        std::lock_guard<std::mutex> lk(mu_);
        workers_.emplace_back([c = std::move(conn).value(), delay] {
          for (;;) {
            auto m = c->recv();
            if (!m.ok()) return;
            if (delay > Duration::zero()) sleep_for(delay);
            if (!c->send(std::move(m).value()).ok()) return;
          }
        });
      }
    });
  }

  ~DelayedEchoServer() {
    listener_->close();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  }

  const Addr& addr() const { return listener_->addr(); }

 private:
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> workers_;
};

}  // namespace

int main() {
  print_header("Fig 4 — dynamic name resolution over time",
               "Bertha Fig. 4 (HotNets '20), per-connection re-resolution");

  const int total_secs = scaled(8, 4);
  const int local_start_sec = total_secs / 2;
  const auto step = ms(200);
  const Duration remote_penalty = us(300);  // simulated network distance

  auto discovery = std::make_shared<DiscoveryState>();
  ServiceDirectory directory(discovery);

  // The remote instance, up from the start.
  auto remote_rt = real_runtime("remote-host", discovery);
  DelayedEchoServer remote(remote_rt, remote_penalty);
  die_on_err(directory.register_instance(
                 "echo-svc", {remote.addr(), "remote-host", 10}),
             "register remote");

  auto client_rt = real_runtime("client-host", discovery);
  auto ep = die_on_err(client_rt->endpoint("fig4-cli", ChunnelDag::empty()),
                       "endpoint");

  std::unique_ptr<PingServer> local;  // started mid-run
  std::shared_ptr<Runtime> local_rt;

  std::printf("%6s  %-12s  %10s  %10s\n", "t(s)", "instance", "p50(us)",
              "p95(us)");
  Stopwatch wall;
  bool local_started = false;
  while (wall.elapsed() < seconds(total_secs)) {
    if (!local_started &&
        wall.elapsed() >= seconds(local_start_sec)) {
      // t = 4s: a local instance appears and registers itself. The
      // client code below does not change.
      local_rt = real_runtime("client-host", discovery);
      local = die_on_err(PingServer::start(local_rt,
                                           wrap(ChunnelSpec("local_or_remote")),
                                           Addr::udp("127.0.0.1", 0)),
                         "local server");
      die_on_err(directory.register_instance(
                     "echo-svc", {local->addr(), "client-host", 10}),
                 "register local");
      local_started = true;
    }

    // Resolve -> connect -> 3 RPCs -> close. Every iteration.
    auto inst = directory.resolve("echo-svc", "client-host");
    if (!inst.ok()) continue;
    SampleSet rtts;
    auto run = ping_over_new_connection(ep, inst.value().addr, 64, 3,
                                        Deadline::after(seconds(5)));
    if (run.ok())
      for (auto d : run.value().rtts) rtts.add_duration_us(d);
    Summary s = rtts.summarize();
    std::printf("%6.1f  %-12s  %10.1f  %10.1f\n",
                std::chrono::duration<double>(wall.elapsed()).count(),
                inst.value().host_id.c_str(), s.p50, s.p95);
    sleep_for(step);
  }
  std::printf("=> latency steps down once the local instance registers; the "
              "client re-resolves per connection and needed no changes\n");
  return 0;
}
