// §6 "Scheduling and Placement" ablation.
//
// "if two programs can benefit from offloading functionality to a P4
// switch, but the switch only has capacity for one, the Bertha runtime
// must choose between these two applications."
//
// Two replicated services want the switch sequencer; the switch holds
// one slot. Group A installs first and gets in-network ordering; group
// B is refused at install time, falls back to a software sequencer, and
// pays the extra hop. When group A releases its slot, B's operator can
// re-install and B's *new* connections bind the switch — existing code
// unchanged. The harness measures commit latency for each phase.
//
// A second section exercises per-connection admission on the SimNic
// crypto-engine pool: N+1 concurrent connections over an encrypt
// pipeline, where exactly N bind encrypt/nic and the rest fall back to
// encrypt/sw.
#include "apps/kvserver.hpp"
#include "apps/rsm.hpp"
#include "bench_util.hpp"
#include "chunnels/shard.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "sim/simnic.hpp"
#include "sim/simswitch.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct Group {
  std::vector<std::unique_ptr<RsmReplica>> replicas;
  std::vector<Addr> ctrls;
};

Group start_group(const std::string& prefix, const std::string& group_name,
                  const std::vector<Addr>& members,
                  std::shared_ptr<SimNet> sim, DiscoveryPtr discovery) {
  Group g;
  for (size_t i = 0; i < members.size(); i++) {
    std::string node = prefix + std::to_string(i);
    RuntimeConfig cfg;
    cfg.host_id = node;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(nullptr, sim, node);
    cfg.discovery = discovery;
    auto rt = Runtime::create(std::move(cfg)).value();
    die_on_err(register_builtin_chunnels(*rt), "builtins");

    RsmReplicaConfig rcfg;
    rcfg.rt = rt;
    rcfg.listen_addr = Addr::sim(node, 8000);
    rcfg.member_addr = members[i];
    rcfg.group = group_name;
    rcfg.replier = i == 0;
    g.replicas.push_back(die_on_err(RsmReplica::start(std::move(rcfg)),
                                    "replica"));
    g.ctrls.push_back(g.replicas.back()->control_addr());
  }
  return g;
}

Summary measure_commits(std::shared_ptr<Runtime> rt,
                        const std::vector<Addr>& ctrls, int ops) {
  auto client = die_on_err(
      RsmClient::connect(rt, ctrls, Deadline::after(seconds(10))), "connect");
  SampleSet lat;
  for (int i = 0; i < ops; i++) {
    KvRequest op;
    op.op = KvOp::put;
    op.id = static_cast<uint64_t>(i + 1);
    op.key = "k";
    op.value = "v";
    Stopwatch sw;
    if (client->execute(op, Deadline::after(seconds(10))).ok())
      lat.add_duration_us(sw.elapsed());
  }
  client->close();
  return lat.summarize();
}

}  // namespace

int main() {
  print_header("§6 ablation — offload capacity contention",
               "Bertha §6 'Scheduling and Placement'");
  const int ops = scaled(600, 50);

  SimNet::Config net_cfg;
  net_cfg.default_latency = us(100);
  auto sim = SimNet::create(net_cfg);
  auto discovery = std::make_shared<DiscoveryState>();

  SimSwitch::Config sw_cfg;
  sw_cfg.sequencer_slots = 1;  // room for exactly one group
  auto sw = die_on_err(SimSwitch::create(sim, discovery, sw_cfg), "switch");

  std::vector<Addr> members_a = {Addr::sim("a0", 7000), Addr::sim("a1", 7000),
                                 Addr::sim("a2", 7000)};
  std::vector<Addr> members_b = {Addr::sim("b0", 7000), Addr::sim("b1", 7000),
                                 Addr::sim("b2", 7000)};

  // Group A wins the slot.
  (void)die_on_err(sw->install_sequencer_group("grp-a", 7100, members_a),
                   "install A");
  // Group B is refused: the switch is full.
  auto refused = sw->install_sequencer_group("grp-b", 7100, members_b);
  std::printf("group B switch install: %s\n",
              refused.ok() ? "UNEXPECTEDLY OK"
                           : refused.error().to_string().c_str());
  // B's operator falls back to a software sequencer.
  RuntimeConfig seq_cfg;
  seq_cfg.host_id = "seqhost";
  seq_cfg.transports =
      std::make_shared<DefaultTransportFactory>(nullptr, sim, "seqhost");
  seq_cfg.discovery = discovery;
  auto seq_rt = Runtime::create(std::move(seq_cfg)).value();
  auto soft = die_on_err(
      SoftwareSequencer::start(seq_rt->transports(),
                               Addr::sim("seqhost", 7100), members_b),
      "soft sequencer");
  die_on_err(soft->register_with(*discovery, "grp-b"), "register soft");

  Group group_a = start_group("a", "grp-a", members_a, sim, discovery);
  Group group_b = start_group("b", "grp-b", members_b, sim, discovery);

  auto make_client_rt = [&](const std::string& node) {
    RuntimeConfig cfg;
    cfg.host_id = node;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(nullptr, sim, node);
    cfg.discovery = discovery;
    auto rt = Runtime::create(std::move(cfg)).value();
    die_on_err(register_builtin_chunnels(*rt), "builtins");
    return rt;
  };

  Summary a1 = measure_commits(make_client_rt("ca"), group_a.ctrls, ops);
  Summary b1 = measure_commits(make_client_rt("cb"), group_b.ctrls, ops);
  std::printf("\nphase 1 (A holds the switch slot):\n");
  std::printf("  group A (switch):   p50=%7.1fus p95=%7.1fus\n", a1.p50, a1.p95);
  std::printf("  group B (software): p50=%7.1fus p95=%7.1fus  (+%.0fus from "
              "the extra hop)\n",
              b1.p50, b1.p95, b1.p50 - a1.p50);

  // Group A finishes; the slot frees; B re-installs and *new*
  // connections bind the switch.
  die_on_err(sw->remove_sequencer_group("grp-a", 7100), "remove A");
  // Sequence continuity: the switch takes over from the software
  // sequencer's next sequence number (the view-change duty).
  soft->stop();
  (void)die_on_err(sw->install_sequencer_group("grp-b", 7200, members_b,
                                               soft->sequenced()),
                   "install B");
  Summary b2 = measure_commits(make_client_rt("cb2"), group_b.ctrls, ops);
  std::printf("\nphase 2 (A released; B re-installed on the switch):\n");
  std::printf("  group B (switch):   p50=%7.1fus p95=%7.1fus  (recovered "
              "%.0fus, no code changes)\n",
              b2.p50, b2.p95, b1.p50 - b2.p50);

  // --- per-connection NIC engine admission ---
  std::printf("\nNIC crypto-engine admission (pool capacity 2, 4 concurrent "
              "connections):\n");
  auto nic_disc = std::make_shared<DiscoveryState>();
  SimNic::Config nic_cfg;
  nic_cfg.crypto_engines = 2;
  nic_cfg.pcie_per_kib = us(0);
  nic_cfg.pcie_setup = us(0);
  auto nic = die_on_err(SimNic::create(nic_disc, nic_cfg), "nic");
  die_on_err(nic->advertise_offloads(), "advertise");

  auto rt = real_runtime("nic-host", nic_disc);
  auto listener = die_on_err(rt->endpoint("enc", wrap(ChunnelSpec("encrypt")))
                                 .value()
                                 .listen(Addr::udp("127.0.0.1", 0)),
                             "listen");
  std::vector<ConnPtr> conns;
  for (int i = 0; i < 4; i++) {
    auto conn = die_on_err(rt->endpoint("enc-cli", ChunnelDag::empty())
                               .value()
                               .connect(listener->addr(),
                                        Deadline::after(seconds(10))),
                           "connect");
    conns.push_back(std::move(conn));
    std::printf("  after connection %d: %llu/%llu engines in use\n", i + 1,
                static_cast<unsigned long long>(
                    nic_disc->pool_in_use(nic->crypto_pool())),
                static_cast<unsigned long long>(
                    nic_disc->pool_capacity(nic->crypto_pool())));
  }
  std::printf("  => first 2 connections bound encrypt/nic; the rest fell "
              "back to encrypt/sw\n");
  for (auto& c : conns) c->close();

  // --- in-switch sharding (the paper's Fig-1 "P4 Sharding
  //     Implementation"): steering happens in the network, zero steering
  //     hop and zero server CPU, vs the host XDP dispatcher which adds a
  //     hop through a server thread. Both on the same 100us SimNet. ---
  std::printf("\nin-switch sharding vs host dispatcher (SimNet, 100us links, "
              "thin client):\n");
  const int shard_ops = scaled(1500, 100);
  for (int use_switch = 1; use_switch >= 0; use_switch--) {
    auto disc = std::make_shared<DiscoveryState>();
    auto sw2 = die_on_err(SimSwitch::create(sim, disc, SimSwitch::Config{}),
                          "switch2");
    auto mk = [&](const std::string& node, bool builtins) {
      RuntimeConfig cfg;
      cfg.host_id = node;
      cfg.transports =
          std::make_shared<DefaultTransportFactory>(nullptr, sim, node);
      cfg.discovery = disc;
      auto rt2 = Runtime::create(std::move(cfg)).value();
      if (builtins) die_on_err(register_builtin_chunnels(*rt2), "builtins");
      return rt2;
    };
    std::string srv_node = use_switch ? "kvsrv-sw" : "kvsrv-xdp";
    auto srv_rt = mk(srv_node, true);
    auto cli_rt = mk(use_switch ? "kvcli-sw" : "kvcli-xdp", false);
    // Thin client: no client-push fallback, so policy picks the best
    // server/network implementation.
    die_on_err(register_shard_chunnels(*cli_rt, false, true, true),
               "client shard chunnels");

    auto backend = die_on_err(
        KvBackend::start(srv_rt->transports(), Addr::sim(srv_node, 0),
                         srv_node, 3),
        "backend");
    ShardArgs sargs;
    sargs.shards = backend->shard_addrs();
    sargs.field_offset = kKvShardFieldOffset;
    sargs.field_len = kKvShardFieldLen;
    ChunnelArgs args;
    args.set("shards", format_addr_list(sargs.shards));
    args.set_u64("field_offset", sargs.field_offset);
    args.set_u64("field_len", sargs.field_len);
    args.set("instance", "kv-bench");

    Addr vip;
    if (use_switch)
      vip = die_on_err(install_switch_shard_offload(*sw2, *disc, "kv-vip",
                                                    80, sargs, "kv-bench"),
                       "install shard program");

    auto listener = die_on_err(
        srv_rt->endpoint("kv", wrap(ChunnelSpec("shard", args)))
            .value()
            .listen(Addr::sim(srv_node, 9000)),
        "listen");
    auto conn = die_on_err(cli_rt->endpoint("cli", ChunnelDag::empty())
                               .value()
                               .connect(listener->addr(),
                                        Deadline::after(seconds(10))),
                           "connect");
    SampleSet lat;
    for (int i = 0; i < shard_ops; i++) {
      KvRequest req;
      req.op = KvOp::put;
      req.id = static_cast<uint64_t>(i + 1);
      req.key = "key-" + std::to_string(i % 64);
      req.value = "v";
      Msg m;
      m.payload = encode_kv_request(req);
      Stopwatch sw3;
      if (!conn->send(std::move(m)).ok()) break;
      if (conn->recv(Deadline::after(seconds(5))).ok())
        lat.add_duration_us(sw3.elapsed());
    }
    Summary su = lat.summarize();
    uint64_t host_steered = 0;
    for (const auto& impl : srv_rt->registry().lookup_type("shard"))
      if (auto* xdp = dynamic_cast<ShardXdpChunnel*>(impl.get()))
        host_steered += xdp->packets_steered();
    std::printf("  %-22s p50=%7.1fus p95=%7.1fus  switch-steered=%llu "
                "server-steered=%llu\n",
                use_switch ? "shard/switch (P4)" : "shard/xdp (host)", su.p50,
                su.p95,
                static_cast<unsigned long long>(
                    use_switch ? sw2->steered(vip) : 0),
                static_cast<unsigned long long>(host_steered));
    conn->close();
    backend->stop();
  }
  std::printf("  => per-RPC latency is comparable at idle (the host hop is\n"
              "     intra-machine), but in-network steering involves ZERO\n"
              "     server CPU per request — the steering stage that becomes\n"
              "     Fig 5's bottleneck under load simply does not exist\n");
  for (auto& r : group_a.replicas) r->stop();
  for (auto& r : group_b.replicas) r->stop();
  return 0;
}
