// offload_synth — synthesized switch program vs software dispatcher.
//
// The same shard chain, steered two ways over the same simulated
// network: (a) a software dispatcher thread that receives every
// datagram, parses the shard frame, hashes the steering field and
// re-sends it to the picked backend (what the host XDP path does), and
// (b) the match-action program the synth subsystem compiles from the
// chain's StageInfos, running in-network on the SimSwitch — no extra
// hop, no dispatcher thread (DESIGN.md §11).
//
// Reported: packets/s into the backends for each path and the ratio.
// BERTHA_SYNTH_GATE=1 turns the run into a CI gate: exit nonzero unless
// the synthesized program sustains >= 1.3x the software dispatcher's
// throughput and both paths deliver every packet.
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chunnels/common.hpp"
#include "chunnels/shard.hpp"
#include "net/simnet.hpp"
#include "sim/simswitch.hpp"
#include "synth/pattern.hpp"
#include "util/clock.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct RunResult {
  uint64_t sent = 0;
  uint64_t received = 0;
  double pps = 0;
};

struct Sinks {
  std::vector<TransportPtr> taps;
  std::vector<std::thread> drains;
  std::shared_ptr<std::atomic<uint64_t>> received =
      std::make_shared<std::atomic<uint64_t>>(0);

  static Sinks start(SimNet& net, int n, const std::string& prefix) {
    Sinks s;
    for (int i = 0; i < n; i++) {
      auto t = die_on_err(net.attach(prefix + std::to_string(i), 1), "attach");
      Transport* tp = t.get();
      s.taps.push_back(std::move(t));
      auto counter = s.received;
      s.drains.emplace_back([tp, counter] {
        while (tp->recv().ok())
          counter->fetch_add(1, std::memory_order_relaxed);
      });
    }
    return s;
  }

  std::vector<Addr> addrs() const {
    std::vector<Addr> a;
    for (const auto& t : taps) a.push_back(t->local_addr());
    return a;
  }

  void stop() {
    for (auto& t : taps) t->close();
    for (auto& d : drains) d.join();
  }
};

// Blast `count` pre-built shard frames at `dst` from several sender
// threads (enough offered load to saturate the steering path rather
// than the senders) and wait for the sinks to absorb them all.
RunResult blast(SimNet& net, const Addr& dst, Sinks& sinks, uint64_t count) {
  constexpr int kSenders = 3;
  RunResult r;
  std::atomic<uint64_t> sent{0};
  uint64_t base = sinks.received->load();
  Stopwatch wall;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; s++) {
    senders.emplace_back([&, s] {
      auto probe =
          die_on_err(net.attach("probe" + std::to_string(s), 0), "attach");
      std::vector<Bytes> frames;
      frames.reserve(64);
      for (uint64_t i = 0; i < 64; i++) {
        Bytes body(32);
        for (size_t j = 0; j < body.size(); j++)
          body[j] = static_cast<uint8_t>((i * 131 + j * 7 + s) & 0xff);
        frames.push_back(shard_frame(probe->local_addr(), body));
      }
      const uint64_t share = count / kSenders;
      for (uint64_t i = 0; i < share; i++) {
        if (!probe->send_to(dst, frames[i % frames.size()]).ok()) break;
        sent.fetch_add(1, std::memory_order_relaxed);
        // Light pacing: never run more than a queue-depth ahead of the
        // sinks, so throughput reflects the steering path, not drops.
        if ((i & 0xff) == 0) {
          while (sinks.received->load() - base + 4096 < sent.load())
            sleep_for(us(50));
        }
      }
      probe->close();
    });
  }
  for (auto& t : senders) t.join();
  r.sent = sent.load();
  Deadline dl = Deadline::after(seconds(60));
  while (sinks.received->load() - base < r.sent && !dl.expired())
    sleep_for(ms(1));
  double secs = std::chrono::duration<double>(wall.elapsed()).count();
  r.received = sinks.received->load() - base;
  r.pps = secs > 0 ? static_cast<double>(r.received) / secs : 0;
  return r;
}

}  // namespace

int main() {
  print_header(
      "offload_synth — synthesized match-action program vs software "
      "dispatcher",
      "Bertha §4 offload synthesis (HotNets '20), shard steering");

  const bool gate = std::getenv("BERTHA_SYNTH_GATE") != nullptr;
  const uint64_t count = static_cast<uint64_t>(scaled(200000, 20000));

  SimNet::Config ncfg;
  ncfg.default_latency = us(2);
  auto net = SimNet::create(ncfg);
  auto discovery = std::make_shared<DiscoveryState>();

  // --- software dispatcher path: recv, parse, pick, re-send ---
  Sinks sw_sinks = Sinks::start(*net, 3, "swb");
  ShardArgs sargs;
  sargs.shards = sw_sinks.addrs();
  sargs.field_offset = 0;
  sargs.field_len = 4;
  auto disp = die_on_err(net->attach("disp", 1), "attach dispatcher");
  std::thread disp_thread([&] {
    for (;;) {
      auto pkt = disp->recv();
      if (!pkt.ok()) return;
      auto req = parse_shard_frame(pkt.value().payload);
      if (!req.ok()) continue;
      size_t idx = sargs.pick(req.value().payload);
      (void)disp->send_to(sargs.shards[idx], pkt.value().payload);
    }
  });
  RunResult software = blast(*net, disp->local_addr(), sw_sinks, count);
  disp->close();
  disp_thread.join();
  sw_sinks.stop();

  // --- synthesized path: the same chain, compiled onto the switch ---
  Sinks hw_sinks = Sinks::start(*net, 3, "hwb");
  auto sw = die_on_err(
      SimSwitch::create(net, discovery, SimSwitch::Config{}), "switch");
  StageInfo stage;
  stage.type = "shard";
  stage.impl_name = "shard/xdp";
  stage.args.set("synth.pattern", "shard");
  stage.args.set("shards", format_addr_list(hw_sinks.addrs()));
  stage.args.set_u64("field_offset", 0);
  stage.args.set_u64("field_len", 4);
  SynthOptions opts;
  opts.vip = "sim://bench-vip:80";
  auto plan = die_on_err(synthesize_prefix({stage}, opts), "synthesize");
  Addr vip = die_on_err(sw->install_program(plan.ir), "install");
  RunResult synth = blast(*net, vip, hw_sinks, count);
  hw_sinks.stop();

  double ratio = software.pps > 0 ? synth.pps / software.pps : 0;
  std::printf("%-22s %12s %12s %12s\n", "path", "sent", "delivered", "pps");
  std::printf("%-22s %12llu %12llu %12.0f\n", "software-dispatcher",
              static_cast<unsigned long long>(software.sent),
              static_cast<unsigned long long>(software.received),
              software.pps);
  std::printf("%-22s %12llu %12llu %12.0f\n", "synthesized-program",
              static_cast<unsigned long long>(synth.sent),
              static_cast<unsigned long long>(synth.received), synth.pps);
  std::printf("\nsteered by program: %llu   speedup: %.2fx\n",
              static_cast<unsigned long long>(sw->steered(vip)), ratio);
  std::printf(
      "=> the synthesized program steers in transit (no dispatcher hop, no\n"
      "   parse thread); the software path pays a second network hop plus a\n"
      "   user-space parse per packet\n");

  if (gate) {
    bool ok = true;
    if (software.received != software.sent || synth.received != synth.sent) {
      std::printf("GATE FAIL: packet loss (software %llu/%llu, synth "
                  "%llu/%llu)\n",
                  static_cast<unsigned long long>(software.received),
                  static_cast<unsigned long long>(software.sent),
                  static_cast<unsigned long long>(synth.received),
                  static_cast<unsigned long long>(synth.sent));
      ok = false;
    }
    if (ratio < 1.3) {
      std::printf("GATE FAIL: synthesized/software ratio %.2fx < 1.3x\n",
                  ratio);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("GATE PASS: %.2fx >= 1.3x, zero loss\n", ratio);
  }
  return 0;
}
