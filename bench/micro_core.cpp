// Google-benchmark microbenchmarks of bertha's hot paths: codecs,
// hashing, framing, chunnel transforms, queues, DAG machinery.
#include <benchmark/benchmark.h>

#include "apps/kvproto.hpp"
#include "chunnels/compress.hpp"
#include "chunnels/encrypt.hpp"
#include "chunnels/shard.hpp"
#include "core/dag.hpp"
#include "core/endpoint.hpp"
#include "core/negotiation.hpp"
#include "core/optimizer.hpp"
#include "core/wire.hpp"
#include "net/memchan.hpp"
#include "serialize/text_codec.hpp"
#include "trace/trace.hpp"
#include "util/hash.hpp"
#include "util/queue.hpp"
#include "util/rand.hpp"

namespace bertha {
namespace {

Bytes random_bytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<uint8_t>(rng.next_below(256));
  return b;
}

void BM_VarintEncodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    Writer w;
    for (uint64_t v = 1; v < (1ULL << 60); v <<= 4) w.put_varint(v);
    Reader r(w.bytes());
    while (!r.at_end()) benchmark::DoNotOptimize(r.get_varint());
  }
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_Fnv1a(benchmark::State& state) {
  Bytes data = random_bytes(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(fnv1a64(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(16)->Arg(256)->Arg(4096);

void BM_WireFrame(benchmark::State& state) {
  Bytes payload = random_bytes(128, 2);
  for (auto _ : state) {
    Bytes frame = encode_frame(MsgKind::data, 12345, payload);
    benchmark::DoNotOptimize(decode_frame(frame));
  }
}
BENCHMARK(BM_WireFrame);

void BM_KvRequestRoundTrip(benchmark::State& state) {
  KvRequest req;
  req.op = KvOp::put;
  req.id = 77;
  req.key = "user000000004242";
  req.value.assign(100, 'v');
  for (auto _ : state) {
    Bytes b = encode_kv_request(req);
    benchmark::DoNotOptimize(decode_kv_request(b));
  }
}
BENCHMARK(BM_KvRequestRoundTrip);

void BM_TextCodec(benchmark::State& state) {
  Bytes data = random_bytes(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    Bytes enc = text_encode(data);
    benchmark::DoNotOptimize(text_decode(enc));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextCodec)->Arg(256)->Arg(4096);

void BM_XorKeystream(benchmark::State& state) {
  Bytes data = random_bytes(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    xor_keystream(data, 0x5eed);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XorKeystream)->Arg(256)->Arg(65536);

void BM_RleCompressible(benchmark::State& state) {
  Bytes data(4096, 'a');
  for (auto _ : state) {
    Bytes enc = rle_encode(data);
    benchmark::DoNotOptimize(rle_decode(enc));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RleCompressible);

void BM_ShardSteering(benchmark::State& state) {
  ShardArgs args;
  args.shards = {Addr::udp("127.0.0.1", 1), Addr::udp("127.0.0.1", 2),
                 Addr::udp("127.0.0.1", 3)};
  args.field_offset = kKvShardFieldOffset;
  args.field_len = kKvShardFieldLen;
  KvRequest req;
  req.op = KvOp::get;
  req.key = "user000000001111";
  Bytes payload = encode_kv_request(req);
  for (auto _ : state) benchmark::DoNotOptimize(args.pick(payload));
}
BENCHMARK(BM_ShardSteering);

void BM_ShardFrameParse(benchmark::State& state) {
  Bytes framed = shard_frame(Addr::udp("10.0.0.1", 9999),
                             random_bytes(128, 5));
  for (auto _ : state) benchmark::DoNotOptimize(parse_shard_frame(framed));
}
BENCHMARK(BM_ShardFrameParse);

void BM_DagSerde(benchmark::State& state) {
  ChunnelArgs args;
  args.set("shards", "udp://1.1.1.1:1,udp://1.1.1.1:2");
  auto dag = wrap(ChunnelSpec("serialize"), ChunnelSpec("shard", args),
                  ChunnelSpec("reliable"));
  for (auto _ : state) {
    Bytes b = serialize_to_bytes(dag);
    benchmark::DoNotOptimize(deserialize_from_bytes<ChunnelDag>(b));
  }
}
BENCHMARK(BM_DagSerde);

void BM_HelloRoundTrip(benchmark::State& state) {
  HelloMsg hello;
  hello.endpoint_name = "bench";
  hello.host_id = "host";
  hello.process_id = "pid";
  for (int t = 0; t < 6; t++) {
    ImplInfo info;
    info.type = "type" + std::to_string(t);
    info.name = info.type + "/impl";
    hello.offers[info.type] = {info};
  }
  for (auto _ : state) {
    Bytes b = encode_hello(hello);
    benchmark::DoNotOptimize(decode_hello(b));
  }
}
BENCHMARK(BM_HelloRoundTrip);

void BM_OptimizerSixStages(benchmark::State& state) {
  DagOptimizer opt;
  opt.add_merge_rule({"encrypt", "tcp", "tls", true});
  std::vector<OptStage> stages;
  const char* types[] = {"a", "encrypt", "b", "http2", "tcp", "c"};
  for (const char* t : types) {
    OptStage s;
    s.type = t;
    s.offloadable = std::string(t) == "encrypt" || std::string(t) == "tcp";
    s.commutes_with = {"a", "b", "c", "encrypt", "http2", "tcp"};
    stages.push_back(s);
  }
  for (auto _ : state) benchmark::DoNotOptimize(opt.optimize(stages));
}
BENCHMARK(BM_OptimizerSixStages);

void BM_QueuePushPop(benchmark::State& state) {
  BlockingQueue<Bytes> q;
  Bytes payload = random_bytes(64, 6);
  for (auto _ : state) {
    (void)q.push(payload);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_QueuePushPop);

// --- tracing (src/trace/) ---

void BM_SpanLifecycle(benchmark::State& state) {
  auto tracer = std::make_shared<Tracer>();
  for (auto _ : state) {
    Span s = tracer->span("bench");
    s.tag_u64("n", 1);
    s.finish();
  }
  (void)tracer->collect();
}
BENCHMARK(BM_SpanLifecycle);

void BM_SpanDisabled(benchmark::State& state) {
  Tracer::Options o;
  o.enabled = false;
  auto tracer = std::make_shared<Tracer>(o);
  for (auto _ : state) {
    Span s = tracer->span("bench");
    s.tag_u64("n", 1);
    s.finish();
  }
}
BENCHMARK(BM_SpanDisabled);

// A message round trip over an in-memory pipe through a chunnel-depth
// stack of wrappers. The pipe does the per-message work a real leaf
// stack does — wire framing plus one keystream pass (the serialize +
// encrypt chunnels) — so the fixed wrapper cost is measured against a
// representative baseline, not a bare queue hop. Arg(0): tracing
// disabled — build_stack inserts no wrappers, the true baseline.
// Arg(1): tracing enabled but the path sampler effectively never fires
// — the steady-state cost every message pays when tracing is on. CI's
// bench-smoke step compares the two and fails if the
// enabled-but-unsampled overhead exceeds 5%.
class MemPipeConn final : public Connection {
 public:
  MemPipeConn(TransportPtr a, TransportPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Result<void> send(Msg m) override {
    xor_keystream(m.payload, 0x5eed);
    Bytes frame = encode_frame(MsgKind::data, 12345, m.payload);
    return a_->send_to(b_->local_addr(), frame);
  }
  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(p, b_->recv(deadline));
    auto frame = decode_frame(p.payload);
    if (!frame.ok()) return frame.error();
    Msg m;
    m.payload.assign(frame.value().payload.begin(), frame.value().payload.end());
    xor_keystream(m.payload, 0x5eed);
    return m;
  }
  const Addr& local_addr() const override { return a_->local_addr(); }
  const Addr& peer_addr() const override { return b_->local_addr(); }
  void close() override {
    a_->close();
    b_->close();
  }

 private:
  TransportPtr a_;
  TransportPtr b_;
};

void BM_TracedStackSend(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  auto net = MemNetwork::create();
  ConnPtr conn = std::make_shared<MemPipeConn>(
      net->bind(Addr::mem("bench", 1)).value(),
      net->bind(Addr::mem("bench", 2)).value());
  TracerPtr tracer;
  if (traced) {
    Tracer::Options o;
    o.sample_every = 1u << 30;  // enabled, but no message ever samples
    tracer = std::make_shared<Tracer>(o);
    for (const char* hop : {"serialize/bin", "encrypt/xor", "reliable/arq"})
      conn = wrap_hop_trace(std::move(conn), tracer, hop);
    conn = wrap_path_trace(std::move(conn), tracer);
  }
  Bytes payload = random_bytes(4096, 8);
  for (auto _ : state) {
    Msg m;
    m.payload = payload;
    if (!conn->send(std::move(m)).ok()) state.SkipWithError("send failed");
    auto r = conn->recv(Deadline::after(seconds(1)));
    if (!r.ok()) state.SkipWithError("recv failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TracedStackSend)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bertha

BENCHMARK_MAIN();
