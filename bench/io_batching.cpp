// Datapath I/O batching: mmsg syscall batching vs scalar send/recv.
//
// A windowed echo harness: the client pushes a window of `batch`
// datagrams at an echo server and drains the echoes, repeatedly. In
// batched mode each window is one send_batch + a few recv_batch calls
// (sendmmsg/recvmmsg on UDP); in unbatched mode it is 2*batch scalar
// syscalls. On loopback the round trip is syscall-dominated, so the
// pps ratio isolates exactly what the io runtime buys.
//
// Variants are interleaved across repetitions and each variant is
// scored by its best (noise-free) repetition, the same convention as
// the tracing-overhead gate: shared machines jitter both variants up
// by more than the effect under test.
//
// BERTHA_IO_GATE=1 turns the run into a CI gate: exit nonzero unless
// batched UDP pps >= 1.5x unbatched at batch 32.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/batch.hpp"
#include "net/memchan.hpp"
#include "net/udp.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

constexpr size_t kPayload = 64;

struct RunResult {
  double pps = 0;       // echoed datagrams per second, client side
  double p95_us = 0;    // per-window round-trip p95
  uint64_t lost = 0;    // windows abandoned on a recv timeout
};

// Echo server: batched mode drains/replies with recv_batch/send_batch,
// unbatched mode with scalar recv/send_to — the contrast under test is
// the whole path, both directions.
void echo_loop(Transport& t, bool batched, size_t batch,
               std::atomic<bool>& stop) {
  std::vector<Datagram> slots(batch);
  while (!stop.load(std::memory_order_relaxed)) {
    if (batched) {
      auto r = recv_batch(t, std::span<Datagram>(slots),
                          Deadline::after(ms(50)));
      if (!r.ok()) {
        if (r.error().code == Errc::timed_out) continue;
        return;
      }
      size_t n = r.value();
      for (size_t i = 0; i < n; i++) slots[i].dst = slots[i].src;
      (void)send_batch(t, std::span<const Datagram>(slots.data(), n));
    } else {
      auto r = t.recv(Deadline::after(ms(50)));
      if (!r.ok()) {
        if (r.error().code == Errc::timed_out) continue;
        return;
      }
      (void)t.send_to(r.value().src, r.value().payload);
    }
  }
}

RunResult run_client(Transport& t, const Addr& server, bool batched,
                     size_t batch, int windows) {
  Bytes payload(kPayload, 0x42);
  std::vector<Datagram> out(batch);
  for (Datagram& d : out) {
    d.dst = server;
    d.payload.assign(payload);
  }
  std::vector<Datagram> in(batch);

  SampleSet rtt;
  uint64_t echoed = 0, lost = 0;
  Stopwatch wall;
  for (int w = 0; w < windows; w++) {
    Stopwatch round;
    size_t got = 0;
    if (batched) {
      if (!send_batch(t, std::span<const Datagram>(out)).ok()) break;
      while (got < batch) {
        auto r = recv_batch(t, std::span<Datagram>(in.data() + got,
                                                   batch - got),
                            Deadline::after(ms(250)));
        if (!r.ok()) break;  // dropped window tail: abandon the round
        got += r.value();
      }
    } else {
      bool sent_ok = true;
      for (size_t i = 0; i < batch && sent_ok; i++)
        sent_ok = t.send_to(server, payload).ok();
      if (!sent_ok) break;
      while (got < batch) {
        auto r = t.recv(Deadline::after(ms(250)));
        if (!r.ok()) break;
        got++;
      }
    }
    echoed += got;
    if (got == batch)
      rtt.add_duration_us(round.elapsed());
    else
      lost++;
  }
  double secs = std::chrono::duration<double>(wall.elapsed()).count();
  RunResult res;
  res.pps = secs > 0 ? static_cast<double>(echoed) / secs : 0;
  res.p95_us = rtt.summarize().p95;
  res.lost = lost;
  return res;
}

struct Fixture {
  TransportPtr server;
  TransportPtr client;
  std::shared_ptr<MemNetwork> net;  // keeps mem endpoints alive
};

Fixture make_fixture(bool udp) {
  Fixture f;
  if (udp) {
    f.server = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)),
                          "udp bind server");
    f.client = die_on_err(UdpTransport::bind(Addr::udp("127.0.0.1", 0)),
                          "udp bind client");
  } else {
    f.net = MemNetwork::create();
    f.server = die_on_err(f.net->bind(Addr::mem("echo-srv", 1)),
                          "mem bind server");
    f.client = die_on_err(f.net->bind(Addr::mem("echo-cli", 1)),
                          "mem bind client");
  }
  return f;
}

RunResult measure(bool udp, bool batched, size_t batch, int windows) {
  Fixture f = make_fixture(udp);
  std::atomic<bool> stop{false};
  std::thread server(
      [&] { echo_loop(*f.server, batched, batch, stop); });
  RunResult res =
      run_client(*f.client, f.server->local_addr(), batched, batch, windows);
  stop.store(true);
  server.join();
  f.client->close();
  f.server->close();
  return res;
}

}  // namespace

int main() {
  print_header(
      "io batching — mmsg syscall batching vs scalar send/recv (echo pps)",
      "Bertha §4 datapath (HotNets '20), io reactor + BatchTransport");

  const int windows = scaled(600, 60);
  const int reps = scaled(5, 2);
  const size_t batches[] = {1, 8, 32};
  const bool gate = std::getenv("BERTHA_IO_GATE") != nullptr;

  std::printf("%-6s %6s %-10s %12s %10s %6s   (best of %d reps, %d windows, %zuB)\n",
              "net", "batch", "mode", "pps", "p95(us)", "lost", reps, windows,
              kPayload);

  double udp32_batched = 0, udp32_unbatched = 0;
  for (bool udp : {true, false}) {
    for (size_t batch : batches) {
      RunResult best[2];  // [0]=unbatched, [1]=batched
      for (int rep = 0; rep < reps; rep++) {
        // Interleave variants within each repetition so machine noise
        // lands on both equally.
        for (int v = 0; v < 2; v++) {
          RunResult r = measure(udp, v == 1, batch, windows);
          if (r.pps > best[v].pps) best[v] = r;
        }
      }
      for (int v = 0; v < 2; v++)
        std::printf("%-6s %6zu %-10s %12.0f %10.1f %6llu\n",
                    udp ? "udp" : "mem", batch,
                    v ? "batched" : "unbatched", best[v].pps, best[v].p95_us,
                    static_cast<unsigned long long>(best[v].lost));
      if (udp && batch == 32) {
        udp32_unbatched = best[0].pps;
        udp32_batched = best[1].pps;
      }
    }
    std::printf("\n");
  }

  double ratio = udp32_unbatched > 0 ? udp32_batched / udp32_unbatched : 0;
  std::printf("=> udp batch=32: batched/unbatched = %.2fx (sendmmsg/recvmmsg\n"
              "   collapse 64 syscalls per window into ~4); mem shows the\n"
              "   smaller bulk-dequeue win since there is no syscall to skip\n",
              ratio);
  if (gate && ratio < 1.5) {
    std::fprintf(stderr,
                 "io batching gate: %.2fx < 1.5x required at udp batch=32\n",
                 ratio);
    return 1;
  }
  return 0;
}
