// Figure 4, live variant: transitioning an *established* connection.
//
// fig4_dynamic_resolution reproduces the paper's experiment by
// re-resolving per connection: new connections pick up the local
// instance once it registers. This harness shows the stronger property
// the renegotiation subsystem adds (core/renegotiation.hpp): a single
// long-lived connection steps down in latency when the unix-socket fast
// path library "loads" mid-run — no reconnect, no dropped message.
//
// The server starts with only the passthrough local_or_remote impl, so
// traffic flows over UDP. Halfway through, LocalFastPathChunnel is
// registered and announced via discovery; the transition controller's
// watch fires, renegotiates the live connection, and cuts it over to
// the unix socket at an epoch boundary while the RPC loop keeps
// running.
//
// Reported: RTT percentiles per step (the step-down), the bound impl
// over time, message drops (must be 0), cutover delay (offer sent ->
// old chain drained), and watch overhead (events before/after the
// transition settles).
#include <cstdlib>
#include <future>
#include <thread>

#include "bench_util.hpp"
#include "chunnels/common.hpp"
#include "chunnels/localfastpath.hpp"
#include "core/renegotiation.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

// The impl bound for `type` in a live connection's chain ("" if absent).
std::string bound_impl(const ConnPtr& conn, const std::string& type) {
  auto* t = dynamic_cast<TransitionableConnection*>(conn.get());
  if (!t) return "";
  for (const auto& n : t->chain())
    if (n.type == type) return n.impl_name;
  return "";
}

std::shared_ptr<Runtime> fig4_runtime(DiscoveryPtr disc, TracerPtr tracer) {
  RuntimeConfig cfg;
  cfg.host_id = "fig4-host";  // client and server share the host
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  cfg.discovery = std::move(disc);
  cfg.tracer = std::move(tracer);
  TransitionTuning t;
  t.offer_retry = ms(25);
  t.sweep_period = ms(10);
  cfg.transition_tuning = t;
  return Runtime::create(std::move(cfg)).value();
}

}  // namespace

int main() {
  print_header("Fig 4 (live) — in-place transition to the local fast path",
               "Bertha Fig. 4 (HotNets '20), one connection, no reconnect");

  const int total_secs = scaled(8, 4);
  const int fastpath_start_sec = total_secs / 2;
  const auto step = ms(200);
  const int pings_per_step = 20;
  const std::string payload(64, 'p');

  // BERTHA_TRACE=1: share one enabled tracer across both runtimes and
  // dump a span summary of the run (the cutover trace) at the end.
  TracerPtr tracer;
  if (const char* env = std::getenv("BERTHA_TRACE"); env && env[0] == '1') {
    Tracer::Options to;
    to.sample_every = 0;  // control-plane spans only; skip per-message paths
    tracer = std::make_shared<Tracer>(to);
  }

  auto disc = std::make_shared<DiscoveryState>();
  auto srv_rt = fig4_runtime(disc, tracer);
  die_on_err(srv_rt->register_chunnel(std::make_shared<PassthroughChunnel>(
                 "local_or_remote", "local_or_remote/none")),
             "register passthrough");
  auto cli_rt = fig4_runtime(disc, tracer);
  die_on_err(register_builtin_chunnels(*cli_rt), "client builtins");

  auto listener = die_on_err(
      srv_rt->endpoint("srv", wrap(ChunnelSpec("local_or_remote")))
          .value()
          .listen(Addr::udp("127.0.0.1", 0)),
      "listen");
  auto conn = die_on_err(cli_rt->endpoint("cli", ChunnelDag::empty())
                             .value()
                             .connect(listener->addr(),
                                      Deadline::after(seconds(5))),
                         "connect");

  // Echo loop on the server side of the one connection under test.
  std::promise<ConnPtr> accepted;
  std::thread echo([&] {
    auto srv = listener->accept(Deadline::after(seconds(5)));
    if (!srv.ok()) {
      std::fprintf(stderr, "accept: %s\n", srv.error().to_string().c_str());
      std::exit(1);
    }
    ConnPtr c = std::move(srv).value();
    accepted.set_value(c);
    for (;;) {
      auto m = c->recv();
      if (!m.ok()) return;
      if (!c->send(std::move(m).value()).ok()) return;
    }
  });
  ConnPtr srv_conn = accepted.get_future().get();

  std::printf("%6s  %-22s  %10s  %10s\n", "t(s)", "bound impl", "p50(us)",
              "p95(us)");
  Stopwatch wall;
  bool fastpath_started = false;
  uint64_t sent = 0, drops = 0;
  uint64_t watch_events_at_switch = 0;
  double switch_seen_at = -1;
  while (wall.elapsed() < seconds(total_secs)) {
    if (!fastpath_started && wall.elapsed() >= seconds(fastpath_start_sec)) {
      // The fast path library loads: register and announce. The client
      // loop below does not change; the controller does the rest.
      auto fp = std::make_shared<LocalFastPathChunnel>();
      ImplInfo info = fp->info();
      die_on_err(srv_rt->register_chunnel(std::move(fp)), "register fastpath");
      die_on_err(disc->register_impl(info), "announce fastpath");
      fastpath_started = true;
    }

    SampleSet rtts;
    for (int i = 0; i < pings_per_step; i++) {
      Stopwatch rtt;
      sent++;
      if (!conn->send(Msg::of(payload)).ok() ||
          !conn->recv(Deadline::after(seconds(5))).ok()) {
        drops++;
        continue;
      }
      rtts.add_duration_us(rtt.elapsed());
    }
    std::string impl = bound_impl(srv_conn, "local_or_remote");
    if (switch_seen_at < 0 && impl == "local_or_remote/uds") {
      switch_seen_at =
          std::chrono::duration<double>(wall.elapsed()).count();
      watch_events_at_switch = srv_rt->transitions().stats().watch_events;
    }
    Summary s = rtts.summarize();
    std::printf("%6.1f  %-22s  %10.1f  %10.1f\n",
                std::chrono::duration<double>(wall.elapsed()).count(),
                impl.c_str(), s.p50, s.p95);
    sleep_for(step);
  }

  auto stats = srv_rt->transitions().stats();
  std::printf("\n");
  std::printf("rpcs sent:            %llu  (drops: %llu)\n",
              (unsigned long long)sent, (unsigned long long)drops);
  if (switch_seen_at >= 0)
    std::printf("fast path bound at:   t=%.1fs (announced at t=%ds)\n",
                switch_seen_at, fastpath_start_sec);
  std::printf("transitions:          completed=%llu offers=%llu "
              "forced=%llu drained_msgs=%llu\n",
              (unsigned long long)stats.completed,
              (unsigned long long)stats.offers_sent,
              (unsigned long long)stats.forced_cutovers,
              (unsigned long long)stats.drained_msgs);
  std::printf("cutover delay:        %.1f us (offer sent -> old chain "
              "drained)\n",
              stats.max_cutover_ns / 1e3);
  std::printf("watch overhead:       %llu events total, %llu after the "
              "transition settled\n",
              (unsigned long long)stats.watch_events,
              (unsigned long long)(stats.watch_events -
                                   watch_events_at_switch));
  std::printf("=> one established connection, zero drops: latency steps down "
              "in place when the fast path registers\n");

  conn->close();
  srv_conn->close();
  listener->close();
  if (echo.joinable()) echo.join();

  if (tracer) {
    std::printf("\n--- trace (BERTHA_TRACE=1) ---\n%s",
                export_text_summary(tracer->collect()).c_str());
  }
  return drops == 0 ? 0 : 1;
}
