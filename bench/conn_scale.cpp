// Connection-scale soak: one listener carrying 100k..1M connections.
//
// An open-loop YCSB-style driver in three phases:
//   ramp    — establish N connections through ONE listener (mem
//             transport; clients spread over several mem hosts because
//             one host has ~25k ephemeral ports), recording per-connect
//             establish latency.
//   sustain — park the fleet and measure what idle costs: bytes per
//             idle connection (per-binary counting operator new),
//             threads added by the second half of the ramp (must be
//             zero: keepalives ride the shared timer wheel), and
//             connections per core from getrusage CPU over a wall
//             window. A sampled echo pass measures p99 echo RTT.
//   churn   — close and re-establish a slice of the fleet at a paced
//             open-loop rate, recording churn establish latency; the
//             server table must end exactly at N live entries.
//
// BERTHA_BENCH_QUICK=1 shrinks the fleet for smoke runs.
//
// BERTHA_SCALE_GATE=1 turns the run into a CI gate:
//   BERTHA_SCALE_CONNS        fleet size            (default 100000)
//   BERTHA_SCALE_P99_MS       establish p99 budget  (default 5 ms)
//   BERTHA_SCALE_MEM_PER_CONN idle bytes/conn cap   (default 16384)
// exit nonzero if the fleet fails to establish, establish p99 blows the
// budget, idle memory exceeds the cap, or idle connections add threads.
//
// --udp: multi-process mode over loopback UDP — this binary re-execs
// itself (/proc/self/exe) as client processes, each holding a slice of
// the fleet against the parent's single listener, proving the scale
// path crosses a real socket and a real process boundary.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/runtime.hpp"
#include "net/memchan.hpp"

// --- counting allocator hooks (per-binary, io_test technique, extended
// with a size header so frees decrement and the counter tracks LIVE
// bytes — the idle fleet's true heap footprint, not churn volume) ------

static std::atomic<int64_t> g_live_bytes{0};

namespace {
constexpr size_t kAllocHdr = 16;  // keeps max_align_t alignment

void* counted_alloc(size_t n) {
  void* base = std::malloc(n + kAllocHdr);
  if (!base) throw std::bad_alloc();
  *static_cast<uint64_t*>(base) = n;
  g_live_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  return static_cast<char*>(base) + kAllocHdr;
}

void counted_free(void* p) noexcept {
  if (!p) return;
  char* base = static_cast<char*>(p) - kAllocHdr;
  g_live_bytes.fetch_sub(
      static_cast<int64_t>(*reinterpret_cast<uint64_t*>(base)),
      std::memory_order_relaxed);
  std::free(base);
}
}  // namespace

void* operator new(size_t n) { return counted_alloc(n); }
void* operator new[](size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, size_t) noexcept { counted_free(p); }
void operator delete[](void* p, size_t) noexcept { counted_free(p); }

using namespace bertha;
using namespace bertha::bench;

namespace {

int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : dflt;
}

// Threads in this process, from /proc/self/stat field 20 (num_threads).
int process_threads() {
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (!f) return -1;
  char buf[1024];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  char* p = std::strrchr(buf, ')');  // comm may contain spaces
  if (!p) return -1;
  int field = 2;
  long threads = -1;
  for (p++; *p && field <= 20; p++) {
    if (*p == ' ') {
      field++;
      if (field == 20) threads = std::strtol(p + 1, nullptr, 10);
    }
  }
  return static_cast<int>(threads);
}

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

std::shared_ptr<Runtime> mem_runtime(const std::shared_ptr<MemNetwork>& mem,
                                     const DiscoveryPtr& disc,
                                     const std::string& host) {
  RuntimeConfig cfg;
  cfg.host_id = host;
  cfg.transports = std::make_shared<DefaultTransportFactory>(mem, nullptr, host);
  cfg.discovery = disc;
  auto rt = die_on_err(Runtime::create(std::move(cfg)), "runtime");
  die_on_err(register_builtin_chunnels(*rt), "builtins");
  return rt;
}

struct GateCheck {
  const char* what;
  bool ok;
  std::string detail;
};

// ---------------------------------------------------------------------
// mem-transport soak (the default mode)
// ---------------------------------------------------------------------

int run_mem_soak() {
  const bool gate = std::getenv("BERTHA_SCALE_GATE") != nullptr;
  const int conns =
      env_int("BERTHA_SCALE_CONNS", scaled(100000, 5000));
  const double p99_budget_ms = env_int("BERTHA_SCALE_P99_MS", 5);
  const int mem_budget = env_int("BERTHA_SCALE_MEM_PER_CONN", 16384);
  const int churn_pct = env_int("BERTHA_SCALE_CHURN_PCT", 10);
  const int churn_rate = env_int("BERTHA_SCALE_CHURN_RATE", 5000);  // conns/s
  const int sustain_ms = scaled(2000, 500);

  print_header("conn_scale: one listener, open-loop connection soak",
               "scale harness (timer wheel + sharded tables)");
  std::printf("fleet=%d churn=%d%% @%d/s sustain=%dms gate=%d\n\n", conns,
              churn_pct, churn_rate, sustain_ms, gate);

  auto mem = MemNetwork::create();
  auto disc = std::make_shared<DiscoveryState>();
  auto srv_rt = mem_runtime(mem, disc, "h-srv");
  // ~25k ephemeral ports per mem host: shard the client fleet.
  const int cli_hosts = conns / 20000 + 1;
  std::vector<std::shared_ptr<Runtime>> cli_rts;
  std::vector<Endpoint> cli_eps;
  for (int h = 0; h < cli_hosts; h++) {
    cli_rts.push_back(mem_runtime(mem, disc, "h-cli-" + std::to_string(h)));
    cli_eps.push_back(
        die_on_err(cli_rts.back()->endpoint("cli", ChunnelDag::empty()),
                   "client endpoint"));
  }

  // Keepalive armed on every connection (a wheel entry each) but with
  // periods far past the run: idle must cost the entry, not traffic.
  ChunnelArgs args;
  args.set("interval_us", "30000000");
  args.set("dead_after_us", "120000000");
  auto listener =
      die_on_err(die_on_err(srv_rt->endpoint(
                                "srv", wrap(ChunnelSpec("keepalive", args))),
                            "server endpoint")
                     .listen(Addr::mem("h-srv", 100)),
                 "listen");

  std::vector<ConnPtr> client, server;
  client.reserve(conns);
  server.reserve(conns);
  SampleSet establish_us;
  int opened = 0;
  auto open_one = [&]() {
    auto& ep = cli_eps[opened % cli_hosts];
    Stopwatch sw;
    auto c = die_on_err(
        ep.connect(listener->addr(), Deadline::after(seconds(10))), "connect");
    establish_us.add_duration_us(sw.elapsed());
    client.push_back(std::move(c));
    server.push_back(die_on_err(
        listener->accept(Deadline::after(seconds(10))), "accept"));
    opened++;
  };

  // --- ramp --------------------------------------------------------
  Stopwatch ramp_sw;
  const int half = conns / 2;
  for (int i = 0; i < half; i++) open_one();
  sleep_for(ms(100));  // let shared machinery (wheel, demux) settle
  const int threads_half = process_threads();
  const int64_t bytes_half = g_live_bytes.load();

  for (int i = half; i < conns; i++) open_one();
  const double ramp_s =
      std::chrono::duration<double>(ramp_sw.elapsed()).count();
  const int threads_full = process_threads();
  const int64_t bytes_full = g_live_bytes.load();

  const int added_threads = threads_full - threads_half;
  const double bytes_per_conn =
      static_cast<double>(bytes_full - bytes_half) / (conns - half);
  auto est = establish_us.summarize();

  std::printf("ramp:    %d conns in %.1fs (%.0f conn/s)\n", conns, ramp_s,
              conns / ramp_s);
  std::printf("         establish p50=%.0fus p95=%.0fus p99=%.0fus\n", est.p50,
              est.p95, est.p99);
  std::printf("idle:    %.0f bytes/conn, %+d threads for +%d conns\n",
              bytes_per_conn, added_threads, conns - half);

  if (listener->connections_live() != static_cast<uint64_t>(conns)) {
    std::fprintf(stderr, "FATAL: %llu live entries for %d connections\n",
                 (unsigned long long)listener->connections_live(), conns);
    return 1;
  }

  // --- sustain -----------------------------------------------------
  const double cpu0 = cpu_seconds();
  Stopwatch wall;
  sleep_for(ms(sustain_ms));
  const double cpu_used = cpu_seconds() - cpu0;
  const double wall_s = std::chrono::duration<double>(wall.elapsed()).count();
  const double cores = std::max(cpu_used / wall_s, 1e-4);
  std::printf("sustain: %.4f cores for %d idle conns -> %.0f conns/core\n",
              cores, conns, conns / cores);

  // Sampled echo across the parked fleet: client sends, the matching
  // server conn echoes, client measures the round trip.
  SampleSet echo_us;
  const int samples = std::min(conns, 512);
  for (int s = 0; s < samples; s++) {
    int i = static_cast<int>(
        (static_cast<int64_t>(s) * conns) / samples);  // spread the fleet
    Msg m;
    m.payload = {'p', 'i', 'n', 'g'};
    Stopwatch sw;
    if (!client[i]->send(std::move(m)).ok()) continue;
    auto got = server[i]->recv(Deadline::after(seconds(2)));
    if (!got.ok()) continue;
    if (!server[i]->send(std::move(got).value()).ok()) continue;
    if (!client[i]->recv(Deadline::after(seconds(2))).ok()) continue;
    echo_us.add_duration_us(sw.elapsed());
  }
  auto echo = echo_us.summarize();
  std::printf("echo:    p50=%.0fus p99=%.0fus over %zu sampled conns\n",
              echo.p50, echo.p99, echo_us.size());

  // --- churn -------------------------------------------------------
  const int churn_n = conns * churn_pct / 100;
  SampleSet churn_est_us;
  Stopwatch churn_sw;
  for (int i = 0; i < churn_n; i++) {
    client[i]->close();
    server[i]->close();
    auto& ep = cli_eps[i % cli_hosts];
    Stopwatch sw;
    auto c = die_on_err(
        ep.connect(listener->addr(), Deadline::after(seconds(10))),
        "churn connect");
    churn_est_us.add_duration_us(sw.elapsed());
    client[i] = std::move(c);
    server[i] = die_on_err(listener->accept(Deadline::after(seconds(10))),
                           "churn accept");
    // Open-loop pacing: issue at the target rate, not as-fast-as-possible.
    const double due_s = static_cast<double>(i + 1) / churn_rate;
    const double now_s =
        std::chrono::duration<double>(churn_sw.elapsed()).count();
    if (due_s > now_s)
      sleep_for(Duration(static_cast<int64_t>((due_s - now_s) * 1e9)));
  }
  auto churn_est = churn_est_us.summarize();
  std::printf("churn:   %d reconnects, establish p50=%.0fus p99=%.0fus\n",
              churn_n, churn_est.p50, churn_est.p99);

  // The table must converge back to exactly the live fleet (stale
  // entries from the churned generation are swept by the wheel).
  Deadline settle = Deadline::after(seconds(10));
  while (listener->connections_live() != static_cast<uint64_t>(conns) &&
         !settle.expired())
    sleep_for(ms(10));
  const uint64_t live = listener->connections_live();
  std::printf("table:   %llu live entries (expect %d), %llu accepted total\n",
              (unsigned long long)live, conns,
              (unsigned long long)listener->connections_accepted());

  // --- gate --------------------------------------------------------
  std::vector<GateCheck> checks;
  checks.push_back({"fleet live", live == static_cast<uint64_t>(conns),
                    std::to_string(live) + "/" + std::to_string(conns)});
  checks.push_back({"establish p99", est.p99 <= p99_budget_ms * 1000.0,
                    std::to_string(est.p99 / 1000.0) + "ms <= " +
                        std::to_string(p99_budget_ms) + "ms"});
  checks.push_back({"idle bytes/conn",
                    bytes_per_conn <= static_cast<double>(mem_budget),
                    std::to_string(static_cast<long>(bytes_per_conn)) +
                        " <= " + std::to_string(mem_budget)});
  checks.push_back({"idle threads", added_threads == 0,
                    std::to_string(added_threads) + " added"});
  bool all_ok = true;
  std::printf("\n");
  for (const auto& c : checks) {
    std::printf("%-7s %-16s %s\n", c.ok ? "PASS" : "FAIL", c.what,
                c.detail.c_str());
    all_ok = all_ok && c.ok;
  }
  if (gate && !all_ok) {
    std::printf("GATE FAIL\n");
    return 1;
  }
  if (gate) std::printf("GATE PASS\n");

  // Teardown stays in-scope so leaked-thread/channel bugs crash here,
  // not silently at _exit.
  for (auto& c : client) c->close();
  for (auto& s : server) s->close();
  return 0;
}

// ---------------------------------------------------------------------
// --udp: multi-process mode over loopback
// ---------------------------------------------------------------------

int run_udp_client(const char* host, int port, int n, int hold_ms) {
  auto rt = real_runtime("udp-cli-" + std::to_string(getpid()), nullptr);
  auto ep = die_on_err(rt->endpoint("cli", ChunnelDag::empty()), "endpoint");
  std::vector<ConnPtr> held;
  held.reserve(n);
  for (int i = 0; i < n; i++) {
    auto c = ep.connect(Addr::udp(host, static_cast<uint16_t>(port)),
                        Deadline::after(seconds(10)));
    if (!c.ok()) {
      std::fprintf(stderr, "child %d connect %d: %s\n", getpid(), i,
                   c.error().to_string().c_str());
      return 1;
    }
    held.push_back(std::move(c).value());
  }
  sleep_for(ms(hold_ms));
  for (auto& c : held) c->close();
  return 0;
}

int run_udp_parent(const char* self_path) {
  const int kids = scaled(4, 2);
  const int per_kid = scaled(2500, 250);
  const int hold_ms = scaled(2000, 500);
  print_header("conn_scale --udp: multi-process fleet over loopback",
               "scale harness (timer wheel + sharded tables)");

  auto rt = real_runtime("udp-srv", nullptr);
  ChunnelArgs args;
  args.set("interval_us", "30000000");
  args.set("dead_after_us", "120000000");
  auto listener =
      die_on_err(die_on_err(rt->endpoint(
                                "srv", wrap(ChunnelSpec("keepalive", args))),
                            "endpoint")
                     .listen(Addr::udp("127.0.0.1", 0)),
                 "listen");
  const Addr& addr = listener->addr();
  std::printf("listener %s, %d children x %d conns\n", addr.to_string().c_str(),
              kids, per_kid);

  std::vector<pid_t> pids;
  for (int k = 0; k < kids; k++) {
    pid_t pid = fork();
    if (pid == 0) {
      std::string port = std::to_string(addr.port);
      std::string n = std::to_string(per_kid);
      std::string hold = std::to_string(hold_ms);
      execl(self_path, "conn_scale", "--udp-client", addr.host.c_str(),
            port.c_str(), n.c_str(), hold.c_str(), (char*)nullptr);
      _exit(127);  // execl failed
    }
    pids.push_back(pid);
  }

  const int total = kids * per_kid;
  std::vector<ConnPtr> server;
  server.reserve(total);
  SampleSet accept_us;
  Stopwatch ramp;
  for (int i = 0; i < total; i++) {
    Stopwatch sw;
    server.push_back(
        die_on_err(listener->accept(Deadline::after(seconds(30))), "accept"));
    accept_us.add_duration_us(sw.elapsed());
  }
  const double ramp_s = std::chrono::duration<double>(ramp.elapsed()).count();
  auto acc = accept_us.summarize();
  std::printf("accepted %d conns in %.1fs (%.0f/s), accept p99=%.0fus\n",
              total, ramp_s, total / ramp_s, acc.p99);
  std::printf("live=%llu across %d processes\n",
              (unsigned long long)listener->connections_live(), kids);

  bool kids_ok = true;
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    kids_ok = kids_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  if (!kids_ok || listener->connections_live() != 0u) {
    // Children closed everything on exit; the table must drain.
    Deadline settle = Deadline::after(seconds(10));
    while (listener->connections_live() != 0u && !settle.expired())
      sleep_for(ms(10));
  }
  std::printf("children %s, table drained to %llu\n",
              kids_ok ? "clean" : "FAILED",
              (unsigned long long)listener->connections_live());
  return kids_ok && listener->connections_live() == 0u ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 6 && std::strcmp(argv[1], "--udp-client") == 0) {
    return run_udp_client(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                          std::atoi(argv[5]));
  }
  if (argc >= 2 && std::strcmp(argv[1], "--udp") == 0) {
    return run_udp_parent("/proc/self/exe");
  }
  return run_mem_soak();
}
