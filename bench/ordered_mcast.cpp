// §3.2 "Network-Assisted Consensus": ordered multicast via an in-switch
// sequencer vs a host software sequencer.
//
// Three RSM replicas on a SimNet with 100us links. With the switch
// sequencer, a client operation travels client -> members (one link,
// stamped in transit). With the software fallback it travels client ->
// sequencer -> members (two links plus a host on the critical path).
// The client-observed commit latency should show roughly that one-hop
// difference; throughput of the software path is additionally capped by
// the sequencer process.
#include "apps/rsm.hpp"
#include "bench_util.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "sim/simswitch.hpp"

using namespace bertha;
using namespace bertha::bench;

namespace {

struct McastResult {
  Summary latency_us;
  double tput = 0;
};

McastResult run(bool use_switch, int ops) {
  SimNet::Config net_cfg;
  net_cfg.default_latency = us(100);
  auto sim = SimNet::create(net_cfg);
  auto discovery = std::make_shared<DiscoveryState>();
  auto make_rt = [&](const std::string& node) {
    RuntimeConfig cfg;
    cfg.host_id = node;
    cfg.transports = std::make_shared<DefaultTransportFactory>(nullptr, sim,
                                                               node);
    cfg.discovery = discovery;
    auto rt = Runtime::create(cfg).value();
    die_on_err(register_builtin_chunnels(*rt), "builtins");
    return rt;
  };

  std::vector<Addr> members = {Addr::sim("r0", 7000), Addr::sim("r1", 7000),
                               Addr::sim("r2", 7000)};
  std::shared_ptr<SimSwitch> sw;
  std::unique_ptr<SoftwareSequencer> soft;
  std::shared_ptr<Runtime> seq_rt;
  if (use_switch) {
    sw = die_on_err(SimSwitch::create(sim, discovery, SimSwitch::Config{}),
                    "switch");
    (void)die_on_err(sw->install_sequencer_group("grp", 7100, members),
                     "install group");
  } else {
    seq_rt = make_rt("seqhost");
    soft = die_on_err(SoftwareSequencer::start(seq_rt->transports(),
                                               Addr::sim("seqhost", 7100),
                                               members),
                      "sequencer");
    die_on_err(soft->register_with(*discovery, "grp"), "register sequencer");
  }

  std::vector<std::unique_ptr<RsmReplica>> replicas;
  std::vector<Addr> ctrls;
  for (int i = 0; i < 3; i++) {
    RsmReplicaConfig cfg;
    cfg.rt = make_rt("r" + std::to_string(i));
    cfg.listen_addr = Addr::sim("r" + std::to_string(i), 8000);
    cfg.member_addr = members[static_cast<size_t>(i)];
    cfg.group = "grp";
    cfg.replier = i == 0;
    replicas.push_back(die_on_err(RsmReplica::start(std::move(cfg)),
                                  "replica"));
    ctrls.push_back(replicas.back()->control_addr());
  }

  auto cli_rt = make_rt("c0");
  auto client = die_on_err(
      RsmClient::connect(cli_rt, ctrls, Deadline::after(seconds(10))),
      "connect");

  McastResult result;
  SampleSet lat;
  Stopwatch wall;
  for (int i = 0; i < ops; i++) {
    KvRequest op;
    op.op = KvOp::put;
    op.id = static_cast<uint64_t>(i + 1);
    op.key = "k" + std::to_string(i % 16);
    op.value = "v";
    Stopwatch sw2;
    auto rsp = client->execute(op, Deadline::after(seconds(10)));
    if (rsp.ok()) lat.add_duration_us(sw2.elapsed());
  }
  result.tput =
      ops / std::chrono::duration<double>(wall.elapsed()).count();
  result.latency_us = lat.summarize();

  client->close();
  for (auto& rep : replicas) rep->stop();
  return result;
}

}  // namespace

int main() {
  print_header("§3.2 — ordered multicast: switch sequencer vs software",
               "Bertha Listing 2 / NOPaxos-style network ordering");
  const int ops = scaled(2000, 100);

  McastResult hw = run(/*use_switch=*/true, ops);
  McastResult sw = run(/*use_switch=*/false, ops);

  std::printf("%-22s %9s %9s %9s %10s\n", "sequencer", "p50(us)", "p95(us)",
              "p99(us)", "commits/s");
  std::printf("%-22s %9.1f %9.1f %9.1f %10.0f\n", "switch (in-network)",
              hw.latency_us.p50, hw.latency_us.p95, hw.latency_us.p99,
              hw.tput);
  std::printf("%-22s %9.1f %9.1f %9.1f %10.0f\n", "software (fallback)",
              sw.latency_us.p50, sw.latency_us.p95, sw.latency_us.p99,
              sw.tput);
  std::printf("=> the software path pays ~one extra 100us link + a host on "
              "the critical path (p50 gap: %.0fus)\n",
              sw.latency_us.p50 - hw.latency_us.p50);
  return 0;
}
