// Tests for the registry, the discovery state (entries + resource
// pools), and the discovery wire protocol (server + remote client over
// an in-memory network).
#include <gtest/gtest.h>

#include <thread>

#include "core/discovery.hpp"
#include "net/memchan.hpp"

namespace bertha {
namespace {

class FakeChunnel final : public ChunnelImpl {
 public:
  FakeChunnel(std::string type, std::string name, int prio = 0) {
    info_.type = std::move(type);
    info_.name = std::move(name);
    info_.priority = prio;
  }
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }
  Result<void> init() override {
    inited = true;
    return ok();
  }
  void teardown() override { torn_down = true; }

  bool inited = false;
  bool torn_down = false;

 private:
  ImplInfo info_;
};

TEST(RegistryTest, RegisterLookupUnregister) {
  Registry reg;
  auto impl = std::make_shared<FakeChunnel>("t", "t/x");
  ASSERT_TRUE(reg.register_impl(impl).ok());
  EXPECT_TRUE(impl->inited);
  EXPECT_TRUE(reg.has("t", "t/x"));
  EXPECT_TRUE(reg.lookup("t", "t/x").ok());
  EXPECT_FALSE(reg.lookup("t", "t/y").ok());
  EXPECT_FALSE(reg.lookup("u", "t/x").ok());
  ASSERT_TRUE(reg.unregister_impl("t", "t/x").ok());
  EXPECT_TRUE(impl->torn_down);
  EXPECT_FALSE(reg.has("t", "t/x"));
  EXPECT_FALSE(reg.unregister_impl("t", "t/x").ok());
}

TEST(RegistryTest, DuplicateRejected) {
  Registry reg;
  ASSERT_TRUE(reg.register_impl(std::make_shared<FakeChunnel>("t", "t/x")).ok());
  auto r = reg.register_impl(std::make_shared<FakeChunnel>("t", "t/x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::already_exists);
}

TEST(RegistryTest, NullAndAnonymousRejected) {
  Registry reg;
  EXPECT_FALSE(reg.register_impl(nullptr).ok());
  EXPECT_FALSE(reg.register_impl(std::make_shared<FakeChunnel>("", "")).ok());
}

TEST(RegistryTest, ParameterizedNameFallsBackToBase) {
  Registry reg;
  ASSERT_TRUE(
      reg.register_impl(std::make_shared<FakeChunnel>("m", "m/switch")).ok());
  // Instance-suffixed names resolve to the base factory.
  EXPECT_TRUE(reg.lookup("m", "m/switch:sim://g:7").ok());
  EXPECT_FALSE(reg.lookup("m", "m/other:sim://g:7").ok());
}

TEST(RegistryTest, TypesAndInfos) {
  Registry reg;
  ASSERT_TRUE(reg.register_impl(std::make_shared<FakeChunnel>("a", "a/1")).ok());
  ASSERT_TRUE(reg.register_impl(std::make_shared<FakeChunnel>("a", "a/2")).ok());
  ASSERT_TRUE(reg.register_impl(std::make_shared<FakeChunnel>("b", "b/1")).ok());
  EXPECT_EQ(reg.types().size(), 2u);
  EXPECT_EQ(reg.infos_for("a").size(), 2u);
  EXPECT_EQ(reg.lookup_type("b").size(), 1u);
  EXPECT_TRUE(reg.infos_for("zzz").empty());
}

TEST(DiscoveryStateTest, RegisterQueryUnregister) {
  DiscoveryState state;
  ImplInfo info;
  info.type = "shard";
  info.name = "shard/xdp";
  ASSERT_TRUE(state.register_impl(info).ok());
  auto entries = state.query("shard");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "shard/xdp");
  EXPECT_TRUE(state.query("nope").value().empty());
  ASSERT_TRUE(state.unregister_impl("shard", "shard/xdp").ok());
  EXPECT_TRUE(state.query("shard").value().empty());
}

TEST(DiscoveryStateTest, ReRegistrationUpdates) {
  DiscoveryState state;
  ImplInfo info;
  info.type = "t";
  info.name = "t/x";
  info.priority = 1;
  ASSERT_TRUE(state.register_impl(info).ok());
  info.priority = 9;
  ASSERT_TRUE(state.register_impl(info).ok());
  auto entries = state.query("t").value();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].priority, 9);
}

TEST(DiscoveryStateTest, ResourcePoolsAllOrNothing) {
  DiscoveryState state;
  ASSERT_TRUE(state.set_pool("switch.slots", 2).ok());
  ASSERT_TRUE(state.set_pool("nic.engines", 1).ok());

  auto a1 = state.acquire({{"switch.slots", 1}, {"nic.engines", 1}});
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(state.pool_in_use("switch.slots"), 1u);
  EXPECT_EQ(state.pool_in_use("nic.engines"), 1u);

  // nic.engines exhausted: the whole acquisition fails, leaving
  // switch.slots untouched.
  auto a2 = state.acquire({{"switch.slots", 1}, {"nic.engines", 1}});
  ASSERT_FALSE(a2.ok());
  EXPECT_EQ(a2.error().code, Errc::resource_exhausted);
  EXPECT_EQ(state.pool_in_use("switch.slots"), 1u);

  ASSERT_TRUE(state.release(a1.value()).ok());
  EXPECT_EQ(state.pool_in_use("switch.slots"), 0u);
  EXPECT_EQ(state.pool_in_use("nic.engines"), 0u);
  EXPECT_FALSE(state.release(a1.value()).ok());  // double release
}

TEST(DiscoveryStateTest, UnknownPoolFails) {
  DiscoveryState state;
  auto r = state.acquire({{"ghost", 1}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
}

TEST(DiscoveryStateTest, CapacityQueryable) {
  DiscoveryState state;
  ASSERT_TRUE(state.set_pool("p", 5).ok());
  EXPECT_EQ(state.pool_capacity("p"), 5u);
  EXPECT_EQ(state.pool_capacity("q"), 0u);
}

// --- wire protocol ---

class RemoteDiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MemNetwork::create();
    state_ = std::make_shared<DiscoveryState>();
    auto st = net_->bind(Addr::mem("discovery", 1));
    ASSERT_TRUE(st.ok());
    server_ = std::make_unique<DiscoveryServer>(std::move(st).value(), state_);
    auto ct = net_->bind(Addr::mem("client", 0));
    ASSERT_TRUE(ct.ok());
    client_ = std::make_unique<RemoteDiscovery>(std::move(ct).value(),
                                                server_->addr());
  }

  std::shared_ptr<MemNetwork> net_;
  std::shared_ptr<DiscoveryState> state_;
  std::unique_ptr<DiscoveryServer> server_;
  std::unique_ptr<RemoteDiscovery> client_;
};

TEST_F(RemoteDiscoveryTest, RegisterAndQueryOverTheWire) {
  ImplInfo info;
  info.type = "encrypt";
  info.name = "encrypt/nic";
  info.priority = 10;
  info.props["device"] = "nic0";
  ASSERT_TRUE(client_->register_impl(info).ok());
  auto entries = client_->query("encrypt");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0], info);
  EXPECT_GE(server_->requests_served(), 2u);
}

TEST_F(RemoteDiscoveryTest, AcquireReleaseOverTheWire) {
  ASSERT_TRUE(client_->set_pool("pool", 1).ok());
  auto a = client_->acquire({{"pool", 1}});
  ASSERT_TRUE(a.ok());
  auto b = client_->acquire({{"pool", 1}});
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.error().code, Errc::resource_exhausted);
  ASSERT_TRUE(client_->release(a.value()).ok());
  EXPECT_TRUE(client_->acquire({{"pool", 1}}).ok());
}

TEST_F(RemoteDiscoveryTest, ErrorsPropagateWithCode) {
  auto r = client_->unregister_impl("ghost", "ghost/x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
}

TEST_F(RemoteDiscoveryTest, UnreachableServerTimesOut) {
  auto ct = net_->bind(Addr::mem("client2", 0));
  ASSERT_TRUE(ct.ok());
  RemoteDiscovery::Options opts;
  opts.rpc_timeout = ms(30);
  opts.retries = 1;
  RemoteDiscovery lost(std::move(ct).value(), Addr::mem("nowhere", 9), opts);
  auto r = lost.query("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable);
}

// --- watch subscriptions ---

ImplInfo watch_info(const std::string& type, const std::string& name,
                    int prio = 0) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.priority = prio;
  return i;
}

TEST(DiscoveryWatchTest, DeliversRegisterAndUnregister) {
  DiscoveryState state;
  auto w = state.watch("").value();
  ASSERT_TRUE(state.register_impl(watch_info("encrypt", "encrypt/nic", 7)).ok());
  auto ev = w->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(ev.ok()) << ev.error().to_string();
  EXPECT_EQ(ev.value().kind, WatchKind::impl_registered);
  EXPECT_EQ(ev.value().type, "encrypt");
  EXPECT_EQ(ev.value().name, "encrypt/nic");
  ASSERT_TRUE(ev.value().info.has_value());
  EXPECT_EQ(ev.value().info->priority, 7);

  ASSERT_TRUE(state.unregister_impl("encrypt", "encrypt/nic").ok());
  ev = w->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::impl_unregistered);
  EXPECT_EQ(ev.value().name, "encrypt/nic");
}

TEST(DiscoveryWatchTest, TypeFilterSelectsImplEventsOnly) {
  DiscoveryState state;
  ASSERT_TRUE(state.set_pool("p", 1).ok());
  auto w = state.watch("shard").value();
  ASSERT_TRUE(state.register_impl(watch_info("encrypt", "encrypt/nic")).ok());
  auto alloc = state.acquire({{"p", 1}}).value();
  ASSERT_TRUE(state.release(alloc).ok());  // pool_freed: filtered out
  ASSERT_TRUE(state.register_impl(watch_info("shard", "shard/xdp")).ok());
  auto ev = w->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().name, "shard/xdp");  // encrypt + pool skipped
  EXPECT_FALSE(w->try_next().has_value());
}

TEST(DiscoveryWatchTest, PoolFreedOnReleaseAndCapacityGrowth) {
  DiscoveryState state;
  ASSERT_TRUE(state.set_pool("nic.engines", 1).ok());
  auto w = state.watch("").value();
  auto alloc = state.acquire({{"nic.engines", 1}}).value();
  ASSERT_TRUE(state.release(alloc).ok());
  auto ev = w->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::pool_freed);
  EXPECT_EQ(ev.value().pool, "nic.engines");
  EXPECT_EQ(ev.value().available, 1u);

  // Growing a pool's capacity is also "slots came free".
  ASSERT_TRUE(state.set_pool("nic.engines", 3).ok());
  ev = w->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::pool_freed);
  EXPECT_EQ(ev.value().available, 3u);
}

TEST(DiscoveryWatchTest, WatcherOutlivesItsSource) {
  WatcherPtr w;
  {
    DiscoveryState state;
    w = state.watch("").value();
    ASSERT_TRUE(state.register_impl(watch_info("t", "t/x")).ok());
  }
  // Buffered events still drain, then the watcher reports cancelled.
  auto ev = w->next(Deadline::after(ms(200)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::impl_registered);
  auto end = w->next(Deadline::after(ms(200)));
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.error().code, Errc::cancelled);
  EXPECT_TRUE(w->cancelled());
}

TEST(DiscoveryWatchTest, SubscribeThenImmediateRevoke) {
  // A watcher subscribed between a registration and its revocation sees
  // only the revocation — and consuming after cancel still works.
  DiscoveryState state;
  ASSERT_TRUE(state.register_impl(watch_info("t", "t/x")).ok());
  auto w = state.watch("t").value();
  ASSERT_TRUE(state.unregister_impl("t", "t/x").ok());
  w->cancel();
  auto ev = w->next(Deadline::after(ms(200)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::impl_unregistered);
  EXPECT_FALSE(w->next(Deadline::after(ms(50))).ok());
}

TEST(DiscoveryWatchTest, SeqStrictlyIncreasesUnderConcurrentRegistrations) {
  DiscoveryState state;
  auto w = state.watch("").value();
  constexpr int kPerThread = 50;
  auto reg = [&](const std::string& prefix) {
    for (int i = 0; i < kPerThread; i++) {
      ASSERT_TRUE(
          state.register_impl(watch_info("t", prefix + std::to_string(i)))
              .ok());
    }
  };
  std::thread a(reg, "t/a");
  std::thread b(reg, "t/b");
  a.join();
  b.join();
  uint64_t last_seq = 0;
  int got = 0;
  for (;;) {
    auto ev = w->try_next();
    if (!ev) break;
    EXPECT_GT(ev->seq, last_seq);
    last_seq = ev->seq;
    got++;
  }
  EXPECT_EQ(got + static_cast<int>(w->dropped()), 2 * kPerThread);
  EXPECT_EQ(w->dropped(), 0u);  // capacity 256 > 100 events
}

TEST(DiscoveryWatchTest, SlowConsumerDropsAreCounted) {
  DiscoveryState state;
  auto w = state.watch("").value();
  for (int i = 0; i < 300; i++)
    ASSERT_TRUE(state.register_impl(watch_info("t", "t/" + std::to_string(i)))
                    .ok());
  EXPECT_GT(w->dropped(), 0u);
  int got = 0;
  while (w->try_next()) got++;
  EXPECT_EQ(got + static_cast<int>(w->dropped()), 300);
}

TEST_F(RemoteDiscoveryTest, WatchWithoutFilterUsesServerPush) {
  // An unfiltered remote watch needs server-push subscriptions (the
  // poll-and-diff fallback cannot emulate it); against a push-capable
  // server it succeeds and sees events of every chunnel type.
  auto w = client_->watch("").value();
  ASSERT_TRUE(state_->register_impl(watch_info("encrypt", "encrypt/nic", 1))
                  .ok());
  auto ev = w->next(Deadline::after(seconds(2)));
  ASSERT_TRUE(ev.ok()) << ev.error().to_string();
  EXPECT_EQ(ev.value().name, "encrypt/nic");
}

TEST_F(RemoteDiscoveryTest, WatchEmulatedByPolling) {
  RemoteDiscovery::Options opts;
  opts.watch_poll = ms(20);
  auto ct = net_->bind(Addr::mem("watcher", 0));
  ASSERT_TRUE(ct.ok());
  RemoteDiscovery client(std::move(ct).value(), server_->addr(), opts);

  auto w = client.watch("encrypt").value();
  ImplInfo info = watch_info("encrypt", "encrypt/nic", 1);
  ASSERT_TRUE(state_->register_impl(info).ok());
  auto ev = w->next(Deadline::after(seconds(2)));
  ASSERT_TRUE(ev.ok()) << ev.error().to_string();
  EXPECT_EQ(ev.value().kind, WatchKind::impl_registered);
  EXPECT_EQ(ev.value().name, "encrypt/nic");

  // Metadata updates re-announce the entry.
  info.priority = 42;
  ASSERT_TRUE(state_->register_impl(info).ok());
  ev = w->next(Deadline::after(seconds(2)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::impl_registered);
  ASSERT_TRUE(ev.value().info.has_value());
  EXPECT_EQ(ev.value().info->priority, 42);

  ASSERT_TRUE(state_->unregister_impl("encrypt", "encrypt/nic").ok());
  ev = w->next(Deadline::after(seconds(2)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, WatchKind::impl_unregistered);

  w->cancel();
  EXPECT_FALSE(w->next(Deadline::after(ms(100))).ok());
}

}  // namespace
}  // namespace bertha
