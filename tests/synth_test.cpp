// Offload synthesis (src/synth/, DESIGN.md §11): pattern lowering to
// ProgramIR (golden tests per pattern), the IR codec's structural
// validation, compiled-program execution on the SimSwitch, slot and
// flow-entry accounting through discovery, registration/revocation of
// synthesized implementations — including through the replicated control
// plane — and the end-to-end story: a negotiated shard+framing chain
// with no hand-registered offload anywhere is compiled into a switch
// program, live connections transition onto it with zero loss, and
// removal falls back cleanly with every switch resource reclaimed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "chunnels/common.hpp"
#include "chunnels/framing.hpp"
#include "chunnels/shard.hpp"
#include "control/cluster.hpp"
#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "net/fault.hpp"
#include "synth/offload.hpp"
#include "test_helpers.hpp"
#include "util/rand.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// --- shared helpers ---

StageInfo make_stage(const std::string& type, const std::string& impl,
                     const std::string& pattern) {
  StageInfo s;
  s.type = type;
  s.impl_name = impl;
  if (!pattern.empty()) s.args.set("synth.pattern", pattern);
  return s;
}

StageInfo shard_stage(const std::vector<Addr>& shards, uint64_t off = 0,
                      uint64_t len = 4) {
  StageInfo s = make_stage("shard", "shard/xdp", "shard");
  s.args.set("shards", format_addr_list(shards));
  s.args.set_u64("field_offset", off);
  s.args.set_u64("field_len", len);
  return s;
}

StageInfo dedup_stage(uint64_t window) {
  StageInfo s = make_stage("dedup", "dedup/window", "dedup");
  s.args.set_u64("window", window);
  return s;
}

StageInfo frame_stage() {
  return make_stage("frame", "frame/http2ish", "frame");
}

StageInfo mcast_stage(const std::string& group) {
  StageInfo s = make_stage("ordered_mcast", "ordered_mcast/sw", "mcast_seq");
  s.args.set("group_addr", group);
  return s;
}

SynthOptions vip_opts(const std::string& vip) {
  SynthOptions o;
  o.vip = vip;
  return o;
}

std::vector<Addr> three_sim_shards() {
  return {Addr::sim("b", 1), Addr::sim("b", 2), Addr::sim("b", 3)};
}

template <typename F>
[[nodiscard]] bool poll_until(F&& f, Duration timeout = seconds(5)) {
  Deadline dl = Deadline::after(timeout);
  while (!f()) {
    if (dl.expired()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

uint64_t counter_of(const MetricsPtr& m, const std::string& name) {
  auto snap = m->snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// --- pattern lowering: golden IR per pattern ---

TEST(SynthPatternTest, ShardPrefixLowersToSteeringProgram) {
  auto shards = three_sim_shards();
  std::vector<StageInfo> stages = {shard_stage(shards, 2, 4)};
  auto plan = synthesize_prefix(stages, vip_opts("sim://vip:80"));
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();

  const ProgramIR& ir = plan.value().ir;
  EXPECT_EQ(ir.slot, SlotKind::match_action);
  EXPECT_EQ(ir.vip, "sim://vip:80");
  std::vector<IrInstr> want = {{IrOp::match_magic, 'S', '1'},
                               {IrOp::skip_varint_body, 0, 0},
                               {IrOp::hash_steer, 2, 4}};
  EXPECT_EQ(ir.instrs, want);
  ASSERT_EQ(ir.table.size(), 3u);
  EXPECT_EQ(ir.table[0], "sim://b:1");
  EXPECT_EQ(ir.initial_seq, 0u);
  EXPECT_NE(ir.source_fingerprint, 0u);
  EXPECT_EQ(plan.value().stages_covered, 1u);
  ASSERT_EQ(plan.value().covered.size(), 1u);
  EXPECT_EQ(plan.value().covered[0], "shard/shard/xdp");
  EXPECT_EQ(to_string(ir),
            "match-action@sim://vip:80: match 'S1'; skipvb; hash_steer(+2,4)%3");
  EXPECT_TRUE(validate_program(ir).ok());
  auto round = decode_program(BytesView(encode_program(ir)));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value() == ir);
}

TEST(SynthPatternTest, DedupFramePrefixLowersToRewriteProgram) {
  std::vector<StageInfo> stages = {dedup_stage(16), frame_stage()};
  SynthOptions opts = vip_opts("sim://dvip:80");
  opts.default_dst = "sim://backend:9";
  opts.strip_parsed_headers = true;
  auto plan = synthesize_prefix(stages, opts);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();

  const ProgramIR& ir = plan.value().ir;
  EXPECT_EQ(ir.slot, SlotKind::match_action);
  std::vector<IrInstr> want = {{IrOp::match_magic, 'D', '1'},
                               {IrOp::drop_dup, 16, 0},
                               {IrOp::skip_fixed, 4, 0},
                               {IrOp::skip_varint, 0, 0},
                               {IrOp::strip_to_cursor, 0, 0},
                               {IrOp::forward, 0, 0}};
  EXPECT_EQ(ir.instrs, want);
  ASSERT_EQ(ir.table.size(), 1u);
  EXPECT_EQ(ir.table[0], "sim://backend:9");
  EXPECT_EQ(plan.value().stages_covered, 2u);
}

TEST(SynthPatternTest, FrameWithoutStripDoesNoOffloadableWork) {
  // Parsing through framing without shedding it saves the backend
  // nothing: synthesis must decline rather than burn a switch slot.
  std::vector<StageInfo> stages = {frame_stage()};
  SynthOptions opts = vip_opts("sim://fvip:80");
  opts.default_dst = "sim://backend:9";
  auto plan = synthesize_prefix(stages, opts);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::not_found);
}

TEST(SynthPatternTest, McastSeqLowersToSequencerProgram) {
  std::vector<StageInfo> stages = {mcast_stage("sim://grp:7")};
  SynthOptions opts = vip_opts("sim://mvip:80");
  opts.initial_seq = 41;
  auto plan = synthesize_prefix(stages, opts);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();

  const ProgramIR& ir = plan.value().ir;
  EXPECT_EQ(ir.slot, SlotKind::sequencer);
  std::vector<IrInstr> want = {{IrOp::prepend_seq, 0, 0},
                               {IrOp::forward, 0, 0}};
  EXPECT_EQ(ir.instrs, want);
  ASSERT_EQ(ir.table.size(), 1u);
  EXPECT_EQ(ir.table[0], "sim://grp:7");
  EXPECT_EQ(ir.initial_seq, 41u);
}

TEST(SynthPatternTest, UnannotatedStageStopsTheWalk) {
  // Encrypt-first chain: the program cannot prove it parses ciphertext,
  // so nothing is offloadable — the negative case of the pattern walk.
  std::vector<StageInfo> stages = {make_stage("encrypt", "encrypt/sw", ""),
                                   shard_stage(three_sim_shards())};
  auto plan = synthesize_prefix(stages, vip_opts("sim://evip:80"));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::not_found);
}

TEST(SynthPatternTest, MalformedAnnotatedStageStopsTheWalk) {
  // A shard stage with no shard list cannot lower; alone it yields
  // nothing...
  StageInfo broken = make_stage("shard", "shard/xdp", "shard");
  auto none = synthesize_prefix({broken}, vip_opts("sim://vip:80"));
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.error().code, Errc::not_found);

  // ...but a valid prefix before it still compiles.
  SynthOptions opts = vip_opts("sim://vip:80");
  opts.default_dst = "sim://backend:9";
  auto partial = synthesize_prefix({dedup_stage(8), broken}, opts);
  ASSERT_TRUE(partial.ok()) << partial.error().to_string();
  EXPECT_EQ(partial.value().stages_covered, 1u);
  EXPECT_EQ(partial.value().ir.instrs.back().op, IrOp::forward);
}

TEST(SynthPatternTest, SteeringDecisionEndsTheProgram) {
  // Stages behind a steering stage are unreachable for the program (the
  // packet has left the switch): the walk must not consume them.
  std::vector<StageInfo> stages = {shard_stage(three_sim_shards()),
                                   dedup_stage(8)};
  auto plan = synthesize_prefix(stages, vip_opts("sim://vip:80"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().stages_covered, 1u);
  EXPECT_EQ(plan.value().ir.instrs.back().op, IrOp::hash_steer);
}

TEST(SynthPatternTest, OptionsRequireVip) {
  auto plan = synthesize_prefix({shard_stage(three_sim_shards())},
                                SynthOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::invalid_argument);
}

TEST(SynthPatternTest, FingerprintTracksChainIdentity) {
  auto base = shard_stage(three_sim_shards(), 2, 4);
  uint64_t fp = chain_fingerprint({base}, 1);
  EXPECT_EQ(chain_fingerprint({base}, 1), fp);  // deterministic

  auto moved = shard_stage(three_sim_shards(), 3, 4);  // steering args differ
  EXPECT_NE(chain_fingerprint({moved}, 1), fp);
  auto renamed = base;
  renamed.impl_name = "shard/fallback";
  EXPECT_NE(chain_fingerprint({renamed}, 1), fp);
}

TEST(SynthPatternTest, WireOrderReversesNegotiatedChain) {
  // chain[0] is the app-facing wrapper whose header goes on first, so
  // the LAST chain element's header is outermost on the wire — the
  // parser order a switch program sees.
  NegotiatedNode frame_node;
  frame_node.type = "frame";
  frame_node.impl_name = "frame/http2ish";
  NegotiatedNode shard_node;
  shard_node.type = "shard";
  shard_node.impl_name = "shard/xdp";
  auto stages = wire_order_stages({frame_node, shard_node});
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].type, "shard");
  EXPECT_EQ(stages[1].type, "frame");
}

// --- IR codec structural validation ---

ProgramIR valid_shard_ir(const std::string& vip) {
  ProgramIR ir;
  ir.vip = vip;
  ir.table = {"sim://b:1", "sim://b:2", "sim://b:3"};
  ir.instrs = {{IrOp::match_magic, 'S', '1'},
               {IrOp::skip_varint_body, 0, 0},
               {IrOp::hash_steer, 0, 4}};
  ir.source_fingerprint = 0xfeedULL;
  return ir;
}

TEST(ProgramIrCodecTest, ValidateRejectsStructurallyBadPrograms) {
  auto bad = [](std::function<void(ProgramIR&)> mutate) {
    ProgramIR ir = valid_shard_ir("sim://vip:80");
    mutate(ir);
    return validate_program(ir);
  };
  EXPECT_FALSE(bad([](ProgramIR& ir) { ir.vip.clear(); }).ok());
  EXPECT_FALSE(bad([](ProgramIR& ir) { ir.instrs.clear(); }).ok());
  // Steering must be terminal and unique.
  EXPECT_FALSE(
      bad([](ProgramIR& ir) { ir.instrs.push_back({IrOp::skip_fixed, 1, 0}); })
          .ok());
  // hash_steer needs a table and a bounded field.
  EXPECT_FALSE(bad([](ProgramIR& ir) { ir.table.clear(); }).ok());
  EXPECT_FALSE(bad([](ProgramIR& ir) { ir.instrs.back().b = 0; }).ok());
  EXPECT_FALSE(bad([](ProgramIR& ir) { ir.instrs.back().b = 65; }).ok());
  // forward must index into the table.
  EXPECT_FALSE(
      bad([](ProgramIR& ir) { ir.instrs.back() = {IrOp::forward, 9, 0}; })
          .ok());
  // drop_dup window is bounded and non-zero.
  EXPECT_FALSE(
      bad([](ProgramIR& ir) {
        ir.instrs.insert(ir.instrs.begin(), {IrOp::drop_dup, 0, 0});
      }).ok());
  EXPECT_FALSE(bad([](ProgramIR& ir) {
                 ir.instrs.insert(ir.instrs.begin(),
                                  {IrOp::drop_dup, (1u << 20) + 1, 0});
               }).ok());
  // prepend_seq only in a sequencer slot, and vice versa.
  EXPECT_FALSE(
      bad([](ProgramIR& ir) {
        ir.instrs.insert(ir.instrs.begin(), {IrOp::prepend_seq, 0, 0});
      }).ok());
  EXPECT_FALSE(
      bad([](ProgramIR& ir) { ir.slot = SlotKind::sequencer; }).ok());
  // Unknown ops and slot kinds.
  EXPECT_FALSE(bad([](ProgramIR& ir) {
                 ir.instrs.insert(ir.instrs.begin(),
                                  {static_cast<IrOp>(42), 0, 0});
               }).ok());
  EXPECT_FALSE(
      bad([](ProgramIR& ir) { ir.slot = static_cast<SlotKind>(7); }).ok());
  // Bounded instruction count and table.
  EXPECT_FALSE(bad([](ProgramIR& ir) {
                 ir.instrs.assign(65, {IrOp::skip_fixed, 1, 0});
                 ir.instrs.push_back({IrOp::forward, 0, 0});
               }).ok());
  EXPECT_FALSE(
      bad([](ProgramIR& ir) { ir.table.assign(1025, "sim://b:1"); }).ok());
}

TEST(ProgramIrCodecTest, DecodeRejectsTrailingAndTamperedFrames) {
  Bytes good = encode_program(valid_shard_ir("sim://vip:80"));
  ASSERT_TRUE(decode_program(BytesView(good)).ok());

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(decode_program(BytesView(trailing)).ok());

  Bytes bad_magic = good;
  bad_magic[0] = 'Q';
  EXPECT_FALSE(decode_program(BytesView(bad_magic)).ok());

  Bytes bad_slot = good;
  bad_slot[2] = 9;  // unknown slot kind must fail validation inside decode
  EXPECT_FALSE(decode_program(BytesView(bad_slot)).ok());
}

// --- compiled execution on the SimSwitch ---

struct ProgramExecTest : ::testing::Test {
  void SetUp() override {
    world = TestWorld::make();
    sw = SimSwitch::create(world.sim, world.discovery, SimSwitch::Config{})
             .value();
    for (int i = 0; i < 3; i++)
      taps.push_back(
          world.sim->attach("tap" + std::to_string(i), 1).value());
  }

  std::vector<Addr> tap_addrs() const {
    std::vector<Addr> a;
    for (const auto& t : taps) a.push_back(t->local_addr());
    return a;
  }

  TestWorld world;
  std::shared_ptr<SimSwitch> sw;
  std::vector<TransportPtr> taps;
};

TEST_F(ProgramExecTest, ShardProgramAgreesWithSoftwarePick) {
  std::vector<StageInfo> stages = {shard_stage(tap_addrs(), 0, 4)};
  auto plan = synthesize_prefix(stages, vip_opts("sim://xvip:80")).value();
  auto vip = sw->install_program(plan.ir);
  ASSERT_TRUE(vip.ok()) << vip.error().to_string();

  ShardArgs sargs;
  sargs.shards = tap_addrs();
  sargs.field_offset = 0;
  sargs.field_len = 4;
  auto probe = world.sim->attach("probe", 1).value();
  Rng rng(7);
  for (int i = 0; i < 40; i++) {
    Bytes payload(8 + rng.next_below(32));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.next_below(256));
    size_t expected = sargs.pick(payload);
    Bytes framed = shard_frame(probe->local_addr(), payload);
    ASSERT_TRUE(probe->send_to(vip.value(), framed).ok());
    auto got = taps[expected]->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(got.ok()) << "iteration " << i << ": program steered away "
                          << "from the software dispatcher's pick";
    EXPECT_EQ(got.value().payload, framed) << i;  // steer forwards unmodified
  }
  EXPECT_EQ(sw->steered(vip.value()), 40u);
  EXPECT_EQ(sw->program_stats(vip.value()).value().matched, 40u);
}

TEST_F(ProgramExecTest, GarbagePacketsMissNeverMisSteer) {
  std::vector<StageInfo> stages = {shard_stage(tap_addrs(), 0, 4)};
  auto plan = synthesize_prefix(stages, vip_opts("sim://gvip:80")).value();
  Addr vip = sw->install_program(plan.ir).value();

  auto probe = world.sim->attach("probe", 1).value();
  ASSERT_TRUE(probe->send_to(vip, to_bytes("XY-not-a-shard-frame")).ok());
  ASSERT_TRUE(probe->send_to(vip, to_bytes("S")).ok());  // truncated magic
  Writer w;  // valid magic, length varint promising more bytes than exist
  w.put_u8('S');
  w.put_u8('1');
  w.put_u8(200);
  ASSERT_TRUE(probe->send_to(vip, w.bytes()).ok());

  ASSERT_TRUE(poll_until(
      [&] { return sw->program_stats(vip).value().missed == 3; }))
      << "corrupt packets not accounted as misses";
  EXPECT_EQ(sw->program_stats(vip).value().matched, 0u);
  EXPECT_EQ(sw->steered(vip), 0u);
  for (auto& t : taps)
    EXPECT_FALSE(t->recv(Deadline::after(ms(50))).ok())
        << "a corrupt packet was mis-steered to a backend";
}

TEST_F(ProgramExecTest, DedupProgramDropsWithinWindowAndEvicts) {
  SynthOptions opts = vip_opts("sim://dvip:80");
  opts.default_dst = taps[0]->local_addr().to_string();
  auto plan = synthesize_prefix({dedup_stage(2)}, opts).value();
  Addr vip = sw->install_program(plan.ir).value();

  auto probe = world.sim->attach("probe", 1).value();
  auto dedup_pkt = [](uint64_t id) {
    Writer w;
    w.put_u8('D');
    w.put_u8('1');
    w.put_varint(id);
    return std::move(w).take();
  };
  // 1 delivers, the repeat drops, 2 and 3 deliver (3 evicts 1 from the
  // two-entry ring), then 1 delivers again — bounded memory, no false
  // drops after eviction.
  for (uint64_t id : {1u, 1u, 2u, 3u, 1u})
    ASSERT_TRUE(probe->send_to(vip, dedup_pkt(id)).ok());

  int delivered = 0;
  while (taps[0]->recv(Deadline::after(ms(300))).ok()) delivered++;
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(sw->program_stats(vip).value().dups, 1u);
  EXPECT_EQ(sw->program_stats(vip).value().matched, 4u);
}

TEST_F(ProgramExecTest, FramingStripRewritesThePacket) {
  SynthOptions opts = vip_opts("sim://svip:80");
  opts.default_dst = taps[1]->local_addr().to_string();
  opts.strip_parsed_headers = true;
  auto plan = synthesize_prefix({frame_stage()}, opts).value();
  Addr vip = sw->install_program(plan.ir).value();

  Writer w;  // the frame chunnel's wire form: 3 id bytes, flags, varint body
  w.put_u8(9);
  w.put_u8(0);
  w.put_u8(0);
  w.put_u8(0);
  w.put_bytes(to_bytes("bare-body"));
  auto probe = world.sim->attach("probe", 1).value();
  ASSERT_TRUE(probe->send_to(vip, w.bytes()).ok());

  auto got = taps[1]->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok());
  // The backend receives the bare payload: the switch shed the framing.
  EXPECT_EQ(to_string(got.value().payload), "bare-body");
}

TEST_F(ProgramExecTest, SequencerProgramStampsContinuously) {
  SynthOptions opts = vip_opts("sim://qvip:80");
  opts.initial_seq = 7;
  auto plan =
      synthesize_prefix({mcast_stage(taps[2]->local_addr().to_string())},
                        opts)
          .value();
  ASSERT_EQ(plan.ir.slot, SlotKind::sequencer);
  Addr vip = sw->install_program(plan.ir).value();
  EXPECT_EQ(sw->sequencer_slots_used(), 1u);
  EXPECT_EQ(world.discovery->pool_in_use(sw->slot_pool()), 1u);

  auto probe = world.sim->attach("probe", 1).value();
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(
        probe->send_to(vip, to_bytes("m" + std::to_string(i))).ok());
    auto got = taps[2]->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(got.ok()) << i;
    ASSERT_GE(got.value().payload.size(), 8u);
    uint64_t stamp = 0;
    for (int j = 7; j >= 0; j--)
      stamp = (stamp << 8) | got.value().payload[j];
    EXPECT_EQ(stamp, 7u + static_cast<uint64_t>(i));  // continuous stream
    EXPECT_EQ(to_string(BytesView(got.value().payload).subspan(8)),
              "m" + std::to_string(i));
  }
  EXPECT_EQ(sw->program_stats(vip).value().next_seq, 10u);
}

TEST_F(ProgramExecTest, SlotAccountingExhaustionAndReclaim) {
  SimSwitch::Config tiny;
  tiny.name = "tiny";
  tiny.match_action_slots = 1;
  auto ts = SimSwitch::create(world.sim, world.discovery, tiny).value();

  // A malformed program must not burn a slot.
  ProgramIR malformed = valid_shard_ir("sim://t0:80");
  malformed.instrs.clear();
  ASSERT_FALSE(ts->install_program(malformed).ok());
  EXPECT_EQ(world.discovery->pool_in_use(ts->match_action_pool()), 0u);
  // Unparsable table addresses fail at install, not per-packet.
  ProgramIR bad_table = valid_shard_ir("sim://t0:80");
  bad_table.table = {"not an addr", "sim://b:2", "sim://b:3"};
  ASSERT_FALSE(ts->install_program(bad_table).ok());
  EXPECT_EQ(world.discovery->pool_in_use(ts->match_action_pool()), 0u);

  ASSERT_TRUE(ts->install_program(valid_shard_ir("sim://t1:80")).ok());
  EXPECT_EQ(world.discovery->pool_in_use(ts->match_action_pool()), 1u);
  EXPECT_EQ(ts->match_action_slots_used(), 1u);

  auto second = ts->install_program(valid_shard_ir("sim://t2:80"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::resource_exhausted);

  ASSERT_TRUE(ts->remove_program(Addr::sim("t1", 80)).ok());
  EXPECT_EQ(world.discovery->pool_in_use(ts->match_action_pool()), 0u);
  EXPECT_TRUE(ts->install_program(valid_shard_ir("sim://t2:80")).ok());

  EXPECT_EQ(ts->remove_program(Addr::sim("gone", 1)).error().code,
            Errc::not_found);
  EXPECT_EQ(ts->program_stats(Addr::sim("gone", 1)).error().code,
            Errc::not_found);
}

TEST_F(ProgramExecTest, MetricsProviderExportsOccupancyAndCounters) {
  auto metrics = std::make_shared<MetricsRegistry>();
  attach_simswitch_metrics_provider(*metrics, sw);

  std::vector<StageInfo> stages = {shard_stage(tap_addrs(), 0, 4)};
  auto plan = synthesize_prefix(stages, vip_opts("sim://mvip:80")).value();
  Addr vip = sw->install_program(plan.ir).value();

  auto probe = world.sim->attach("probe", 1).value();
  for (int i = 0; i < 2; i++) {
    Bytes framed =
        shard_frame(probe->local_addr(), to_bytes("k" + std::to_string(i)));
    ASSERT_TRUE(probe->send_to(vip, framed).ok());
  }
  ASSERT_TRUE(probe->send_to(vip, to_bytes("garbage")).ok());
  ASSERT_TRUE(poll_until([&] {
    auto s = sw->program_stats(vip).value();
    return s.matched == 2 && s.missed == 1;
  }));

  auto snap = metrics->snapshot();
  const std::string p = "simswitch." + sw->name() + ".";
  EXPECT_EQ(snap.gauges.at(p + "match_action_slots.used"), 1.0);
  EXPECT_EQ(snap.gauges.at(p + "match_action_slots.capacity"),
            static_cast<double>(sw->config().match_action_slots));
  EXPECT_EQ(snap.gauges.at(p + "sequencer_slots.used"), 0.0);
  EXPECT_EQ(snap.counters.at(p + "steered." + vip.to_string()), 2u);
  EXPECT_EQ(snap.counters.at(p + "program." + vip.to_string() + ".matched"),
            2u);
  EXPECT_EQ(snap.counters.at(p + "program." + vip.to_string() + ".missed"),
            1u);
}

// --- synthesize_offload: install + catalogue binding lifecycle ---

struct SynthOffloadTest : ::testing::Test {
  void SetUp() override {
    world = TestWorld::make();
    sw = SimSwitch::create(world.sim, world.discovery, SimSwitch::Config{})
             .value();
    metrics = std::make_shared<MetricsRegistry>();
  }

  SynthContext ctx() {
    SynthContext c;
    c.sw = sw;
    c.discovery = world.discovery;
    c.metrics = metrics;
    c.instance = "kv-main";
    return c;
  }

  TestWorld world;
  std::shared_ptr<SimSwitch> sw;
  MetricsPtr metrics;
};

TEST_F(SynthOffloadTest, RegistersSynthesizedShardImpl) {
  std::vector<StageInfo> stages = {shard_stage(three_sim_shards(), 5, 4)};
  auto r = synthesize_offload(stages, vip_opts("sim://vip:80"), ctx());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  auto offload = r.value();

  const ImplInfo& info = offload->info();
  EXPECT_EQ(info.type, "shard");
  EXPECT_EQ(info.name, "shard/switch:synth:sim://vip:80");
  EXPECT_EQ(info.priority, 15);  // in-network beats the host XDP path
  EXPECT_EQ(info.props.at("vip_addr"), "sim://vip:80");
  EXPECT_EQ(info.props.at("switch"), sw->name());
  EXPECT_EQ(info.props.at("instance"), "kv-main");
  EXPECT_EQ(info.props.at("offloadable"), "true");
  EXPECT_EQ(info.props.at("synthesized"), "true");
  EXPECT_EQ(info.props.at("synth.fingerprint"),
            std::to_string(offload->plan().ir.source_fingerprint));
  EXPECT_EQ(info.props.at("synth.chain"), "shard/shard/xdp");
  // Every negotiated binding of this impl reserves one flow-table entry.
  ASSERT_EQ(info.resources.size(), 1u);
  EXPECT_EQ(info.resources[0].pool, sw->flow_pool());
  EXPECT_EQ(info.resources[0].amount, 1u);

  auto q = world.discovery->query("shard").value();
  bool found = false;
  for (const auto& i : q) found |= i.name == info.name;
  EXPECT_TRUE(found) << "synthesized impl missing from the catalogue";
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 1u);
  EXPECT_EQ(world.discovery->pool_in_use(sw->flow_pool()), 0u)
      << "no connection bound yet: flow entries are per-binding";
  EXPECT_EQ(counter_of(metrics, "synth.compiled"), 1u);
  EXPECT_EQ(counter_of(metrics, "synth.installed"), 1u);
  EXPECT_EQ(counter_of(metrics, "synth.registered"), 1u);
}

TEST_F(SynthOffloadTest, RemoveIsIdempotentAndReleasesEverything) {
  auto offload =
      synthesize_offload({shard_stage(three_sim_shards())},
                         vip_opts("sim://vip:80"), ctx())
          .value();
  const std::string name = offload->info().name;
  ASSERT_TRUE(offload->remove().ok());
  EXPECT_TRUE(offload->removed());
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 0u);
  auto q = world.discovery->query("shard").value();
  for (const auto& i : q) EXPECT_NE(i.name, name);
  EXPECT_TRUE(offload->remove().ok());  // idempotent
  EXPECT_EQ(counter_of(metrics, "synth.withdrawn"), 1u);
}

TEST_F(SynthOffloadTest, RemoteRevocationReclaimsTheSlot) {
  auto offload =
      synthesize_offload({shard_stage(three_sim_shards())},
                         vip_opts("sim://vip:80"), ctx())
          .value();
  // An operator pulls the registration out from under the offload: the
  // watch must tear the program down and hand the slot back.
  ASSERT_TRUE(
      world.discovery->unregister_impl("shard", offload->info().name).ok());
  EXPECT_TRUE(poll_until([&] { return offload->removed(); }))
      << "revocation watch never fired";
  EXPECT_TRUE(poll_until([&] {
    return world.discovery->pool_in_use(sw->match_action_pool()) == 0;
  })) << "switch slot leaked after remote revocation";
}

TEST_F(SynthOffloadTest, TransparentProgramsAreNotRegistered) {
  SynthOptions opts = vip_opts("sim://tvip:80");
  opts.default_dst = "sim://backend:9";
  opts.strip_parsed_headers = true;
  auto offload =
      synthesize_offload({dedup_stage(32), frame_stage()}, opts, ctx())
          .value();
  // Holds its slot and rewrites traffic, but is not negotiable.
  EXPECT_TRUE(offload->info().name.empty());
  EXPECT_TRUE(world.discovery->query("dedup").value().empty());
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 1u);
  ASSERT_TRUE(offload->remove().ok());
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 0u);
}

TEST_F(SynthOffloadTest, DeclinedSynthesisLeavesNothingBehind) {
  std::vector<StageInfo> stages = {make_stage("encrypt", "encrypt/sw", ""),
                                   shard_stage(three_sim_shards())};
  auto r = synthesize_offload(stages, vip_opts("sim://vip:80"), ctx());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 0u);
  EXPECT_TRUE(world.discovery->query("shard").value().empty());
  EXPECT_EQ(counter_of(metrics, "synth.declined"), 1u);
}

class RegisterRejectingDiscovery : public DiscoveryState {
 public:
  Result<void> register_impl(const ImplInfo& info) override {
    if (info.props.count("synthesized"))
      return err(Errc::unavailable, "catalogue refuses synthesized impls");
    return DiscoveryState::register_impl(info);
  }
};

TEST_F(SynthOffloadTest, BindFailureUnwindsProgramAndSlot) {
  auto rej = std::make_shared<RegisterRejectingDiscovery>();
  SimSwitch::Config cfg;
  cfg.name = "rej-sw";
  auto rsw = SimSwitch::create(world.sim, rej, cfg).value();
  SynthContext c;
  c.sw = rsw;
  c.discovery = rej;
  c.metrics = metrics;
  auto r = synthesize_offload({shard_stage(three_sim_shards())},
                              vip_opts("sim://rvip:80"), c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable);
  // The program was installed, then fully unwound: no slot leak behind
  // a failed registration.
  EXPECT_EQ(rej->pool_in_use(rsw->match_action_pool()), 0u);
  EXPECT_EQ(rsw->match_action_slots_used(), 0u);
  EXPECT_EQ(counter_of(metrics, "synth.bind_failed"), 1u);
}

// --- through the replicated control plane ---

TEST(ClusterSynthTest, SynthesisRegistersThroughReplicatedCatalogue) {
  auto world = TestWorld::make();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, nullptr, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("synth-host").value();

  // The switch's pools land on the replicated catalogue...
  SimSwitch::Config scfg;
  scfg.name = "rack-sw";
  auto sw = SimSwitch::create(world.sim, client, scfg).value();
  const auto& pm = client->partition_map();
  size_t slots_p = pm.index_for_pool(sw->match_action_pool());
  EXPECT_EQ(cluster->replica(slots_p, 0)
                ->state()
                ->pool_capacity(sw->match_action_pool()),
            scfg.match_action_slots);
  size_t flow_p = pm.index_for_pool(sw->flow_pool());
  EXPECT_EQ(cluster->replica(flow_p, 0)->state()->pool_capacity(
                sw->flow_pool()),
            scfg.flow_entries);

  // ...and so does the synthesized impl: registration, admission, and
  // the revocation watch all ride the control plane.
  SynthContext ctx;
  ctx.sw = sw;
  ctx.discovery = client;
  ctx.instance = "kv-main";
  auto offload = synthesize_offload({shard_stage(three_sim_shards())},
                                    vip_opts("sim://cvip:80"), ctx)
                     .value();
  auto obs = cluster->client("obs").value();
  auto q = obs->query("shard").value();
  bool found = false;
  for (const auto& i : q)
    if (i.name == offload->info().name)
      found = i.props.at("synthesized") == "true";
  EXPECT_TRUE(found) << "synthesized impl not visible to other clients";
  EXPECT_EQ(cluster->replica(slots_p, 0)
                ->state()
                ->pool_in_use(sw->match_action_pool()),
            1u);

  // Revocation issued by a different client travels back through the
  // partition's watch stream and reclaims the slot.
  ASSERT_TRUE(obs->unregister_impl("shard", offload->info().name).ok());
  EXPECT_TRUE(poll_until([&] { return offload->removed(); }, seconds(10)))
      << "cluster watch never delivered the revocation";
  EXPECT_TRUE(poll_until([&] {
    return cluster->replica(slots_p, 0)
               ->state()
               ->pool_in_use(sw->match_action_pool()) == 0;
  })) << "switch slot leaked across the control plane";
}

// --- end to end: negotiation, live transition, revocation fallback ---

TransitionTuning fast_tuning() {
  TransitionTuning t;
  t.offer_retry = ms(25);
  t.ack_timeout = ms(1000);
  t.drain_timeout = ms(300);
  t.sweep_period = ms(10);
  return t;
}

// The impl currently bound for `type` in a connection's chain.
std::string bound_impl(const ConnPtr& conn, const std::string& type) {
  auto* t = dynamic_cast<TransitionableConnection*>(conn.get());
  if (!t) return "";
  for (const auto& n : t->chain())
    if (n.type == type) return n.impl_name;
  return "";
}

struct SynthE2E : ::testing::Test {
  void SetUp() override {
    world = TestWorld::make();
    sw = SimSwitch::create(world.sim, world.discovery, SimSwitch::Config{})
             .value();
    // Raw echo backends: shard-framed requests bounce straight back to
    // the sender, so the app payload (still frame-wrapped) round-trips
    // without a KV stack — the test observes the pure data path.
    for (int i = 0; i < 3; i++) {
      auto t = world.sim->attach("bk" + std::to_string(i), 1).value();
      Transport* tp = t.get();
      backends.push_back(std::move(t));
      echoers.emplace_back([tp] {
        for (;;) {
          auto p = tp->recv();
          if (!p.ok()) return;
          auto req = parse_shard_frame(p.value().payload);
          if (!req.ok()) continue;
          (void)tp->send_to(req.value().reply_to, req.value().payload);
        }
      });
    }
  }

  void TearDown() override {
    for (auto& t : backends) t->close();
    for (auto& th : echoers) th.join();
  }

  ChunnelArgs dag_args() {
    std::vector<Addr> addrs;
    for (const auto& t : backends) addrs.push_back(t->local_addr());
    ChunnelArgs a;
    a.set("shards", format_addr_list(addrs));
    // Steer on the first app bytes *behind* the frame header: 4 fixed
    // bytes + the 1-byte length varint of a short body.
    a.set_u64("field_offset", 5);
    a.set_u64("field_len", 4);
    a.set("instance", "kv-main");
    return a;
  }

  std::shared_ptr<Runtime> make_runtime(
      const std::string& host, bool builtins, TransitionTuning tuning,
      std::shared_ptr<TransportFactory> transports = nullptr) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports = transports
                         ? transports
                         : std::make_shared<DefaultTransportFactory>(
                               world.mem, world.sim, host);
    cfg.discovery = world.discovery;
    cfg.transition_tuning = tuning;
    auto rt = Runtime::create(std::move(cfg)).value();
    if (builtins) EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
    return rt;
  }

  // A thin client: frame for the app protocol plus the shard client
  // factories, but no client-push impl, so the server's dispatcher (and
  // later the synthesized switch program) carries the data path.
  void register_client_chunnels(Runtime& rt) {
    ASSERT_TRUE(rt.register_chunnel(std::make_shared<FrameChunnel>()).ok());
    ASSERT_TRUE(register_shard_chunnels(rt, /*client_push=*/false,
                                        /*xdp=*/true, /*fallback=*/true)
                    .ok());
  }

  SynthContext synth_ctx() {
    SynthContext c;
    c.sw = sw;
    c.discovery = world.discovery;
    c.metrics = metrics;
    c.instance = "kv-main";
    return c;
  }

  // One application round trip via the echo backends; false on loss.
  [[nodiscard]] bool echo_trip(const ConnPtr& conn, int i) {
    std::string body = std::to_string(1000 + i) + "-echo-payload";
    if (!conn->send(Msg::of(body)).ok()) return false;
    auto back = conn->recv(Deadline::after(seconds(5)));
    return back.ok() && back.value().payload_str() == body;
  }

  TestWorld world;
  std::shared_ptr<SimSwitch> sw;
  std::vector<TransportPtr> backends;
  std::vector<std::thread> echoers;
  MetricsPtr metrics = std::make_shared<MetricsRegistry>();
};

TEST_F(SynthE2E, SynthesizedProgramWinsLiveTransitionAndRevokesCleanly) {
  auto srv_rt = make_runtime("srv", /*builtins=*/true, fast_tuning());
  auto cli_rt = make_runtime("cli", /*builtins=*/false, fast_tuning());
  register_client_chunnels(*cli_rt);

  // frame |> shard: on the wire the shard header is outermost (chain[0]
  // is the app-facing wrapper), which is exactly the prefix a switch
  // parser can consume.
  auto listener =
      srv_rt->endpoint("kv", wrap(ChunnelSpec("frame"),
                                  ChunnelSpec("shard", dag_args())))
          .value()
          .listen(Addr::sim("srv", 9000))
          .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  // No offload is registered anywhere: negotiation lands on the host
  // XDP dispatcher.
  ASSERT_EQ(bound_impl(srv_conn, "shard"), "shard/xdp");
  for (int i = 0; i < 3; i++) ASSERT_TRUE(echo_trip(conn, i));
  EXPECT_EQ(world.discovery->pool_in_use(sw->flow_pool()), 0u);

  // Compile the connection's own negotiated chain — no hand-registered
  // switch impl, no bespoke steering closure.
  auto* tc = dynamic_cast<TransitionableConnection*>(srv_conn.get());
  ASSERT_NE(tc, nullptr);
  auto r = synthesize_offload(wire_order_stages(tc->chain()),
                              vip_opts("sim://kv-vip:80"), synth_ctx());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  auto offload = r.value();
  const std::string synth_name = offload->info().name;
  EXPECT_EQ(synth_name, "shard/switch:synth:sim://kv-vip:80");
  EXPECT_EQ(offload->plan().stages_covered, 1u);  // steering ends the walk

  // The registration event drives a live transition onto the program;
  // every message in flight during the cutover must be answered.
  int sent = 10;
  Deadline dl = Deadline::after(seconds(15));
  while (bound_impl(conn, "shard") != synth_name) {
    ASSERT_FALSE(dl.expired()) << "upgrade onto synthesized program never "
                               << "happened; still on "
                               << bound_impl(conn, "shard");
    ASSERT_TRUE(echo_trip(conn, ++sent)) << "message lost mid-transition";
    (void)srv_conn->recv(Deadline::after(ms(10)));  // surface control frames
  }
  ASSERT_TRUE(echo_trip(conn, ++sent));
  EXPECT_GT(sw->steered(offload->vip()), 0u)
      << "traffic still flows in software despite the switch binding";

  // Server side finishes the transition (ack arrives on its channel)
  // and the binding's admission shows up in the pools: one program
  // slot, one flow-table entry for the bound connection.
  ASSERT_TRUE(poll_until([&] {
    (void)srv_conn->recv(Deadline::after(ms(10)));
    return srv_rt->transitions().stats().completed >= 1;
  })) << "server never completed the transition";
  EXPECT_EQ(srv_rt->transitions().stats().closed_mandatory, 0u);
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 1u);
  EXPECT_EQ(world.discovery->pool_in_use(sw->flow_pool()), 1u);
  auto q = world.discovery->query("shard").value();
  bool advertised = false;
  for (const auto& i : q)
    if (i.name == synth_name)
      advertised = i.props.at("synthesized") == "true" &&
                   i.props.at("synth.chain") == "shard/shard/xdp";
  EXPECT_TRUE(advertised);

  // Withdraw the offload: bound connections must fall back to software
  // (packets sent at the dead VIP in the window are lost by design, so
  // probes are tolerant), and every switch resource must come back.
  ASSERT_TRUE(offload->remove().ok());
  Deadline rdl = Deadline::after(seconds(15));
  while (bound_impl(conn, "shard") != "shard/xdp") {
    ASSERT_FALSE(rdl.expired()) << "revocation fallback never happened";
    (void)conn->send(Msg::of("probe"));
    (void)conn->recv(Deadline::after(ms(20)));
    (void)srv_conn->recv(Deadline::after(ms(10)));
  }
  // Mop up stale probe echoes, then prove the software path serves.
  while (conn->recv(Deadline::after(ms(100))).ok()) {
  }
  ASSERT_TRUE(echo_trip(conn, 900));
  EXPECT_FALSE(sw->program_stats(offload->vip()).ok())
      << "program survived withdrawal";
  EXPECT_TRUE(poll_until([&] {
    (void)srv_conn->recv(Deadline::after(ms(10)));
    return world.discovery->pool_in_use(sw->flow_pool()) == 0;
  })) << "flow-table entry leaked after revocation";
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 0u);
  for (const auto& i : world.discovery->query("shard").value())
    EXPECT_NE(i.name, synth_name);
}

// Regression for the slot-leak bug: a transition staged onto the
// synthesized impl reserves its flow-table entry at offer time; when the
// client's ack is lost and the server rolls the transition back, that
// entry must be handed back — otherwise every failed upgrade attempt
// permanently shrinks the switch's flow table. The switch here has
// exactly ONE flow entry, and the controller re-offers after every
// rollback (the release emits pool_freed, which restarts the upgrade
// pass): a leaked entry would make the second offer cycle — and the
// eventual successful upgrade — impossible to admit.
TEST_F(SynthE2E, RolledBackUpgradeReleasesFlowEntry) {
  // ack_timeout < drain_timeout: the client has cut over (and acked into
  // the void) while its old stack still drains, so the server's rollback
  // cancel can revert it.
  TransitionTuning tuning;
  tuning.offer_retry = ms(25);
  tuning.ack_timeout = ms(250);
  tuning.drain_timeout = ms(2000);
  tuning.sweep_period = ms(10);

  auto drop_acks = std::make_shared<std::atomic<bool>>(false);
  auto cli_factory = std::make_shared<FaultInjectingFactory>(
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "cli"),
      FaultInjectingTransport::Options{});
  cli_factory->set_send_filter([drop_acks](const Addr&, BytesView p) {
    return drop_acks->load() && p.size() >= kWireHeaderSize &&
           p[2] == static_cast<uint8_t>(MsgKind::transition_ack);
  });

  auto srv_rt = make_runtime("srv", /*builtins=*/true, tuning);
  auto cli_rt = make_runtime("cli", /*builtins=*/false, tuning, cli_factory);
  register_client_chunnels(*cli_rt);

  auto listener =
      srv_rt->endpoint("kv", wrap(ChunnelSpec("frame"),
                                  ChunnelSpec("shard", dag_args())))
          .value()
          .listen(Addr::sim("srv", 9100))
          .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_EQ(bound_impl(srv_conn, "shard"), "shard/xdp");
  ASSERT_TRUE(echo_trip(conn, 0));

  // A switch whose flow table admits exactly one binding: the canary.
  SimSwitch::Config tight;
  tight.name = "tight";
  tight.flow_entries = 1;
  auto tsw = SimSwitch::create(world.sim, world.discovery, tight).value();
  SynthContext tctx;
  tctx.sw = tsw;
  tctx.discovery = world.discovery;
  tctx.metrics = metrics;
  tctx.instance = "kv-main";

  // Black-hole the acks, then register the synthesized impl to provoke
  // the upgrade offer.
  drop_acks->store(true);
  auto* tc = dynamic_cast<TransitionableConnection*>(srv_conn.get());
  ASSERT_NE(tc, nullptr);
  auto offload = synthesize_offload(wire_order_stages(tc->chain()),
                                    vip_opts("sim://kv-vip2:80"), tctx)
                     .value();

  // Each cycle: the offer stages a binding and reserves the single flow
  // entry, the lost ack rolls it back, the rollback releases the entry,
  // and pool_freed restarts the upgrade pass. Two completed rollbacks
  // therefore prove the entry came back after the first — with a leak,
  // cycle two could never have admitted the impl. Messages sent on an
  // orphaned token are lost by design — keep both recv paths pumped, no
  // round-trip asserts inside this window.
  Deadline dl = Deadline::after(seconds(20));
  while (srv_rt->transitions().stats().rolled_back < 2 ||
         cli_rt->transitions().stats().reverts == 0) {
    ASSERT_FALSE(dl.expired())
        << "second rollback cycle never happened (flow entry leaked?): "
        << srv_rt->transitions().stats().rolled_back << " rollbacks";
    (void)conn->send(Msg::of("probe"));
    (void)conn->recv(Deadline::after(ms(20)));
    (void)srv_conn->recv(Deadline::after(ms(10)));
  }
  EXPECT_EQ(world.discovery->pool_in_use(tsw->match_action_pool()), 1u);
  EXPECT_FALSE(offload->removed());

  // With acks flowing again the next re-offer must complete — claiming
  // the entry the last rollback returned.
  drop_acks->store(false);
  int sent = 100;
  dl = Deadline::after(seconds(15));
  while (bound_impl(conn, "shard") != offload->info().name) {
    ASSERT_FALSE(dl.expired()) << "post-rollback upgrade never completed";
    (void)conn->send(Msg::of("probe" + std::to_string(++sent)));
    (void)conn->recv(Deadline::after(ms(20)));
    (void)srv_conn->recv(Deadline::after(ms(10)));
  }
  // Back to request/response: mop up stale probe echoes first.
  while (conn->recv(Deadline::after(ms(100))).ok()) {
  }
  ASSERT_TRUE(echo_trip(conn, 999));
  EXPECT_TRUE(poll_until([&] {
    (void)srv_conn->recv(Deadline::after(ms(10)));
    return world.discovery->pool_in_use(tsw->flow_pool()) == 1;
  })) << "bound binding does not hold exactly the one flow entry";
  EXPECT_GE(srv_rt->transitions().stats().rolled_back, 2u);
  EXPECT_GE(srv_rt->transitions().stats().completed, 1u);
}

}  // namespace
}  // namespace bertha
