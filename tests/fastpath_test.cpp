// Tests for the local fast-path chunnel (Fig 3/4's local_or_remote) and
// the service directory (dynamic name resolution).
#include <gtest/gtest.h>

#include "apps/ping.hpp"
#include "chunnels/directory.hpp"
#include "chunnels/localfastpath.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// A runtime over *real* OS transports (udp + uds) so the fast path has
// something to switch between.
std::shared_ptr<Runtime> real_runtime(const std::string& host_id,
                                      std::shared_ptr<DiscoveryState> disc) {
  RuntimeConfig cfg;
  cfg.host_id = host_id;
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  cfg.discovery = std::move(disc);
  auto rt = Runtime::create(std::move(cfg)).value();
  EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
  return rt;
}

TEST(LocalFastPathTest, SameHostConnectionRebasesToUnixSocket) {
  auto disc = std::make_shared<DiscoveryState>();
  auto rt = real_runtime("same-host", disc);

  auto listener = rt->endpoint("container-app",
                               wrap(ChunnelSpec("local_or_remote")))
                      .value()
                      .listen(Addr::udp("127.0.0.1", 0))
                      .value();
  auto conn = rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  // Traffic flows after the rebase...
  ASSERT_TRUE(conn.value()->send(Msg::of("over-uds")).ok());
  auto got = srv->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value().payload_str(), "over-uds");
  // ...and the server saw it arrive from a unix-socket source: the
  // reply path is the unix transport now.
  EXPECT_EQ(got.value().src.kind, AddrKind::uds);

  ASSERT_TRUE(srv->send(Msg::of("back")).ok());
  auto back = conn.value()->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().payload_str(), "back");
  EXPECT_EQ(back.value().src.kind, AddrKind::uds);
}

TEST(LocalFastPathTest, CrossHostStaysOnNetworkPath) {
  auto disc = std::make_shared<DiscoveryState>();
  auto srv_rt = real_runtime("host-a", disc);
  auto cli_rt = real_runtime("host-b", disc);  // different host id

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("local_or_remote")))
                      .value()
                      .listen(Addr::udp("127.0.0.1", 0))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  ASSERT_TRUE(conn.value()->send(Msg::of("via-udp")).ok());
  auto got = srv->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().payload_str(), "via-udp");
  EXPECT_EQ(got.value().src.kind, AddrKind::udp);  // no rebase happened
}

TEST(LocalFastPathTest, FastPathIsNotSlowerThanUdp) {
  // Sanity (not a benchmark): RPCs still complete promptly post-rebase.
  auto disc = std::make_shared<DiscoveryState>();
  auto rt = real_runtime("h", disc);
  auto server = PingServer::start(rt, wrap(ChunnelSpec("local_or_remote")),
                                  Addr::udp("127.0.0.1", 0))
                    .value();
  auto ep = rt->endpoint("cli", ChunnelDag::empty()).value();
  auto run = ping_over_new_connection(ep, server->addr(), 64, 10,
                                      Deadline::after(seconds(10)));
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().rtts.size(), 10u);
}

TEST(LocalFastPathTest, SimOnlyRuntimeDegradesGracefully) {
  // No unix transport available (sim-only factory): listener must still
  // come up, connections still work, no fast path advertised.
  auto world = TestWorld::make();
  RuntimeConfig cfg;
  cfg.host_id = "n1";
  cfg.transports = std::make_shared<SimTransportFactory>(world.sim, "n1");
  cfg.discovery = world.discovery;
  auto rt = Runtime::create(std::move(cfg)).value();
  ASSERT_TRUE(rt->register_chunnel(std::make_shared<LocalFastPathChunnel>())
                  .ok());

  auto listener = rt->endpoint("srv", wrap(ChunnelSpec("local_or_remote")))
                      .value()
                      .listen(Addr::sim("n1", 300))
                      .value();
  auto conn = rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn.value()->send(Msg::of("sim")).ok());
  EXPECT_EQ(srv->recv(Deadline::after(seconds(5))).value().payload_str(),
            "sim");
}

// --- service directory / dynamic name resolution (Fig 4 mechanics) ---

TEST(ServiceDirectoryTest, RegisterResolveUnregister) {
  auto disc = std::make_shared<DiscoveryState>();
  ServiceDirectory dir(disc);
  ASSERT_TRUE(dir.register_instance(
                     "kv", {Addr::udp("10.0.0.1", 1), "remote-host", 50})
                  .ok());
  auto r = dir.resolve("kv", "my-host");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().addr, Addr::udp("10.0.0.1", 1));

  ASSERT_TRUE(dir.unregister_instance("kv", Addr::udp("10.0.0.1", 1)).ok());
  EXPECT_FALSE(dir.resolve("kv", "my-host").ok());
}

TEST(ServiceDirectoryTest, LocalInstanceWinsOverLowerMetric) {
  auto disc = std::make_shared<DiscoveryState>();
  ServiceDirectory dir(disc);
  ASSERT_TRUE(dir.register_instance(
                     "kv", {Addr::udp("10.0.0.1", 1), "remote-host", 1})
                  .ok());
  ASSERT_TRUE(dir.register_instance(
                     "kv", {Addr::uds("local-kv"), "my-host", 100})
                  .ok());
  auto r = dir.resolve("kv", "my-host");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().host_id, "my-host");
  // A third host prefers the lowest metric instead.
  auto other = dir.resolve("kv", "third-host");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().host_id, "remote-host");
}

TEST(ServiceDirectoryTest, ResolutionIsPerConnection) {
  // The Fig 4 story: the client re-resolves each connect; when a local
  // instance appears, subsequent connections switch with no client
  // change.
  auto disc = std::make_shared<DiscoveryState>();
  auto rt = real_runtime("client-host", disc);
  ServiceDirectory dir(disc);

  auto remote_rt = real_runtime("remote-host", disc);
  auto remote = PingServer::start(remote_rt, ChunnelDag::empty(),
                                  Addr::udp("127.0.0.1", 0))
                    .value();
  ASSERT_TRUE(dir.register_instance(
                     "ping", {remote->addr(), "remote-host", 10})
                  .ok());

  auto ep = rt->endpoint("cli", ChunnelDag::empty()).value();
  auto addr1 = dir.resolve("ping", "client-host").value().addr;
  EXPECT_EQ(addr1, remote->addr());

  // A local instance starts...
  auto local = PingServer::start(rt, ChunnelDag::empty(),
                                 Addr::udp("127.0.0.1", 0))
                   .value();
  ASSERT_TRUE(
      dir.register_instance("ping", {local->addr(), "client-host", 10}).ok());
  // ...and the *next* resolution picks it.
  auto addr2 = dir.resolve("ping", "client-host").value().addr;
  EXPECT_EQ(addr2, local->addr());

  auto run = ping_over_new_connection(ep, addr2, 32, 1,
                                      Deadline::after(seconds(5)));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(local->echoed(), 1u);
  EXPECT_EQ(remote->echoed(), 0u);
}

TEST(ServiceDirectoryTest, WorksOverRemoteDiscoveryProtocol) {
  // The directory rides on discovery entries, so it must work through
  // the wire-protocol client too.
  auto world = TestWorld::make();
  auto st = world.mem->bind(Addr::mem("disc", 1)).value();
  DiscoveryServer server(std::move(st), world.discovery);
  auto ct = world.mem->bind(Addr::mem("cli", 0)).value();
  auto remote = std::make_shared<RemoteDiscovery>(std::move(ct), server.addr());

  ServiceDirectory dir(remote);
  ASSERT_TRUE(
      dir.register_instance("svc", {Addr::mem("s", 1), "hostX", 5}).ok());
  auto r = dir.resolve("svc", "hostX");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().addr, Addr::mem("s", 1));
}

}  // namespace
}  // namespace bertha
