// Tests for the network substrate: addresses, UDP/unix/pipe transports,
// the in-memory network, and SimNet (links, multicast groups, anycast).
#include <gtest/gtest.h>

#include <thread>

#include "net/addr.hpp"
#include "net/factory.hpp"
#include "net/memchan.hpp"
#include "net/pipe.hpp"
#include "net/simnet.hpp"
#include "net/udp.hpp"
#include "net/uds.hpp"

namespace bertha {
namespace {

// --- Addr ---

struct AddrCase {
  std::string uri;
  AddrKind kind;
  std::string host;
  uint16_t port;
};

class AddrParseTest : public ::testing::TestWithParam<AddrCase> {};

TEST_P(AddrParseTest, ParsesAndFormats) {
  const auto& c = GetParam();
  auto r = Addr::parse(c.uri);
  ASSERT_TRUE(r.ok()) << c.uri << ": " << r.error().to_string();
  EXPECT_EQ(r.value().kind, c.kind);
  EXPECT_EQ(r.value().host, c.host);
  EXPECT_EQ(r.value().port, c.port);
  EXPECT_EQ(r.value().to_string(), c.uri);  // canonical round trip
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AddrParseTest,
    ::testing::Values(
        AddrCase{"udp://127.0.0.1:5000", AddrKind::udp, "127.0.0.1", 5000},
        AddrCase{"udp://0.0.0.0:0", AddrKind::udp, "0.0.0.0", 0},
        AddrCase{"uds://my-sock", AddrKind::uds, "my-sock", 0},
        AddrCase{"mem://chan:7", AddrKind::mem, "chan", 7},
        AddrCase{"sim://node-a:9999", AddrKind::sim, "node-a", 9999}));

TEST(AddrTest, RejectsMalformed) {
  for (const char* bad :
       {"", "127.0.0.1:80", "http://x:1", "udp://:80", "udp://h",
        "udp://h:notaport", "udp://h:99999999", "uds://"})
    EXPECT_FALSE(Addr::parse(bad).ok()) << bad;
}

TEST(AddrTest, EqualityAndHash) {
  Addr a = Addr::udp("1.2.3.4", 80);
  Addr b = Addr::udp("1.2.3.4", 80);
  Addr c = Addr::udp("1.2.3.4", 81);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(AddrHash{}(a), AddrHash{}(b));
}

// --- transports, exercised uniformly ---

void expect_echo_pair(Transport& a, Transport& b) {
  Bytes payload = to_bytes("ping");
  ASSERT_TRUE(a.send_to(b.local_addr(), payload).ok());
  auto pkt = b.recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(pkt.ok()) << pkt.error().to_string();
  EXPECT_EQ(to_string(pkt.value().payload), "ping");
  // reply via the observed source
  ASSERT_TRUE(b.send_to(pkt.value().src, to_bytes("pong")).ok());
  auto back = a.recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(to_string(back.value().payload), "pong");
}

TEST(UdpTransportTest, EchoOnLoopback) {
  auto a = UdpTransport::bind(Addr::udp("127.0.0.1", 0));
  auto b = UdpTransport::bind(Addr::udp("127.0.0.1", 0));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value()->local_addr().port, 0);
  expect_echo_pair(*a.value(), *b.value());
}

TEST(UdpTransportTest, RecvTimesOut) {
  auto t = UdpTransport::bind(Addr::udp("127.0.0.1", 0));
  ASSERT_TRUE(t.ok());
  auto r = t.value()->recv(Deadline::after(ms(20)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timed_out);
}

TEST(UdpTransportTest, CloseWakesBlockedRecv) {
  auto t = UdpTransport::bind(Addr::udp("127.0.0.1", 0));
  ASSERT_TRUE(t.ok());
  Transport* raw = t.value().get();
  std::thread closer([&] {
    sleep_for(ms(30));
    raw->close();
  });
  auto r = raw->recv();
  closer.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::cancelled);
}

TEST(UdpTransportTest, RejectsWrongFamily) {
  auto t = UdpTransport::bind(Addr::udp("127.0.0.1", 0));
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t.value()->send_to(Addr::uds("x"), to_bytes("hi")).ok());
  EXPECT_FALSE(UdpTransport::bind(Addr::uds("x")).ok());
}

TEST(UdsTransportTest, EchoNamedToAutobind) {
  auto srv = UdsTransport::bind(Addr::uds("net-test-srv"));
  ASSERT_TRUE(srv.ok()) << srv.error().to_string();
  auto cli = UdsTransport::bind(Addr::uds(""));  // autobind
  ASSERT_TRUE(cli.ok());
  EXPECT_FALSE(cli.value()->local_addr().host.empty());
  expect_echo_pair(*cli.value(), *srv.value());
}

TEST(UdsTransportTest, AutobindAddrsRoundTripThroughUri) {
  auto cli = UdsTransport::bind(Addr::uds(""));
  ASSERT_TRUE(cli.ok());
  // The escaped autobind address survives uri round trip (the form
  // advertisements carry it in).
  std::string uri = cli.value()->local_addr().to_string();
  auto parsed = Addr::parse(uri);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), cli.value()->local_addr());
}

TEST(UdsTransportTest, SendToVanishedPeerIsDrop) {
  auto a = UdsTransport::bind(Addr::uds(""));
  ASSERT_TRUE(a.ok());
  // Nothing bound at this name: datagram vanishes like packet loss.
  EXPECT_TRUE(a.value()->send_to(Addr::uds("nobody-home"), to_bytes("x")).ok());
}

TEST(PipeTransportTest, BidirectionalEcho) {
  auto pair = make_pipe_pair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair.value().a->send_to(Addr(), to_bytes("over")).ok());
  auto got = pair.value().b->recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(got.value().payload), "over");
}

TEST(PipeTransportTest, PeerCloseIsVisible) {
  auto pair = make_pipe_pair();
  ASSERT_TRUE(pair.ok());
  pair.value().a->close();
  auto got = pair.value().b->recv(Deadline::after(seconds(1)));
  EXPECT_FALSE(got.ok());
}

// --- MemNetwork ---

TEST(MemNetworkTest, BindConflictAndEphemeral) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("h", 5));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(net->bind(Addr::mem("h", 5)).ok());  // taken
  auto e1 = net->bind(Addr::mem("h", 0));
  auto e2 = net->bind(Addr::mem("h", 0));
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_NE(e1.value()->local_addr().port, e2.value()->local_addr().port);
}

TEST(MemNetworkTest, DeliveryAndCounters) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("h", 1)).value();
  auto b = net->bind(Addr::mem("h", 2)).value();
  expect_echo_pair(*a, *b);
  EXPECT_EQ(net->delivered(), 2u);
  EXPECT_EQ(net->dropped(), 0u);
}

TEST(MemNetworkTest, UnboundDestinationDrops) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("h", 1)).value();
  EXPECT_TRUE(a->send_to(Addr::mem("h", 99), to_bytes("x")).ok());
  EXPECT_EQ(net->dropped(), 1u);
}

TEST(MemNetworkTest, ConfiguredLossDropsDeterministically) {
  MemNetwork::Config cfg;
  cfg.drop_rate = 0.5;
  cfg.seed = 7;
  auto net = MemNetwork::create(cfg);
  auto a = net->bind(Addr::mem("h", 1)).value();
  auto b = net->bind(Addr::mem("h", 2)).value();
  for (int i = 0; i < 200; i++)
    ASSERT_TRUE(a->send_to(b->local_addr(), to_bytes("x")).ok());
  uint64_t delivered = net->delivered();
  EXPECT_GT(delivered, 60u);
  EXPECT_LT(delivered, 140u);
  EXPECT_EQ(delivered + net->dropped(), 200u);
}

TEST(MemNetworkTest, RebindAfterClose) {
  auto net = MemNetwork::create();
  {
    auto a = net->bind(Addr::mem("h", 3)).value();
    a->close();
  }
  EXPECT_TRUE(net->bind(Addr::mem("h", 3)).ok());
}

// --- SimNet ---

TEST(SimNetTest, DeliversWithLatency) {
  SimNet::Config cfg;
  cfg.default_latency = ms(5);
  auto net = SimNet::create(cfg);
  auto a = net->attach("a", 1).value();
  auto b = net->attach("b", 1).value();
  Stopwatch sw;
  ASSERT_TRUE(a->send_to(b->local_addr(), to_bytes("hi")).ok());
  auto got = b->recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(got.ok());
  EXPECT_GE(sw.elapsed(), ms(4));
  EXPECT_EQ(got.value().src, a->local_addr());
}

TEST(SimNetTest, PerLinkLatencyOverridesDefault) {
  SimNet::Config cfg;
  cfg.default_latency = ms(50);
  auto net = SimNet::create(cfg);
  net->set_link("a", "b", us(100));
  auto a = net->attach("a", 1).value();
  auto b = net->attach("b", 1).value();
  Stopwatch sw;
  ASSERT_TRUE(a->send_to(b->local_addr(), to_bytes("hi")).ok());
  ASSERT_TRUE(b->recv(Deadline::after(seconds(2))).ok());
  EXPECT_LT(sw.elapsed(), ms(30));
}

TEST(SimNetTest, LossyLinkDrops) {
  SimNet::Config cfg;
  cfg.seed = 3;
  auto net = SimNet::create(cfg);
  net->set_link("a", "b", us(10), 1.0);  // 100% loss
  auto a = net->attach("a", 1).value();
  auto b = net->attach("b", 1).value();
  ASSERT_TRUE(a->send_to(b->local_addr(), to_bytes("x")).ok());
  EXPECT_FALSE(b->recv(Deadline::after(ms(50))).ok());
  EXPECT_EQ(net->dropped(), 1u);
}

TEST(SimNetTest, GroupFanout) {
  auto net = SimNet::create();
  auto m1 = net->attach("r1", 7).value();
  auto m2 = net->attach("r2", 7).value();
  ASSERT_TRUE(net->create_group("grp", 7, {m1->local_addr(), m2->local_addr()},
                                /*hw_sequencer=*/false)
                  .ok());
  auto cli = net->attach("c", 1).value();
  ASSERT_TRUE(cli->send_to(Addr::sim("grp", 7), to_bytes("op")).ok());
  for (auto* m : {m1.get(), m2.get()}) {
    auto got = m->recv(Deadline::after(seconds(2)));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(to_string(got.value().payload), "op");
  }
}

TEST(SimNetTest, HwSequencerStampsMonotonically) {
  auto net = SimNet::create();
  auto m = net->attach("r1", 7).value();
  ASSERT_TRUE(
      net->create_group("grp", 7, {m->local_addr()}, /*hw_sequencer=*/true)
          .ok());
  auto cli = net->attach("c", 1).value();
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(cli->send_to(Addr::sim("grp", 7), to_bytes("op")).ok());
  for (uint64_t expect_seq = 0; expect_seq < 5; expect_seq++) {
    auto got = m->recv(Deadline::after(seconds(2)));
    ASSERT_TRUE(got.ok());
    ASSERT_GE(got.value().payload.size(), 8u);
    EXPECT_EQ(get_u64_le(got.value().payload, 0), expect_seq);
  }
}

TEST(SimNetTest, DuplicateGroupRejected) {
  auto net = SimNet::create();
  auto m = net->attach("r", 7).value();
  ASSERT_TRUE(net->create_group("g", 7, {m->local_addr()}, true).ok());
  EXPECT_FALSE(net->create_group("g", 7, {m->local_addr()}, true).ok());
}

TEST(SimNetTest, AnycastRoutesToLowestMetric) {
  auto net = SimNet::create();
  auto far = net->attach("far", 1).value();
  auto near = net->attach("near", 1).value();
  Addr svc = Addr::sim("svc", 80);
  ASSERT_TRUE(net->advertise(svc, far->local_addr(), 100).ok());
  ASSERT_TRUE(net->advertise(svc, near->local_addr(), 1).ok());
  EXPECT_EQ(net->resolve_anycast(svc).value(), near->local_addr());

  auto cli = net->attach("c", 1).value();
  ASSERT_TRUE(cli->send_to(svc, to_bytes("req")).ok());
  auto got = near->recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(far->recv(Deadline::after(ms(50))).ok());

  // Withdraw the near one; traffic shifts.
  net->withdraw(svc, near->local_addr());
  ASSERT_TRUE(cli->send_to(svc, to_bytes("req2")).ok());
  EXPECT_TRUE(far->recv(Deadline::after(seconds(2))).ok());
}

TEST(SimNetTest, ShutdownWakesReceivers) {
  auto net = SimNet::create();
  auto a = net->attach("a", 1).value();
  std::thread stopper([&] {
    sleep_for(ms(20));
    net->shutdown();
  });
  auto r = a->recv(Deadline::after(seconds(5)));
  stopper.join();
  EXPECT_FALSE(r.ok());
}

// --- DefaultTransportFactory ---

TEST(FactoryTest, DispatchesByFamily) {
  auto mem = MemNetwork::create();
  auto sim = SimNet::create();
  DefaultTransportFactory f(mem, sim, "node-x");
  EXPECT_TRUE(f.bind(Addr::udp("127.0.0.1", 0)).ok());
  EXPECT_TRUE(f.bind(Addr::uds("")).ok());
  EXPECT_TRUE(f.bind(Addr::mem("m", 0)).ok());
  auto s = f.bind(Addr::sim("node-x", 0));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()->local_addr().host, "node-x");
}

TEST(FactoryTest, UnconfiguredNetworksFail) {
  DefaultTransportFactory f;
  EXPECT_FALSE(f.bind(Addr::mem("m", 0)).ok());
  EXPECT_FALSE(f.bind(Addr::sim("n", 0)).ok());
  EXPECT_FALSE(f.bind(Addr()).ok());
}

}  // namespace
}  // namespace bertha
