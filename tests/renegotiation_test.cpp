// Live renegotiation: transitioning established connections between
// implementations of the same chunnel type (core/renegotiation.hpp).
//
// The deterministic tests run over the in-memory network; the
// real-socket test at the bottom exercises the full Fig-4 story (UDP ->
// unix-socket fast path while the connection stays open).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "chunnels/common.hpp"
#include "chunnels/localfastpath.hpp"
#include "chunnels/telemetry.hpp"
#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "net/fault.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// --- message serde ---

TEST(TransitionSerdeTest, MessagesRoundTrip) {
  TransitionMsg m;
  m.epoch = 3;
  m.new_token = 0xdeadbeefULL;
  m.reason = TransitionReason::revocation;
  m.mandatory = true;
  NegotiatedNode n;
  n.type = "offload";
  n.impl_name = "offload/hw";
  n.args.set("queue", "7");
  m.chain = {n};
  m.chain_digest = 42;

  auto m2 = decode_transition(encode_transition(m));
  ASSERT_TRUE(m2.ok()) << m2.error().to_string();
  EXPECT_EQ(m2.value().epoch, 3u);
  EXPECT_EQ(m2.value().new_token, 0xdeadbeefULL);
  EXPECT_EQ(m2.value().reason, TransitionReason::revocation);
  EXPECT_TRUE(m2.value().mandatory);
  ASSERT_EQ(m2.value().chain.size(), 1u);
  EXPECT_EQ(m2.value().chain[0], n);
  EXPECT_EQ(m2.value().chain_digest, 42u);

  TransitionAckMsg a;
  a.epoch = 3;
  a.accepted = false;
  a.errc = static_cast<uint8_t>(Errc::incompatible);
  a.reason = "multi-peer";
  auto a2 = decode_transition_ack(encode_transition_ack(a));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2.value().epoch, 3u);
  EXPECT_FALSE(a2.value().accepted);
  EXPECT_EQ(a2.value().reason, "multi-peer");

  EXPECT_FALSE(decode_transition(BytesView()).ok());
  EXPECT_FALSE(decode_transition_ack(BytesView()).ok());
}

// --- shared fixtures ---

// A chunnel impl defined entirely by its metadata (the transition tests
// care about *which* impl is bound, not what it does to messages).
class InfoChunnel final : public ChunnelImpl {
 public:
  explicit InfoChunnel(ImplInfo info) : info_(std::move(info)) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }

 private:
  ImplInfo info_;
};

ImplInfo offload_info(const std::string& name, int32_t priority,
                      std::vector<ResourceReq> resources = {}) {
  ImplInfo i;
  i.type = "offload";
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = priority;
  i.resources = std::move(resources);
  return i;
}

// A DiscoveryState that reports every release() to the test, so the
// drain-before-release invariant can be checked at the exact moment a
// slot frees.
class ReleaseCheckingDiscovery : public DiscoveryState {
 public:
  Result<void> release(uint64_t alloc_id) override {
    if (auto hook = on_release.load()) (*hook)(alloc_id);
    return DiscoveryState::release(alloc_id);
  }
  std::atomic<std::function<void(uint64_t)>*> on_release{nullptr};
};

TransitionTuning fast_tuning() {
  TransitionTuning t;
  t.offer_retry = ms(25);
  t.ack_timeout = ms(1000);
  t.drain_timeout = ms(300);
  t.sweep_period = ms(10);
  return t;
}

std::shared_ptr<Runtime> mem_runtime(TestWorld& world,
                                     const std::string& host_id,
                                     std::shared_ptr<DiscoveryState> disc,
                                     bool builtins) {
  RuntimeConfig cfg;
  cfg.host_id = host_id;
  cfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, host_id);
  cfg.discovery = std::move(disc);
  cfg.transition_tuning = fast_tuning();
  auto rt = Runtime::create(std::move(cfg)).value();
  if (builtins) {
    EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
  }
  return rt;
}

// The impl currently bound for `type` in a connection's chain ("" if
// the type is absent).
std::string bound_impl(const ConnPtr& conn, const std::string& type) {
  auto* t = dynamic_cast<TransitionableConnection*>(conn.get());
  if (!t) return "";
  for (const auto& n : t->chain())
    if (n.type == type) return n.impl_name;
  return "";
}

// One application round trip; returns false on any loss/timeout.
[[nodiscard]] bool round_trip(const ConnPtr& cli, const ConnPtr& srv, int i) {
  std::string body = "m" + std::to_string(i);
  if (!cli->send(Msg::of(body)).ok()) return false;
  auto got = srv->recv(Deadline::after(seconds(5)));
  if (!got.ok() || got.value().payload_str() != body) return false;
  if (!srv->send(Msg::of("r" + body)).ok()) return false;
  auto back = cli->recv(Deadline::after(seconds(5)));
  return back.ok() && back.value().payload_str() == "r" + body;
}

// --- upgrade on impl registration ---

TEST(LiveTransitionTest, UpgradeRebindsEstablishedConnection) {
  auto world = TestWorld::make();
  auto srv_rt = mem_runtime(world, "h-srv", world.discovery, false);
  auto cli_rt = mem_runtime(world, "h-cli", world.discovery, false);
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  EXPECT_EQ(bound_impl(srv, "offload"), "offload/sw");
  ASSERT_TRUE(round_trip(conn, srv, 0));

  // A better implementation registers while the connection is open. The
  // watch event drives a live transition; nothing is torn down.
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  int sent = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "no transition after 10s";
    ASSERT_TRUE(round_trip(conn, srv, ++sent)) << "message lost mid-transition";
  }
  // The connection works on the new chain; every message was answered.
  ASSERT_TRUE(round_trip(conn, srv, ++sent));
  EXPECT_EQ(bound_impl(conn, "offload"), "offload/hw");
  auto stats = srv_rt->transitions().stats();
  EXPECT_GE(stats.completed, 1u);
  EXPECT_EQ(stats.closed_mandatory, 0u);
  EXPECT_GE(stats.watch_events, 1u);
}

// --- revocation: fallback before the slot frees ---

TEST(LiveTransitionTest, RevocationFallsBackBeforeSlotRelease) {
  auto world = TestWorld::make();
  auto disc = std::make_shared<ReleaseCheckingDiscovery>();
  auto srv_rt = mem_runtime(world, "h-srv", disc, false);
  auto cli_rt = mem_runtime(world, "h-cli", disc, false);

  ImplInfo hw = offload_info("offload/hw", 50, {{"pool.hw", 1}});
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());
  ASSERT_TRUE(disc->register_impl(hw).ok());
  ASSERT_TRUE(disc->set_pool("pool.hw", 1).ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_EQ(bound_impl(srv, "offload"), "offload/hw");
  ASSERT_EQ(disc->pool_in_use("pool.hw"), 1u);
  ASSERT_TRUE(round_trip(conn, srv, 0));

  // Interpose on release(): by the time the revoked impl's slot frees,
  // the connection must already be running on the software fallback —
  // the drain-before-release invariant.
  std::atomic<int> releases{0};
  std::atomic<int> violations{0};
  std::function<void(uint64_t)> hook = [&](uint64_t) {
    releases++;
    if (bound_impl(srv, "offload") != "offload/sw") violations++;
    if (disc->pool_in_use("pool.hw") != 1) violations++;  // slot still held
  };
  disc->on_release = &hook;

  EXPECT_EQ(srv_rt->transitions().revoke_impl(srv_rt->discovery(), "offload",
                                              "offload/hw"),
            1u);

  int sent = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (releases.load() == 0) {
    ASSERT_FALSE(dl.expired()) << "slot never released after revocation";
    ASSERT_TRUE(round_trip(conn, srv, ++sent)) << "message lost mid-revocation";
  }
  disc->on_release = nullptr;

  EXPECT_EQ(violations.load(), 0) << "slot freed before fallback was in place";
  EXPECT_EQ(bound_impl(srv, "offload"), "offload/sw");
  EXPECT_EQ(disc->pool_in_use("pool.hw"), 0u);
  // The freed slot is genuinely reusable: a new connection gets it. The
  // ban is per-runtime, so a fresh server runtime can bind hw again.
  ASSERT_TRUE(round_trip(conn, srv, ++sent));
  EXPECT_GE(srv_rt->transitions().stats().completed, 1u);
}

// --- keepalive + telemetry ride through a transition ---

TEST(LiveTransitionTest, KeepaliveAndTelemetrySurviveTransition) {
  auto world = TestWorld::make();
  auto srv_rt = mem_runtime(world, "h-srv", world.discovery, true);
  auto cli_rt = mem_runtime(world, "h-cli", world.discovery, true);
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  ChunnelArgs ka;
  ka.set("interval_us", "20000");
  ka.set("dead_after_us", "300000");
  ChunnelArgs label;
  label.set("label", "live");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("keepalive", ka),
                                               ChunnelSpec("telemetry", label),
                                               ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(round_trip(conn, srv, 0));

  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  int sent = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "no transition after 10s";
    ASSERT_TRUE(round_trip(conn, srv, ++sent));
  }
  // The new chain still carries keepalive + telemetry.
  auto* t = dynamic_cast<TransitionableConnection*>(srv.get());
  ASSERT_NE(t, nullptr);
  auto chain = t->chain();
  EXPECT_TRUE(std::any_of(chain.begin(), chain.end(),
                          [](const auto& n) { return n.type == "keepalive"; }));
  EXPECT_TRUE(std::any_of(chain.begin(), chain.end(),
                          [](const auto& n) { return n.type == "telemetry"; }));

  // Idle across several heartbeat intervals: the fresh keepalive epoch
  // must not produce a spurious liveness failure...
  auto idle = srv->recv(Deadline::after(ms(250)));
  ASSERT_FALSE(idle.ok());
  EXPECT_EQ(idle.error().code, Errc::timed_out) << idle.error().to_string();
  // ...and traffic still flows afterwards.
  ASSERT_TRUE(round_trip(conn, srv, ++sent));

  // Telemetry kept counting across the swap (client sends so far, plus
  // heartbeats — so at least every app message was seen).
  uint64_t received = 0;
  for (const auto& impl : srv_rt->registry().lookup_type("telemetry")) {
    if (auto* tel = dynamic_cast<TelemetryChunnel*>(impl.get()))
      received += tel->snapshot("live").msgs_received;
  }
  EXPECT_GE(received, static_cast<uint64_t>(sent + 1));
}

// --- multi-peer connections decline offers ---

TEST(LiveTransitionTest, MultiPeerConnectionDeclinesOffers) {
  auto world = TestWorld::make();
  auto s1_rt = mem_runtime(world, "h-s1", world.discovery, false);
  auto s2_rt = mem_runtime(world, "h-s2", world.discovery, false);
  auto cli_rt = mem_runtime(world, "h-cli", world.discovery, false);
  for (auto& rt : {s1_rt, s2_rt})
    ASSERT_TRUE(rt->register_chunnel(std::make_shared<InfoChunnel>(
                       offload_info("offload/sw", 0)))
                    .ok());

  auto l1 = s1_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                .value()
                .listen(Addr::mem("h-s1", 100))
                .value();
  auto l2 = s2_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                .value()
                .listen(Addr::mem("h-s2", 100))
                .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect({l1->addr(), l2->addr()},
                           Deadline::after(seconds(5)))
                  .value();
  auto c1 = l1->accept(Deadline::after(seconds(5))).value();
  auto c2 = l2->accept(Deadline::after(seconds(5))).value();

  // s1 gains a better impl and offers a transition; group transitions
  // are future work, so the multi-peer client must decline — and the
  // connection must keep working on the old chain.
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(s1_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  Deadline dl = Deadline::after(seconds(10));
  int i = 0;
  while (s1_rt->transitions().stats().declined == 0) {
    ASSERT_FALSE(dl.expired()) << "offer never declined";
    std::string body = "fan" + std::to_string(++i);
    ASSERT_TRUE(conn->send(Msg::of(body)).ok());
    EXPECT_EQ(c1->recv(Deadline::after(seconds(5))).value().payload_str(),
              body);
    EXPECT_EQ(c2->recv(Deadline::after(seconds(5))).value().payload_str(),
              body);
    // Pump the client recv path so the offer frame is processed.
    (void)conn->recv(Deadline::after(ms(20)));
  }
  EXPECT_EQ(bound_impl(c1, "offload"), "offload/sw");  // rolled back
  EXPECT_EQ(s1_rt->transitions().stats().completed, 0u);

  // Fan-out still works after the decline.
  ASSERT_TRUE(conn->send(Msg::of("after")).ok());
  auto r1 = c1->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_EQ(r1.value().payload_str(), "after");
  auto r2 = c2->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(r2.value().payload_str(), "after");
  c2.reset();
  c1.reset();
  conn.reset();
  l2.reset();
  l1.reset();
  cli_rt.reset();
  s2_rt.reset();
  s1_rt.reset();
}

// --- renegotiate_all with nothing better is a no-op ---

TEST(LiveTransitionTest, NoopRenegotiateAllLeavesConnectionsAlone) {
  auto world = TestWorld::make();
  auto srv_rt = mem_runtime(world, "h-srv", world.discovery, false);
  auto cli_rt = mem_runtime(world, "h-cli", world.discovery, false);
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  // Selection picks the same chain -> Begin::unchanged, no offer, no
  // epoch churn.
  EXPECT_EQ(srv_rt->transitions().renegotiate_all(), 0u);
  auto* t = dynamic_cast<TransitionableConnection*>(srv.get());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->epoch(), 0u);
  for (int i = 0; i < 5; i++) ASSERT_TRUE(round_trip(conn, srv, i));
  auto stats = srv_rt->transitions().stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.offers_sent, 0u);
}

// --- rollback notifies the client, which reverts and recovers ---

TEST(LiveTransitionTest, RollbackNotifiesClientWhichRevertsAndRecovers) {
  auto world = TestWorld::make();

  // The client's transports are fault-injectable so the test can
  // black-hole its transition acks, forcing the server's ack deadline to
  // pass while the client has already cut over — the lost-ack rollback.
  auto drop_acks = std::make_shared<std::atomic<bool>>(false);
  auto cli_factory = std::make_shared<FaultInjectingFactory>(
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-cli"),
      FaultInjectingTransport::Options{});
  cli_factory->set_send_filter([drop_acks](const Addr&, BytesView p) {
    return drop_acks->load() && p.size() >= kWireHeaderSize &&
           p[2] == static_cast<uint8_t>(MsgKind::transition_ack);
  });

  // Cancel/revert needs the old epoch to still be draining when the ack
  // deadline passes (the revert target is the draining stack), so
  // ack_timeout < drain_timeout — the opposite of fast_tuning().
  TransitionTuning tuning;
  tuning.offer_retry = ms(25);
  tuning.ack_timeout = ms(250);
  tuning.drain_timeout = ms(2000);
  tuning.sweep_period = ms(10);

  RuntimeConfig scfg;
  scfg.host_id = "h-srv";
  scfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-srv");
  scfg.discovery = world.discovery;
  scfg.transition_tuning = tuning;
  auto srv_rt = Runtime::create(std::move(scfg)).value();
  RuntimeConfig ccfg;
  ccfg.host_id = "h-cli";
  ccfg.transports = cli_factory;
  ccfg.discovery = world.discovery;
  ccfg.transition_tuning = tuning;
  auto cli_rt = Runtime::create(std::move(ccfg)).value();

  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(round_trip(conn, srv, 0));

  // Black-hole acks, then provoke an upgrade offer.
  drop_acks->store(true);
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  // The client cuts over and acks into the void; at the ack deadline the
  // server rolls back and sends transition_cancel on the old token; the
  // client reverts onto its still-draining old stack. Keep both recv
  // paths pumped — messages the client sends on the orphaned new token
  // are lost by design, so no round-trip asserts inside this window.
  Deadline dl = Deadline::after(seconds(10));
  while (srv_rt->transitions().stats().rolled_back == 0 ||
         cli_rt->transitions().stats().reverts == 0) {
    ASSERT_FALSE(dl.expired()) << "rollback/revert never happened";
    (void)conn->send(Msg::of("probe"));
    (void)srv->recv(Deadline::after(ms(20)));
    (void)conn->recv(Deadline::after(ms(20)));
  }
  auto mid = srv_rt->transitions().stats();
  EXPECT_GE(mid.cancels_sent, 1u);
  EXPECT_EQ(mid.completed, 0u);
  EXPECT_EQ(bound_impl(conn, "offload"), "offload/sw") << "revert missed";

  // Both sides are back on the old epoch. Drain the probes that landed
  // on the old stack before the cutover, then verify traffic flows.
  drop_acks->store(false);
  while (srv->recv(Deadline::after(ms(100))).ok()) {
  }
  int sent = 100;
  ASSERT_TRUE(round_trip(conn, srv, ++sent));

  // The connection is not poisoned: a fresh offer (the server reuses the
  // epoch number, so a stale cached ack would break this) now completes.
  EXPECT_GE(srv_rt->transitions().renegotiate_all(), 1u);
  dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "post-revert upgrade never completed";
    ASSERT_TRUE(round_trip(conn, srv, ++sent)) << "message lost after revert";
  }
  ASSERT_TRUE(round_trip(conn, srv, ++sent));
  EXPECT_EQ(bound_impl(conn, "offload"), "offload/hw");
  auto stats = srv_rt->transitions().stats();
  EXPECT_GE(stats.completed, 1u);
  EXPECT_GE(stats.rolled_back, 1u);
}

// Regression: a transition_cancel that arrives *after* the client's old
// stack finished draining has nothing to revert onto (revert() reports
// not_found). The client must close the dead-epoch connection promptly —
// not keep sending into a token the server has rolled away from — and a
// fresh connection must establish cleanly afterwards.
TEST(LiveTransitionTest, CancelAfterDrainClosesDeadEpochConnection) {
  auto world = TestWorld::make();

  auto drop_acks = std::make_shared<std::atomic<bool>>(false);
  auto cli_factory = std::make_shared<FaultInjectingFactory>(
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-cli"),
      FaultInjectingTransport::Options{});
  cli_factory->set_send_filter([drop_acks](const Addr&, BytesView p) {
    return drop_acks->load() && p.size() >= kWireHeaderSize &&
           p[2] == static_cast<uint8_t>(MsgKind::transition_ack);
  });

  // The opposite ordering from the revert test: ack_timeout > drain_timeout,
  // so the client's old stack is fully drained by the time the server's ack
  // deadline passes and the cancel goes out.
  TransitionTuning tuning;
  tuning.offer_retry = ms(25);
  tuning.ack_timeout = ms(700);
  tuning.drain_timeout = ms(50);
  tuning.sweep_period = ms(10);

  RuntimeConfig scfg;
  scfg.host_id = "h-srv";
  scfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-srv");
  scfg.discovery = world.discovery;
  scfg.transition_tuning = tuning;
  auto srv_rt = Runtime::create(std::move(scfg)).value();
  RuntimeConfig ccfg;
  ccfg.host_id = "h-cli";
  ccfg.transports = cli_factory;
  ccfg.discovery = world.discovery;
  ccfg.transition_tuning = tuning;
  auto cli_rt = Runtime::create(std::move(ccfg)).value();

  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 101))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(round_trip(conn, srv, 0));

  // Black-hole acks and provoke an upgrade. The client cuts over, acks
  // into the void, and drains its old stack well before the server gives
  // up and cancels.
  drop_acks->store(true);
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  Deadline dl = Deadline::after(seconds(15));
  while (cli_rt->transitions().stats().dead_epoch_closes == 0) {
    ASSERT_FALSE(dl.expired()) << "dead-epoch connection never closed";
    (void)conn->send(Msg::of("probe"));
    (void)srv->recv(Deadline::after(ms(20)));
    (void)conn->recv(Deadline::after(ms(20)));
  }
  EXPECT_GE(srv_rt->transitions().stats().rolled_back, 1u);
  EXPECT_GE(srv_rt->transitions().stats().cancels_sent, 1u);
  EXPECT_EQ(cli_rt->transitions().stats().reverts, 0u)
      << "there was nothing left to revert onto";

  // Closed means closed: no hanging recv, no sends into the dead epoch.
  EXPECT_FALSE(conn->recv(Deadline::after(ms(100))).ok());
  EXPECT_FALSE(conn->send(Msg::of("into the void")).ok());

  // The listener is unharmed: a fresh connection (acks flowing again)
  // establishes and upgrades normally.
  drop_acks->store(false);
  auto conn2 = cli_rt->endpoint("cli2", ChunnelDag::empty())
                   .value()
                   .connect(listener->addr(), Deadline::after(seconds(5)))
                   .value();
  auto srv2 = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(round_trip(conn2, srv2, 1));
}

// --- the Fig-4 story over real sockets: UDP -> unix-socket fast path ---

TEST(LiveTransitionTest, LiveUpgradeToLocalFastPath) {
  // Server and client share a host but run in separate runtimes (the
  // containerized-app deployment). The server starts with only the
  // passthrough local_or_remote impl: traffic flows over UDP. The fast
  // path library "loads" mid-connection; the established connection
  // must migrate onto the unix socket without dropping a message.
  auto disc = std::make_shared<DiscoveryState>();
  RuntimeConfig scfg;
  scfg.host_id = "fp-host";
  scfg.transports = std::make_shared<DefaultTransportFactory>();
  scfg.discovery = disc;
  scfg.transition_tuning = fast_tuning();
  auto srv_rt = Runtime::create(std::move(scfg)).value();
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<PassthroughChunnel>(
                      "local_or_remote", "local_or_remote/none"))
                  .ok());

  RuntimeConfig ccfg;
  ccfg.host_id = "fp-host";  // same host: the fast path applies
  ccfg.transports = std::make_shared<DefaultTransportFactory>();
  ccfg.discovery = disc;
  ccfg.transition_tuning = fast_tuning();
  auto cli_rt = Runtime::create(std::move(ccfg)).value();
  ASSERT_TRUE(register_builtin_chunnels(*cli_rt).ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("local_or_remote")))
                      .value()
                      .listen(Addr::udp("127.0.0.1", 0))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  ASSERT_TRUE(conn->send(Msg::of("pre")).ok());
  auto first = srv->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().src.kind, AddrKind::udp);  // no fast path yet
  ASSERT_TRUE(srv->send(Msg::of("rpre")).ok());
  ASSERT_TRUE(conn->recv(Deadline::after(seconds(5))).ok());

  // The offload library loads: register the impl and announce it. The
  // listener late-activates its on_listen (binding the unix socket) and
  // the controller transitions the live connection onto it.
  auto fp = std::make_shared<LocalFastPathChunnel>();
  ImplInfo fp_info = fp->info();
  ASSERT_TRUE(srv_rt->register_chunnel(fp).ok());
  ASSERT_TRUE(disc->register_impl(fp_info).ok());

  int i = 0;
  bool over_uds = false;
  Deadline dl = Deadline::after(seconds(10));
  while (!over_uds) {
    ASSERT_FALSE(dl.expired()) << "connection never moved to the unix socket";
    std::string body = "m" + std::to_string(++i);
    ASSERT_TRUE(conn->send(Msg::of(body)).ok());
    auto got = srv->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(got.ok()) << "lost " << body << ": "
                          << got.error().to_string();
    ASSERT_EQ(got.value().payload_str(), body);
    over_uds = got.value().src.kind == AddrKind::uds;
    ASSERT_TRUE(srv->send(Msg::of("r" + body)).ok());
    auto back = conn->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(back.ok()) << "lost reply to " << body;
    ASSERT_EQ(back.value().payload_str(), "r" + body);
  }
  EXPECT_EQ(bound_impl(srv, "local_or_remote"), "local_or_remote/uds");
  auto stats = srv_rt->transitions().stats();
  EXPECT_GE(stats.completed, 1u);
  EXPECT_GT(stats.max_cutover_ns, 0u);
}

// --- epoch minting ---

// Transition epochs are namespaced by server identity: a restarted or
// migrated peer (same connection token, different listener) can never
// re-mint an epoch number an old listener already used, so stale acks and
// cached per-epoch state can't collide across server generations.
TEST(LiveTransitionTest, TransitionEpochsCarryServerIdentitySalt) {
  // The salt is deterministic per identity, occupies only the bits above
  // the counter, and distinct identities mint from disjoint spaces.
  uint64_t s1 = mint_epoch_salt("h-a|p0|mem:h-a:100");
  uint64_t s2 = mint_epoch_salt("h-b|p0|mem:h-b:100");
  EXPECT_EQ(s1, mint_epoch_salt("h-a|p0|mem:h-a:100"));
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1 & kEpochCounterMask, 0u);
  EXPECT_EQ(s2 & kEpochCounterMask, 0u);
  EXPECT_NE(s1, 0u);

  // Live check: an upgrade mints salt | 1 — the low bits count
  // transitions on this connection, the high bits are this listener's.
  auto world = TestWorld::make();
  auto srv_rt = mem_runtime(world, "h-srv", world.discovery, false);
  auto cli_rt = mem_runtime(world, "h-cli", world.discovery, false);
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  int sent = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "no transition after 10s";
    ASSERT_TRUE(round_trip(conn, srv, ++sent));
  }

  auto* t = dynamic_cast<TransitionableConnection*>(srv.get());
  ASSERT_NE(t, nullptr);
  uint64_t expected_salt = mint_epoch_salt(
      srv_rt->config().host_id + "|" + srv_rt->config().process_id + "|" +
      listener->addr().to_string());
  EXPECT_EQ(t->epoch() & ~kEpochCounterMask, expected_salt)
      << "minted epoch not salted with the listener identity";
  EXPECT_EQ(t->epoch() & kEpochCounterMask, 1u)
      << "first transition should mint counter 1";
  // Both ends agree on the full (salted) epoch.
  auto* tc = dynamic_cast<TransitionableConnection*>(conn.get());
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->epoch(), t->epoch());
}

}  // namespace
}  // namespace bertha
