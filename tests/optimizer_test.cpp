// Tests for the §6 DAG optimizer: PCIe cost model, reorder, merge,
// elide — including the paper's encrypt |> http2 |> tcp example.
#include <gtest/gtest.h>

#include "core/optimizer.hpp"

namespace bertha {
namespace {

OptStage stage(std::string type, bool offload, double size = 1.0,
               std::set<std::string> commutes = {}) {
  OptStage s;
  s.type = std::move(type);
  s.offloadable = offload;
  s.size_factor = size;
  s.commutes_with = std::move(commutes);
  return s;
}

TEST(OptimizerCostTest, AllHostPipelineCrossesOnce) {
  std::vector<OptStage> p{stage("a", false), stage("b", false)};
  EXPECT_EQ(DagOptimizer::count_crossings(p), 1);  // final hop to the wire
  EXPECT_DOUBLE_EQ(DagOptimizer::pcie_cost(p), 1.0);
}

TEST(OptimizerCostTest, AllNicPipelineCrossesOnce) {
  std::vector<OptStage> p{stage("a", true), stage("b", true)};
  EXPECT_EQ(DagOptimizer::count_crossings(p), 1);
  EXPECT_DOUBLE_EQ(DagOptimizer::pcie_cost(p), 1.0);
}

TEST(OptimizerCostTest, PingPongCostsThreeCrossings) {
  // The paper's as-written example: encrypt on NIC, http2 on host, tcp
  // on NIC = NIC-CPU-NIC, a "3x increase ... over PCIe".
  std::vector<OptStage> p{stage("encrypt", true), stage("http2", false),
                          stage("tcp", true)};
  EXPECT_EQ(DagOptimizer::count_crossings(p), 3);
  EXPECT_DOUBLE_EQ(DagOptimizer::pcie_cost(p), 3.0);
}

TEST(OptimizerCostTest, SizeFactorScalesLaterCrossings) {
  // compress halves the data before it crosses to the NIC.
  std::vector<OptStage> p{stage("compress", false, 0.5), stage("send", true)};
  EXPECT_DOUBLE_EQ(DagOptimizer::pcie_cost(p), 0.5);
}

TEST(OptimizerTest, PaperExampleReorders) {
  // encrypt |> http2 |> tcp, with encrypt<->http2 commuting: reordered
  // to http2 |> encrypt |> tcp, PCIe drops from 3x to 1x.
  DagOptimizer opt;
  std::vector<OptStage> p{
      stage("encrypt", true, 1.0, {"http2"}),
      stage("http2", false, 1.0, {"encrypt", "tcp"}),
      stage("tcp", true, 1.0, {"http2"}),
  };
  ASSERT_DOUBLE_EQ(DagOptimizer::pcie_cost(p), 3.0);
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().stages.size(), 3u);
  EXPECT_EQ(plan.value().stages[0].type, "http2");
  EXPECT_EQ(plan.value().stages[1].type, "encrypt");
  EXPECT_EQ(plan.value().stages[2].type, "tcp");
  EXPECT_EQ(plan.value().pcie_crossings, 1);
  EXPECT_DOUBLE_EQ(plan.value().pcie_bytes_per_input_byte, 1.0);
}

TEST(OptimizerTest, NonCommutingStagesStayPut) {
  DagOptimizer opt;
  std::vector<OptStage> p{stage("encrypt", true), stage("http2", false),
                          stage("tcp", true)};
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().stages[0].type, "encrypt");
  EXPECT_EQ(plan.value().pcie_crossings, 3);  // can't improve legally
}

TEST(OptimizerTest, CommutativityMustBeMutual) {
  DagOptimizer opt;
  // encrypt says it commutes with http2, but http2 doesn't agree.
  std::vector<OptStage> p{stage("encrypt", true, 1.0, {"http2"}),
                          stage("http2", false), stage("tcp", true)};
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().stages[0].type, "encrypt");
}

TEST(OptimizerTest, MergeToTls) {
  // "if the SmartNIC did not explicitly offer separate offloads for
  // encryption and TCP, but did offer one for TLS, Bertha could reorder
  // and then merge the last two Chunnels."
  DagOptimizer opt;
  opt.add_merge_rule({"encrypt", "tcp", "tls", true});
  std::vector<OptStage> p{
      stage("encrypt", false, 1.0, {"http2"}),  // no separate crypto offload
      stage("http2", false, 1.0, {"encrypt", "tcp"}),
      stage("tcp", false, 1.0, {"http2"}),
  };
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().stages.size(), 2u);
  EXPECT_EQ(plan.value().stages.back().type, "tls");
  EXPECT_TRUE(plan.value().stages.back().offloadable);
  EXPECT_EQ(plan.value().pcie_crossings, 1);
  // Both rewrites are reported.
  bool saw_merge = false;
  for (const auto& a : plan.value().applied)
    if (a.find("merge") != std::string::npos) saw_merge = true;
  EXPECT_TRUE(saw_merge);
}

TEST(OptimizerTest, ElideAdjacentDuplicates) {
  DagOptimizer opt;
  std::vector<OptStage> p{stage("compress", false), stage("compress", false),
                          stage("send", true)};
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().stages.size(), 2u);
  EXPECT_EQ(plan.value().stages[0].type, "compress");
}

TEST(OptimizerTest, EmptyAndSingleStagePipelines) {
  DagOptimizer opt;
  auto empty = opt.optimize({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().stages.empty());

  auto single = opt.optimize({stage("x", false)});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().pcie_crossings, 1);
}

TEST(OptimizerTest, CompressionMovedBeforePcieWhenAllowed) {
  // A host-side compressor that commutes with an offloaded encryptor:
  // best order compresses first so fewer bytes cross the bus.
  DagOptimizer opt;
  std::vector<OptStage> p{
      stage("encrypt", true, 1.0, {"compress"}),
      stage("compress", false, 0.25, {"encrypt"}),
  };
  // as-written: host->nic (1.0) + nic->host (1.0) + host->nic (0.25)
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().stages[0].type, "compress");
  EXPECT_DOUBLE_EQ(plan.value().pcie_bytes_per_input_byte, 0.25);
}

TEST(OptimizerTest, MergedStageInheritsCommonCommutes) {
  DagOptimizer opt;
  opt.add_merge_rule({"a", "b", "ab", true});
  std::vector<OptStage> p{
      stage("a", false, 1.0, {"b", "x"}),
      stage("b", false, 1.0, {"a", "x"}),
      stage("x", false, 1.0, {"a", "b", "ab"}),
  };
  auto plan = opt.optimize(p);
  ASSERT_TRUE(plan.ok());
  bool found = false;
  for (const auto& s : plan.value().stages)
    if (s.type == "ab") {
      found = true;
      EXPECT_TRUE(s.commutes_with.count("x"));
    }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bertha
