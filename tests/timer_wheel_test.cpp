// Timer wheel unit suite (deterministic-clock mode unless noted).
//
// The wheel replaces per-connection beater threads, so its edge cases
// are connection-liveness edge cases: a timer that fires one tick early
// is a spurious keepalive, one that fires late past dead_after is a
// false dead-peer verdict, and a cancel that loses the race with fire
// is a heartbeat on a closed connection.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/timer_wheel.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BERTHA_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define BERTHA_TSAN 1
#endif

namespace bertha {
namespace {

TimerWheelPtr manual_wheel(size_t slots = 16) {
  TimerWheel::Options o;
  o.tick = ms(10);
  o.slots = slots;
  o.manual = true;
  return TimerWheel::create(o);
}

TEST(TimerWheelTest, DelayRoundsUpToTickAndNeverFiresEarly) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  w->schedule(ms(25), [&] { fired++; });  // rounds up to 30ms (tick 3)
  w->advance(ms(10));
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 0) << "fired before the rounded-up deadline";
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
  w->advance(ms(100));
  EXPECT_EQ(fired.load(), 1) << "one-shot fired twice";
}

TEST(TimerWheelTest, ExactTickBoundaryFiresOnThatTick) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  w->schedule(ms(20), [&] { fired++; });
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 0);
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextTickNotInline) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  w->schedule(Duration::zero(), [&] { fired++; });
  EXPECT_EQ(fired.load(), 0) << "zero delay must not fire inside schedule()";
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TimerWheelTest, ScheduleAfterAdvanceClampsIntoTheFuture) {
  auto w = manual_wheel();
  w->advance(ms(50));
  std::atomic<int> fired{0};
  w->schedule(Duration::zero(), [&] { fired++; });
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TimerWheelTest, LongDelaySurvivesWheelRevolutions) {
  // 8 slots x 10ms = one revolution per 80ms; a 1s timer sits through
  // 12 revolutions of its slot being visited without firing.
  auto w = manual_wheel(8);
  std::atomic<int> fired{0};
  w->schedule(ms(1000), [&] { fired++; });
  for (int t = 10; t <= 990; t += 10) w->advance(ms(10));
  EXPECT_EQ(fired.load(), 0) << "fired a revolution early";
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TimerWheelTest, BigJumpFiresEverythingInOnePass) {
  auto w = manual_wheel(8);
  std::atomic<int> fired{0};
  for (int i = 1; i <= 64; i++)
    w->schedule(ms(10 * i), [&] { fired++; });
  // One advance spanning many revolutions takes the single-pass path;
  // every timer with a deadline inside the span fires exactly once.
  w->advance(seconds(10));
  EXPECT_EQ(fired.load(), 64);
  EXPECT_EQ(w->stats().armed, 0u);
}

TEST(TimerWheelTest, PeriodicReArmsAndSkipsMissedPeriods) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  uint64_t id = w->schedule_periodic(ms(10), [&] { fired++; });
  w->advance(ms(10));
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 2);
  // A coarse advance spanning 10 periods is one late tick, not a burst
  // of 10 catch-up beats (keepalives must not storm after a stall).
  w->advance(ms(100));
  EXPECT_EQ(fired.load(), 3);
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 4);
  EXPECT_TRUE(w->cancel(id)) << "periodic id must stay cancellable forever";
  w->advance(ms(100));
  EXPECT_EQ(fired.load(), 4);
}

TEST(TimerWheelTest, CancelBeforeFirePreventsCallback) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  uint64_t id = w->schedule(ms(30), [&] { fired++; });
  EXPECT_TRUE(w->cancel(id));
  EXPECT_FALSE(w->cancel(id)) << "second cancel of the same id";
  w->advance(ms(100));
  EXPECT_EQ(fired.load(), 0);
  auto s = w->stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.fired, 0u);
  EXPECT_EQ(s.armed, 0u);
}

TEST(TimerWheelTest, CancelAfterFireReturnsFalse) {
  auto w = manual_wheel();
  uint64_t id = w->schedule(ms(10), [] {});
  w->advance(ms(10));
  EXPECT_FALSE(w->cancel(id));
  EXPECT_FALSE(w->cancel(12345)) << "unknown id";
}

TEST(TimerWheelTest, MassExpiryInOneTick) {
#ifdef BERTHA_TSAN
  constexpr int kTimers = 2000;
#else
  constexpr int kTimers = 50000;
#endif
  TimerWheel::Options o;
  o.tick = ms(10);
  o.slots = 64;  // far fewer slots than timers: every bucket collides
  o.manual = true;
  auto w = TimerWheel::create(o);
  std::atomic<int> fired{0};
  for (int i = 0; i < kTimers; i++)
    w->schedule(ms(10), [&] { fired++; });
  EXPECT_EQ(w->stats().armed, static_cast<uint64_t>(kTimers));
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), kTimers);
  auto s = w->stats();
  EXPECT_EQ(s.fired, static_cast<uint64_t>(kTimers));
  EXPECT_EQ(s.armed, 0u);
  EXPECT_EQ(s.max_fired_in_tick, static_cast<uint64_t>(kTimers));
}

TEST(TimerWheelTest, CallbackMayScheduleAndCancel) {
  auto w = manual_wheel();
  std::atomic<int> chained{0};
  w->schedule(ms(10), [&] {
    w->schedule(ms(10), [&] { chained++; });
  });
  w->advance(ms(10));
  EXPECT_EQ(chained.load(), 0);
  w->advance(ms(10));
  EXPECT_EQ(chained.load(), 1);
}

TEST(TimerWheelTest, SelfCancelFromCallbackDoesNotDeadlock) {
  auto w = manual_wheel();
  std::atomic<int> fired{0};
  auto id = std::make_shared<uint64_t>(0);
  *id = w->schedule_periodic(ms(10), [&, id] {
    fired++;
    w->cancel_sync(*id);  // must detect "cancelling myself" and not wait
  });
  w->advance(ms(10));
  EXPECT_EQ(fired.load(), 1);
  w->advance(ms(100));
  EXPECT_EQ(fired.load(), 1) << "self-cancel did not stop the periodic";
}

// The cancel-vs-fire race: an advancing thread fires one-shot timers
// while the main thread cancels them at random points. The invariant —
// cancel() returned true XOR the callback ran — is exactly "no
// heartbeat is sent on a connection whose close() saw cancel succeed".
TEST(TimerWheelTest, CancelVsFireRaceIsExactlyOnce) {
#ifdef BERTHA_TSAN
  constexpr int kRounds = 300;
#else
  constexpr int kRounds = 2000;
#endif
  auto w = manual_wheel();
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    while (!stop.load(std::memory_order_relaxed)) w->advance(ms(10));
  });
  for (int i = 0; i < kRounds; i++) {
    auto fired = std::make_shared<std::atomic<bool>>(false);
    uint64_t id = w->schedule(Duration::zero(), [fired] {
      fired->store(true, std::memory_order_relaxed);
    });
    if (i % 3 == 0) std::this_thread::yield();
    bool cancelled = w->cancel(id);
    w->cancel_sync(id);  // drain any in-flight invocation
    bool ran = fired->load(std::memory_order_relaxed);
    EXPECT_NE(cancelled, ran)
        << "round " << i << ": cancelled=" << cancelled << " ran=" << ran;
  }
  stop.store(true);
  driver.join();
}

// cancel_sync must not return while the callback is still running on
// the tick thread (close() relies on this to tear down the connection
// under the callback's feet safely).
TEST(TimerWheelTest, CancelSyncWaitsForInFlightCallback) {
  auto w = manual_wheel();
  std::atomic<int> seq{0};
  std::atomic<int> cb_entered{0};
  std::atomic<bool> release{false};
  std::atomic<int> cb_done_at{0};
  uint64_t id = w->schedule(ms(10), [&] {
    cb_entered.store(1);
    while (!release.load()) std::this_thread::yield();
    cb_done_at.store(++seq);
  });
  std::thread driver([&] { w->advance(ms(10)); });
  while (!cb_entered.load()) std::this_thread::yield();
  std::thread canceller([&] { w->cancel_sync(id); });
  // Give cancel_sync a moment to (incorrectly) return early.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  canceller.join();
  int sync_at = ++seq;
  driver.join();
  EXPECT_GT(cb_done_at.load(), 0);
  EXPECT_LT(cb_done_at.load(), sync_at)
      << "cancel_sync returned before the in-flight callback finished";
}

TEST(TimerWheelTest, ThreadModeFiresOnRealClock) {
  TimerWheel::Options o;
  o.tick = ms(1);
  auto w = TimerWheel::create(o);
  std::atomic<int> fired{0};
  w->schedule(ms(5), [&] { fired++; });
  for (int i = 0; i < 2000 && fired.load() == 0; i++)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fired.load(), 1);
  w->stop();
  w->stop();  // idempotent
}

TEST(TimerWheelTest, StopPreventsFurtherFires) {
  TimerWheel::Options o;
  o.tick = ms(1);
  auto w = TimerWheel::create(o);
  std::atomic<int> fired{0};
  uint64_t id = w->schedule_periodic(ms(200), [&] { fired++; });
  w->stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 0);
  EXPECT_TRUE(w->cancel(id)) << "cancel must still work after stop";
}

TEST(TimerWheelTest, MetricsProviderExportsCounters) {
  auto m = std::make_shared<MetricsRegistry>();
  TimerWheel::Options o;
  o.tick = ms(10);
  o.manual = true;
  o.metrics = m;
  auto w = TimerWheel::create(o);
  attach_timer_wheel_provider(*m, w);
  uint64_t id = w->schedule(ms(10), [] {});
  w->schedule(ms(10), [] {});
  (void)w->cancel(id);
  w->advance(ms(10));
  auto snap = m->snapshot();
  EXPECT_EQ(snap.counters["scale.wheel.scheduled"], 2u);
  EXPECT_EQ(snap.counters["scale.wheel.fired"], 1u);
  EXPECT_EQ(snap.counters["scale.wheel.cancelled"], 1u);
  EXPECT_EQ(snap.counters["scale.wheel.armed"], 0u);
  EXPECT_GE(snap.counters["scale.wheel.ticks"], 1u);
}

}  // namespace
}  // namespace bertha
