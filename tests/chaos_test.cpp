// Chaos tests: the fault-tolerance machinery under sustained packet loss
// and partitions. The FaultInjectingTransport gives deterministic (seeded)
// chaos, so these are regular tier-1 tests, not a flaky soak suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "control/cluster.hpp"
#include "control/reshard.hpp"
#include "util/clock.hpp"
#include "core/discovery_cache.hpp"
#include "core/renegotiation.hpp"
#include "net/fault.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

class InfoChunnel final : public ChunnelImpl {
 public:
  explicit InfoChunnel(ImplInfo info) : info_(std::move(info)) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }

 private:
  ImplInfo info_;
};

ImplInfo offload_info(const std::string& name, int32_t priority,
                      std::vector<ResourceReq> resources = {}) {
  ImplInfo i;
  i.type = "offload";
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = priority;
  i.resources = std::move(resources);
  return i;
}

std::string bound_impl(const ConnPtr& conn, const std::string& type) {
  auto* t = dynamic_cast<TransitionableConnection*>(conn.get());
  if (!t) return "";
  for (const auto& n : t->chain())
    if (n.type == type) return n.impl_name;
  return "";
}

[[nodiscard]] bool round_trip(const ConnPtr& cli, const ConnPtr& srv, int i) {
  std::string body = "m" + std::to_string(i);
  if (!cli->send(Msg::of(body)).ok()) return false;
  auto got = srv->recv(Deadline::after(seconds(5)));
  if (!got.ok() || got.value().payload_str() != body) return false;
  if (!srv->send(Msg::of("r" + body)).ok()) return false;
  auto back = cli->recv(Deadline::after(seconds(5)));
  return back.ok() && back.value().payload_str() == "r" + body;
}

// 100 acquire/release cycles against a discovery server behind a link
// dropping 20% of datagrams each way. Idempotent retries must converge
// with zero leaked allocations and zero duplicate allocation ids.
TEST(ChaosTest, AcquireReleaseConvergesUnderTwentyPercentLoss) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->set_pool("pool.x", 4).ok());
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  FaultInjectingTransport::Options fo;
  fo.drop = 0.2;  // applied independently to requests and responses
  fo.seed = 0xC0FFEE;
  auto stats = std::make_shared<FaultStats>();
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(60);
  ro.retries = 10;
  ro.backoff = {ms(5), 2.0, ms(40), 0.3};
  ro.backoff_seed = 9;
  ro.stats = stats;
  RemoteDiscovery client(
      TransportPtr(new FaultInjectingTransport(
          net->bind(Addr::mem("cli", 0)).value(), fo)),
      server.addr(), ro);

  std::set<uint64_t> ids;
  for (int cycle = 0; cycle < 100; cycle++) {
    auto id = client.acquire({{"pool.x", 1}});
    ASSERT_TRUE(id.ok()) << "cycle " << cycle << ": "
                         << id.error().to_string();
    EXPECT_TRUE(ids.insert(id.value()).second)
        << "duplicate alloc id " << id.value() << " at cycle " << cycle;
    auto rel = client.release(id.value());
    ASSERT_TRUE(rel.ok()) << "cycle " << cycle << ": "
                          << rel.error().to_string();
  }

  EXPECT_EQ(ids.size(), 100u);
  EXPECT_EQ(state->live_allocs(), 0u) << "leaked allocations under loss";
  EXPECT_EQ(state->pool_in_use("pool.x"), 0u) << "pool accounting drifted";
  // The link really was lossy, retries really happened, and at least one
  // retried mutation was answered from the server's dedup cache (i.e. we
  // exercised the executed-but-unacknowledged path, not just lost sends).
  EXPECT_GT(stats->rpc_retries.load(), 0u);
  EXPECT_GT(server.dedup_hits(), 0u);
  EXPECT_EQ(stats->rpc_failures.load(), 0u);
}

// Discovery partitioned away at establishment time: negotiation must fall
// back to the local software impl and mark the connection degraded; when
// the partition heals, the recovery probe triggers renegotiation and the
// connection upgrades to the hardware impl automatically.
TEST(ChaosTest, DegradedEstablishmentUpgradesWhenPartitionHeals) {
  auto world = TestWorld::make();

  // Real discovery service, reached over a faultable transport.
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->set_pool("pool.hw", 1).ok());
  DiscoveryServer server(world.mem->bind(Addr::mem("disc", 1)).value(), state);

  auto* fault = new FaultInjectingTransport(
      world.mem->bind(Addr::mem("h-srv", 0)).value(), {});
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(60);
  ro.retries = 0;
  auto stats = std::make_shared<FaultStats>();
  CachingDiscovery::Options co;
  co.probe_period = ms(50);
  auto caching = std::make_shared<CachingDiscovery>(
      std::make_shared<RemoteDiscovery>(TransportPtr(fault), server.addr(),
                                        ro),
      co, stats);

  TransitionTuning tuning;
  tuning.offer_retry = ms(25);
  tuning.ack_timeout = ms(1000);
  tuning.drain_timeout = ms(300);
  tuning.sweep_period = ms(10);

  RuntimeConfig scfg;
  scfg.host_id = "h-srv";
  scfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-srv");
  scfg.discovery = caching;
  scfg.fault_stats = stats;
  scfg.transition_tuning = tuning;
  scfg.handshake_timeout = ms(500);
  scfg.handshake_retries = 10;
  auto srv_rt = Runtime::create(std::move(scfg)).value();

  RuntimeConfig ccfg;
  ccfg.host_id = "h-cli";
  ccfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-cli");
  ccfg.discovery = state;  // the client side is not partitioned
  ccfg.transition_tuning = tuning;
  ccfg.handshake_timeout = ms(500);
  ccfg.handshake_retries = 10;
  auto cli_rt = Runtime::create(std::move(ccfg)).value();

  // hw outranks sw but needs a discovery-managed slot, so it is only
  // bindable while the service is reachable.
  ImplInfo hw = offload_info("offload/hw", 50, {{"pool.hw", 1}});
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(srv_rt
                  ->register_chunnel(std::make_shared<InfoChunnel>(
                      offload_info("offload/sw", 0)))
                  .ok());
  ASSERT_TRUE(state->register_impl(hw).ok());

  // Partition before anything warms the cache: the worst case (cold
  // cache, service gone) must still establish.
  fault->partition(/*tx=*/true, /*rx=*/true);

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(10)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(10))).value();

  EXPECT_EQ(bound_impl(srv, "offload"), "offload/sw")
      << "bound a resource-gated impl without discovery";
  EXPECT_EQ(listener->degraded_connections(), 1u);
  EXPECT_GE(stats->degraded_entries.load(), 1u);
  ASSERT_TRUE(round_trip(conn, srv, 0));

  // Heal. The recovery probe notices, the synthetic watch event triggers
  // renegotiation, and the connection upgrades live.
  fault->partition(false, false);
  int sent = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "never upgraded after the partition healed";
    ASSERT_TRUE(round_trip(conn, srv, ++sent)) << "message lost mid-upgrade";
  }
  ASSERT_TRUE(round_trip(conn, srv, ++sent));
  EXPECT_EQ(listener->degraded_connections(), 0u);
  EXPECT_GE(stats->degraded_exits.load(), 1u);
  EXPECT_EQ(state->pool_in_use("pool.hw"), 1u);
  EXPECT_GE(srv_rt->transitions().stats().completed, 1u);
}

// A subscribed client partitioned away mid-burst must converge after the
// heal through seq-resume alone: the registrations it missed arrive as a
// watch-stream replay (not a snapshot, not re-prime queries), land
// exactly once, and are folded into the caching layer's catalogue so a
// later partition can be served from cache.
TEST(ChaosTest, PartitionedSubscriberConvergesViaSeqResume) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  so.keepalive = ms(30);  // the post-heal keepalive is what exposes the gap
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state, so);

  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), {});
  auto stats = std::make_shared<FaultStats>();
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(100);
  ro.retries = 2;
  ro.stats = stats;
  CachingDiscovery::Options co;
  co.probe_period = ms(50);
  CachingDiscovery caching(
      std::make_shared<RemoteDiscovery>(TransportPtr(fault), server.addr(),
                                        ro),
      co, stats);

  auto w = caching.watch("offload").value();

  // Seeded chaos: the seed picks how much of the burst straddles the
  // partition; every split must converge the same way.
  Rng rng(0xD15C0);
  auto reg = [&](const std::string& name) {
    ASSERT_TRUE(state->register_impl(offload_info(name, 1)).ok());
  };
  std::vector<std::string> pre, mid;
  size_t n_pre = 1 + rng.next_below(3);
  for (size_t i = 0; i < n_pre; i++) {
    pre.push_back("offload/pre" + std::to_string(i));
    reg(pre.back());
  }
  std::map<std::string, int> seen;
  Deadline dl = Deadline::after(seconds(10));
  while (seen.size() < pre.size() && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (ev.ok()) seen[ev.value().name]++;
  }
  ASSERT_EQ(seen.size(), pre.size()) << "pre-partition events lost";

  fault->partition(/*tx=*/true, /*rx=*/true);
  size_t n_mid = 4 + rng.next_below(5);
  for (size_t i = 0; i < n_mid; i++) {
    mid.push_back("offload/mid" + std::to_string(i));
    reg(mid.back());
    sleep_for(ms(3));  // spread the burst across several dropped pushes
  }
  sleep_for(ms(60));  // everything above hit the partition
  fault->partition(false, false);

  // Post-heal: the replay delivers exactly the missed events, once each.
  dl = Deadline::after(seconds(10));
  auto caught_up = [&] {
    for (const auto& n : mid)
      if (seen.find(n) == seen.end()) return false;
    return true;
  };
  while (!caught_up() && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (ev.ok()) seen[ev.value().name]++;
  }
  for (const auto& n : mid)
    EXPECT_EQ(seen[n], 1) << n << " lost or double-applied";
  for (const auto& n : pre)
    EXPECT_EQ(seen[n], 1) << n << " replayed after already being applied";
  EXPECT_GE(stats->watch_resubscribes.load(), 1u);
  EXPECT_EQ(server.snapshots_served(), 0u)
      << "converged by snapshot, not seq-resume";
  // The whole recovery was push-driven: the client never issued a single
  // RPC, let alone a full catalogue re-prime.
  EXPECT_EQ(server.requests_served(), 0u);

  // The stream also primed the cache: partition again and the catch-up
  // catalogue — including the mid-partition registrations the client
  // never queried for — is served from cache.
  fault->partition(true, true);
  auto q = caching.query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  std::set<std::string> names;
  for (const auto& i : q.value()) names.insert(i.name);
  for (const auto& n : mid)
    EXPECT_TRUE(names.count(n)) << n << " missing from the cached catalogue";
  EXPECT_GE(stats->catalogue_hits.load(), 1u);
}

// The control-plane acceptance run: a 2-partition x 3-replica discovery
// cluster serving two runtimes' establishment path, with every replica's
// client-facing link dropping 5% of datagrams. Mid-run, the replica
// actively serving the partition that owns the "offload" catalogue is
// killed. Required: zero acknowledged registrations/leases/allocations
// lost, watch streams converge by seq-resume (never a snapshot), and
// establishment keeps succeeding at full fidelity throughout.
TEST(ChaosTest, ReplicatedControlPlaneSurvivesReplicaLossUnderDrop) {
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();

  DiscoveryCluster::Config ccfg;
  ccfg.partitions = 2;
  ccfg.replicas = 3;
  ccfg.transports =
      std::make_shared<DefaultTransportFactory>(net, nullptr, "ctrl");
  ccfg.replica.sweep_period = ms(25);
  ccfg.replica.server.coalesce_window = ms(2);
  ccfg.replica.server.keepalive = ms(30);
  // Chaos on the client-facing links only: the replication channel's own
  // loss recovery is exercised by mcast_test; here the fault under test
  // is replica death as seen by retrying clients.
  ccfg.decorate = [](TransportPtr t, const std::string& role) -> TransportPtr {
    if (role.find("-rpc") == std::string::npos) return t;
    FaultInjectingTransport::Options fo;
    fo.drop = 0.05;
    fo.seed = std::hash<std::string>{}(role) | 1;
    return TransportPtr(new FaultInjectingTransport(std::move(t), fo));
  };
  auto cluster = DiscoveryCluster::start(std::move(ccfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(80);
  rpc.retries = 8;
  rpc.backoff = {ms(5), 2.0, ms(40), 0.3};
  rpc.watch_failover_timeout = ms(250);
  rpc.stats = stats;

  // The catalogue is published under a lease, heartbeat-renewed across
  // the lossy link and (later) across the failover.
  RemoteDiscovery::Options wrpc = rpc;
  wrpc.lease_ttl = ms(400);
  auto writer = cluster->client("chaos-wr", wrpc).value();
  ASSERT_TRUE(writer->set_pool("pool.hw", 64).ok());
  ImplInfo hw = offload_info("offload/hw", 50, {{"pool.hw", 1}});
  ImplInfo sw = offload_info("offload/sw", 0);
  ASSERT_TRUE(writer->register_impl(hw).ok());
  ASSERT_TRUE(writer->register_impl(sw).ok());

  auto obs = cluster->client("chaos-obs", rpc).value();
  auto w = obs->watch("offload").value();

  auto mk = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(net, nullptr, host);
    cfg.discovery = cluster->client(host + "-disc", rpc).value();
    cfg.fault_stats = stats;
    cfg.handshake_timeout = ms(500);
    cfg.handshake_retries = 10;
    auto rt = Runtime::create(std::move(cfg)).value();
    EXPECT_TRUE(rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
    EXPECT_TRUE(rt->register_chunnel(std::make_shared<InfoChunnel>(sw)).ok());
    return rt;
  };
  auto srv_rt = mk("h-srv");
  auto cli_rt = mk("h-cli");

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();

  // Connections hold their pool.hw slot, so pool accounting at the end
  // audits every acknowledged acquire.
  std::vector<std::pair<ConnPtr, ConnPtr>> held;
  auto establish = [&](int i) {
    auto conn = ep.connect(listener->addr(), Deadline::after(seconds(10)));
    ASSERT_TRUE(conn.ok()) << "establishment " << i << " failed: "
                           << conn.error().to_string();
    auto srv = listener->accept(Deadline::after(seconds(10)));
    ASSERT_TRUE(srv.ok());
    EXPECT_EQ(bound_impl(srv.value(), "offload"), "offload/hw")
        << "conn " << i << " degraded instead of riding the failover";
    ASSERT_TRUE(round_trip(conn.value(), srv.value(), i));
    held.emplace_back(conn.value(), srv.value());
  };

  const int kTotal = 12;
  for (int i = 0; i < kTotal / 2; i++) {
    establish(i);
    if (HasFatalFailure()) return;
  }

  // Kill the replica actively serving the partition that owns the
  // "offload" catalogue, as seen by the server runtime's client.
  auto srv_disc =
      std::dynamic_pointer_cast<ClusterDiscovery>(srv_rt->config().discovery);
  ASSERT_NE(srv_disc, nullptr);
  size_t part = srv_disc->partition_map().index_for_type("offload");
  Addr active = srv_disc->partition_client(part).active_server();
  const auto& servers = cluster->partition_servers(part);
  size_t victim = 0;
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(part, victim);

  for (int i = kTotal / 2; i < kTotal; i++) {
    establish(i);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(srv_disc->server_failovers(), 1u);

  // Zero acknowledged loss: the full catalogue answers from a fresh
  // client, and every surviving replica of the pool's partition accounts
  // for every held allocation.
  auto audit = cluster->client("chaos-audit", rpc).value();
  auto q = audit->query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  std::set<std::string> names;
  for (const auto& e : q.value()) names.insert(e.name);
  EXPECT_TRUE(names.count("offload/hw"));
  EXPECT_TRUE(names.count("offload/sw"));
  size_t pool_part = audit->partition_map().index_for_pool("pool.hw");
  Deadline dl = Deadline::after(seconds(5));
  auto settled = [&] {
    for (size_t r = 0; r < 3; r++)
      if (cluster->alive(pool_part, r) &&
          cluster->replica(pool_part, r)->state()->pool_in_use("pool.hw") !=
              static_cast<uint64_t>(kTotal))
        return false;
    return true;
  };
  while (!settled() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(settled()) << "pool accounting diverged or lost allocations";

  // The watch stream delivered each registration exactly once across the
  // drop-induced resubscribes AND the replica kill — by seq-resume, never
  // a snapshot — and no lease was spuriously reaped.
  std::map<std::string, int> seen;
  dl = Deadline::after(seconds(10));
  while (seen.size() < 2 && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    ASSERT_NE(ev.value().kind, WatchKind::impl_unregistered)
        << "spurious lease expiry for " << ev.value().name;
    seen[ev.value().name]++;
  }
  EXPECT_EQ(seen["offload/hw"], 1);
  EXPECT_EQ(seen["offload/sw"], 1);
  EXPECT_EQ(stats->watch_snapshots.load(), 0u);
  for (size_t p = 0; p < 2; p++)
    for (size_t r = 0; r < 3; r++)
      if (cluster->alive(p, r)) {
        EXPECT_EQ(cluster->replica(p, r)->server().snapshots_served(), 0u);
      }
}

// Sanitizer runs are legitimately slower; scale the latency assertions,
// not the correctness ones.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kLatencyMult = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kLatencyMult = 5;
#else
constexpr int kLatencyMult = 1;
#endif
#else
constexpr int kLatencyMult = 1;
#endif

// The self-healing acceptance run: a 2x3 cluster with standby sequencers
// under 5% client-link loss. Mid-run the active sequencer of the pool's
// partition is killed (view change) AND a replica is killed and later
// restarted (snapshot catch-up). Required: zero acknowledged
// registrations/leases/allocations lost, the restarted replica converges
// to the identical watch seq via snapshot + suffix replay with zero
// bounded skips, and establishment keeps succeeding throughout — the
// view-change outage stays inside one establishment's retry budget.
TEST(ChaosTest, SelfHealingControlPlaneSurvivesSequencerAndReplicaLoss) {
  uint64_t seed = 0xBE27A;
  if (const char* s = std::getenv("BERTHA_CHAOS_SEED"))
    seed = std::strtoull(s, nullptr, 0);
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();

  DiscoveryCluster::Config ccfg;
  ccfg.partitions = 2;
  ccfg.replicas = 3;
  ccfg.sequencer_candidates = 2;
  ccfg.transports =
      std::make_shared<DefaultTransportFactory>(net, nullptr, "ctrl");
  ccfg.replica.sweep_period = ms(20);
  ccfg.replica.apply_timeout = ms(250);
  ccfg.replica.server.coalesce_window = ms(2);
  ccfg.replica.server.keepalive = ms(30);
  ccfg.replica.stats = stats;
  ccfg.tuning.view_silence_timeout = ms(120);
  ccfg.tuning.view_ack_timeout = ms(25);
  ccfg.tuning.catchup_timeout = ms(200);
  ccfg.decorate = [seed](TransportPtr t,
                         const std::string& role) -> TransportPtr {
    if (role.find("-rpc") == std::string::npos) return t;
    FaultInjectingTransport::Options fo;
    fo.drop = 0.05;
    fo.seed = (std::hash<std::string>{}(role) ^ seed) | 1;
    return TransportPtr(new FaultInjectingTransport(std::move(t), fo));
  };
  auto cluster = DiscoveryCluster::start(std::move(ccfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(80);
  rpc.retries = 8;
  rpc.backoff = {ms(5), 2.0, ms(40), 0.3};
  rpc.backoff_seed = seed;
  rpc.watch_failover_timeout = ms(250);
  rpc.stats = stats;

  RemoteDiscovery::Options wrpc = rpc;
  wrpc.lease_ttl = ms(400);
  auto writer = cluster->client("heal-wr", wrpc).value();
  ASSERT_TRUE(writer->set_pool("pool.hw", 64).ok());
  ImplInfo hw = offload_info("offload/hw", 50, {{"pool.hw", 1}});
  ImplInfo sw = offload_info("offload/sw", 0);
  ASSERT_TRUE(writer->register_impl(hw).ok());
  ASSERT_TRUE(writer->register_impl(sw).ok());

  auto obs = cluster->client("heal-obs", rpc).value();
  auto w = obs->watch("offload").value();

  auto mk = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(net, nullptr, host);
    cfg.discovery = cluster->client(host + "-disc", rpc).value();
    cfg.fault_stats = stats;
    cfg.handshake_timeout = ms(500);
    cfg.handshake_retries = 10;
    auto rt = Runtime::create(std::move(cfg)).value();
    EXPECT_TRUE(rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
    EXPECT_TRUE(rt->register_chunnel(std::make_shared<InfoChunnel>(sw)).ok());
    return rt;
  };
  auto srv_rt = mk("heal-srv");
  auto cli_rt = mk("heal-cli");

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("heal-srv", 100))
                      .value();
  auto ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();

  std::vector<std::pair<ConnPtr, ConnPtr>> held;
  auto establish = [&](int i) {
    auto conn = ep.connect(listener->addr(), Deadline::after(seconds(10)));
    ASSERT_TRUE(conn.ok()) << "establishment " << i << " failed: "
                           << conn.error().to_string();
    auto srv = listener->accept(Deadline::after(seconds(10)));
    ASSERT_TRUE(srv.ok());
    EXPECT_EQ(bound_impl(srv.value(), "offload"), "offload/hw")
        << "conn " << i << " degraded instead of riding the recovery";
    ASSERT_TRUE(round_trip(conn.value(), srv.value(), i));
    held.emplace_back(conn.value(), srv.value());
  };

  const int kTotal = 12;
  for (int i = 0; i < kTotal / 3; i++) {
    establish(i);
    if (HasFatalFailure()) return;
  }

  // Fault 1: kill the active sequencer of the partition that admits
  // pool.hw acquires. Establishment's mutation path now depends on the
  // view change; the very next connection must still land within its
  // normal retry budget.
  size_t pool_part = writer->partition_map().index_for_pool("pool.hw");
  size_t kill_part = pool_part;  // where the faults land (pre-reshard)
  cluster->kill_sequencer(pool_part, 0);
  Stopwatch outage;
  establish(kTotal / 3);
  if (HasFatalFailure()) return;
  EXPECT_LT(outage.elapsed(), seconds(1) * kLatencyMult)
      << "view-change unavailability exceeded one establishment budget";

  // Fault 2: kill a replica of the same partition mid-run, keep
  // mutating while it is down, then restart it.
  size_t victim = 2;
  cluster->kill_replica(pool_part, victim);
  for (int i = kTotal / 3 + 1; i < 2 * kTotal / 3; i++) {
    establish(i);
    if (HasFatalFailure()) return;
  }
  ASSERT_TRUE(cluster->restart_replica(pool_part, victim).ok());
  ASSERT_TRUE(cluster->replica(pool_part, victim)->wait_ready(seconds(15)))
      << "restarted replica never finished catch-up";

  // Fault 3 (opt-in; one control-soak CI seed sets BERTHA_SOAK_RESHARD):
  // split the control plane 2 -> 4 live, under the same 5% loss, after
  // the view change and the replica rejoin. Establishments must keep
  // succeeding across the migration and pool.hw admission continues at
  // the pool's re-homed partition.
  const char* soak_reshard = std::getenv("BERTHA_SOAK_RESHARD");
  if (soak_reshard != nullptr && soak_reshard[0] != '\0') {
    ReshardOptions ro;
    ro.ack_timeout = ms(500);
    ro.attempts = 20;
    ro.stats = stats;
    auto coord = ReshardCoordinator::create(*cluster, ro).value();
    auto split = coord->split();
    ASSERT_TRUE(split.ok()) << split.error().to_string();
    ASSERT_EQ(cluster->active_partitions(), 4u);
    pool_part = writer->partition_map().index_for_pool("pool.hw");
  }
  for (int i = 2 * kTotal / 3; i < kTotal; i++) {
    establish(i);
    if (HasFatalFailure()) return;
  }

  // Zero acknowledged loss: every replica of the pool partition —
  // including the restarted one — accounts for every held allocation,
  // and the catalogue/watch-seq are byte-identical across the group.
  Deadline dl = Deadline::after(seconds(10));
  auto settled = [&] {
    auto [e0, s0] = cluster->replica(pool_part, 0)->state()->catalogue_snapshot();
    for (size_t r = 0; r < 3; r++) {
      auto* rep = cluster->replica(pool_part, r);
      if (rep->state()->pool_in_use("pool.hw") !=
          static_cast<uint64_t>(kTotal))
        return false;
      auto [e, s] = rep->state()->catalogue_snapshot();
      if (s != s0 || e.size() != e0.size()) return false;
    }
    return true;
  };
  while (!settled() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(settled())
      << "replicas diverged or lost acknowledged allocations";

  auto* restarted = cluster->replica(kill_part, victim);
  EXPECT_GE(restarted->catchups(), 1u);
  EXPECT_GE(restarted->current_view(), 1u);
  for (size_t p = 0; p < 2; p++)
    for (size_t r = 0; r < 3; r++)
      EXPECT_EQ(cluster->replica(p, r)->gaps_skipped(), 0u)
          << "p" << p << "-r" << r << " healed by bounded skip";
  for (size_t r = 0; r < 3; r++)
    EXPECT_GE(cluster->replica(kill_part, r)->view_changes(), 1u);

  // The catalogue survived from a fresh client's view, and the watch
  // stream delivered each registration exactly once, by seq — never a
  // snapshot — across the loss, the view change, and the replica kill.
  auto audit = cluster->client("heal-audit", rpc).value();
  auto q = audit->query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  std::set<std::string> names;
  for (const auto& e : q.value()) names.insert(e.name);
  EXPECT_TRUE(names.count("offload/hw"));
  EXPECT_TRUE(names.count("offload/sw"));

  std::map<std::string, int> seen;
  dl = Deadline::after(seconds(10));
  while (seen.size() < 2 && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    ASSERT_NE(ev.value().kind, WatchKind::impl_unregistered)
        << "spurious lease expiry for " << ev.value().name;
    seen[ev.value().name]++;
  }
  EXPECT_EQ(seen["offload/hw"], 1);
  EXPECT_EQ(seen["offload/sw"], 1);
  EXPECT_EQ(stats->watch_snapshots.load(), 0u);
}

}  // namespace
}  // namespace bertha
