// Shared fixtures for integration-style tests: runtimes wired to an
// in-memory network (fast, deterministic) or to real OS sockets.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "chunnels/builtin.hpp"
#include "core/endpoint.hpp"
#include "net/factory.hpp"

namespace bertha::testing_support {

struct TestWorld {
  std::shared_ptr<MemNetwork> mem;
  std::shared_ptr<SimNet> sim;
  std::shared_ptr<DiscoveryState> discovery;

  static TestWorld make(uint64_t seed = 1) {
    TestWorld w;
    MemNetwork::Config mcfg;
    mcfg.seed = seed;
    w.mem = MemNetwork::create(mcfg);
    SimNet::Config scfg;
    scfg.seed = seed;
    scfg.default_latency = us(200);
    w.sim = SimNet::create(scfg);
    w.discovery = std::make_shared<DiscoveryState>();
    return w;
  }

  // A runtime on host `host_id`, sharing this world's networks and
  // discovery. Registers the builtin chunnels unless told otherwise.
  std::shared_ptr<Runtime> runtime(const std::string& host_id,
                                   bool builtins = true,
                                   PolicyPtr policy = nullptr) {
    RuntimeConfig cfg;
    cfg.host_id = host_id;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(mem, sim, host_id);
    cfg.discovery = discovery;
    cfg.policy = std::move(policy);
    // Lossy-network tests drive establishment through real packet loss;
    // generous retries keep the handshake's failure probability
    // negligible (p_loss_per_attempt^11) without masking real bugs.
    cfg.handshake_timeout = ms(300);
    cfg.handshake_retries = 10;
    auto rt = Runtime::create(std::move(cfg));
    EXPECT_TRUE(rt.ok()) << rt.error().to_string();
    auto runtime = rt.value();
    if (builtins) {
      auto reg = register_builtin_chunnels(*runtime);
      EXPECT_TRUE(reg.ok()) << reg.error().to_string();
    }
    return runtime;
  }
};

}  // namespace bertha::testing_support
