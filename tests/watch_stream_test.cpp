// Server-push watch streams (core/discovery.hpp): subscription
// lifecycle, batched delivery, seq-gap resume after lost pushes,
// catalogue-snapshot fallback once the server has pruned its event log,
// and server-side burst coalescing feeding the transition controller one
// batch per burst. Faults are injected deterministically through
// FaultInjectingTransport, so these run as regular tier-1 tests.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "core/discovery.hpp"
#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "net/fault.hpp"
#include "net/memchan.hpp"
#include "util/clock.hpp"

namespace bertha {
namespace {

ImplInfo watch_info(const std::string& type, const std::string& name,
                    int prio = 0) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.priority = prio;
  return i;
}

bool is_event_batch(BytesView p) {
  return p.size() >= kWireHeaderSize && p[0] == 'B' && p[1] == 'H' &&
         p[2] == static_cast<uint8_t>(MsgKind::event_batch);
}

// Shared fixture: a DiscoveryServer on an in-memory network plus a
// RemoteDiscovery client whose transport is fault-injectable.
class WatchStreamTest : public ::testing::Test {
 protected:
  void start_server(DiscoveryServer::Options sopts) {
    net_ = MemNetwork::create();
    state_ = std::make_shared<DiscoveryState>();
    server_ = std::make_unique<DiscoveryServer>(
        net_->bind(Addr::mem("disc", 1)).value(), state_, sopts);
  }

  void start_client(FaultInjectingTransport::Options fopts,
                    RemoteDiscovery::Options ropts) {
    fault_ = new FaultInjectingTransport(
        net_->bind(Addr::mem("cli", 0)).value(), fopts);
    stats_ = std::make_shared<FaultStats>();
    ropts.stats = stats_;
    client_ = std::make_unique<RemoteDiscovery>(TransportPtr(fault_),
                                                server_->addr(), ropts);
  }

  // Drops every pushed event_batch (including keepalives) while armed —
  // the client keeps sending fine, so the subscription silently starves.
  std::shared_ptr<std::atomic<bool>> arm_batch_drop() {
    auto armed = std::make_shared<std::atomic<bool>>(false);
    fault_->set_recv_filter([armed](const Addr&, BytesView p) {
      return armed->load() && is_event_batch(p);
    });
    return armed;
  }

  // Pulls events until `deadline`, tallying per impl name; stops early
  // once every name in `until` has been seen at least once.
  std::map<std::string, int> collect(DiscoveryWatcher& w, Deadline deadline,
                                     const std::vector<std::string>& until) {
    std::map<std::string, int> seen;
    auto done = [&] {
      for (const auto& n : until)
        if (seen.find(n) == seen.end()) return false;
      return true;
    };
    while (!done() && !deadline.expired()) {
      auto ev = w.next(Deadline::after(ms(100)));
      if (ev.ok()) seen[ev.value().name]++;
    }
    return seen;
  }

  std::shared_ptr<MemNetwork> net_;
  std::shared_ptr<DiscoveryState> state_;
  std::unique_ptr<DiscoveryServer> server_;
  FaultInjectingTransport* fault_ = nullptr;  // owned by client_
  std::shared_ptr<FaultStats> stats_;
  std::unique_ptr<RemoteDiscovery> client_;
};

// Subscribe -> events flow -> cancel; the client tears the subscription
// down on the server (lazily, at the next push) without the server ever
// noticing a vanished consumer.
TEST_F(WatchStreamTest, SubscriptionLifecycle) {
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  so.keepalive = ms(50);
  start_server(so);
  start_client({}, {});

  auto w = client_->watch("enc").value();
  EXPECT_GE(server_->subscribes_served(), 1u);
  EXPECT_EQ(server_->subscriber_count(), 1u);

  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/a")).ok());
  auto ev = w->next(Deadline::after(seconds(5)));
  ASSERT_TRUE(ev.ok()) << ev.error().to_string();
  EXPECT_EQ(ev.value().name, "enc/a");
  EXPECT_EQ(ev.value().kind, WatchKind::impl_registered);
  EXPECT_GE(server_->batches_pushed(), 1u);
  EXPECT_GE(server_->events_pushed(), 1u);

  // Cancel the consumer; the next push (an event or just a keepalive)
  // makes the client notice and send the unsubscribe.
  w->cancel();
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/b")).ok());
  Deadline dl = Deadline::after(seconds(5));
  while (server_->subscriber_count() != 0) {
    ASSERT_FALSE(dl.expired()) << "unsubscribe never reached the server";
    sleep_for(ms(5));
  }
}

// The headline economics: an idle push-mode watcher costs the client
// zero RPCs. Over ten poll periods of the legacy fallback, the server's
// request counter must not move (pushes and keepalives don't count).
TEST_F(WatchStreamTest, IdleWatchIssuesNoRpcs) {
  start_server({});
  RemoteDiscovery::Options ro;
  ro.watch_poll = ms(20);
  start_client({}, ro);

  auto w = client_->watch("enc").value();
  uint64_t before = server_->requests_served();
  sleep_for(ms(200));  // 10x the fallback poll period
  EXPECT_EQ(server_->requests_served(), before)
      << "an idle push-mode watch issued RPCs";

  // The stream is live, not just quiet: a registration still arrives.
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/a")).ok());
  ASSERT_TRUE(w->next(Deadline::after(seconds(5))).ok());
  EXPECT_EQ(server_->requests_served(), before);
}

// Pushed batches silently lost (partition-like): the next keepalive
// exposes the seq gap, the client resumes from its last applied seq, and
// the server replays from its event log — nothing lost, nothing applied
// twice, no snapshot needed.
TEST_F(WatchStreamTest, SeqGapRecoveryAfterDroppedBatches) {
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  so.keepalive = ms(40);
  start_server(so);
  start_client({}, {});
  auto armed = arm_batch_drop();

  auto w = client_->watch("enc").value();
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/a")).ok());
  ASSERT_TRUE(w->next(Deadline::after(seconds(5))).ok());

  armed->store(true);
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/b")).ok());
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/c")).ok());
  sleep_for(ms(60));  // both pushes (and a keepalive) hit the floor
  armed->store(false);

  auto seen = collect(*w, Deadline::after(seconds(10)), {"enc/b", "enc/c"});
  EXPECT_EQ(seen["enc/b"], 1) << "lost or double-applied";
  EXPECT_EQ(seen["enc/c"], 1) << "lost or double-applied";
  EXPECT_EQ(seen.count("enc/a"), 0u) << "resume replayed an applied event";
  EXPECT_GE(stats_->watch_resubscribes.load(), 1u);
  EXPECT_EQ(server_->snapshots_served(), 0u)
      << "log replay should have sufficed";
}

// Resume from beyond the server's log horizon: with a tiny event log the
// missed burst is pruned before the client comes back, so the server
// falls back to a full catalogue snapshot and the client still converges.
TEST_F(WatchStreamTest, SnapshotFallbackWhenServerPruned) {
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  so.keepalive = ms(40);
  so.event_log_cap = 4;
  start_server(so);
  start_client({}, {});
  auto armed = arm_batch_drop();

  auto w = client_->watch("enc").value();
  ASSERT_TRUE(state_->register_impl(watch_info("enc", "enc/a")).ok());
  ASSERT_TRUE(w->next(Deadline::after(seconds(5))).ok());

  armed->store(true);
  std::vector<std::string> missed;
  for (int i = 0; i < 8; i++) {
    missed.push_back("enc/m" + std::to_string(i));
    ASSERT_TRUE(state_->register_impl(watch_info("enc", missed.back())).ok());
    sleep_for(ms(5));  // separate pushes, so the log really prunes
  }
  sleep_for(ms(60));
  armed->store(false);

  auto seen = collect(*w, Deadline::after(seconds(10)), missed);
  for (const auto& n : missed)
    EXPECT_GE(seen[n], 1) << n << " absent after snapshot recovery";
  EXPECT_GE(server_->snapshots_served(), 1u);
  EXPECT_GE(stats_->watch_snapshots.load(), 1u);
}

// A burst of registrations inside one coalescing window reaches the
// transition controller as a single batch: one selection re-run for the
// whole burst, not one per registration.
TEST_F(WatchStreamTest, BurstCoalescesToOneControllerRun) {
  DiscoveryServer::Options so;
  so.coalesce_window = ms(100);
  start_server(so);
  start_client({}, {});

  TransitionTuning tuning;
  tuning.sweep_period = ms(10);
  TransitionController ctrl(tuning);
  ASSERT_TRUE(ctrl.start(*client_).ok());  // subscribes with an empty filter
  uint64_t acks = server_->batches_pushed();  // the subscribe ack batch

  for (int i = 0; i < 8; i++)
    ASSERT_TRUE(
        state_->register_impl(watch_info("offload", "offload/" +
                                         std::to_string(i), i))
            .ok());

  Deadline dl = Deadline::after(seconds(10));
  while (ctrl.stats().watch_events < 8) {
    ASSERT_FALSE(dl.expired()) << "burst never reached the controller";
    sleep_for(ms(5));
  }
  auto s = ctrl.stats();
  EXPECT_EQ(s.watch_events, 8u);
  EXPECT_EQ(s.watch_batches, 1u) << "burst was split across batches";
  EXPECT_EQ(s.upgrade_runs, 1u)
      << "one coalesced burst must re-run selection exactly once";
  EXPECT_EQ(server_->batches_pushed() - acks, 1u);
  ctrl.stop();
}

// Sustained seeded drop + reorder on the push path: keepalive-driven gap
// detection and seq-based dedup must deliver every event exactly once.
TEST_F(WatchStreamTest, DropAndReorderNeverLoseOrDuplicate) {
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  so.keepalive = ms(30);
  start_server(so);
  FaultInjectingTransport::Options fo;
  fo.drop = 0.15;
  fo.reorder = 0.15;
  fo.seed = 0xBEEF;
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(200);
  ro.retries = 10;
  start_client(fo, ro);

  auto w = client_->watch("enc").value();
  std::vector<std::string> names;
  for (int i = 0; i < 30; i++) {
    names.push_back("enc/n" + std::to_string(i));
    ASSERT_TRUE(state_->register_impl(watch_info("enc", names.back())).ok());
    sleep_for(ms(2));
  }

  auto seen = collect(*w, Deadline::after(seconds(20)), names);
  for (const auto& n : names) EXPECT_EQ(seen[n], 1) << n;
  // The log was never pruned (default cap), so recovery went through
  // resume replays, which cannot double-apply.
  EXPECT_EQ(server_->snapshots_served(), 0u);
}

}  // namespace
}  // namespace bertha
