// Tests for the Chunnel DAG: construction, validation, chain extraction,
// wire round trips.
#include <gtest/gtest.h>

#include "core/dag.hpp"

namespace bertha {
namespace {

ChunnelArgs args_of(std::map<std::string, std::string> kv) {
  return ChunnelArgs(std::move(kv));
}

TEST(DagTest, ChainBuilderCreatesLinearEdges) {
  auto dag = wrap(ChunnelSpec("a"), ChunnelSpec("b"), ChunnelSpec("c"));
  EXPECT_EQ(dag.size(), 3u);
  ASSERT_TRUE(dag.validate().ok());
  EXPECT_TRUE(dag.is_chain());
  auto chain = dag.as_chain();
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value()[0].type, "a");
  EXPECT_EQ(chain.value()[2].type, "c");
}

TEST(DagTest, EmptyDagIsValidChain) {
  ChunnelDag dag = ChunnelDag::empty();
  EXPECT_TRUE(dag.validate().ok());
  EXPECT_TRUE(dag.is_chain());
  EXPECT_TRUE(dag.as_chain().value().empty());
  EXPECT_EQ(dag.to_string(), "(empty)");
}

TEST(DagTest, SingleNodeChain) {
  auto dag = wrap(ChunnelSpec("only"));
  EXPECT_TRUE(dag.is_chain());
  EXPECT_EQ(dag.as_chain().value().size(), 1u);
}

TEST(DagTest, CycleDetected) {
  ChunnelDag dag;
  auto a = dag.add_node(ChunnelSpec("a"));
  auto b = dag.add_node(ChunnelSpec("b"));
  ASSERT_TRUE(dag.add_edge(a, b).ok());
  ASSERT_TRUE(dag.add_edge(b, a).ok());
  auto r = dag.validate();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cycle"), std::string::npos);
}

TEST(DagTest, SelfLoopRejected) {
  ChunnelDag dag;
  auto a = dag.add_node(ChunnelSpec("a"));
  EXPECT_FALSE(dag.add_edge(a, a).ok());
}

TEST(DagTest, OutOfRangeEdgeRejected) {
  ChunnelDag dag;
  dag.add_node(ChunnelSpec("a"));
  EXPECT_FALSE(dag.add_edge(0, 5).ok());
}

TEST(DagTest, DuplicateEdgeRejected) {
  ChunnelDag dag;
  auto a = dag.add_node(ChunnelSpec("a"));
  auto b = dag.add_node(ChunnelSpec("b"));
  ASSERT_TRUE(dag.add_edge(a, b).ok());
  ASSERT_TRUE(dag.add_edge(a, b).ok());  // added, caught by validate
  EXPECT_FALSE(dag.validate().ok());
}

TEST(DagTest, EmptyTypeRejected) {
  auto dag = wrap(ChunnelSpec(""));
  EXPECT_FALSE(dag.validate().ok());
}

TEST(DagTest, BranchingIsValidButNotChain) {
  // a -> b, a -> c : the Figure 2 shape.
  ChunnelDag dag;
  auto a = dag.add_node(ChunnelSpec("a"));
  auto b = dag.add_node(ChunnelSpec("b"));
  auto c = dag.add_node(ChunnelSpec("c"));
  ASSERT_TRUE(dag.add_edge(a, b).ok());
  ASSERT_TRUE(dag.add_edge(a, c).ok());
  EXPECT_TRUE(dag.validate().ok());
  EXPECT_FALSE(dag.is_chain());
  EXPECT_FALSE(dag.as_chain().ok());
}

TEST(DagTest, DisconnectedNotChain) {
  ChunnelDag dag;
  dag.add_node(ChunnelSpec("a"));
  dag.add_node(ChunnelSpec("b"));
  EXPECT_TRUE(dag.validate().ok());
  EXPECT_FALSE(dag.is_chain());
}

TEST(DagTest, SameTypesIgnoresArgs) {
  auto d1 = wrap(ChunnelSpec("shard", args_of({{"shards", "x"}})),
                 ChunnelSpec("reliable"));
  auto d2 = wrap(ChunnelSpec("shard"), ChunnelSpec("reliable"));
  auto d3 = wrap(ChunnelSpec("reliable"), ChunnelSpec("shard"));
  EXPECT_TRUE(d1.same_types(d2));
  EXPECT_FALSE(d1.same_types(d3));
}

TEST(DagTest, ToStringShowsPipeline) {
  auto dag = wrap(ChunnelSpec("shard", args_of({{"field_offset", "10"}})),
                  ChunnelSpec("reliable"));
  EXPECT_EQ(dag.to_string(), "shard(field_offset=10) |> reliable");
}

TEST(DagTest, SerdeRoundTrip) {
  auto dag = wrap(
      ChunnelSpec("serialize", args_of({{"codec", "binary"}})),
      ChunnelSpec("shard", args_of({{"shards", "udp://1.2.3.4:1"}}),
                  Scope::host),
      ChunnelSpec("reliable"));
  Bytes b = serialize_to_bytes(dag);
  auto got = deserialize_from_bytes<ChunnelDag>(b);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), dag);
  EXPECT_EQ(got.value().nodes()[1].scope_constraint, Scope::host);
}

TEST(DagTest, SerdeRejectsCycleOnDecode) {
  ChunnelDag dag;
  auto a = dag.add_node(ChunnelSpec("a"));
  auto b = dag.add_node(ChunnelSpec("b"));
  ASSERT_TRUE(dag.add_edge(a, b).ok());
  ASSERT_TRUE(dag.add_edge(b, a).ok());
  Bytes bytes = serialize_to_bytes(dag);
  EXPECT_FALSE(deserialize_from_bytes<ChunnelDag>(bytes).ok());
}

TEST(ChunnelArgsTest, GettersAndMerge) {
  ChunnelArgs a;
  a.set("k", "v");
  a.set_u64("n", 42);
  EXPECT_EQ(a.get("k").value(), "v");
  EXPECT_EQ(a.get_u64("n").value(), 42u);
  EXPECT_FALSE(a.get("missing").ok());
  EXPECT_EQ(a.get_or("missing", "d"), "d");
  EXPECT_EQ(a.get_u64_or("missing", 7), 7u);
  EXPECT_FALSE(a.get_u64("k").ok());  // "v" is not a number

  ChunnelArgs b;
  b.set("k", "override");
  b.set("extra", "e");
  ChunnelArgs m = a.merged_with(b);
  EXPECT_EQ(m.get("k").value(), "override");
  EXPECT_EQ(m.get("extra").value(), "e");
  EXPECT_EQ(m.get_u64("n").value(), 42u);
}

TEST(ImplInfoTest, SerdeRoundTrip) {
  ImplInfo info;
  info.type = "shard";
  info.name = "shard/xdp";
  info.scope = Scope::host;
  info.endpoints = EndpointConstraint::server;
  info.priority = -3;
  info.resources = {{"nic0.engines", 2}};
  info.props = {{"device", "nic0"}};
  Bytes b = serialize_to_bytes(info);
  auto got = deserialize_from_bytes<ImplInfo>(b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), info);
}

}  // namespace
}  // namespace bertha
