// Online repartitioning (src/control/reshard.*): live partition
// split/merge with catalogue migration. Covers epoch-stamped bucket
// steering in PartitionMap, a live 2->4 split and 4->2 merge with no
// client-observed unavailability, the one-hop forward fallback for
// clients still steering by a stale map, the per-client retry-backoff
// reset regression, and a chaos pass that splits and merges under
// seeded loss with a replica kill mid-migration.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "chunnels/shard.hpp"
#include "control/cluster.hpp"
#include "control/reshard.hpp"
#include "net/fault.hpp"
#include "util/clock.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

ImplInfo info_of(const std::string& type, const std::string& name,
                 std::vector<ResourceReq> resources = {}) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = 1;
  i.resources = std::move(resources);
  return i;
}

BytesView key_of(const std::string& s) {
  return BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::shared_ptr<DefaultTransportFactory> mem_factory(
    const std::shared_ptr<MemNetwork>& net, const std::string& host) {
  return std::make_shared<DefaultTransportFactory>(net, nullptr, host);
}

uint64_t ns_id(uint64_t ns, uint64_t low) {
  return (ns << DiscoveryState::kAllocNamespaceShift) | low;
}

// A type name hashing to the wanted bucket under the given modulo.
std::string key_in_bucket(uint64_t bucket, uint64_t modulo,
                          const std::string& prefix) {
  for (int i = 0; i < 4096; i++) {
    std::string k = prefix + std::to_string(i);
    if (shard_pick(key_of(k), modulo) == bucket) return k;
  }
  ADD_FAILURE() << "no key found for bucket " << bucket << "/" << modulo;
  return prefix;
}

// --- PartitionMap: epoch-stamped steering ---

TEST(ReshardPartitionMapTest, SteeringTableRoutesTypesPoolsAndAllocs) {
  PartitionMap pm(2);
  EXPECT_EQ(pm.modulo(), 2u);

  // Split-shaped membership: modulo doubled, identity home over four
  // partitions.
  ClusterMembership split;
  split.epoch = 2;
  for (int p = 0; p < 4; p++)
    split.partitions.push_back({Addr::mem("rs-p" + std::to_string(p), 1)});
  split.modulo = 4;
  split.home = {0, 1, 2, 3};
  ASSERT_TRUE(pm.apply(split).ok());
  EXPECT_EQ(pm.partitions(), 4u);
  EXPECT_EQ(pm.modulo(), 4u);
  for (const std::string t : {"offload", "reliable", "shard", "pool.hw"}) {
    EXPECT_EQ(pm.index_for_type(t), shard_pick(key_of(t), 4)) << t;
    EXPECT_EQ(pm.index_for_pool(t), pm.index_for_type(t)) << t;
  }

  // Multi-pool acquires spanning partitions stay rejected under the
  // widened steering.
  std::string pa = key_in_bucket(1, 4, "pool.a");
  std::string pb = key_in_bucket(3, 4, "pool.b");
  DiscRequest acq;
  acq.op = DiscOp::acquire;
  acq.resources = {{pa, 1}, {pb, 1}};
  auto span = pm.index_for_request(acq);
  ASSERT_FALSE(span.ok());
  EXPECT_EQ(span.error().code, Errc::invalid_argument);
  acq.resources = {{pa, 1}, {pa, 2}};
  auto co = pm.index_for_request(acq);
  ASSERT_TRUE(co.ok());
  EXPECT_EQ(co.value(), 1u);

  // Alloc ids route by their minted bucket through the home table.
  DiscRequest rel;
  rel.op = DiscOp::release;
  rel.alloc_id = ns_id(3, 7);
  auto r3 = pm.index_for_request(rel);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value(), 3u);
  rel.alloc_id = ns_id(9, 1);  // garbage namespace: >= modulo
  EXPECT_FALSE(pm.index_for_request(rel).ok());
}

TEST(ReshardPartitionMapTest, AliasedMergeKeepsAllocRoutingAcrossEpochBump) {
  PartitionMap pm(2);
  ClusterMembership split;
  split.epoch = 2;
  for (int p = 0; p < 4; p++)
    split.partitions.push_back({Addr::mem("rm-p" + std::to_string(p), 1)});
  split.modulo = 4;
  split.home = {0, 1, 2, 3};
  ASSERT_TRUE(pm.apply(split).ok());

  // An id minted under the split steering routes to its own bucket...
  uint64_t id = ns_id(3, 42);
  auto before = pm.index_for_alloc_routed(id);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value(), 3u);

  // ...and a merge that re-homes the bucket (modulo kept, home aliased)
  // re-routes the SAME id mid-flight instead of orphaning it.
  ClusterMembership merge;
  merge.epoch = 3;
  merge.partitions = {split.partitions[0], split.partitions[1]};
  merge.modulo = 4;
  merge.home = {0, 1, 0, 1};
  ASSERT_TRUE(pm.apply(merge).ok());
  EXPECT_EQ(pm.partitions(), 2u);
  EXPECT_EQ(pm.modulo(), 4u);
  auto after = pm.index_for_alloc_routed(id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), 1u);
  EXPECT_EQ(pm.index_for_alloc_routed(ns_id(2, 1)).value(), 0u);
  // Garbage namespaces stay garbage: the modulo never shrank.
  EXPECT_FALSE(pm.index_for_alloc_routed(ns_id(9, 1)).ok());
}

TEST(ReshardPartitionMapTest, RejectsRegressionsAndMalformedSteering) {
  PartitionMap pm(2);
  ClusterMembership split;
  split.epoch = 2;
  for (int p = 0; p < 4; p++)
    split.partitions.push_back({Addr::mem("rr-p" + std::to_string(p), 1)});
  split.modulo = 4;
  split.home = {0, 1, 2, 3};
  ASSERT_TRUE(pm.apply(split).ok());

  // Stale/equal epoch.
  EXPECT_FALSE(pm.apply(split).ok());

  // Modulo regression: buckets would change identity.
  ClusterMembership shrink;
  shrink.epoch = 3;
  shrink.partitions = {split.partitions[0], split.partitions[1]};
  shrink.modulo = 2;
  shrink.home = {0, 1};
  auto r = pm.apply(shrink);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::invalid_argument);
  EXPECT_EQ(pm.epoch(), 2u);

  // Home entry naming no partition.
  ClusterMembership bad;
  bad.epoch = 3;
  bad.partitions = {split.partitions[0], split.partitions[1]};
  bad.modulo = 4;
  bad.home = {0, 1, 0, 3};
  EXPECT_FALSE(pm.apply(bad).ok());

  // Home table sized unlike the modulo.
  bad.home = {0, 1, 0};
  EXPECT_FALSE(pm.apply(bad).ok());
  EXPECT_EQ(pm.epoch(), 2u);
  EXPECT_EQ(pm.partitions(), 4u);
}

// --- Live split ---

TEST(ReshardTest, SplitDoublesPartitionsLive) {
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 2;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  cfg.replica.server.coalesce_window = ms(1);
  cfg.replica.stats = stats;
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(200);
  rpc.retries = 6;
  auto cd = cluster->client("split-cli", rpc).value();

  // Seed data across every bucket of the post-split modulo, plus pools
  // and in-flight allocations whose ids were minted under modulo 2.
  std::vector<std::string> types;
  for (int i = 0; i < 16; i++) types.push_back("rs.t" + std::to_string(i));
  for (const auto& t : types)
    ASSERT_TRUE(cd->register_impl(info_of(t, t + "/impl")).ok()) << t;
  ASSERT_TRUE(cd->set_pool("rs.pool0", 8).ok());
  ASSERT_TRUE(cd->set_pool("rs.pool1", 8).ok());
  uint64_t a0 = cd->acquire({{"rs.pool0", 1}}).value();
  uint64_t a1 = cd->acquire({{"rs.pool1", 2}}).value();

  auto fan = cd->watch("").value();

  ReshardOptions ro;
  ro.stats = stats;
  auto coord = ReshardCoordinator::create(*cluster, ro).value();
  ASSERT_TRUE(coord->split().ok());

  // Topology and steering doubled; the registered client re-homed.
  EXPECT_EQ(cluster->active_partitions(), 4u);
  ClusterMembership m = cluster->membership();
  EXPECT_EQ(m.partitions.size(), 4u);
  EXPECT_EQ(m.modulo, 4u);
  EXPECT_EQ(cd->partitions(), 4u);
  EXPECT_EQ(cd->partition_map().modulo(), 4u);

  // Every pre-split registration answers from its new home.
  for (const auto& t : types) {
    auto q = cd->query(t);
    ASSERT_TRUE(q.ok()) << t << ": " << q.error().to_string();
    ASSERT_EQ(q.value().size(), 1u) << t;
    EXPECT_EQ(q.value()[0].name, t + "/impl");
  }

  // The migrated catalogue actually lives on the re-homed partitions
  // (not answered by accident through the old ones).
  for (const auto& t : types) {
    size_t p = cd->partition_map().index_for_type(t);
    EXPECT_EQ(p, shard_pick(key_of(t), 4)) << t;
    auto entries = cluster->replica(p, 0)->state()->query(t);
    ASSERT_TRUE(entries.ok()) << t;
    ASSERT_EQ(entries.value().size(), 1u)
        << t << " missing on partition " << p;
  }

  // Allocations minted under the old modulo release cleanly across the
  // epoch bump: the id's bucket routes through the new home table, and
  // a bucket whose pool moved is forwarded by the old home.
  ASSERT_TRUE(cd->release(a0).ok());
  ASSERT_TRUE(cd->release(a1).ok());
  auto in_use = [&](const std::string& pool) {
    size_t p = cd->partition_map().index_for_pool(pool);
    return cluster->replica(p, 0)->state()->pool_in_use(pool);
  };
  Deadline dl = Deadline::after(seconds(5));
  while ((in_use("rs.pool0") != 0 || in_use("rs.pool1") != 0) && !dl.expired())
    sleep_for(ms(10));
  EXPECT_EQ(in_use("rs.pool0"), 0u);
  EXPECT_EQ(in_use("rs.pool1"), 0u);

  // Post-split mutations land on the new partitions and the pre-split
  // fan-in watch carries them: no stream was torn by the migration.
  ASSERT_TRUE(cd->register_impl(info_of("rs.after", "rs.after/impl")).ok());
  bool saw_after = false;
  dl = Deadline::after(seconds(5));
  while (!saw_after && !dl.expired()) {
    auto ev = fan->next(Deadline::after(ms(100)));
    if (ev.ok() && ev.value().name == "rs.after/impl") saw_after = true;
  }
  EXPECT_TRUE(saw_after) << "fan-in watch lost the post-split registration";
  EXPECT_GE(stats->reshard_fences.load(), 2u);
  EXPECT_GE(stats->reshard_installs.load(), 2u);
  EXPECT_GE(stats->reshard_cutovers.load(), 2u);
  cluster->stop();
}

// --- Live merge (and the aliased re-split) ---

TEST(ReshardTest, MergeHalvesPartitionsAndSplitRevives) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 2;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  cfg.replica.server.coalesce_window = ms(1);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(200);
  rpc.retries = 6;
  auto cd = cluster->client("merge-cli", rpc).value();

  std::vector<std::string> types;
  for (int i = 0; i < 12; i++) types.push_back("rm.t" + std::to_string(i));
  for (const auto& t : types)
    ASSERT_TRUE(cd->register_impl(info_of(t, t + "/impl")).ok());

  ReshardOptions ro;
  ro.drain = ms(30);
  auto coord = ReshardCoordinator::create(*cluster, ro).value();
  ASSERT_TRUE(coord->split().ok());
  ASSERT_EQ(cluster->active_partitions(), 4u);

  // Mint an allocation under the modulo-4 steering so its namespace
  // names an upper bucket; the merge must keep it releasable.
  ASSERT_TRUE(cd->set_pool("rm.pool", 4).ok());
  uint64_t held = cd->acquire({{"rm.pool", 1}}).value();

  ASSERT_TRUE(coord->merge().ok());
  EXPECT_EQ(cluster->active_partitions(), 2u);
  ClusterMembership m = cluster->membership();
  EXPECT_EQ(m.partitions.size(), 2u);
  // The modulo never shrinks; the home table is the aliased identity.
  EXPECT_EQ(m.modulo, 4u);
  ASSERT_EQ(m.home.size(), 4u);
  EXPECT_EQ(m.home[2], 0u);
  EXPECT_EQ(m.home[3], 1u);
  EXPECT_EQ(cd->partitions(), 2u);

  // Everything folded back in and still answers.
  for (const auto& t : types) {
    auto q = cd->query(t);
    ASSERT_TRUE(q.ok()) << t << ": " << q.error().to_string();
    EXPECT_EQ(q.value().size(), 1u) << t;
  }
  // The upper-namespace allocation survives the fold and releases.
  ASSERT_TRUE(cd->release(held).ok());
  // Fresh acquires admit against the merged pool state.
  uint64_t again = cd->acquire({{"rm.pool", 4}}).value();
  ASSERT_TRUE(cd->release(again).ok());

  // A second split de-aliases the steering by reviving the retired
  // slots — the full round trip, not a one-way door.
  ASSERT_TRUE(coord->split().ok());
  EXPECT_EQ(cluster->active_partitions(), 4u);
  m = cluster->membership();
  EXPECT_EQ(m.modulo, 4u);
  for (size_t q = 0; q < m.home.size(); q++) EXPECT_EQ(m.home[q], q);
  for (const auto& t : types) {
    auto q = cd->query(t);
    ASSERT_TRUE(q.ok()) << t << ": " << q.error().to_string();
    EXPECT_EQ(q.value().size(), 1u) << t;
  }
  cluster->stop();
}

// --- Forward fallback for clients steering by a stale map ---

TEST(ReshardTest, StaleClientsForwardOneHopAfterCutover) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  cfg.replica.server.coalesce_window = ms(1);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(200);
  rpc.retries = 6;

  // A client wired straight at the pre-split membership, bypassing the
  // cluster's client registry: it never hears about the new steering.
  ClusterDiscovery::Config stale_cfg;
  stale_cfg.partitions = cluster->all_servers();
  stale_cfg.transports = cluster->transports();
  stale_cfg.host_id = "stale-cli";
  stale_cfg.rpc = rpc;
  auto stale = ClusterDiscovery::connect(std::move(stale_cfg)).value();

  // Seed through the stale client while its map is current, keeping an
  // allocation whose bucket will move.
  std::string moved = key_in_bucket(2, 4, "fw.t");   // p0 now, p2 after
  std::string stayed = key_in_bucket(1, 4, "fw.s");  // p1 before and after
  ASSERT_TRUE(stale->register_impl(info_of(moved, moved + "/impl")).ok());
  ASSERT_TRUE(stale->register_impl(info_of(stayed, stayed + "/impl")).ok());
  std::string moved_pool = key_in_bucket(2, 4, "fw.pool");
  ASSERT_TRUE(stale->set_pool(moved_pool, 4).ok());
  uint64_t held = stale->acquire({{moved_pool, 1}}).value();

  auto coord = ReshardCoordinator::create(*cluster).value();
  ASSERT_TRUE(coord->split().ok());
  ASSERT_EQ(cluster->active_partitions(), 4u);
  // The stale client's map never moved.
  EXPECT_EQ(stale->partitions(), 2u);
  EXPECT_EQ(stale->partition_map().modulo(), 2u);

  // Reads, writes and releases against the moved bucket still answer:
  // the old home forwards one hop to the new one.
  auto q = stale->query(moved);
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  ASSERT_EQ(q.value().size(), 1u);
  EXPECT_EQ(q.value()[0].name, moved + "/impl");
  ASSERT_TRUE(
      stale->register_impl(info_of(moved, moved + "/impl2")).ok());
  EXPECT_EQ(stale->query(moved).value().size(), 2u);
  ASSERT_TRUE(stale->release(held).ok());
  // The forwarded mutation landed on the new home's replicated state.
  EXPECT_EQ(cluster->replica(2, 0)->state()->query(moved).value().size(), 2u);
  EXPECT_EQ(cluster->replica(2, 0)->state()->pool_in_use(moved_pool), 0u);
  // And it really went through the forward path.
  EXPECT_GE(cluster->replica(0, 0)->reshard_forwards(), 3u);
  // Unmoved buckets never pay the forward tax.
  ASSERT_TRUE(stale->query(stayed).ok());
  EXPECT_EQ(cluster->replica(1, 0)->reshard_forwards(), 0u);
  cluster->stop();
}

// --- RemoteDiscovery retry backoff resets on success (regression) ---

TEST(ReshardTest, RetryBackoffResetsAfterSuccessfulRpc) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  auto st = net->bind(Addr::mem("bo-srv", 1));
  ASSERT_TRUE(st.ok());
  DiscoveryServer server(std::move(st).value(), state);

  auto ct = net->bind(Addr::mem("bo-cli", 0));
  ASSERT_TRUE(ct.ok());
  FaultInjectingTransport::Options fo;
  fo.seed = 0x5EED;
  auto* faults = new FaultInjectingTransport(std::move(ct).value(), fo);
  RemoteDiscovery::Options opts;
  opts.rpc_timeout = ms(30);
  opts.retries = 3;
  opts.backoff = {ms(10), 2.0, ms(200), 0.0};
  RemoteDiscovery client(TransportPtr(faults), server.addr(), opts);

  EXPECT_EQ(client.backoff_step(), ms(10));
  ASSERT_TRUE(client.register_impl(info_of("bo", "bo/impl")).ok());
  EXPECT_EQ(client.backoff_step(), ms(10));

  // Black-hole the server: every attempt times out and the shared
  // backoff window escalates past the base.
  faults->partition(/*tx=*/true, /*rx=*/false);
  EXPECT_FALSE(client.query("bo").ok());
  EXPECT_GT(client.backoff_step(), ms(10));
  Duration escalated = client.backoff_step();
  EXPECT_FALSE(client.query("bo").ok());
  EXPECT_GE(client.backoff_step(), escalated);

  // Heal. The first successful RPC must reset the window to base —
  // a recovered server stops paying outage-sized retry delays.
  faults->partition(false, false);
  auto q = client.query("bo");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().size(), 1u);
  EXPECT_EQ(client.backoff_step(), ms(10));
}

// --- Chaos: split and merge under loss with a replica kill mid-way ---

TEST(ReshardChaosTest, SplitAndMergeSurviveLossAndReplicaKill) {
  uint64_t seed = 0xC0FFEE;
  if (const char* s = std::getenv("BERTHA_CHAOS_SEED"))
    seed = std::strtoull(s, nullptr, 0);
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();

  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  cfg.replica.apply_timeout = ms(250);
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.stats = stats;
  cfg.decorate = [seed](TransportPtr t,
                        const std::string& role) -> TransportPtr {
    if (role.find("-rpc") == std::string::npos) return t;
    FaultInjectingTransport::Options fo;
    fo.drop = 0.05;
    fo.seed = (std::hash<std::string>{}(role) ^ seed) | 1;
    return TransportPtr(new FaultInjectingTransport(std::move(t), fo));
  };
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(100);
  rpc.retries = 8;
  rpc.backoff = {ms(5), 2.0, ms(40), 0.3};
  rpc.backoff_seed = seed;
  rpc.stats = stats;
  auto wr = cluster->client("rc-wr", rpc).value();
  auto obs = cluster->client("rc-obs", rpc).value();
  auto fan = obs->watch("").value();

  // Writer: keeps registering under loss and across both migrations;
  // only acknowledged writes count. Reader: continuously queries what
  // has been acked — a range with no live home turns into a permanent
  // failure here.
  std::mutex acked_mu;
  std::vector<std::string> acked;
  std::atomic<bool> stop_load{false};
  std::atomic<uint64_t> read_failures{0};
  std::atomic<uint64_t> reads{0};
  std::thread writer([&] {
    for (int i = 0; !stop_load.load(); i++) {
      std::string t = "rc.w" + std::to_string(i);
      Deadline dl = Deadline::after(seconds(10));
      bool ok_write = false;
      while (!dl.expired() && !ok_write)
        ok_write = wr->register_impl(info_of(t, t + "/impl")).ok();
      if (ok_write) {
        std::lock_guard<std::mutex> lk(acked_mu);
        acked.push_back(t);
      }
      sleep_for(ms(10));
    }
  });
  std::thread reader([&] {
    size_t i = 0;
    while (!stop_load.load()) {
      std::string t;
      {
        std::lock_guard<std::mutex> lk(acked_mu);
        if (!acked.empty()) t = acked[i++ % acked.size()];
      }
      if (!t.empty()) {
        reads.fetch_add(1);
        auto q = obs->query(t);
        if (!q.ok() || q.value().empty()) read_failures.fetch_add(1);
      }
      sleep_for(ms(5));
    }
  });

  // Let some writes land on the 2-partition layout first.
  Deadline warm = Deadline::after(seconds(5));
  while (!warm.expired()) {
    {
      std::lock_guard<std::mutex> lk(acked_mu);
      if (acked.size() >= 6) break;
    }
    sleep_for(ms(20));
  }

  ReshardOptions ro;
  ro.ack_timeout = ms(500);
  ro.attempts = 20;
  ro.drain = ms(100);
  ro.stats = stats;
  auto coord = ReshardCoordinator::create(*cluster, ro).value();

  // Split 2 -> 4 with a source replica dying mid-migration: the
  // remaining majority keeps sequencing the phase ops.
  std::thread killer([&] {
    sleep_for(ms(30));
    cluster->kill_replica(0, 2);
  });
  auto split = coord->split();
  killer.join();
  ASSERT_TRUE(split.ok()) << split.error().to_string();
  ASSERT_EQ(cluster->active_partitions(), 4u);

  // Keep the load running on the split layout, then fold back.
  sleep_for(ms(300));
  auto merge = coord->merge();
  ASSERT_TRUE(merge.ok()) << merge.error().to_string();
  ASSERT_EQ(cluster->active_partitions(), 2u);
  sleep_for(ms(300));

  stop_load.store(true);
  writer.join();
  reader.join();

  // The dead replica never came back, yet nothing was lost: every
  // acknowledged registration answers from the merged layout.
  auto audit = cluster->client("rc-audit", rpc).value();
  std::vector<std::string> final_acked;
  {
    std::lock_guard<std::mutex> lk(acked_mu);
    final_acked = acked;
  }
  ASSERT_GE(final_acked.size(), 6u);
  for (const auto& t : final_acked) {
    auto q = audit->query(t);
    ASSERT_TRUE(q.ok()) << t << ": " << q.error().to_string();
    EXPECT_EQ(q.value().size(), 1u) << t;
  }

  // Readers saw no dark window: transient loss retries inside the RPC
  // budget, so a tiny residue is tolerated but a fenced-range outage
  // (every query failing for a phase) is not.
  EXPECT_GE(reads.load(), 20u);
  EXPECT_LT(read_failures.load(), reads.load() / 4)
      << "key ranges went unanswered during the migration";

  // The fan-in stream survived both migrations: its re-stamped seq
  // domain has no skips, and every acked registration shows at least
  // once (installs may snapshot-replay, so duplicates are fine).
  std::set<std::string> seen;
  uint64_t last_seq = 0;
  bool skipped = false;
  Deadline dl = Deadline::after(seconds(10));
  while (seen.size() < final_acked.size() && !dl.expired()) {
    auto ev = fan->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    if (last_seq != 0 && ev.value().seq != last_seq + 1) skipped = true;
    last_seq = ev.value().seq;
    if (ev.value().kind == WatchKind::impl_registered)
      seen.insert(ev.value().name);
  }
  EXPECT_FALSE(skipped) << "fan-in watch seq domain skipped";
  EXPECT_EQ(fan->dropped(), 0u);
  for (const auto& t : final_acked)
    EXPECT_TRUE(seen.count(t + "/impl")) << t << " never reached the watch";

  cluster->stop();
}

}  // namespace
}  // namespace bertha
