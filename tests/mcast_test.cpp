// Tests for ordered multicast: framing, the software sequencer, switch
// (SimNet) sequencing, end-to-end RSM agreement under both
// implementations, and negotiation picking the switch offload when the
// SimSwitch has capacity.
#include <gtest/gtest.h>

#include "apps/rsm.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "sim/simswitch.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

TEST(McastFrameTest, RoundTrip) {
  Addr reply = Addr::sim("client", 9);
  Bytes framed = mcast_frame(reply, to_bytes("op"));
  auto parsed = parse_mcast_frame(framed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().first, reply);
  EXPECT_EQ(to_string(parsed.value().second), "op");

  Bytes sequenced;
  put_u64_le(sequenced, 77);
  append(sequenced, framed);
  auto op = parse_sequenced_mcast(sequenced);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().seq, 77u);
  EXPECT_EQ(op.value().reply_to, reply);
  EXPECT_EQ(to_string(op.value().payload), "op");
}

TEST(McastFrameTest, RejectsShortAndBadMagic) {
  EXPECT_FALSE(parse_sequenced_mcast(to_bytes("short")).ok());
  Bytes bad;
  put_u64_le(bad, 1);
  append(bad, to_bytes("XX"));
  EXPECT_FALSE(parse_sequenced_mcast(bad).ok());
}

TEST(SoftwareSequencerTest, StampsAndFansOut) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "seq");
  auto m1 = world.sim->attach("r1", 7).value();
  auto m2 = world.sim->attach("r2", 7).value();
  auto seq = SoftwareSequencer::start(factory, Addr::sim("seq", 100),
                                      {m1->local_addr(), m2->local_addr()});
  ASSERT_TRUE(seq.ok());

  auto cli = world.sim->attach("c", 1).value();
  for (int i = 0; i < 3; i++) {
    Bytes framed = mcast_frame(cli->local_addr(),
                               to_bytes("op" + std::to_string(i)));
    ASSERT_TRUE(cli->send_to(seq.value()->addr(), framed).ok());
  }
  for (auto* m : {m1.get(), m2.get()}) {
    for (uint64_t want = 0; want < 3; want++) {
      auto pkt = m->recv(Deadline::after(seconds(5)));
      ASSERT_TRUE(pkt.ok());
      auto op = parse_sequenced_mcast(pkt.value().payload);
      ASSERT_TRUE(op.ok());
      EXPECT_EQ(op.value().seq, want);
    }
  }
  EXPECT_EQ(seq.value()->sequenced(), 3u);
}

TEST(SoftwareSequencerTest, DropsNonMcastTraffic) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "seq");
  auto m1 = world.sim->attach("r1", 7).value();
  auto seq = SoftwareSequencer::start(factory, Addr::sim("seq", 101),
                                      {m1->local_addr()});
  ASSERT_TRUE(seq.ok());
  auto cli = world.sim->attach("c", 1).value();
  ASSERT_TRUE(cli->send_to(seq.value()->addr(), to_bytes("garbage")).ok());
  EXPECT_FALSE(m1->recv(Deadline::after(ms(200))).ok());
  EXPECT_EQ(seq.value()->sequenced(), 0u);
}

TEST(SoftwareSequencerTest, RegistersWithDiscovery) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "seq");
  auto m1 = world.sim->attach("r1", 7).value();
  auto seq = SoftwareSequencer::start(factory, Addr::sim("seq", 102),
                                      {m1->local_addr()});
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(seq.value()->register_with(*world.discovery, "grp").ok());
  auto entries = world.discovery->query("ordered_mcast").value();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].props.at("sequencer"), "software");
}

// --- full RSM over both sequencer implementations ---

struct RsmFixture : ::testing::TestWithParam<bool /*use_switch*/> {
  // Three replicas on sim nodes r0..r2, clients on c0/c1.
  void run() {
    const bool use_switch = GetParam();
    auto world = TestWorld::make();

    std::vector<Addr> member_addrs = {Addr::sim("r0", 7000),
                                      Addr::sim("r1", 7000),
                                      Addr::sim("r2", 7000)};

    std::shared_ptr<SimSwitch> sw;
    std::unique_ptr<SoftwareSequencer> soft;
    if (use_switch) {
      SimSwitch::Config scfg;
      scfg.sequencer_slots = 1;
      sw = SimSwitch::create(world.sim, world.discovery, scfg).value();
      ASSERT_TRUE(sw->install_sequencer_group("grp", 7100, member_addrs).ok());
    } else {
      DefaultTransportFactory f(world.mem, world.sim, "seqnode");
      soft = SoftwareSequencer::start(f, Addr::sim("seqnode", 7100),
                                      member_addrs)
                 .value();
      ASSERT_TRUE(soft->register_with(*world.discovery, "grp").ok());
    }

    std::vector<std::unique_ptr<RsmReplica>> replicas;
    std::vector<Addr> control_addrs;
    for (int i = 0; i < 3; i++) {
      std::string node = "r" + std::to_string(i);
      RsmReplicaConfig cfg;
      cfg.rt = world.runtime(node);
      cfg.listen_addr = Addr::sim(node, 8000);
      cfg.member_addr = member_addrs[static_cast<size_t>(i)];
      cfg.group = "grp";
      cfg.replier = i == 0;
      auto rep = RsmReplica::start(std::move(cfg));
      ASSERT_TRUE(rep.ok()) << rep.error().to_string();
      control_addrs.push_back(rep.value()->control_addr());
      replicas.push_back(std::move(rep).value());
    }

    auto cli_rt = world.runtime("c0");
    auto client = RsmClient::connect(cli_rt, control_addrs,
                                     Deadline::after(seconds(10)));
    ASSERT_TRUE(client.ok()) << client.error().to_string();

    // Writes then reads through the replicated machine.
    for (int i = 0; i < 10; i++) {
      KvRequest op;
      op.op = KvOp::put;
      op.id = static_cast<uint64_t>(i + 1);
      op.key = "k" + std::to_string(i);
      op.value = "v" + std::to_string(i);
      auto rsp = client.value()->execute(op, Deadline::after(seconds(10)));
      ASSERT_TRUE(rsp.ok()) << rsp.error().to_string();
      EXPECT_EQ(rsp.value().status, KvStatus::ok);
    }
    KvRequest get;
    get.op = KvOp::get;
    get.id = 100;
    get.key = "k3";
    auto rsp = client.value()->execute(get, Deadline::after(seconds(10)));
    ASSERT_TRUE(rsp.ok());
    EXPECT_EQ(rsp.value().value, "v3");

    // Every replica applied every op (11) and the stores agree.
    sleep_for(ms(200));  // non-replier replicas lag the client ack
    for (auto& rep : replicas) {
      EXPECT_EQ(rep->applied(), 11u);
      EXPECT_EQ(rep->store().get("k7").value_or(""), "v7");
      EXPECT_EQ(rep->store().size(), 10u);
    }

    client.value()->close();
    for (auto& rep : replicas) rep->stop();
  }
};

TEST_P(RsmFixture, AgreesOnOrderAndState) { run(); }
INSTANTIATE_TEST_SUITE_P(Sequencers, RsmFixture,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "SwitchSequencer"
                                             : "SoftwareSequencer";
                         });

TEST(RsmTest, TwoClientsSeeOneOrder) {
  // Concurrent writers to the same key: all replicas must converge to
  // the same final value because the network orders their ops.
  auto world = TestWorld::make();
  std::vector<Addr> member_addrs = {Addr::sim("r0", 7000),
                                    Addr::sim("r1", 7000)};
  auto sw = SimSwitch::create(world.sim, world.discovery, {}).value();
  ASSERT_TRUE(sw->install_sequencer_group("grp", 7100, member_addrs).ok());

  std::vector<std::unique_ptr<RsmReplica>> replicas;
  std::vector<Addr> control_addrs;
  for (int i = 0; i < 2; i++) {
    std::string node = "r" + std::to_string(i);
    RsmReplicaConfig cfg;
    cfg.rt = world.runtime(node);
    cfg.listen_addr = Addr::sim(node, 8000);
    cfg.member_addr = member_addrs[static_cast<size_t>(i)];
    cfg.group = "grp";
    cfg.replier = i == 0;
    auto rep = RsmReplica::start(std::move(cfg)).value();
    control_addrs.push_back(rep->control_addr());
    replicas.push_back(std::move(rep));
  }

  auto c1 = RsmClient::connect(world.runtime("c1"), control_addrs,
                               Deadline::after(seconds(10)))
                .value();
  auto c2 = RsmClient::connect(world.runtime("c2"), control_addrs,
                               Deadline::after(seconds(10)))
                .value();

  constexpr int kOps = 25;
  std::thread t1([&] {
    for (int i = 0; i < kOps; i++) {
      KvRequest op;
      op.op = KvOp::put;
      op.id = static_cast<uint64_t>(i + 1);
      op.key = "contested";
      op.value = "c1-" + std::to_string(i);
      ASSERT_TRUE(c1->execute(op, Deadline::after(seconds(10))).ok());
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kOps; i++) {
      KvRequest op;
      op.op = KvOp::put;
      op.id = static_cast<uint64_t>(i + 1);
      op.key = "contested";
      op.value = "c2-" + std::to_string(i);
      ASSERT_TRUE(c2->execute(op, Deadline::after(seconds(10))).ok());
    }
  });
  t1.join();
  t2.join();
  sleep_for(ms(300));

  EXPECT_EQ(replicas[0]->applied(), 2u * kOps);
  EXPECT_EQ(replicas[1]->applied(), 2u * kOps);
  // One global order => identical final values.
  EXPECT_EQ(replicas[0]->store().get("contested").value_or("a"),
            replicas[1]->store().get("contested").value_or("b"));

  c1->close();
  c2->close();
  for (auto& rep : replicas) rep->stop();
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// Regression: an offload installed for one application instance must
// not capture another instance's traffic just because it has higher
// priority (the "instance" scoping in negotiation).
TEST(McastInstanceScoping, GroupsDoNotCaptureEachOthersSequencers) {
  auto world = TestWorld::make();

  std::vector<Addr> members_a = {Addr::sim("a0", 7000)};
  std::vector<Addr> members_b = {Addr::sim("b0", 7000)};

  // Group A owns the only switch slot; group B runs on software.
  auto sw = SimSwitch::create(world.sim, world.discovery, {}).value();
  ASSERT_TRUE(sw->install_sequencer_group("grp-a", 7100, members_a).ok());
  DefaultTransportFactory f(world.mem, world.sim, "seqnode");
  auto soft =
      SoftwareSequencer::start(f, Addr::sim("seqnode", 7100), members_b)
          .value();
  ASSERT_TRUE(soft->register_with(*world.discovery, "grp-b").ok());

  auto start_replica = [&](const std::string& node, const Addr& member,
                           const std::string& group) {
    RsmReplicaConfig cfg;
    cfg.rt = world.runtime(node);
    cfg.listen_addr = Addr::sim(node, 8000);
    cfg.member_addr = member;
    cfg.group = group;
    cfg.replier = true;
    return RsmReplica::start(std::move(cfg)).value();
  };
  auto rep_a = start_replica("a0", members_a[0], "grp-a");
  auto rep_b = start_replica("b0", members_b[0], "grp-b");

  auto cli = RsmClient::connect(world.runtime("cb"), {rep_b->control_addr()},
                                Deadline::after(seconds(10)))
                 .value();
  KvRequest op;
  op.op = KvOp::put;
  op.id = 1;
  op.key = "owner";
  op.value = "group-b";
  ASSERT_TRUE(cli->execute(op, Deadline::after(seconds(10))).ok());
  sleep_for(ms(100));

  // B applied it; A never saw it (B's client used B's software
  // sequencer, not A's higher-priority switch group).
  EXPECT_EQ(rep_b->applied(), 1u);
  EXPECT_EQ(rep_b->store().get("owner").value_or(""), "group-b");
  EXPECT_EQ(rep_a->applied(), 0u);
  EXPECT_EQ(soft->sequenced(), 1u);

  cli->close();
  rep_a->stop();
  rep_b->stop();
}

// Sequencer handover: a switch taking over a group must continue the
// sequence space (initial_seq), or replicas discard everything as
// duplicates.
TEST(McastInstanceScoping, HandoverPreservesSequenceEpoch) {
  auto world = TestWorld::make();
  auto m = world.sim->attach("r", 7).value();

  // Old sequencer delivered seqs 0..4.
  ASSERT_TRUE(world.sim
                  ->create_group("g1", 7, {m->local_addr()},
                                 /*hw_sequencer=*/true, /*initial_seq=*/0)
                  .ok());
  auto cli = world.sim->attach("c", 1).value();
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(cli->send_to(Addr::sim("g1", 7), to_bytes("x")).ok());
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(m->recv(Deadline::after(seconds(2))).ok());
  world.sim->remove_group("g1", 7);

  // New sequencer resumes at 5.
  ASSERT_TRUE(world.sim
                  ->create_group("g1", 7, {m->local_addr()},
                                 /*hw_sequencer=*/true, /*initial_seq=*/5)
                  .ok());
  ASSERT_TRUE(cli->send_to(Addr::sim("g1", 7), to_bytes("y")).ok());
  auto pkt = m->recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(pkt.ok());
  EXPECT_EQ(get_u64_le(pkt.value().payload, 0), 5u);
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// --- view stamps, standby election, fetch-miss ---

TEST(McastViewTest, ViewStampedRoundTrip) {
  // The stamp packs (view, seq): the seq domain is continuous across
  // views, so replicas' holdback windows survive a sequencer change.
  uint64_t stamp = mcast_stamp(3, 77);
  EXPECT_EQ(stamp & kMcastSeqMask, 77u);
  EXPECT_EQ(stamp >> kMcastSeqBits, 3u);

  Addr reply = Addr::sim("client", 9);
  Bytes sequenced;
  put_u64_le(sequenced, stamp);
  append(sequenced, mcast_frame(reply, to_bytes("op")));
  auto op = parse_sequenced_mcast(sequenced);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().seq, 77u);
  EXPECT_EQ(op.value().view, 3u);
  EXPECT_EQ(op.value().reply_to, reply);

  // View-start and fetch-miss control frames round-trip too.
  auto vs = parse_mcast_view_start(mcast_view_start_frame(2, 41));
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().view, 2u);
  EXPECT_EQ(vs.value().start_seq, 41u);
  auto miss = parse_mcast_fetch_miss(mcast_fetch_miss_frame(1, 5, 9));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.value().view, 1u);
  EXPECT_EQ(miss.value().from, 5u);
  EXPECT_EQ(miss.value().to, 9u);
  EXPECT_FALSE(parse_mcast_view_start(mcast_fetch_miss_frame(1, 5, 9)).ok());
}

TEST(McastViewTest, StandbyActivatesOnViewStartAndAnnounces) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "seq");
  auto m1 = world.sim->attach("r1", 7).value();
  auto seq = SoftwareSequencer::start(factory, Addr::sim("seq", 103),
                                      {m1->local_addr()},
                                      /*retransmit_window=*/0, /*view=*/0,
                                      /*standby=*/true)
                 .value();
  EXPECT_FALSE(seq->active());

  // Standing by: client traffic is dropped, not stamped.
  auto cli = world.sim->attach("c", 1).value();
  Bytes framed = mcast_frame(cli->local_addr(), to_bytes("early"));
  ASSERT_TRUE(cli->send_to(seq->addr(), framed).ok());
  EXPECT_FALSE(m1->recv(Deadline::after(ms(200))).ok());
  EXPECT_EQ(seq->sequenced(), 0u);

  // Election result: wake in view 1 at seq 5. The sequencer announces
  // the view with a stamped no-op so replicas adopt it immediately.
  ASSERT_TRUE(cli->send_to(seq->addr(), mcast_view_start_frame(1, 5)).ok());
  auto announce = m1->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(announce.ok());
  auto aop = parse_sequenced_mcast(announce.value().payload);
  ASSERT_TRUE(aop.ok());
  EXPECT_EQ(aop.value().view, 1u);
  EXPECT_EQ(aop.value().seq, 5u);
  EXPECT_TRUE(aop.value().payload.empty());
  EXPECT_TRUE(seq->active());
  EXPECT_EQ(seq->view(), 1u);

  // Client ops now continue the seq chain under the new view.
  ASSERT_TRUE(cli->send_to(seq->addr(), framed).ok());
  auto pkt = m1->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(pkt.ok());
  auto op = parse_sequenced_mcast(pkt.value().payload);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().view, 1u);
  EXPECT_EQ(op.value().seq, 6u);

  // A stale (lower-view) election result is ignored.
  ASSERT_TRUE(cli->send_to(seq->addr(), mcast_view_start_frame(0, 99)).ok());
  ASSERT_TRUE(cli->send_to(seq->addr(), framed).ok());
  pkt = m1->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(pkt.ok());
  op = parse_sequenced_mcast(pkt.value().payload);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().view, 1u);
  EXPECT_EQ(op.value().seq, 7u);
}

TEST(McastViewTest, FetchMissForEvictedRange) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "seq");
  auto m1 = world.sim->attach("r1", 7).value();
  auto seq = SoftwareSequencer::start(factory, Addr::sim("seq", 104),
                                      {m1->local_addr()},
                                      /*retransmit_window=*/2)
                 .value();
  auto cli = world.sim->attach("c", 1).value();
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(cli->send_to(seq->addr(),
                             mcast_frame(cli->local_addr(), to_bytes("op")))
                    .ok());
    ASSERT_TRUE(m1->recv(Deadline::after(seconds(5))).ok());
  }

  // Seqs 0..2 are pruned from the two-slot log. A fetch of the full
  // range answers the evicted prefix with a miss frame and retransmits
  // the still-covered tail.
  ASSERT_TRUE(
      cli->send_to(seq->addr(), mcast_fetch_frame(cli->local_addr(), 0, 5))
          .ok());
  auto first = cli->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(first.ok());
  auto miss = parse_mcast_fetch_miss(first.value().payload);
  ASSERT_TRUE(miss.ok()) << "expected the miss frame first";
  EXPECT_EQ(miss.value().from, 0u);
  EXPECT_EQ(miss.value().to, 3u);
  for (uint64_t want = 3; want < 5; want++) {
    auto pkt = cli->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(pkt.ok());
    auto op = parse_sequenced_mcast(pkt.value().payload);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(op.value().seq, want);
  }
}

// Loss on the sequenced stream: the replica must skip aged-out gaps
// (counting them for recovery) instead of stalling behind a lost
// sequence number.
TEST(McastLossTest, ReplicaSkipsGapsAndKeepsApplying) {
  auto world = TestWorld::make(/*seed=*/321);
  world.sim->set_link("cli", "r0", us(100), /*loss=*/0.3);

  auto sw = SimSwitch::create(world.sim, world.discovery, {}).value();
  ASSERT_TRUE(
      sw->install_sequencer_group("grp", 7100, {Addr::sim("r0", 7000)}).ok());

  auto rep_rt = world.runtime("r0");
  RsmReplicaConfig cfg;
  cfg.rt = rep_rt;
  cfg.listen_addr = Addr::sim("r0", 8000);
  cfg.member_addr = Addr::sim("r0", 7000);
  cfg.group = "grp";
  cfg.replier = false;  // fire-and-forget ops; we inspect replica state
  ChunnelArgs fast_gap;
  fast_gap.set("gap_timeout_us", "10000");
  cfg.extra_mcast_args = fast_gap;
  auto replica = RsmReplica::start(std::move(cfg)).value();

  auto cli_rt = world.runtime("cli");
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(replica->control_addr(), Deadline::after(seconds(10)))
                  .value();

  constexpr int kOps = 200;
  for (int i = 0; i < kOps; i++) {
    KvRequest op;
    op.op = KvOp::put;
    op.id = static_cast<uint64_t>(i + 1);
    op.key = "k" + std::to_string(i);
    op.value = "v";
    Msg m;
    m.payload = encode_kv_request(op);
    ASSERT_TRUE(conn->send(std::move(m)).ok());
  }
  sleep_for(ms(600));  // deliveries + gap timeouts

  // ~30% of the sequenced stream was lost; the replica applied the
  // survivors and recorded the gaps instead of stalling.
  uint64_t applied = replica->applied();
  EXPECT_GT(applied, static_cast<uint64_t>(kOps) * 4 / 10);
  EXPECT_LT(applied, static_cast<uint64_t>(kOps));

  // Both impl instances (switch/software) share the replica state, so
  // each reports the same true total; take one, don't sum.
  uint64_t gaps = 0;
  for (const auto& impl : rep_rt->registry().lookup_type("ordered_mcast")) {
    if (auto* base = dynamic_cast<OrderedMcastChunnelBase*>(impl.get()))
      gaps = std::max(gaps, base->gaps_skipped());
  }
  EXPECT_GT(gaps, 0u);
  EXPECT_EQ(applied + gaps, static_cast<uint64_t>(kOps));

  conn->close();
  replica->stop();
}

}  // namespace
}  // namespace bertha
