// Tests for the sharding chunnel: args, framing, steering consistency
// between client-push and dispatcher paths, and full end-to-end KV
// operation under each of the Fig 5 implementation choices.
#include <gtest/gtest.h>

#include "apps/kvserver.hpp"
#include "chunnels/shard.hpp"
#include "core/negotiation.hpp"
#include "test_helpers.hpp"
#include "util/hash.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

TEST(ShardArgsTest, ParsesAndValidates) {
  ChunnelArgs args;
  args.set("shards", "mem://h:1,mem://h:2,mem://h:3");
  args.set("field_offset", "10");
  args.set("field_len", "4");
  auto parsed = ShardArgs::from(args);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().shards.size(), 3u);
  EXPECT_EQ(parsed.value().field_offset, 10u);

  ChunnelArgs missing;
  EXPECT_FALSE(ShardArgs::from(missing).ok());

  ChunnelArgs bad_len = args;
  bad_len.set("field_len", "0");
  EXPECT_FALSE(ShardArgs::from(bad_len).ok());
}

TEST(ShardArgsTest, PickIsStableAndInRange) {
  ShardArgs args;
  args.shards = {Addr::mem("h", 1), Addr::mem("h", 2), Addr::mem("h", 3)};
  args.field_offset = 2;
  args.field_len = 4;
  Rng rng(5);
  for (int i = 0; i < 200; i++) {
    Bytes payload(10, 0);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.next_below(256));
    size_t first = args.pick(payload);
    EXPECT_LT(first, 3u);
    EXPECT_EQ(first, args.pick(payload));  // deterministic
  }
}

TEST(ShardArgsTest, ShortPayloadGoesToShardZero) {
  ShardArgs args;
  args.shards = {Addr::mem("h", 1), Addr::mem("h", 2)};
  args.field_offset = 10;
  args.field_len = 4;
  Bytes tiny{1, 2, 3};
  EXPECT_EQ(args.pick(tiny), 0u);
}

TEST(ShardFrameTest, RoundTrip) {
  Addr reply = Addr::udp("10.0.0.1", 555);
  Bytes payload = to_bytes("request-body");
  Bytes framed = shard_frame(reply, payload);
  auto parsed = parse_shard_frame(framed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().reply_to, reply);
  EXPECT_EQ(to_string(parsed.value().payload), "request-body");
}

TEST(ShardFrameTest, RejectsGarbage) {
  EXPECT_FALSE(parse_shard_frame(to_bytes("XY")).ok());
  EXPECT_FALSE(parse_shard_frame(Bytes{}).ok());
  // Valid magic, bogus addr.
  Writer w;
  w.put_u8('S');
  w.put_u8('1');
  w.put_string("not-an-addr");
  EXPECT_FALSE(parse_shard_frame(w.bytes()).ok());
}

TEST(ShardFrameTest, SteeringSeesThroughFraming) {
  // The dispatcher's cheap path must agree with client-push steering on
  // the same app payload regardless of reply-addr length.
  ShardArgs args;
  args.shards = {Addr::mem("h", 1), Addr::mem("h", 2), Addr::mem("h", 3)};
  args.field_offset = kKvShardFieldOffset;
  args.field_len = kKvShardFieldLen;
  KvRequest req;
  req.op = KvOp::get;
  req.id = 9;
  req.key = "user000000000042";
  Bytes payload = encode_kv_request(req);
  size_t direct = args.pick(payload);

  for (const Addr& reply : {Addr::mem("x", 1), Addr::uds("some-long-name")}) {
    Bytes framed = shard_frame(reply, payload);
    auto parsed = parse_shard_frame(framed);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(args.pick(parsed.value().payload), direct);
  }
}

// --- end-to-end: each Fig 5 implementation ---

struct ShardE2E : ::testing::Test {
  void SetUp() override { world = TestWorld::make(); }

  // Builds a sharded KV server on host "srv" with the given impls
  // registered server-side, and a client on "cli" with/without the
  // client-push fallback registered.
  void run_scenario(bool server_xdp, bool server_fallback, bool client_push,
                    const std::string& expect_impl_substr) {
    auto srv_rt = world.runtime("srv", /*builtins=*/false);
    ASSERT_TRUE(register_shard_chunnels(*srv_rt, false, server_xdp,
                                        server_fallback)
                    .ok());
    auto cli_rt = world.runtime("cli", /*builtins=*/false);
    ASSERT_TRUE(
        register_shard_chunnels(*cli_rt, client_push, server_xdp,
                                server_fallback)
            .ok());

    auto backend = KvBackend::start(cli_rt->transports(), Addr::mem("srv", 0),
                                    "srv", 3);
    ASSERT_TRUE(backend.ok());
    // Preload a few keys directly.
    ShardArgs sargs;
    sargs.shards = backend.value()->shard_addrs();
    sargs.field_offset = kKvShardFieldOffset;
    sargs.field_len = kKvShardFieldLen;

    ChunnelArgs args;
    args.set("shards", format_addr_list(sargs.shards));
    args.set_u64("field_offset", kKvShardFieldOffset);
    args.set_u64("field_len", kKvShardFieldLen);

    auto listener = srv_rt->endpoint("my-kv-srv", wrap(ChunnelSpec("shard", args)))
                        .value()
                        .listen(Addr::mem("srv", 400))
                        .value();

    auto ep = cli_rt->endpoint("kv-client", ChunnelDag::empty()).value();
    auto conn = ep.connect(listener->addr(), Deadline::after(seconds(5)));
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();

    // PUT then GET a handful of keys through the negotiated data path.
    for (int i = 0; i < 20; i++) {
      KvRequest put;
      put.op = KvOp::put;
      put.id = static_cast<uint64_t>(i);
      put.key = "key-" + std::to_string(i);
      put.value = "val-" + std::to_string(i);
      Msg m;
      m.payload = encode_kv_request(put);
      ASSERT_TRUE(conn.value()->send(std::move(m)).ok());
      auto reply = conn.value()->recv(Deadline::after(seconds(5)));
      ASSERT_TRUE(reply.ok()) << reply.error().to_string();
      auto rsp = decode_kv_response(reply.value().payload);
      ASSERT_TRUE(rsp.ok());
      EXPECT_EQ(rsp.value().status, KvStatus::ok);
      EXPECT_EQ(rsp.value().id, put.id);
    }
    for (int i = 0; i < 20; i++) {
      KvRequest get;
      get.op = KvOp::get;
      get.id = 1000 + static_cast<uint64_t>(i);
      get.key = "key-" + std::to_string(i);
      Msg m;
      m.payload = encode_kv_request(get);
      ASSERT_TRUE(conn.value()->send(std::move(m)).ok());
      auto reply = conn.value()->recv(Deadline::after(seconds(5)));
      ASSERT_TRUE(reply.ok());
      auto rsp = decode_kv_response(reply.value().payload);
      ASSERT_TRUE(rsp.ok());
      EXPECT_EQ(rsp.value().status, KvStatus::ok) << get.key;
      EXPECT_EQ(rsp.value().value, "val-" + std::to_string(i));
    }

    // Data was spread across shards (20 keys, 3 shards).
    size_t nonempty = 0;
    for (size_t s = 0; s < backend.value()->size(); s++)
      if (backend.value()->shard(s).store().size() > 0) nonempty++;
    EXPECT_GE(nonempty, 2u);
    EXPECT_EQ(backend.value()->total_served(), 40u);

    (void)expect_impl_substr;  // impl choice verified in NegotiationPicks*
    conn.value()->close();
    backend.value()->stop();
  }

  TestWorld world;
};

TEST_F(ShardE2E, ClientPushPath) { run_scenario(false, false, true, "push"); }
TEST_F(ShardE2E, XdpDispatcherPath) { run_scenario(true, false, false, "xdp"); }
TEST_F(ShardE2E, FallbackDispatcherPath) {
  run_scenario(false, true, false, "fallback");
}
TEST_F(ShardE2E, AllRegisteredPrefersClientPush) {
  run_scenario(true, true, true, "push");
}

TEST(ShardNegotiationTest, MixedClientsBindDifferentImpls) {
  // The paper's "Mixed" scenario: one client has the client-push
  // fallback, the other doesn't; the same server binds different
  // implementations per connection.
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("srv", false);
  ASSERT_TRUE(register_shard_chunnels(*srv_rt, false, true, true).ok());
  auto cli_push = world.runtime("c1", false);
  ASSERT_TRUE(register_shard_chunnels(*cli_push, true, false, false).ok());
  auto cli_plain = world.runtime("c2", false);
  ASSERT_TRUE(register_shard_chunnels(*cli_plain, false, true, false).ok());

  auto backend =
      KvBackend::start(srv_rt->transports(), Addr::mem("srv", 0), "srv", 3)
          .value();
  ChunnelArgs args;
  args.set("shards", format_addr_list(backend->shard_addrs()));
  args.set_u64("field_offset", kKvShardFieldOffset);
  args.set_u64("field_len", kKvShardFieldLen);
  auto listener = srv_rt->endpoint("kv", wrap(ChunnelSpec("shard", args)))
                      .value()
                      .listen(Addr::mem("srv", 401))
                      .value();

  auto run_one = [&](std::shared_ptr<Runtime> rt) {
    auto conn = rt->endpoint("cli", ChunnelDag::empty())
                    .value()
                    .connect(listener->addr(), Deadline::after(seconds(5)));
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();
    KvRequest put;
    put.op = KvOp::put;
    put.id = 1;
    put.key = "k";
    put.value = "v";
    Msg m;
    m.payload = encode_kv_request(put);
    ASSERT_TRUE(conn.value()->send(std::move(m)).ok());
    ASSERT_TRUE(conn.value()->recv(Deadline::after(seconds(5))).ok());
    conn.value()->close();
  };
  run_one(cli_push);
  run_one(cli_plain);
  EXPECT_EQ(backend->total_served(), 2u);
  backend->stop();
}

TEST(ShardWorkerTest, IgnoresStrayDatagrams) {
  auto world = TestWorld::make();
  DefaultTransportFactory factory(world.mem, world.sim, "h");
  auto worker = ShardWorker::bind(factory, Addr::mem("h", 500));
  ASSERT_TRUE(worker.ok());
  auto t = world.mem->bind(Addr::mem("h", 0)).value();
  // Garbage first, then a real frame.
  ASSERT_TRUE(t->send_to(worker.value()->addr(), to_bytes("junk")).ok());
  Bytes framed = shard_frame(t->local_addr(), to_bytes("real"));
  ASSERT_TRUE(t->send_to(worker.value()->addr(), framed).ok());
  auto m = worker.value()->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "real");
  EXPECT_EQ(m.value().src, t->local_addr());
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// --- in-network (switch) sharding, the paper's Fig-1 P4 example ---

struct SwitchShardFixture : ::testing::Test {
  void SetUp() override {
    world = TestWorld::make();
    sw = SimSwitch::create(world.sim, world.discovery, SimSwitch::Config{})
             .value();
    srv_rt = world.runtime("srv");
    // A thin client: links the shard chunnel code but registers no
    // client-push fallback, so the default policy binds the switch
    // offload (client-provided impls would otherwise win, as the paper's
    // policy prescribes).
    cli_rt = world.runtime("cli", /*builtins=*/false);
    EXPECT_TRUE(register_shard_chunnels(*cli_rt, /*client_push=*/false,
                                        /*xdp=*/true, /*fallback=*/true)
                    .ok());
    backend = KvBackend::start(srv_rt->transports(), Addr::sim("srv", 0),
                               "srv", 3)
                  .value();
    sargs.shards = backend->shard_addrs();
    sargs.field_offset = kKvShardFieldOffset;
    sargs.field_len = kKvShardFieldLen;
  }

  ChunnelArgs dag_args() {
    ChunnelArgs args;
    args.set("shards", format_addr_list(sargs.shards));
    args.set_u64("field_offset", sargs.field_offset);
    args.set_u64("field_len", sargs.field_len);
    args.set("instance", "kv-main");
    return args;
  }

  TestWorld world;
  std::shared_ptr<SimSwitch> sw;
  std::shared_ptr<Runtime> srv_rt, cli_rt;
  std::unique_ptr<KvBackend> backend;
  ShardArgs sargs;
};

TEST_F(SwitchShardFixture, SteersInNetworkEndToEnd) {
  auto vip = install_switch_shard_offload(*sw, *world.discovery, "kv-vip",
                                          80, sargs, "kv-main");
  ASSERT_TRUE(vip.ok()) << vip.error().to_string();
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 1u);

  auto listener = srv_rt->endpoint("kv", wrap(ChunnelSpec("shard", dag_args())))
                      .value()
                      .listen(Addr::sim("srv", 9000))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();

  for (int i = 0; i < 12; i++) {
    KvRequest put;
    put.op = KvOp::put;
    put.id = static_cast<uint64_t>(i + 1);
    put.key = "key-" + std::to_string(i);
    put.value = "v";
    Msg m;
    m.payload = encode_kv_request(put);
    ASSERT_TRUE(conn.value()->send(std::move(m)).ok());
    auto reply = conn.value()->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.error().to_string();
    EXPECT_EQ(decode_kv_response(reply.value().payload).value().status,
              KvStatus::ok);
  }
  // Every request went through the switch program, spread across shards.
  EXPECT_EQ(sw->steered(vip.value()), 12u);
  size_t nonempty = 0;
  for (size_t s = 0; s < backend->size(); s++)
    if (backend->shard(s).store().size() > 0) nonempty++;
  EXPECT_GE(nonempty, 2u);
  conn.value()->close();
  backend->stop();
}

TEST_F(SwitchShardFixture, SwitchAgreesWithClientPushSteering) {
  auto vip = install_switch_shard_offload(*sw, *world.discovery, "kv-vip2",
                                          80, sargs, "kv-main");
  ASSERT_TRUE(vip.ok());
  Rng rng(3);
  auto t = world.sim->attach("probe", 0).value();
  for (int i = 0; i < 50; i++) {
    KvRequest req;
    req.op = KvOp::get;
    req.id = static_cast<uint64_t>(i);
    req.key = "user" + std::to_string(rng.next_u64());
    Bytes payload = encode_kv_request(req);
    size_t expected = sargs.pick(payload);
    Bytes framed = shard_frame(t->local_addr(), payload);
    ASSERT_TRUE(t->send_to(vip.value(), framed).ok());
    // The shard worker at the expected index is the only receiver; the
    // KvShard replies, proving the switch and client-push agree.
    auto reply = t->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(reply.ok()) << i;
    EXPECT_EQ(reply.value().src, sargs.shards[expected]) << i;
  }
  backend->stop();
}

TEST_F(SwitchShardFixture, MatchActionSlotsAreBounded) {
  SimSwitch::Config small;
  small.name = "tiny";
  small.match_action_slots = 1;
  auto tiny = SimSwitch::create(world.sim, world.discovery, small).value();
  ASSERT_TRUE(install_switch_shard_offload(*tiny, *world.discovery, "vip-a",
                                           80, sargs, "a")
                  .ok());
  auto second = install_switch_shard_offload(*tiny, *world.discovery, "vip-b",
                                             80, sargs, "b");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::resource_exhausted);
  ASSERT_TRUE(tiny->remove_match_action("vip-a", 80).ok());
  EXPECT_TRUE(install_switch_shard_offload(*tiny, *world.discovery, "vip-b",
                                           80, sargs, "b")
                  .ok());
}

TEST_F(SwitchShardFixture, SwitchOutranksXdpInNegotiation) {
  ASSERT_TRUE(install_switch_shard_offload(*sw, *world.discovery, "kv-vip3",
                                           80, sargs, "kv-main")
                  .ok());
  DefaultPolicy policy;
  HelloMsg hello;
  hello.host_id = "cli";
  // Client links the chunnel library but registered no shard fallbacks
  // (shard/switch is factory_only and thus never offered).
  ChunnelSpec spec("shard", dag_args());
  auto network = world.discovery->query("shard").value();
  auto xdp = ShardXdpChunnel().info();
  auto ranked = rank_candidates(spec, {}, {xdp}, network, policy, false);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].info.name.rfind("shard/switch:", 0), 0u);
  EXPECT_EQ(ranked[1].info.name, "shard/xdp");
}

TEST_F(SwitchShardFixture, RejectsNonSimShards) {
  ShardArgs bad = sargs;
  bad.shards[0] = Addr::udp("127.0.0.1", 9);
  auto r = install_switch_shard_offload(*sw, *world.discovery, "vip-x", 80,
                                        bad, "i");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::invalid_argument);
  // The failed install released its slot.
  EXPECT_EQ(world.discovery->pool_in_use(sw->match_action_pool()), 0u);
}

}  // namespace
}  // namespace bertha
