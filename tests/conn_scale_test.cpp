// Connection-scale regressions: the properties that let one listener
// carry 100k+ connections.
//
//  - Churn leaves no residue: the sharded server connection table and
//    the client routing table return to zero entries after every
//    connection closes — the by_token_ dead-weak_ptr leak regression.
//  - Idle is free: past warmup, an additional idle connection costs
//    zero threads, and an idle fleet allocates nothing while parked
//    (per-binary counting operator new, io_test technique).
//  - Wheel/thread parity: the timer-wheel keepalive path reaches the
//    same liveness verdicts as the per-connection-thread path under a
//    seeded lossy-network storm, and wheel-mode lease heartbeats keep
//    discovery leases alive exactly like the thread path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/discovery.hpp"
#include "io/timer_wheel.hpp"
#include "test_helpers.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BERTHA_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define BERTHA_TSAN 1
#endif

// --- counting allocator hooks (per-binary, io_test technique) ---------

static std::atomic<uint64_t> g_allocs{0};

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace bertha {
namespace {

using testing_support::TestWorld;

// Threads in this process, from /proc/self/stat field 20 (num_threads).
int process_threads() {
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (!f) return -1;
  char buf[1024];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // Field 2 (comm) may contain spaces; parse from the closing paren.
  char* p = std::strrchr(buf, ')');
  if (!p) return -1;
  int field = 2;
  long threads = -1;
  for (p++; *p && field <= 20; p++) {
    if (*p == ' ') {
      field++;
      if (field == 20) threads = std::strtol(p + 1, nullptr, 10);
    }
  }
  return static_cast<int>(threads);
}

// Poll until `pred` holds or the deadline passes (close frames and
// table removals are asynchronous to the client's close() call).
template <typename Pred>
bool eventually(Pred pred, Duration limit = seconds(10)) {
  Deadline d = Deadline::after(limit);
  while (!d.expired()) {
    if (pred()) return true;
    sleep_for(ms(2));
  }
  return pred();
}

// 10k churned connections through one listener: the server connection
// table must stay bounded by the live set while churning and drain to
// zero afterwards. Before the wheel-folded sweep + take()-on-close
// hygiene, dead entries accumulated until the map was the history of
// every connection ever made.
TEST(ConnScaleTest, ChurnLeavesNoTableResidue) {
#ifdef BERTHA_TSAN
  constexpr int kTotal = 1500;
#else
  constexpr int kTotal = 10000;
#endif
  constexpr int kBatch = 64;
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h-srv");
  auto cli_rt = world.runtime("h-cli");

  auto listener = srv_rt->endpoint("srv", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();

  // Server side: accept and immediately drop (dropping the last ref
  // closes the stack; the close frame races the next batch — exactly
  // the churn the table has to absorb).
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    while (!stop.load()) {
      auto c = listener->accept(Deadline::after(ms(50)));
      if (c.ok()) c.value()->close();
    }
  });

  for (int done = 0; done < kTotal; done += kBatch) {
    std::vector<ConnPtr> batch;
    for (int i = 0; i < kBatch && done + i < kTotal; i++) {
      auto c = cli_ep.connect(listener->addr(), Deadline::after(seconds(5)));
      ASSERT_TRUE(c.ok()) << "conn " << done + i << ": "
                          << c.error().to_string();
      batch.push_back(std::move(c).value());
    }
    for (auto& c : batch) c->close();
    // Bounded while churning: live entries can lag by the in-flight
    // close frames, never by the total history.
    EXPECT_LE(listener->connections_live(),
              static_cast<uint64_t>(4 * kBatch))
        << "server table grew with history after " << done << " conns";
  }

  EXPECT_TRUE(eventually(
      [&] { return listener->connections_live() == 0; }))
      << "table residue after churn: " << listener->connections_live()
      << " entries for 0 live connections";
  EXPECT_EQ(listener->connections_accepted(),
            static_cast<uint64_t>(kTotal));
  stop.store(true);
  acceptor.join();
}

// An idle fleet is free: opening the second half of the fleet adds zero
// threads (keepalives ride the shared wheel), and once parked the whole
// fleet allocates nothing. Keepalive interval/sweep periods exceed the
// measurement window, so any allocation here is a real per-connection
// background cost.
TEST(ConnScaleTest, IdleConnectionsAddNoThreadsOrAllocs) {
#ifdef BERTHA_TSAN
  constexpr int kConns = 1000;
#else
  constexpr int kConns = 50000;
#endif
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h-srv");
  // Several client hosts: one mem host has ~25k ephemeral ports, and a
  // 50k fleet from one host would exhaust them (a realistic listener
  // serves many remote hosts anyway — only the server side must scale
  // in one process).
  constexpr int kCliHosts = 4;
  std::vector<std::shared_ptr<Runtime>> cli_rts;
  std::vector<Endpoint> cli_eps;
  for (int h = 0; h < kCliHosts; h++) {
    cli_rts.push_back(world.runtime("h-cli-" + std::to_string(h)));
    cli_eps.push_back(
        cli_rts.back()->endpoint("cli", ChunnelDag::empty()).value());
  }

  ChunnelArgs args;
  args.set("interval_us", "30000000");     // 30s: armed, never fires here
  args.set("dead_after_us", "120000000");  // 2min
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("keepalive", args)))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();

  std::vector<ConnPtr> client, server;
  client.reserve(kConns);
  server.reserve(kConns);
  int opened = 0;
  auto open_n = [&](int n) {
    for (int i = 0; i < n; i++, opened++) {
      auto& ep = cli_eps[opened % kCliHosts];
      auto c = ep.connect(listener->addr(), Deadline::after(seconds(5)));
      ASSERT_TRUE(c.ok()) << c.error().to_string();
      client.push_back(std::move(c).value());
      auto s = listener->accept(Deadline::after(seconds(5)));
      ASSERT_TRUE(s.ok()) << s.error().to_string();
      server.push_back(std::move(s).value());
    }
  };

  // Warmup: first connections create the shared machinery (wheel tick
  // thread, demux/reactor threads, pool growth).
  open_n(kConns / 2);
  sleep_for(ms(100));
  int threads_at_warmup = process_threads();
  ASSERT_GT(threads_at_warmup, 0);

  open_n(kConns - kConns / 2);
  EXPECT_EQ(listener->connections_live(), static_cast<uint64_t>(kConns));

  int threads_full = process_threads();
  EXPECT_EQ(threads_full, threads_at_warmup)
      << (threads_full - threads_at_warmup) << " new threads for "
      << kConns - kConns / 2 << " additional idle connections";

  // Parked fleet: nothing in the process should allocate. The wheel
  // holds one armed (not re-arming) entry per connection; demux is
  // event-driven with nothing arriving.
  sleep_for(ms(50));  // let in-flight establishment work settle
  uint64_t before = g_allocs.load();
  sleep_for(ms(200));
  uint64_t delta = g_allocs.load() - before;
  EXPECT_LE(delta, 64u) << "idle fleet of " << kConns << " connections "
                        << "allocated " << delta << " times while parked";

  for (auto& c : client) c->close();
  for (auto& s : server) s->close();
  client.clear();
  server.clear();
  EXPECT_TRUE(eventually(
      [&] { return listener->connections_live() == 0; }))
      << listener->connections_live() << " entries leaked";
}

// One keepalive storm, run twice — wheel on, wheel off. Connections
// whose client vanished must be pronounced dead (unavailable via
// heartbeat silence, or cancelled if the close frame got through);
// connections that kept beating through 5% seeded loss must stay alive.
// The two engines must reach the same verdicts.
struct StormVerdicts {
  int dead_terminal = 0;  // vanished clients seen as unavailable/cancelled
  int live_alive = 0;     // surviving clients still alive (recv timed out)
};

StormVerdicts run_keepalive_storm(bool use_wheel, uint64_t seed) {
  constexpr int kConns = 12;
  MemNetwork::Config mcfg;
  mcfg.seed = seed;
  mcfg.drop_rate = 0.05;
  auto mem = MemNetwork::create(mcfg);
  auto discovery = std::make_shared<DiscoveryState>();

  auto make_rt = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports = std::make_shared<DefaultTransportFactory>(mem, nullptr,
                                                               host);
    cfg.discovery = discovery;
    cfg.io.use_wheel = use_wheel;
    cfg.io.wheel_tick = ms(5);
    // Short retry gap: a server conn is born when the FIRST hello lands,
    // but the client only starts beating once connect() returns. Every
    // lost accept-reply widens that silent window by one retry gap, so
    // the gap must stay well below dead_after or an establishment retry
    // alone can condemn a live connection.
    cfg.handshake_timeout = ms(100);
    cfg.handshake_retries = 10;
    auto rt = Runtime::create(std::move(cfg)).value();
    EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
    return rt;
  };
  auto srv_rt = make_rt("h-srv");
  auto cli_rt = make_rt("h-cli");

  ChunnelArgs args;
  args.set("interval_us", "20000");
  args.set("dead_after_us", "600000");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("keepalive", args)))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();

  std::vector<ConnPtr> client, server;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kConns; i++) {
    client.push_back(
        cli_ep.connect(listener->addr(), Deadline::after(seconds(5))).value());
    server.push_back(listener->accept(Deadline::after(seconds(5))).value());
    if (std::getenv("BERTHA_STORM_DEBUG"))
      fprintf(stderr, "conn[%d] cli=%p srv=%p t=%ldms\n", i,
              (void*)client.back().get(), (void*)server.back().get(),
              (long)std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
  }
  // Even connections: client vanishes. Odd: client stays, heartbeating.
  for (int i = 0; i < kConns; i += 2) client[i]->close();

  StormVerdicts v;
  std::vector<std::thread> judges;
  std::mutex vm;
  for (int i = 0; i < kConns; i++) {
    judges.emplace_back([&, i] {
      // Dead peers trip dead_after=600ms well inside this window; live
      // peers just time out.
      auto r = server[i]->recv(Deadline::after(ms(1500)));
      if (std::getenv("BERTHA_STORM_DEBUG"))
        fprintf(stderr, "judge[%d] %s -> %s\n", i, i % 2 ? "live" : "dead",
                r.ok() ? "msg" : r.error().to_string().c_str());
      std::lock_guard<std::mutex> lk(vm);
      if (i % 2 == 0) {
        if (!r.ok() && (r.error().code == Errc::unavailable ||
                        r.error().code == Errc::cancelled))
          v.dead_terminal++;
      } else {
        if (!r.ok() && r.error().code == Errc::timed_out) v.live_alive++;
      }
    });
  }
  for (auto& j : judges) j.join();
  if (std::getenv("BERTHA_STORM_DEBUG")) {
    for (auto* rt : {cli_rt.get(), srv_rt.get()}) {
      auto w = rt->timer_wheel();
      if (!w) continue;
      auto s = w->stats();
      fprintf(stderr,
              "wheel[%s] sched=%llu fired=%llu cancelled=%llu armed=%llu\n",
              rt == cli_rt.get() ? "cli" : "srv",
              (unsigned long long)s.scheduled, (unsigned long long)s.fired,
              (unsigned long long)s.cancelled, (unsigned long long)s.armed);
    }
    fprintf(stderr, "mem delivered=%llu dropped=%llu\n",
            (unsigned long long)mem->delivered(),
            (unsigned long long)mem->dropped());
  }
  for (auto& c : client)
    if (c) c->close();
  for (auto& s : server) s->close();
  return v;
}

TEST(ConnScaleTest, WheelMatchesThreadKeepaliveVerdicts) {
  for (uint64_t seed : {7u, 21u}) {
    auto wheel = run_keepalive_storm(/*use_wheel=*/true, seed);
    auto thread = run_keepalive_storm(/*use_wheel=*/false, seed);
    EXPECT_EQ(wheel.dead_terminal, 6)
        << "wheel path missed dead peers (seed " << seed << ")";
    EXPECT_EQ(wheel.live_alive, 6)
        << "wheel path false-killed live peers (seed " << seed << ")";
    EXPECT_EQ(wheel.dead_terminal, thread.dead_terminal) << "seed " << seed;
    EXPECT_EQ(wheel.live_alive, thread.live_alive) << "seed " << seed;
  }
}

// Wheel-mode lease heartbeats: a leased registration must survive many
// TTLs under 5% loss with zero heartbeat threads, exactly like the
// thread engine — and the lease must die once the client does.
TEST(ConnScaleTest, WheelHeartbeatKeepsLeaseAlive) {
  for (bool use_wheel : {true, false}) {
    MemNetwork::Config mcfg;
    mcfg.seed = 11;
    mcfg.drop_rate = 0.05;
    auto mem = MemNetwork::create(mcfg);
    auto state = std::make_shared<DiscoveryState>();
    DiscoveryServer server(mem->bind(Addr::mem("disc", 1)).value(), state);

    auto wheel = TimerWheel::create(
        {.tick = ms(5), .slots = 64, .manual = false, .metrics = nullptr});
    auto stats = std::make_shared<FaultStats>();
    {
      RemoteDiscovery::Options ro;
      ro.rpc_timeout = ms(100);
      ro.retries = 3;
      ro.lease_ttl = ms(200);
      ro.stats = stats;
      if (use_wheel) ro.wheel_source = [wheel] { return wheel; };
      RemoteDiscovery client(mem->bind(Addr::mem("h-c", 0)).value(),
                             server.addr(), ro);
      ImplInfo info;
      info.type = "scale";
      info.name = use_wheel ? "scale/wheel" : "scale/thread";
      ASSERT_TRUE(client.register_impl(info).ok());
      EXPECT_EQ(state->lease_count(), 1u);

      // Four TTLs of idle time: only heartbeats keep the lease alive.
      sleep_for(ms(800));
      (void)state->expire_leases();
      EXPECT_EQ(state->lease_count(), 1u)
          << (use_wheel ? "wheel" : "thread") << " heartbeats failed to "
          << "renew the lease";
      EXPECT_GE(stats->heartbeats_sent.load(), 2u);
      auto found = state->query("scale");
      ASSERT_TRUE(found.ok());
      EXPECT_EQ(found.value().size(), 1u);
    }
    // Client gone: heartbeats stop, the lease must expire.
    EXPECT_TRUE(eventually([&] {
      (void)state->expire_leases();
      return state->lease_count() == 0;
    }))
        << "lease stuck after client teardown";
    wheel->stop();
  }
}

}  // namespace
}  // namespace bertha
