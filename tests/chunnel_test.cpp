// Tests for the data-path chunnels: reliable (loss recovery, ordering,
// window), ordering (gap skip), serialize (both wire formats + object
// layer), compress, batch, encrypt, framing, and composed stacks.
#include <gtest/gtest.h>

#include <thread>

#include "chunnels/batch.hpp"
#include "chunnels/compress.hpp"
#include "chunnels/dedup.hpp"
#include "chunnels/encrypt.hpp"
#include "chunnels/framing.hpp"
#include "chunnels/keepalive.hpp"
#include "chunnels/ordering.hpp"
#include "chunnels/reliable.hpp"
#include "chunnels/serialize_chunnel.hpp"
#include "chunnels/telemetry.hpp"
#include "serialize/text_codec.hpp"
#include "test_helpers.hpp"

namespace bertha {

namespace {

// Minimal base connection over a transport with a fixed peer.
class FixedPeerConnection final : public Connection {
 public:
  FixedPeerConnection(TransportPtr t, Addr peer)
      : t_(std::move(t)), peer_(std::move(peer)), local_(t_->local_addr()) {}
  Result<void> send(Msg m) override { return t_->send_to(peer_, m.payload); }
  Result<Msg> recv(Deadline d) override {
    BERTHA_TRY_ASSIGN(pkt, t_->recv(d));
    Msg m;
    m.src = std::move(pkt.src);
    m.dst = local_;
    m.payload = std::move(pkt.payload);
    return m;
  }
  const Addr& local_addr() const override { return local_; }
  const Addr& peer_addr() const override { return peer_; }
  void close() override { t_->close(); }

 private:
  TransportPtr t_;
  Addr peer_;
  Addr local_;
};

// A pair of connections wired through a MemNetwork with optional loss,
// each wrapped by the same chunnel impl (client/server roles).
struct WrappedPair {
  std::shared_ptr<MemNetwork> net;
  ConnPtr a;  // client side
  ConnPtr b;  // server side
};

WrappedPair make_pair_with(ChunnelImpl& impl, double loss = 0.0,
                           uint64_t seed = 1, ChunnelArgs args = ChunnelArgs()) {
  MemNetwork::Config cfg;
  cfg.drop_rate = loss;
  cfg.seed = seed;
  WrappedPair p;
  p.net = MemNetwork::create(cfg);
  auto ta = p.net->bind(Addr::mem("a", 1)).value();
  auto tb = p.net->bind(Addr::mem("b", 1)).value();
  Addr addr_a = ta->local_addr(), addr_b = tb->local_addr();
  ConnPtr base_a = std::make_shared<FixedPeerConnection>(std::move(ta), addr_b);
  ConnPtr base_b = std::make_shared<FixedPeerConnection>(std::move(tb), addr_a);
  WrapContext ctx_a;
  ctx_a.role = Role::client;
  ctx_a.args = args;
  WrapContext ctx_b = ctx_a;
  ctx_b.role = Role::server;
  p.a = impl.wrap(base_a, ctx_a).value();
  p.b = impl.wrap(base_b, ctx_b).value();
  return p;
}

// --- reliable ---

TEST(ReliableTest, DeliversInOrderWithoutLoss) {
  ReliableChunnel impl;
  auto p = make_pair_with(impl);
  for (int i = 0; i < 50; i++)
    ASSERT_TRUE(p.a->send(Msg::of("m" + std::to_string(i))).ok());
  for (int i = 0; i < 50; i++) {
    auto m = p.b->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().payload_str(), "m" + std::to_string(i));
  }
  p.a->close();
  p.b->close();
}

class ReliableLossProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReliableLossProperty, RecoversAllMessagesUnderLoss) {
  ReliableOptions opts;
  opts.rto = ms(10);
  ReliableChunnel impl(opts);
  auto p = make_pair_with(impl, /*loss=*/0.25, /*seed=*/GetParam());
  constexpr int kN = 40;
  std::thread sender([&] {
    for (int i = 0; i < kN; i++)
      ASSERT_TRUE(p.a->send(Msg::of("x" + std::to_string(i))).ok());
  });
  for (int i = 0; i < kN; i++) {
    auto m = p.b->recv(Deadline::after(seconds(30)));
    ASSERT_TRUE(m.ok()) << "at " << i << ": " << m.error().to_string();
    EXPECT_EQ(m.value().payload_str(), "x" + std::to_string(i));
  }
  sender.join();
  p.a->close();
  p.b->close();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableLossProperty,
                         ::testing::Values(1, 7, 42, 99, 12345));

TEST(ReliableTest, Bidirectional) {
  ReliableChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("ping")).ok());
  ASSERT_TRUE(p.b->recv(Deadline::after(seconds(5))).ok());
  ASSERT_TRUE(p.b->send(Msg::of("pong")).ok());
  auto m = p.a->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "pong");
  p.a->close();
  p.b->close();
}

TEST(ReliableTest, CloseUnblocksReceiver) {
  ReliableChunnel impl;
  auto p = make_pair_with(impl);
  std::thread closer([&] {
    sleep_for(ms(30));
    p.b->close();
  });
  auto r = p.b->recv();
  closer.join();
  EXPECT_FALSE(r.ok());
  p.a->close();
}

TEST(ReliableTest, WindowStallsAgainstDeadPeer) {
  ReliableOptions opts;
  opts.rto = ms(5);
  opts.send_timeout = ms(100);
  ReliableChunnel impl(opts);
  ChunnelArgs args;
  args.set("window", "1");
  auto p = make_pair_with(impl, /*loss=*/1.0, /*seed=*/3, args);
  ASSERT_TRUE(p.a->send(Msg::of("first")).ok());
  Stopwatch sw;
  auto second = p.a->send(Msg::of("second"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::timed_out);
  EXPECT_GE(sw.elapsed(), ms(90));
  p.a->close();
  p.b->close();
}

TEST(ReliableTest, NopVariantPassesThrough) {
  NopReliableChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("raw")).ok());
  EXPECT_EQ(p.b->recv(Deadline::after(seconds(5))).value().payload_str(),
            "raw");
  p.a->close();
  p.b->close();
}

// --- ordering ---

TEST(OrderingTest, PreservesOrderOnCleanLink) {
  OrderingChunnel impl;
  auto p = make_pair_with(impl);
  for (int i = 0; i < 10; i++)
    ASSERT_TRUE(p.a->send(Msg::of(std::to_string(i))).ok());
  for (int i = 0; i < 10; i++) {
    auto m = p.b->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().payload_str(), std::to_string(i));
  }
  p.a->close();
  p.b->close();
}

TEST(OrderingTest, SkipsGapsUnderLossWithoutStalling) {
  // 60% loss, no retransmission: ordering must deliver the survivors in
  // increasing order (gaps skipped after the timeout) and never stall.
  OrderingChunnel impl;
  ChunnelArgs args;
  args.set("gap_timeout_us", "30000");
  auto p = make_pair_with(impl, 0.6, 77, args);
  for (int i = 0; i < 100; i++)
    ASSERT_TRUE(p.a->send(Msg::of(std::to_string(i))).ok());
  int delivered = 0, last = -1;
  for (;;) {
    auto m = p.b->recv(Deadline::after(ms(300)));
    if (!m.ok()) break;
    int v = std::stoi(m.value().payload_str());
    EXPECT_GT(v, last);
    last = v;
    delivered++;
  }
  EXPECT_GT(delivered, 10);
  EXPECT_LT(delivered, 100);
  p.a->close();
  p.b->close();
}

// --- serialize ---

struct Point {
  int64_t x = 0;
  int64_t y = 0;
  std::string label;
  bool operator==(const Point& o) const {
    return x == o.x && y == o.y && label == o.label;
  }
};

}  // namespace

// Serde must live in namespace bertha (primary template lives there).
template <>
struct Serde<::bertha::Point> {
  static void put(Writer& w, const Point& p) {
    w.put_svarint(p.x);
    w.put_svarint(p.y);
    w.put_string(p.label);
  }
  static Result<Point> get(Reader& r) {
    Point p;
    BERTHA_TRY_ASSIGN(x, r.get_svarint());
    BERTHA_TRY_ASSIGN(y, r.get_svarint());
    BERTHA_TRY_ASSIGN(label, r.get_string());
    p.x = x;
    p.y = y;
    p.label = std::move(label);
    return p;
  }
};

namespace {

TEST(SerializeChunnelTest, ObjectsOverBothWireFormats) {
  for (int text : {0, 1}) {
    std::unique_ptr<ChunnelImpl> impl;
    if (text)
      impl = std::make_unique<TextSerializeChunnel>();
    else
      impl = std::make_unique<BinarySerializeChunnel>();
    auto p = make_pair_with(*impl);
    ObjectConnection<Point> sender(p.a);
    ObjectConnection<Point> receiver(p.b);
    Point pt{-5, 99, "hello"};
    ASSERT_TRUE(sender.send(pt).ok());
    auto got = receiver.recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    EXPECT_EQ(got.value(), pt);
    p.a->close();
    p.b->close();
  }
}

TEST(SerializeChunnelTest, TextWireIsLargerThanBinary) {
  Point pt{1, 2, "abcdef"};
  Bytes binary = serialize_to_bytes(pt);
  EXPECT_GT(text_encode(binary).size(), 2 * binary.size());
}

TEST(SerializeChunnelTest, RecvFromReportsSource) {
  BinarySerializeChunnel impl;
  auto p = make_pair_with(impl);
  ObjectConnection<Point> tx(p.a), rx(p.b);
  ASSERT_TRUE(tx.send(Point{1, 2, "s"}).ok());
  auto got = rx.recv_from(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().second, p.a->local_addr());
  p.a->close();
  p.b->close();
}

// --- compress ---

TEST(CompressTest, RleRoundTripAndShrinksRuns) {
  Bytes runs(1000, 'a');
  Bytes enc = rle_encode(runs);
  EXPECT_LT(enc.size(), 10u);
  auto dec = rle_decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), runs);
}

class RleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RleProperty, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; iter++) {
    Bytes data(rng.next_below(300), 0);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_below(4));
    auto dec = rle_decode(rle_encode(data));
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.value(), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleProperty, ::testing::Values(5, 55, 555));

TEST(CompressTest, RejectsBadRuns) {
  Bytes zero_run{'a', 0x00};
  EXPECT_FALSE(rle_decode(zero_run).ok());
}

TEST(CompressTest, EndToEnd) {
  CompressChunnel impl;
  auto p = make_pair_with(impl);
  std::string payload(500, 'z');
  ASSERT_TRUE(p.a->send(Msg::of(payload)).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), payload);
  p.a->close();
  p.b->close();
}

// --- encrypt ---

TEST(EncryptTest, XorIsInvolution) {
  Bytes data = to_bytes("attack at dawn");
  Bytes original = data;
  xor_keystream(data, 123);
  EXPECT_NE(data, original);
  xor_keystream(data, 123);
  EXPECT_EQ(data, original);
}

TEST(EncryptTest, DifferentKeysDiffer) {
  Bytes a = to_bytes("samesame"), b = a;
  xor_keystream(a, 1);
  xor_keystream(b, 2);
  EXPECT_NE(a, b);
}

TEST(EncryptTest, EndToEndWithSharedKey) {
  SwEncryptChunnel impl;
  ChunnelArgs args;
  args.set_u64("key", 777);
  auto p = make_pair_with(impl, 0.0, 1, args);
  ASSERT_TRUE(p.a->send(Msg::of("secret")).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "secret");
  p.a->close();
  p.b->close();
}

TEST(EncryptTest, NicVariantChargesPcie) {
  auto discovery = std::make_shared<DiscoveryState>();
  SimNic::Config cfg;
  cfg.pcie_per_kib = us(0);  // don't sleep in tests
  cfg.pcie_setup = us(0);
  auto nic_r = SimNic::create(discovery, cfg);
  ASSERT_TRUE(nic_r.ok());
  std::shared_ptr<SimNic> nic(std::move(nic_r).value());
  NicEncryptChunnel impl(nic);
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("1234567890")).ok());
  ASSERT_TRUE(p.b->recv(Deadline::after(seconds(5))).ok());
  // 2 crossings on send + 2 on recv, 10 bytes each.
  EXPECT_EQ(nic->pcie_transfers(), 4u);
  EXPECT_EQ(nic->pcie_bytes_transferred(), 40u);
  p.a->close();
  p.b->close();
}

// --- framing / tls ---

TEST(FramingTest, EndToEnd) {
  FrameChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("framed")).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "framed");
  p.a->close();
  p.b->close();
}

TEST(TlsTest, SoftwareTlsEndToEnd) {
  TlsChunnel impl;  // sw variant
  EXPECT_EQ(impl.info().name, "tls/sw");
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("over-tls")).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "over-tls");
  p.a->close();
  p.b->close();
}

// --- batch ---

TEST(BatchTest, CoalescesAndUnbatches) {
  BatchOptions opts;
  opts.max_batch = 4;
  opts.linger = seconds(10);  // only size-triggered flush
  BatchChunnel impl(opts);
  auto p = make_pair_with(impl);
  for (int i = 0; i < 4; i++)
    ASSERT_TRUE(p.a->send(Msg::of("b" + std::to_string(i))).ok());
  for (int i = 0; i < 4; i++) {
    auto m = p.b->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(m.ok()) << i;
    EXPECT_EQ(m.value().payload_str(), "b" + std::to_string(i));
  }
  p.a->close();
  p.b->close();
}

TEST(BatchTest, LingerFlushesPartialBatch) {
  BatchOptions opts;
  opts.max_batch = 100;
  opts.linger = ms(20);
  BatchChunnel impl(opts);
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("lonely")).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "lonely");
  p.a->close();
  p.b->close();
}

// --- composed stack (serialize |> compress |> encrypt |> reliable) ---

TEST(StackCompositionTest, FourLayerStackRoundTripsUnderLoss) {
  BinarySerializeChunnel ser;
  CompressChunnel comp;
  SwEncryptChunnel enc;
  ReliableOptions ropts;
  ropts.rto = ms(10);
  ReliableChunnel rel(ropts);

  MemNetwork::Config cfg;
  cfg.drop_rate = 0.1;
  cfg.seed = 4;
  auto net = MemNetwork::create(cfg);
  auto ta = net->bind(Addr::mem("a", 1)).value();
  auto tb = net->bind(Addr::mem("b", 1)).value();
  Addr aa = ta->local_addr(), ab = tb->local_addr();
  ConnPtr ca = std::make_shared<FixedPeerConnection>(std::move(ta), ab);
  ConnPtr cb = std::make_shared<FixedPeerConnection>(std::move(tb), aa);

  auto build = [&](ConnPtr base, Role role) {
    WrapContext ctx;
    ctx.role = role;
    // innermost first: reliable, encrypt, compress, serialize
    base = rel.wrap(std::move(base), ctx).value();
    base = enc.wrap(std::move(base), ctx).value();
    base = comp.wrap(std::move(base), ctx).value();
    base = ser.wrap(std::move(base), ctx).value();
    return base;
  };
  ConnPtr a = build(ca, Role::client);
  ConnPtr b = build(cb, Role::server);

  ObjectConnection<Point> tx(a), rx(b);
  for (int i = 0; i < 10; i++) {
    Point pt{i, -i, std::string(50, 'q')};
    ASSERT_TRUE(tx.send(pt).ok());
    auto got = rx.recv(Deadline::after(seconds(30)));
    ASSERT_TRUE(got.ok()) << i << ": " << got.error().to_string();
    EXPECT_EQ(got.value(), pt);
  }
  a->close();
  b->close();
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {


// --- dedup ---

TEST(DedupTest, SuppressesReplayedDatagrams) {
  DedupChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("once")).ok());
  auto first = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().payload_str(), "once");

  // Replay the exact stamped datagram at the transport level.
  Bytes replay = dedup_stamp(1, to_bytes("once"));
  auto t = p.net->bind(Addr::mem("replayer", 0)).value();
  ASSERT_TRUE(t->send_to(Addr::mem("b", 1), replay).ok());
  EXPECT_FALSE(p.b->recv(Deadline::after(ms(150))).ok());

  // Fresh messages still flow.
  ASSERT_TRUE(p.a->send(Msg::of("twice")).ok());
  EXPECT_EQ(p.b->recv(Deadline::after(seconds(5))).value().payload_str(),
            "twice");
  p.a->close();
  p.b->close();
}

TEST(DedupTest, WindowEvictsOldIds) {
  DedupChunnel impl;
  ChunnelArgs args;
  args.set("window", "4");
  auto p = make_pair_with(impl, 0.0, 1, args);
  // Push enough messages through that id 1 leaves the window, then a
  // replay of id 1 is (incorrectly-but-by-design) delivered again:
  // dedup is bounded-memory, not exactly-once.
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(p.a->send(Msg::of("m")).ok());
    ASSERT_TRUE(p.b->recv(Deadline::after(seconds(5))).ok());
  }
  Bytes replay = dedup_stamp(1, to_bytes("m"));
  auto t = p.net->bind(Addr::mem("replayer", 0)).value();
  ASSERT_TRUE(t->send_to(Addr::mem("b", 1), replay).ok());
  EXPECT_TRUE(p.b->recv(Deadline::after(seconds(1))).ok());
  p.a->close();
  p.b->close();
}

TEST(DedupTest, BothDirectionsIndependent) {
  DedupChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("a->b")).ok());
  ASSERT_TRUE(p.b->send(Msg::of("b->a")).ok());
  // Both use id 1 for their first message; neither suppresses the other.
  EXPECT_EQ(p.b->recv(Deadline::after(seconds(5))).value().payload_str(),
            "a->b");
  EXPECT_EQ(p.a->recv(Deadline::after(seconds(5))).value().payload_str(),
            "b->a");
  p.a->close();
  p.b->close();
}

// --- telemetry ---

TEST(TelemetryTest, CountsTraffic) {
  TelemetryChunnel impl;
  ChunnelArgs args;
  args.set("label", "test-conn");
  auto p = make_pair_with(impl, 0.0, 1, args);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(p.a->send(Msg::of("12345")).ok());
    ASSERT_TRUE(p.b->recv(Deadline::after(seconds(5))).ok());
  }
  TelemetryCounters c = impl.snapshot("test-conn");
  // Both halves share the impl: a's sends + b's receives.
  EXPECT_EQ(c.msgs_sent, 3u);
  EXPECT_EQ(c.msgs_received, 3u);
  EXPECT_EQ(c.bytes_sent, 15u);
  EXPECT_EQ(c.bytes_received, 15u);
  EXPECT_EQ(c.send_errors, 0u);
  EXPECT_EQ(impl.snapshot("unknown").msgs_sent, 0u);
  impl.reset();
  EXPECT_EQ(impl.snapshot("test-conn").msgs_sent, 0u);
  p.a->close();
  p.b->close();
}

TEST(TelemetryTest, AddsNoWireBytes) {
  TelemetryChunnel impl;
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("payload")).ok());
  auto m = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload_str(), "payload");  // byte-identical
  p.a->close();
  p.b->close();
}

TEST(TelemetryTest, NegotiatedEndToEnd) {
  auto world = testing_support::TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  ChunnelArgs label;
  label.set("label", "kv");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("telemetry", label),
                                               ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 0))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn->send(Msg::of("counted")).ok());
  ASSERT_TRUE(srv_conn->recv(Deadline::after(seconds(5))).ok());

  // The server runtime's telemetry impl saw the receive.
  uint64_t received = 0;
  for (const auto& impl : srv_rt->registry().lookup_type("telemetry")) {
    if (auto* tel = dynamic_cast<TelemetryChunnel*>(impl.get()))
      received += tel->snapshot("kv").msgs_received;
  }
  EXPECT_EQ(received, 1u);
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// --- keepalive ---

TEST(KeepaliveTest, DataFlowsAndHeartbeatsAreInvisible) {
  KeepaliveOptions opts;
  opts.interval = ms(20);
  opts.dead_after = seconds(5);
  KeepaliveChunnel impl(opts);
  auto p = make_pair_with(impl);
  ASSERT_TRUE(p.a->send(Msg::of("beat")).ok());
  EXPECT_EQ(p.b->recv(Deadline::after(seconds(5))).value().payload_str(),
            "beat");
  // Idle long enough for heartbeats to flow; the app never sees them.
  EXPECT_FALSE(p.b->recv(Deadline::after(ms(150))).ok());
  // And traffic still works afterwards.
  ASSERT_TRUE(p.b->send(Msg::of("back")).ok());
  EXPECT_EQ(p.a->recv(Deadline::after(seconds(5))).value().payload_str(),
            "back");
  p.a->close();
  p.b->close();
}

TEST(KeepaliveTest, SilentPeerDetected) {
  KeepaliveOptions opts;
  opts.interval = ms(20);
  opts.dead_after = ms(120);
  KeepaliveChunnel impl(opts);
  auto p = make_pair_with(impl);
  // Kill the peer outright: its heartbeats stop.
  p.a->close();
  Stopwatch sw;
  auto r = p.b->recv(Deadline::after(seconds(5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable);
  EXPECT_GE(sw.elapsed(), ms(100));
  EXPECT_LT(sw.elapsed(), seconds(2));
  p.b->close();
}

TEST(KeepaliveTest, HeartbeatsKeepIdleConnectionAlive) {
  KeepaliveOptions opts;
  opts.interval = ms(20);
  opts.dead_after = ms(150);
  KeepaliveChunnel impl(opts);
  auto p = make_pair_with(impl);
  // Idle for 3x dead_after: heartbeats must prevent the liveness check
  // from firing; the caller just times out normally.
  auto r = p.b->recv(Deadline::after(ms(450)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timed_out);
  p.a->close();
  p.b->close();
}

TEST(KeepaliveTest, LivenessCarriesOverAcrossRebuild) {
  // An epoch cutover rebuilds the keepalive stack. The rebuilt side must
  // inherit the connection's liveness clock (WrapContext.liveness), not
  // restart it at "now": a peer that went silent before the cutover has
  // to be detected within the original dead_after budget.
  KeepaliveOptions opts;
  opts.interval = ms(20);
  opts.dead_after = ms(400);
  KeepaliveChunnel impl(opts);

  auto net = MemNetwork::create();
  auto ta = net->bind(Addr::mem("a", 1)).value();
  auto tb = net->bind(Addr::mem("b", 1)).value();
  Addr addr_a = ta->local_addr(), addr_b = tb->local_addr();
  ConnPtr base_a = std::make_shared<FixedPeerConnection>(std::move(ta), addr_b);
  ConnPtr base_b = std::make_shared<FixedPeerConnection>(std::move(tb), addr_a);

  // The previous epoch last heard from the peer 320ms ago; the peer is
  // dead (side a is never wrapped, so no heartbeats ever flow).
  auto carried = std::make_shared<ConnLiveness>();
  carried->last_heard = (now() - ms(320)).time_since_epoch().count();
  carried->last_sent = carried->last_heard.load();

  WrapContext ctx;
  ctx.role = Role::server;
  ctx.liveness = carried;
  auto b = impl.wrap(base_b, ctx).value();

  // Only ~80ms of the 400ms budget remains. Without carry-over the
  // rebuilt stack would take a full dead_after from wrap() to notice.
  Stopwatch sw;
  auto r = b->recv(Deadline::after(seconds(5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable) << r.error().to_string();
  EXPECT_GE(sw.elapsed(), ms(40)) << "carried timestamps misread as expired";
  EXPECT_LT(sw.elapsed(), ms(300)) << "liveness clock restarted at rebuild";
  b->close();
  base_a->close();
}

TEST(KeepaliveTest, NegotiatedEndToEnd) {
  auto world = testing_support::TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  ChunnelArgs args;
  args.set("interval_us", "20000");
  args.set("dead_after_us", "200000");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("keepalive", args)))
                      .value()
                      .listen(Addr::mem("h1", 0))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn->send(Msg::of("alive")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "alive");
  // Client goes away. Over the core connection the server may learn of
  // it explicitly (close frame -> cancelled) or, if that datagram were
  // lost, via heartbeat silence (-> unavailable). Either way recv()
  // unblocks with a terminal error instead of hanging.
  conn->close();
  auto r = srv_conn->recv(Deadline::after(seconds(5)));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.error().code == Errc::unavailable ||
              r.error().code == Errc::cancelled)
      << r.error().to_string();
}

}  // namespace
}  // namespace bertha
