// End-to-end tests of connection establishment: listen/connect,
// negotiation over the wire, data exchange, close propagation,
// rejection, handshake retries under loss, and multi-endpoint connect.
#include <gtest/gtest.h>

#include <thread>

#include "apps/ping.hpp"
#include "chunnels/reliable.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

TEST(EndpointTest, ConnectExchangeClose) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("host-s");
  auto cli_rt = world.runtime("host-c");

  auto srv_ep = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable"))).value();
  auto listener = srv_ep.listen(Addr::mem("host-s", 100));
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();

  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn_r = cli_ep.connect(listener.value()->addr(),
                               Deadline::after(seconds(5)));
  ASSERT_TRUE(conn_r.ok()) << conn_r.error().to_string();
  ConnPtr cli = std::move(conn_r).value();

  auto srv_conn_r = listener.value()->accept(Deadline::after(seconds(5)));
  ASSERT_TRUE(srv_conn_r.ok());
  ConnPtr srv = std::move(srv_conn_r).value();
  EXPECT_EQ(listener.value()->connections_accepted(), 1u);

  ASSERT_TRUE(cli->send(Msg::of("hello")).ok());
  auto got = srv->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value().payload_str(), "hello");

  ASSERT_TRUE(srv->send(Msg::of("world")).ok());
  auto back = cli->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().payload_str(), "world");

  cli->close();
  srv->close();
}

TEST(EndpointTest, EmptyClientDagAdoptsServerChain) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");

  // Server requires serialize |> reliable; client brings an empty DAG
  // (the Listing 5 pattern) but has the fallbacks registered.
  auto srv_ep = srv_rt->endpoint(
      "srv", wrap(ChunnelSpec("serialize"), ChunnelSpec("reliable")));
  ASSERT_TRUE(srv_ep.ok());
  auto listener = srv_ep.value().listen(Addr::mem("h1", 200)).value();

  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = cli_ep.connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();

  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn.value()->send(Msg::of("typed")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "typed");
}

TEST(EndpointTest, MismatchedDagRejected) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 201))
                      .value();
  auto cli_ep = cli_rt->endpoint("cli", wrap(ChunnelSpec("compress"))).value();
  auto conn = cli_ep.connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::connection_failed);
}

TEST(EndpointTest, MissingImplementationRejected) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1", /*builtins=*/false);
  auto cli_rt = world.runtime("h2", /*builtins=*/false);
  // Server asks for reliable but *neither* side registered any impl.
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 202))
                      .value();
  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = cli_ep.connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::connection_failed);
  EXPECT_NE(conn.error().message.find("reliable"), std::string::npos);
}

TEST(EndpointTest, ConnectToNobodyTimesOut) {
  auto world = TestWorld::make();
  RuntimeConfig cfg;
  cfg.host_id = "h";
  cfg.transports = std::make_shared<DefaultTransportFactory>(world.mem,
                                                             world.sim, "h");
  cfg.discovery = world.discovery;
  cfg.handshake_timeout = ms(50);
  cfg.handshake_retries = 1;
  auto rt = Runtime::create(std::move(cfg)).value();
  auto ep = rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = ep.connect(Addr::mem("ghost", 1), Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::connection_failed);
}

TEST(EndpointTest, HandshakeSurvivesPacketLoss) {
  // 30% loss: hello/accept retransmission must still establish, and the
  // reliable chunnel must carry data across.
  auto world = TestWorld::make(/*seed=*/1234);
  MemNetwork::Config lossy;
  lossy.drop_rate = 0.3;
  lossy.seed = 99;
  world.mem = MemNetwork::create(lossy);

  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  ChunnelArgs fast_rto;
  fast_rto.set("rto_us", "20000");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable", fast_rto)))
                      .value()
                      .listen(Addr::mem("h1", 203))
                      .value();

  auto cli_ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = cli_ep.connect(listener->addr(), Deadline::after(seconds(20)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv_conn = listener->accept(Deadline::after(seconds(20))).value();

  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(conn.value()->send(Msg::of("m" + std::to_string(i))).ok());
    auto got = srv_conn->recv(Deadline::after(seconds(20)));
    ASSERT_TRUE(got.ok()) << i << ": " << got.error().to_string();
    EXPECT_EQ(got.value().payload_str(), "m" + std::to_string(i));
  }
}

TEST(EndpointTest, ServerCloseVisibleToClient) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  // No chunnels: the raw establishment path.
  auto listener = srv_rt->endpoint("srv", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h1", 204))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  srv_conn->close();
  auto r = conn->recv(Deadline::after(seconds(5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable);
}

TEST(EndpointTest, ManySequentialConnections) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto listener = srv_rt->endpoint("srv", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h1", 205))
                      .value();
  std::thread acceptor([&] {
    for (int i = 0; i < 20; i++) {
      auto c = listener->accept(Deadline::after(seconds(10)));
      if (!c.ok()) return;
      // Echo one message.
      auto m = c.value()->recv(Deadline::after(seconds(10)));
      if (m.ok()) (void)c.value()->send(std::move(m).value());
    }
  });
  auto ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  for (int i = 0; i < 20; i++) {
    auto conn = ep.connect(listener->addr(), Deadline::after(seconds(10)));
    ASSERT_TRUE(conn.ok()) << i << ": " << conn.error().to_string();
    ASSERT_TRUE(conn.value()->send(Msg::of("x")).ok());
    ASSERT_TRUE(conn.value()->recv(Deadline::after(seconds(10))).ok());
    conn.value()->close();
  }
  acceptor.join();
  EXPECT_EQ(listener->connections_accepted(), 20u);
}

TEST(EndpointTest, MultiEndpointConnectFansOut) {
  auto world = TestWorld::make();
  auto cli_rt = world.runtime("hc");
  auto r1 = world.runtime("h1");
  auto r2 = world.runtime("h2");

  auto l1 = r1->endpoint("s1", ChunnelDag::empty())
                .value()
                .listen(Addr::mem("h1", 206))
                .value();
  auto l2 = r2->endpoint("s2", ChunnelDag::empty())
                .value()
                .listen(Addr::mem("h2", 206))
                .value();

  auto ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = ep.connect({l1->addr(), l2->addr()}, Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();

  auto c1 = l1->accept(Deadline::after(seconds(5))).value();
  auto c2 = l2->accept(Deadline::after(seconds(5))).value();

  // Fan-out: both servers see the message.
  ASSERT_TRUE(conn.value()->send(Msg::of("to-all")).ok());
  EXPECT_EQ(c1->recv(Deadline::after(seconds(5))).value().payload_str(),
            "to-all");
  EXPECT_EQ(c2->recv(Deadline::after(seconds(5))).value().payload_str(),
            "to-all");

  // Targeted send via dst.
  Msg targeted = Msg::of("only-one");
  targeted.dst = l1->addr();
  ASSERT_TRUE(conn.value()->send(std::move(targeted)).ok());
  EXPECT_TRUE(c1->recv(Deadline::after(seconds(5))).ok());
  EXPECT_FALSE(c2->recv(Deadline::after(ms(100))).ok());

  // Replies from either reach the client.
  ASSERT_TRUE(c2->send(Msg::of("from-2")).ok());
  EXPECT_EQ(conn.value()->recv(Deadline::after(seconds(5))).value().payload_str(),
            "from-2");
}

TEST(EndpointTest, WorksOverRealUdpAndUnixSockets) {
  // Same host id: exercises the genuine OS transports end to end.
  auto discovery = std::make_shared<DiscoveryState>();
  RuntimeConfig cfg;
  cfg.host_id = "realhost";
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  cfg.discovery = discovery;
  auto rt = Runtime::create(cfg).value();
  ASSERT_TRUE(register_transport_chunnels(*rt).ok());

  for (const Addr& listen_addr :
       {Addr::udp("127.0.0.1", 0), Addr::uds("ep-test-" + make_unique_id())}) {
    auto listener = rt->endpoint("srv", wrap(ChunnelSpec("reliable")))
                        .value()
                        .listen(listen_addr)
                        .value();
    auto conn = rt->endpoint("cli", ChunnelDag::empty())
                    .value()
                    .connect(listener->addr(), Deadline::after(seconds(5)));
    ASSERT_TRUE(conn.ok()) << listen_addr.to_string() << ": "
                           << conn.error().to_string();
    auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
    ASSERT_TRUE(conn.value()->send(Msg::of("real")).ok());
    EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
              "real");
  }
}

TEST(EndpointTest, PingServerRoundTrips) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto server = PingServer::start(srv_rt, wrap(ChunnelSpec("reliable")),
                                  Addr::mem("h1", 207));
  ASSERT_TRUE(server.ok());
  auto ep = cli_rt->endpoint("pinger", ChunnelDag::empty()).value();
  auto run = ping_over_new_connection(ep, server.value()->addr(), 64, 3,
                                      Deadline::after(seconds(10)));
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().rtts.size(), 3u);
  EXPECT_GT(run.value().connect_time, Duration::zero());
  EXPECT_EQ(server.value()->echoed(), 3u);
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// §6 end to end: a runtime configured with a DAG optimizer rewrites
// encrypt |> frame |> tcpish into frame |> tls during negotiation, both
// sides build the rewritten stack, and data still round-trips.
TEST(EndpointTest, OptimizerRewritesChainEndToEnd) {
  auto world = TestWorld::make();

  // A probe "tls" implementation that records its use.
  struct ProbeTls final : ChunnelImpl {
    ProbeTls() {
      info_.type = "tls";
      info_.name = "tls/probe";
      info_.scope = Scope::application;
      info_.endpoints = EndpointConstraint::both;
      info_.priority = 50;
      info_.props["offloadable"] = "true";
      info_.props["commutes_with"] = "frame";
    }
    const ImplInfo& info() const override { return info_; }
    Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override {
      used->fetch_add(1);
      return inner;
    }
    ImplInfo info_;
    std::shared_ptr<std::atomic<int>> used =
        std::make_shared<std::atomic<int>>(0);
  };

  auto optimizer = std::make_shared<DagOptimizer>();
  optimizer->add_merge_rule({"encrypt", "tcpish", "tls", true});

  auto probe_srv = std::make_shared<ProbeTls>();
  auto probe_cli = std::make_shared<ProbeTls>();

  auto make_rt = [&](const std::string& host,
                     std::shared_ptr<ProbeTls> probe) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(world.mem, world.sim, host);
    cfg.discovery = world.discovery;
    cfg.optimizer = optimizer;
    auto rt = Runtime::create(std::move(cfg)).value();
    EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
    EXPECT_TRUE(rt->register_chunnel(probe).ok());
    return rt;
  };
  auto srv_rt = make_rt("h1", probe_srv);
  auto cli_rt = make_rt("h2", probe_cli);

  auto listener = srv_rt->endpoint("opt-srv",
                                   wrap(ChunnelSpec("encrypt"),
                                        ChunnelSpec("frame"),
                                        ChunnelSpec("tcpish")))
                      .value()
                      .listen(Addr::mem("h1", 600))
                      .value();
  auto conn = cli_rt->endpoint("opt-cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();

  // The merge happened and both sides instantiated the merged stage.
  EXPECT_EQ(probe_srv->used->load(), 1);
  EXPECT_EQ(probe_cli->used->load(), 1);

  ASSERT_TRUE(conn.value()->send(Msg::of("rewritten")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "rewritten");
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// §6 "Deployment Concerns": chain attestation between runtimes that do
// and do not share the deployment secret.
struct AttestationFixture : ::testing::Test {
  std::shared_ptr<Runtime> make_rt(TestWorld& world, const std::string& host,
                                   const std::string& secret) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports =
        std::make_shared<DefaultTransportFactory>(world.mem, world.sim, host);
    cfg.discovery = world.discovery;
    cfg.attestation_secret = secret;
    auto rt = Runtime::create(std::move(cfg)).value();
    EXPECT_TRUE(register_builtin_chunnels(*rt).ok());
    return rt;
  }
};

TEST_F(AttestationFixture, SharedSecretConnects) {
  auto world = TestWorld::make();
  auto srv = make_rt(world, "h1", "deployment-key");
  auto cli = make_rt(world, "h2", "deployment-key");
  auto listener = srv->endpoint("att", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 800))
                      .value();
  auto conn = cli->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn.value()->send(Msg::of("attested")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "attested");
}

TEST_F(AttestationFixture, SecretMismatchRefused) {
  auto world = TestWorld::make();
  auto srv = make_rt(world, "h1", "key-A");
  auto cli = make_rt(world, "h2", "key-B");
  auto listener = srv->endpoint("att", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 801))
                      .value();
  auto conn = cli->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
  EXPECT_NE(conn.error().message.find("attestation"), std::string::npos);
}

TEST_F(AttestationFixture, UnattestedServerRefusedByStrictClient) {
  auto world = TestWorld::make();
  auto srv = make_rt(world, "h1", "");  // server doesn't attest
  auto cli = make_rt(world, "h2", "required-key");
  auto listener = srv->endpoint("att", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 802))
                      .value();
  auto conn = cli->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
}

TEST_F(AttestationFixture, LaxClientAcceptsAttestedServer) {
  auto world = TestWorld::make();
  auto srv = make_rt(world, "h1", "key");
  auto cli = make_rt(world, "h2", "");  // client doesn't verify
  auto listener = srv->endpoint("att", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 803))
                      .value();
  auto conn = cli->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  EXPECT_TRUE(conn.ok());
}

TEST(AttestChainTest, DigestProperties) {
  NegotiatedNode n;
  n.type = "reliable";
  n.impl_name = "reliable/arq";
  std::vector<NegotiatedNode> chain{n};

  uint64_t d = attest_chain(chain, "s");
  EXPECT_NE(d, 0u);                               // 0 is reserved
  EXPECT_EQ(d, attest_chain(chain, "s"));         // deterministic
  EXPECT_NE(d, attest_chain(chain, "other"));     // keyed
  auto modified = chain;
  modified[0].impl_name = "reliable/nop";
  EXPECT_NE(d, attest_chain(modified, "s"));      // content-bound
  EXPECT_NE(attest_chain({}, "s"), 0u);
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// The negotiated chain order is the wrap order: chain[0] outermost.
TEST(EndpointTest, StackBuiltInChainOrder) {
  auto world = TestWorld::make();

  struct OrderProbe final : ChunnelImpl {
    OrderProbe(std::string type, std::shared_ptr<std::vector<std::string>> log)
        : log_(std::move(log)) {
      info_.type = type;
      info_.name = type + "/probe";
      info_.endpoints = EndpointConstraint::both;
    }
    const ImplInfo& info() const override { return info_; }
    Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override {
      if (ctx.role == Role::server) log_->push_back(info_.type);
      return inner;
    }
    ImplInfo info_;
    std::shared_ptr<std::vector<std::string>> log_;
  };

  auto log = std::make_shared<std::vector<std::string>>();
  auto srv_rt = world.runtime("h1", /*builtins=*/false);
  auto cli_rt = world.runtime("h2", /*builtins=*/false);
  for (auto rt : {srv_rt, cli_rt})
    for (const char* t : {"alpha", "beta", "gamma"})
      ASSERT_TRUE(rt->register_chunnel(std::make_shared<OrderProbe>(t, log))
                      .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("alpha"),
                                               ChunnelSpec("beta"),
                                               ChunnelSpec("gamma")))
                      .value()
                      .listen(Addr::mem("h1", 950))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  (void)listener->accept(Deadline::after(seconds(5))).value();

  // Wrapped innermost-first: gamma, beta, alpha.
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0], "gamma");
  EXPECT_EQ((*log)[1], "beta");
  EXPECT_EQ((*log)[2], "alpha");
}

// Many clients connect concurrently; every connection works.
TEST(EndpointTest, ConcurrentConnects) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 951))
                      .value();
  std::atomic<int> echoed{0};
  std::thread acceptor([&] {
    std::vector<std::thread> workers;
    for (int i = 0; i < 8; i++) {
      auto c = listener->accept(Deadline::after(seconds(20)));
      if (!c.ok()) break;
      workers.emplace_back([conn = std::move(c).value(), &echoed] {
        auto m = conn->recv(Deadline::after(seconds(20)));
        if (m.ok() && conn->send(std::move(m).value()).ok())
          echoed.fetch_add(1);
      });
    }
    for (auto& w : workers) w.join();
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 8; i++) {
    clients.emplace_back([&, i] {
      auto rt = world.runtime("client-" + std::to_string(i));
      auto conn = rt->endpoint("cli", ChunnelDag::empty())
                      .value()
                      .connect(listener->addr(), Deadline::after(seconds(20)));
      if (!conn.ok()) return;
      if (!conn.value()->send(Msg::of("c" + std::to_string(i))).ok()) return;
      auto back = conn.value()->recv(Deadline::after(seconds(20)));
      if (back.ok() && back.value().payload_str() == "c" + std::to_string(i))
        ok_count.fetch_add(1);
      conn.value()->close();
    });
  }
  for (auto& c : clients) c.join();
  acceptor.join();
  EXPECT_EQ(ok_count.load(), 8);
  EXPECT_EQ(echoed.load(), 8);
  EXPECT_EQ(listener->connections_accepted(), 8u);
}

// One runtime can run several listeners with different DAGs at once.
TEST(EndpointTest, MultipleListenersPerRuntime) {
  auto world = TestWorld::make();
  auto rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto l1 = rt->endpoint("svc-a", wrap(ChunnelSpec("reliable")))
                .value()
                .listen(Addr::mem("h1", 952))
                .value();
  auto l2 = rt->endpoint("svc-b", wrap(ChunnelSpec("compress")))
                .value()
                .listen(Addr::mem("h1", 953))
                .value();
  auto c1 = cli_rt->endpoint("c", ChunnelDag::empty())
                .value()
                .connect(l1->addr(), Deadline::after(seconds(5)))
                .value();
  auto c2 = cli_rt->endpoint("c", ChunnelDag::empty())
                .value()
                .connect(l2->addr(), Deadline::after(seconds(5)))
                .value();
  auto s1 = l1->accept(Deadline::after(seconds(5))).value();
  auto s2 = l2->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(c1->send(Msg::of("to-a")).ok());
  ASSERT_TRUE(c2->send(Msg::of("to-b")).ok());
  EXPECT_EQ(s1->recv(Deadline::after(seconds(5))).value().payload_str(),
            "to-a");
  EXPECT_EQ(s2->recv(Deadline::after(seconds(5))).value().payload_str(),
            "to-b");
}

}  // namespace
}  // namespace bertha
