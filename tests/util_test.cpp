// Unit tests for src/util: Result, bytes, rng, hash, stats, queues,
// rate limiter.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/queue.hpp"
#include "util/rand.hpp"
#include "util/rate_limiter.hpp"
#include "util/result.hpp"
#include "util/stats.hpp"

namespace bertha {
namespace {

// --- Result ---

Result<int> parse_positive(int v) {
  if (v <= 0) return err(Errc::invalid_argument, "not positive");
  return v;
}

Result<int> doubled(int v) {
  BERTHA_TRY_ASSIGN(x, parse_positive(v));
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = err(Errc::not_found, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(r.error().message, "nope");
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_EQ(r.error().to_string(), "not_found: nope");
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> good = ok();
  EXPECT_TRUE(good.ok());
  Result<void> bad = err(Errc::io_error, "disk");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::io_error);
}

TEST(ResultTest, TryMacroPropagates) {
  auto good = doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  auto bad = doubled(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::invalid_argument);
}

TEST(ResultTest, MapTransformsValueOnly) {
  auto r = Result<int>(10).map([](int v) { return v + 1; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 11);
  auto e = Result<int>(err(Errc::cancelled, "x")).map([](int v) { return v; });
  EXPECT_FALSE(e.ok());
}

TEST(ResultTest, EveryErrcHasName) {
  for (int c = 0; c <= static_cast<int>(Errc::internal); c++)
    EXPECT_NE(errc_name(static_cast<Errc>(c)), "unknown");
}

// --- bytes ---

TEST(BytesTest, StringRoundTrip) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
}

TEST(BytesTest, FixedWidthLittleEndian) {
  Bytes b;
  put_u16_le(b, 0x1234);
  put_u32_le(b, 0xdeadbeef);
  put_u64_le(b, 0x0123456789abcdefULL);
  ASSERT_EQ(b.size(), 14u);
  EXPECT_EQ(get_u16_le(b, 0), 0x1234);
  EXPECT_EQ(get_u32_le(b, 2), 0xdeadbeefu);
  EXPECT_EQ(get_u64_le(b, 6), 0x0123456789abcdefULL);
}

TEST(BytesTest, HexDumpTruncates) {
  Bytes b(100, 0xff);
  std::string dump = hex_dump(b, 4);
  EXPECT_EQ(dump, "ff ff ff ff ...");
}

// --- rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++)
    if (a.next_u64() == b.next_u64()) same++;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; i++) EXPECT_LT(r.next_below(17), 17u);
}

TEST(RngTest, NextInInclusive) {
  Rng r(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; i++) {
    int64_t v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; i++) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(11);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 10000; i++)
    if (r.chance(0.3)) hits++;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// --- hash ---

TEST(HashTest, Fnv1aKnownVector) {
  // FNV-1a("") is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xcbf29ce484222325ULL);
  // Bytes overload agrees with the string overload.
  EXPECT_EQ(fnv1a64(std::string_view("bertha")), fnv1a64(to_bytes("bertha")));
}

TEST(HashTest, Mix64ChangesValue) {
  EXPECT_NE(mix64(0), 0u);
  EXPECT_NE(mix64(1), mix64(2));
}

// --- stats ---

TEST(StatsTest, PercentilesOfKnownSet) {
  SampleSet s;
  for (int i = 1; i <= 100; i++) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1, 0.01);
  EXPECT_NEAR(s.percentile(100), 100, 0.01);
  Summary sum = s.summarize();
  EXPECT_EQ(sum.count, 100u);
  EXPECT_NEAR(sum.mean, 50.5, 0.01);
  EXPECT_NEAR(sum.p95, 95.05, 0.1);
  EXPECT_EQ(sum.min, 1);
  EXPECT_EQ(sum.max, 100);
}

TEST(StatsTest, EmptySummaryIsZero) {
  SampleSet s;
  Summary sum = s.summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.p95, 0);
}

TEST(StatsTest, MergeCombinesSamples) {
  SampleSet a, b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_NEAR(a.summarize().mean, 2.0, 1e-9);
}

TEST(StatsTest, LogHistogramPercentileAccuracy) {
  LogHistogram h;
  SampleSet exact;
  Rng r(17);
  for (int i = 0; i < 20000; i++) {
    double v = 1.0 + static_cast<double>(r.next_below(100000));
    h.add(v);
    exact.add(v);
  }
  for (double q : {50.0, 90.0, 99.0}) {
    double approx = h.percentile(q);
    double truth = exact.percentile(q);
    EXPECT_NEAR(approx / truth, 1.0, 0.05) << "q=" << q;
  }
  EXPECT_NEAR(h.mean(), exact.summarize().mean, exact.summarize().mean * 0.01);
}

TEST(StatsTest, LogHistogramMerge) {
  LogHistogram a, b;
  a.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.percentile(99), 10.0);
}

// --- queue ---

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_TRUE(q.push(2).ok());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(QueueTest, PopTimesOut) {
  BlockingQueue<int> q;
  auto r = q.pop(Deadline::after(ms(10)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timed_out);
}

TEST(QueueTest, BoundedQueueDropsWhenFull) {
  BlockingQueue<int> q(2);
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_TRUE(q.push(2).ok());
  auto r = q.push(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::resource_exhausted);
}

TEST(QueueTest, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::thread t([&] {
    sleep_for(ms(20));
    q.close();
  });
  auto r = q.pop();
  t.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::cancelled);
}

TEST(QueueTest, CloseStillDrainsQueued) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(5).ok());
  q.close();
  EXPECT_FALSE(q.push(6).ok());
  EXPECT_EQ(q.pop().value(), 5);
  EXPECT_FALSE(q.pop().ok());
}

TEST(QueueTest, CrossThreadHandoff) {
  BlockingQueue<int> q;
  constexpr int kN = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kN; i++) ASSERT_TRUE(q.push(i).ok());
  });
  for (int i = 0; i < kN; i++) {
    auto r = q.pop(Deadline::after(seconds(5)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), i);
  }
  producer.join();
}

// --- deadline ---

TEST(DeadlineTest, NeverNeverExpires) {
  Deadline d = Deadline::never();
  EXPECT_TRUE(d.is_never());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Duration::max());
}

TEST(DeadlineTest, AfterExpires) {
  Deadline d = Deadline::after(ms(5));
  EXPECT_FALSE(d.is_never());
  sleep_for(ms(10));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Duration::zero());
}

// --- rate limiter ---

TEST(RateLimiterTest, BurstIsImmediate) {
  TokenBucket tb(100.0, 10.0);
  Stopwatch sw;
  for (int i = 0; i < 10; i++) tb.acquire();
  EXPECT_LT(sw.elapsed_us(), 20000.0);
}

TEST(RateLimiterTest, SustainedRateIsEnforced) {
  TokenBucket tb(1000.0, 1.0);  // 1k/s, no burst
  Stopwatch sw;
  for (int i = 0; i < 50; i++) tb.acquire();
  // 49 waits at ~1ms each.
  EXPECT_GT(sw.elapsed_us(), 30000.0);
}

TEST(RateLimiterTest, TryAcquireFailsWhenEmpty) {
  TokenBucket tb(0.001, 1.0);
  EXPECT_TRUE(tb.try_acquire());
  EXPECT_FALSE(tb.try_acquire());
}

}  // namespace
}  // namespace bertha
