// Fault-tolerance building blocks: exponential backoff, the fault-
// injecting transport, idempotent discovery RPCs (exactly-once retried
// mutations), leases with heartbeat renewal and expiry, and degraded-mode
// discovery caching.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/discovery_cache.hpp"
#include "net/fault.hpp"
#include "test_helpers.hpp"
#include "util/backoff.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// --- ExponentialBackoff ---

TEST(BackoffTest, GrowsGeometricallyAndCaps) {
  ExponentialBackoff::Options o;
  o.base = ms(10);
  o.multiplier = 2.0;
  o.max = ms(80);
  o.jitter = 0.0;  // deterministic delays
  ExponentialBackoff b(o, 42);
  EXPECT_EQ(b.next(), ms(10));
  EXPECT_EQ(b.next(), ms(20));
  EXPECT_EQ(b.next(), ms(40));
  EXPECT_EQ(b.next(), ms(80));
  EXPECT_EQ(b.next(), ms(80));  // capped
  EXPECT_EQ(b.attempts(), 5);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.next(), ms(10));
}

TEST(BackoffTest, JitterStaysWithinBounds) {
  ExponentialBackoff::Options o;
  o.base = ms(100);
  o.multiplier = 1.0;  // keep the step fixed; test only the jitter draw
  o.max = ms(200);
  o.jitter = 0.5;
  ExponentialBackoff b(o, 7);
  for (int i = 0; i < 200; i++) {
    Duration d = b.next();
    EXPECT_GE(d, ms(50));
    EXPECT_LE(d, ms(150));
  }
}

TEST(BackoffTest, SeedsProduceDistinctSchedules) {
  ExponentialBackoff::Options o;  // default jitter 0.5
  ExponentialBackoff a(o, 1), b(o, 2);
  bool differed = false;
  for (int i = 0; i < 16 && !differed; i++) differed = a.next() != b.next();
  EXPECT_TRUE(differed) << "two clients retried in lockstep";
}

TEST(BackoffTest, DegenerateOptionsAreClamped) {
  ExponentialBackoff::Options o;
  o.base = ms(0);
  o.max = Duration::zero() - ms(5);
  o.multiplier = 0.1;
  o.jitter = 9.0;
  ExponentialBackoff b(o, 3);
  Duration d = b.next();
  EXPECT_GT(d, Duration::zero());
  EXPECT_LE(d, ms(2));  // base clamped to 1ms, jitter to 1.0
}

// --- FaultInjectingTransport ---

Bytes payload_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

TEST(FaultTransportTest, DropAllBlackholesTheLink) {
  auto net = MemNetwork::create();
  FaultInjectingTransport::Options fo;
  fo.drop = 1.0;
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), fo);
  auto b = net->bind(Addr::mem("b", 1)).value();

  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("x")).ok());
  EXPECT_FALSE(b->recv(Deadline::after(ms(30))).ok());
  EXPECT_EQ(a.counters().tx_dropped, 1u);
}

TEST(FaultTransportTest, DuplicateDeliversTwice) {
  auto net = MemNetwork::create();
  FaultInjectingTransport::Options fo;
  fo.duplicate = 1.0;
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), fo);
  auto b = net->bind(Addr::mem("b", 1)).value();

  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("d")).ok());
  auto r1 = b->recv(Deadline::after(seconds(1)));
  auto r2 = b->recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(str_of(r1.value().payload), "d");
  EXPECT_EQ(str_of(r2.value().payload), "d");
  EXPECT_EQ(a.counters().tx_duplicated, 1u);
}

TEST(FaultTransportTest, ReorderSwapsAdjacentSends) {
  auto net = MemNetwork::create();
  FaultInjectingTransport::Options fo;
  fo.reorder = 1.0;
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), fo);
  auto b = net->bind(Addr::mem("b", 1)).value();

  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("m1")).ok());
  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("m2")).ok());
  auto r1 = b->recv(Deadline::after(seconds(1)));
  auto r2 = b->recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(str_of(r1.value().payload), "m2");
  EXPECT_EQ(str_of(r2.value().payload), "m1");
}

TEST(FaultTransportTest, OneWayPartitionAndHeal) {
  auto net = MemNetwork::create();
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), {});
  auto b = net->bind(Addr::mem("b", 1)).value();

  a.partition(/*tx=*/true, /*rx=*/false);
  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("lost")).ok());
  EXPECT_FALSE(b->recv(Deadline::after(ms(30))).ok());
  // The rx direction still works.
  ASSERT_TRUE(b->send_to(a.local_addr(), payload_of("in")).ok());
  auto in = a.recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(str_of(in.value().payload), "in");

  a.partition(false, false);  // heal
  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("back")).ok());
  auto back = b->recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(str_of(back.value().payload), "back");
}

TEST(FaultTransportTest, DelayedDatagramsStillArrive) {
  auto net = MemNetwork::create();
  FaultInjectingTransport::Options fo;
  fo.delay = 1.0;
  fo.delay_min = ms(5);
  fo.delay_max = ms(20);
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), fo);
  auto b = net->bind(Addr::mem("b", 1)).value();

  ASSERT_TRUE(a.send_to(b->local_addr(), payload_of("slow")).ok());
  auto r = b->recv(Deadline::after(seconds(2)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(str_of(r.value().payload), "slow");
  EXPECT_EQ(a.counters().tx_delayed, 1u);
}

TEST(FaultTransportTest, RecvFilterDropsSelectedPackets) {
  auto net = MemNetwork::create();
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), {});
  auto b = net->bind(Addr::mem("b", 1)).value();

  std::atomic<int> dropped{0};
  a.set_recv_filter([&](const Addr&, BytesView p) {
    if (p.size() == 3) return false;
    dropped++;
    return true;
  });
  ASSERT_TRUE(b->send_to(a.local_addr(), payload_of("die")).ok());   // kept
  ASSERT_TRUE(b->send_to(a.local_addr(), payload_of("longer")).ok());  // drop
  ASSERT_TRUE(b->send_to(a.local_addr(), payload_of("yes")).ok());   // kept
  auto r1 = a.recv(Deadline::after(seconds(1)));
  auto r2 = a.recv(Deadline::after(seconds(1)));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(str_of(r1.value().payload), "die");
  EXPECT_EQ(str_of(r2.value().payload), "yes");
  EXPECT_EQ(dropped.load(), 1);
  EXPECT_EQ(a.counters().rx_dropped, 1u);
}

// --- idempotent retried mutations ---

ImplInfo impl_of(const std::string& type, const std::string& name,
                 std::vector<ResourceReq> res = {}) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = 10;
  i.resources = std::move(res);
  return i;
}

// The acquire-retry double-allocation regression: the response to the
// first acquire is lost, the client retries with the same idempotency
// key, and the server answers from its dedup cache — one allocation, not
// two, and the pool stays balanced after a single release.
// --- batched I/O through the fault pipeline ---
//
// send_batch/recv_batch must draw the same per-datagram fault decisions
// as the scalar paths: a batched sender is chaos-tested exactly like an
// unbatched one.

TEST(FaultBatchTest, BatchSendDropsEachDatagramIndependently) {
  auto net = MemNetwork::create();
  FaultInjectingTransport::Options fo;
  fo.drop = 1.0;
  FaultInjectingTransport a(net->bind(Addr::mem("a", 1)).value(), fo);
  auto b = net->bind(Addr::mem("b", 1)).value();

  std::vector<Datagram> batch(4);
  for (auto& d : batch) {
    d.dst = b->local_addr();
    d.payload.assign(payload_of("x"));
  }
  auto sent = a.send_batch(batch);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), 4u);  // silent drops still count as handled
  EXPECT_EQ(a.counters().tx_dropped, 4u);
  EXPECT_FALSE(b->recv(Deadline::after(ms(30))).ok());
}

TEST(FaultBatchTest, BatchRecvDuplicatesPerDatagram) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("a", 1)).value();
  FaultInjectingTransport::Options fo;
  fo.duplicate = 1.0;
  FaultInjectingTransport b(net->bind(Addr::mem("b", 1)).value(), fo);

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(a->send_to(b.local_addr(), payload_of("d")).ok());
  size_t got = 0;
  std::vector<Datagram> in(16);
  while (got < 6) {  // every datagram delivered twice
    auto n = b.recv_batch(std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    got += n.value();
  }
  EXPECT_EQ(got, 6u);
  EXPECT_EQ(b.counters().rx_duplicated, 3u);
  EXPECT_EQ(b.counters().received, 6u);
}

TEST(FaultBatchTest, BatchRecvReordersLikeScalarRecv) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("a", 1)).value();
  FaultInjectingTransport::Options fo;
  fo.reorder = 1.0;
  FaultInjectingTransport b(net->bind(Addr::mem("b", 1)).value(), fo);

  ASSERT_TRUE(a->send_to(b.local_addr(), payload_of("m1")).ok());
  ASSERT_TRUE(a->send_to(b.local_addr(), payload_of("m2")).ok());
  std::vector<std::string> order;
  std::vector<Datagram> in(8);
  while (order.size() < 2) {
    auto n = b.recv_batch(std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    for (size_t i = 0; i < n.value(); i++)
      order.push_back(to_string(in[i].payload.view()));
  }
  EXPECT_EQ(order[0], "m2");  // the pair arrives swapped, same as recv()
  EXPECT_EQ(order[1], "m1");
}

TEST(FaultBatchTest, BatchRecvDropsAndPartitions) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("a", 1)).value();
  FaultInjectingTransport b(net->bind(Addr::mem("b", 1)).value(), {});
  b.partition(/*tx=*/false, /*rx=*/true);
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(a->send_to(b.local_addr(), payload_of("p")).ok());
  std::vector<Datagram> in(8);
  auto n = b.recv_batch(std::span<Datagram>(in), Deadline::after(ms(50)));
  ASSERT_FALSE(n.ok());  // all dropped; the wait times out
  EXPECT_EQ(n.error().code, Errc::timed_out);
  EXPECT_EQ(b.counters().rx_dropped, 5u);
}

TEST(IdempotentRpcTest, AcquireRetryDoesNotDoubleAllocate) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->set_pool("pool.x", 4).ok());
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  FaultInjectingTransport::Options fo;  // no probabilistic faults
  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), fo);
  std::atomic<bool> drop_next_rsp{false};
  fault->set_recv_filter([&](const Addr&, BytesView) {
    return drop_next_rsp.exchange(false);
  });

  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(100);
  ro.retries = 3;
  ro.backoff = {ms(5), 2.0, ms(20), 0.1};
  RemoteDiscovery client(TransportPtr(fault), server.addr(), ro);

  drop_next_rsp = true;
  auto id = client.acquire({{"pool.x", 1}});
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  EXPECT_EQ(server.dedup_hits(), 1u) << "retry was not answered from cache";
  EXPECT_EQ(state->live_allocs(), 1u) << "retried acquire leaked a slot";
  EXPECT_EQ(state->pool_in_use("pool.x"), 1u);

  ASSERT_TRUE(client.release(id.value()).ok());
  EXPECT_EQ(state->live_allocs(), 0u);
  EXPECT_EQ(state->pool_in_use("pool.x"), 0u);
}

TEST(IdempotentRpcTest, RegisterRetryIsDeduplicated) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), {});
  std::atomic<bool> drop_next_rsp{false};
  fault->set_recv_filter([&](const Addr&, BytesView) {
    return drop_next_rsp.exchange(false);
  });
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(100);
  ro.retries = 3;
  ro.backoff = {ms(5), 2.0, ms(20), 0.1};
  RemoteDiscovery client(TransportPtr(fault), server.addr(), ro);

  drop_next_rsp = true;
  ASSERT_TRUE(client.register_impl(impl_of("offload", "offload/hw")).ok());
  EXPECT_EQ(server.dedup_hits(), 1u);
  // A dedup'd re-register must not have turned into a duplicate entry.
  auto q = client.query("offload");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().size(), 1u);
}

// --- leases: expiry, heartbeat renewal, watch events ---

TEST(LeaseTest, ExpiryReclaimsStateAndEmitsWatchEvents) {
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->set_pool("pool.x", 2).ok());
  auto watch = state->watch("");  // all events
  ASSERT_TRUE(watch.ok());

  ASSERT_TRUE(state
                  ->register_impl_leased(impl_of("offload", "offload/hw"),
                                         "client-1", ms(60))
                  .ok());
  auto alloc = state->acquire_leased({{"pool.x", 1}}, "client-1", ms(60));
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(state->lease_count(), 1u);

  // Consume the registration event.
  auto reg_ev = watch.value()->next(Deadline::after(seconds(1)));
  ASSERT_TRUE(reg_ev.ok());
  EXPECT_EQ(reg_ev.value().kind, WatchKind::impl_registered);

  // No heartbeat: the sweeper reclaims everything within a few TTLs.
  bool saw_unregister = false, saw_pool_freed = false;
  Deadline dl = Deadline::after(seconds(2));
  while (!(saw_unregister && saw_pool_freed)) {
    auto ev = watch.value()->next(dl);
    ASSERT_TRUE(ev.ok()) << "lease expiry events never arrived";
    if (ev.value().kind == WatchKind::impl_unregistered &&
        ev.value().name == "offload/hw")
      saw_unregister = true;
    if (ev.value().kind == WatchKind::pool_freed && ev.value().pool == "pool.x")
      saw_pool_freed = true;
  }
  EXPECT_EQ(state->lease_count(), 0u);
  EXPECT_EQ(state->live_allocs(), 0u);
  EXPECT_EQ(state->pool_in_use("pool.x"), 0u);
  EXPECT_TRUE(state->query("offload").value().empty());
}

TEST(LeaseTest, HeartbeatKeepsTheLeaseAlive) {
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state
                  ->register_impl_leased(impl_of("offload", "offload/hw"),
                                         "client-1", ms(80))
                  .ok());
  for (int i = 0; i < 8; i++) {
    sleep_for(ms(30));
    ASSERT_TRUE(state->heartbeat("client-1").ok());
  }
  // 240ms elapsed (3 TTLs) but the lease was renewed throughout.
  EXPECT_EQ(state->lease_count(), 1u);
  EXPECT_EQ(state->query("offload").value().size(), 1u);

  EXPECT_EQ(state->heartbeat("nobody").error().code, Errc::not_found);
}

// Kill-the-client: a RemoteDiscovery with a lease registers state and
// then dies. The service must reclaim within ~2 lease periods, emitting
// the watch events live connections renegotiate on.
TEST(LeaseTest, DeadClientStateExpiresWithinTwoLeasePeriods) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->set_pool("pool.x", 2).ok());
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);
  auto watch = state->watch("");
  ASSERT_TRUE(watch.ok());

  const Duration ttl = ms(150);
  {
    RemoteDiscovery::Options ro;
    ro.rpc_timeout = ms(200);
    ro.lease_ttl = ttl;
    RemoteDiscovery client(net->bind(Addr::mem("cli", 0)).value(),
                           server.addr(), ro);
    ASSERT_TRUE(client.register_impl(impl_of("offload", "offload/hw")).ok());
    ASSERT_TRUE(client.acquire({{"pool.x", 1}}).ok());
    EXPECT_EQ(state->lease_count(), 1u);
    // Outlive a TTL while heartbeating: nothing must expire.
    sleep_for(ttl + ms(50));
    EXPECT_EQ(state->lease_count(), 1u) << "heartbeat failed to renew";
    (void)watch.value()->try_next();  // drain the registration event
  }  // client destroyed: heartbeats stop

  TimePoint died = now();
  bool saw_unregister = false, saw_pool_freed = false;
  Deadline dl = Deadline::after(seconds(3));
  while (!(saw_unregister && saw_pool_freed)) {
    auto ev = watch.value()->next(dl);
    ASSERT_TRUE(ev.ok()) << "dead client's state never expired";
    if (ev.value().kind == WatchKind::impl_unregistered) saw_unregister = true;
    if (ev.value().kind == WatchKind::pool_freed) saw_pool_freed = true;
  }
  EXPECT_LE(now() - died, 2 * ttl + ms(100))
      << "expiry took more than ~2 lease periods";
  EXPECT_EQ(state->lease_count(), 0u);
  EXPECT_EQ(state->live_allocs(), 0u);
  EXPECT_EQ(state->pool_in_use("pool.x"), 0u);
}

// --- degraded-mode discovery (CachingDiscovery) ---

TEST(CachingDiscoveryTest, ServesCachedCatalogueWhileUnreachable) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->register_impl(impl_of("offload", "offload/hw")).ok());
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), {});
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(60);
  ro.retries = 0;
  auto remote = std::make_shared<RemoteDiscovery>(TransportPtr(fault),
                                                  server.addr(), ro);
  auto stats = std::make_shared<FaultStats>();
  CachingDiscovery::Options co;
  co.probe_period = ms(50);
  CachingDiscovery cache(remote, co, stats);

  // Healthy: query populates the cache.
  auto q1 = cache.query("offload");
  ASSERT_TRUE(q1.ok());
  ASSERT_EQ(q1.value().size(), 1u);
  EXPECT_FALSE(cache.degraded());

  fault->partition(true, true);
  auto q2 = cache.query("offload");
  ASSERT_TRUE(q2.ok()) << "cached catalogue not served during outage";
  EXPECT_EQ(q2.value().size(), 1u);
  EXPECT_TRUE(cache.degraded());
  EXPECT_GE(stats->degraded_entries.load(), 1u);
  EXPECT_GE(stats->catalogue_hits.load(), 1u);

  // A type never seen: empty success, so negotiation can still bind
  // local software fallbacks.
  auto q3 = cache.query("never-seen");
  ASSERT_TRUE(q3.ok());
  EXPECT_TRUE(q3.value().empty());

  // Recovery: the probe notices, degraded() clears, and unfiltered
  // watchers get the synthetic recovery event.
  auto w = cache.watch("");
  ASSERT_TRUE(w.ok());
  fault->partition(false, false);
  auto ev = w.value()->next(Deadline::after(seconds(3)));
  ASSERT_TRUE(ev.ok()) << "no recovery event after heal";
  EXPECT_EQ(ev.value().name, kDiscoveryRecoveredEvent);
  EXPECT_FALSE(cache.degraded());
  EXPECT_GE(stats->degraded_exits.load(), 1u);
}

// --- runtime wiring ---

TEST(FaultStatsTest, RuntimeExposesCounters) {
  auto world = TestWorld::make();
  auto rt = world.runtime("h1", /*builtins=*/false);
  EXPECT_EQ(rt->fault_stats().rpc_retries.load(), 0u);
  rt->fault_stats().rpc_retries++;
  EXPECT_NE(rt->fault_stats().to_string().find("rpc_retries"),
            std::string::npos);
  // A default-created discovery state shares the runtime's counters.
  RuntimeConfig cfg;
  cfg.host_id = "h2";
  cfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h2");
  auto rt2 = Runtime::create(std::move(cfg)).value();
  auto* state = dynamic_cast<DiscoveryState*>(&rt2->discovery());
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->fault_stats().get(), rt2->fault_stats_ptr().get());
}

}  // namespace
}  // namespace bertha
