// Property tests over composed chunnel stacks (the paper's
// composability requirement, §2): randomly chosen pipelines of
// byte-transforming chunnels must deliver every payload intact, in both
// directions, both when hand-wrapped and when negotiated end to end
// through real endpoints.
#include <gtest/gtest.h>

#include <thread>

#include "test_helpers.hpp"
#include "util/rand.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// The menu of chunnel types safe to compose in any order on a lossless
// in-memory link. (shard/ordered_mcast/local_or_remote are placement
// chunnels with their own data planes and are tested separately.)
const char* kMenu[] = {"serialize", "compress", "encrypt",
                       "frame",     "reliable", "ordering"};

std::vector<ChunnelSpec> random_chain(Rng& rng) {
  std::vector<ChunnelSpec> chain;
  // 1..4 distinct stages in random order.
  std::vector<const char*> pool(std::begin(kMenu), std::end(kMenu));
  size_t n = 1 + rng.next_below(4);
  for (size_t i = 0; i < n && !pool.empty(); i++) {
    size_t pick = rng.next_below(pool.size());
    chain.emplace_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
  }
  return chain;
}

Bytes random_payload(Rng& rng) {
  // Mix of compressible and incompressible content, 0..2000 bytes.
  Bytes b(rng.next_below(2001));
  bool runs = rng.chance(0.5);
  for (size_t i = 0; i < b.size(); i++)
    b[i] = runs ? static_cast<uint8_t>('a' + (i / 64) % 4)
                : static_cast<uint8_t>(rng.next_below(256));
  return b;
}

std::string chain_str(const std::vector<ChunnelSpec>& chain) {
  std::string s;
  for (const auto& c : chain) s += c.type + " |> ";
  return s + "(base)";
}

class NegotiatedStackProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NegotiatedStackProperty, RandomPipelinesDeliverEverything) {
  Rng rng(GetParam());
  auto world = TestWorld::make(GetParam());
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");

  for (int round = 0; round < 6; round++) {
    auto chain = random_chain(rng);
    SCOPED_TRACE(chain_str(chain));

    auto listener = srv_rt->endpoint("prop-srv", ChunnelDag::chain(chain))
                        .value()
                        .listen(Addr::mem("h1", 0))
                        .value();
    auto conn = cli_rt->endpoint("prop-cli", ChunnelDag::empty())
                    .value()
                    .connect(listener->addr(), Deadline::after(seconds(10)));
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();
    auto srv_conn = listener->accept(Deadline::after(seconds(10))).value();

    for (int i = 0; i < 8; i++) {
      Bytes payload = random_payload(rng);
      // Client -> server.
      ASSERT_TRUE(conn.value()->send(Msg(Bytes(payload))).ok());
      auto got = srv_conn->recv(Deadline::after(seconds(10)));
      ASSERT_TRUE(got.ok()) << got.error().to_string();
      ASSERT_EQ(got.value().payload, payload);
      // Server -> client.
      Bytes reply = random_payload(rng);
      ASSERT_TRUE(srv_conn->send(Msg(Bytes(reply))).ok());
      auto back = conn.value()->recv(Deadline::after(seconds(10)));
      ASSERT_TRUE(back.ok()) << back.error().to_string();
      ASSERT_EQ(back.value().payload, reply);
    }
    conn.value()->close();
    srv_conn->close();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegotiatedStackProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// The same pipelines must also survive a lossy link once `reliable` is
// the innermost stage.
class LossyStackProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossyStackProperty, TransformsOverReliableSurviveLoss) {
  Rng rng(GetParam() ^ 0x1111);
  auto world = TestWorld::make(GetParam());
  MemNetwork::Config lossy;
  lossy.drop_rate = 0.15;
  lossy.seed = GetParam();
  world.mem = MemNetwork::create(lossy);
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");

  // Random transform prefix over a reliable tail.
  std::vector<ChunnelSpec> chain;
  const char* transforms[] = {"serialize", "compress", "encrypt", "frame"};
  for (const char* t : transforms)
    if (rng.chance(0.6)) chain.emplace_back(t);
  ChunnelArgs rto;
  rto.set("rto_us", "15000");
  chain.emplace_back("reliable", rto);
  SCOPED_TRACE(chain_str(chain));

  auto listener = srv_rt->endpoint("lossy-srv", ChunnelDag::chain(chain))
                      .value()
                      .listen(Addr::mem("h1", 0))
                      .value();
  auto conn = cli_rt->endpoint("lossy-cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(30)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv_conn = listener->accept(Deadline::after(seconds(30))).value();

  constexpr int kMsgs = 25;
  std::thread sender([&] {
    for (int i = 0; i < kMsgs; i++)
      ASSERT_TRUE(conn.value()->send(Msg::of("msg-" + std::to_string(i))).ok());
  });
  for (int i = 0; i < kMsgs; i++) {
    auto got = srv_conn->recv(Deadline::after(seconds(60)));
    ASSERT_TRUE(got.ok()) << i << ": " << got.error().to_string();
    EXPECT_EQ(got.value().payload_str(), "msg-" + std::to_string(i));
  }
  sender.join();
  conn.value()->close();
  srv_conn->close();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyStackProperty,
                         ::testing::Values(11, 22, 33, 44));

// Empty payloads and max-size payloads traverse every single-stage
// pipeline.
class EdgePayloadProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(EdgePayloadProperty, EmptyAndLargePayloads) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  std::vector<ChunnelSpec> chain{ChunnelSpec(GetParam())};
  auto listener = srv_rt->endpoint("edge-srv", ChunnelDag::chain(chain))
                      .value()
                      .listen(Addr::mem("h1", 0))
                      .value();
  auto conn = cli_rt->endpoint("edge-cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();

  for (size_t size : {size_t{0}, size_t{1}, size_t{32000}}) {
    Bytes payload(size, 0x7e);
    ASSERT_TRUE(conn->send(Msg(Bytes(payload))).ok()) << size;
    auto got = srv_conn->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(got.ok()) << size << ": " << got.error().to_string();
    EXPECT_EQ(got.value().payload, payload) << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, EdgePayloadProperty,
                         ::testing::Values("serialize", "compress", "encrypt",
                                           "frame", "reliable", "ordering",
                                           "batch", "tcpish", "dedup",
                                           "keepalive", "telemetry"));

}  // namespace
}  // namespace bertha
