// Runtime configuration validation, handshake idempotence, and the
// anycast connection path (§3.2 "Anycast"): dialing a virtual address
// that the network routes to the nearest concrete instance.
#include <gtest/gtest.h>

#include <set>

#include "core/wire.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

// --- Runtime::create validation ---

TEST(RuntimeTest, RequiresTransports) {
  RuntimeConfig cfg;
  auto r = Runtime::create(cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::invalid_argument);
}

TEST(RuntimeTest, FillsDefaults) {
  RuntimeConfig cfg;
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  auto rt = Runtime::create(cfg).value();
  EXPECT_FALSE(rt->config().host_id.empty());
  EXPECT_FALSE(rt->config().process_id.empty());
  EXPECT_NE(rt->config().discovery, nullptr);
  EXPECT_NE(rt->config().policy, nullptr);
}

TEST(RuntimeTest, RejectsBadHandshakeParams) {
  RuntimeConfig cfg;
  cfg.transports = std::make_shared<DefaultTransportFactory>();
  cfg.handshake_retries = -1;
  EXPECT_FALSE(Runtime::create(cfg).ok());
  cfg.handshake_retries = 1;
  cfg.handshake_timeout = Duration::zero();
  EXPECT_FALSE(Runtime::create(cfg).ok());
}

TEST(RuntimeTest, EndpointRejectsInvalidDag) {
  auto world = TestWorld::make();
  auto rt = world.runtime("h");
  // Cycle.
  ChunnelDag cyclic;
  auto a = cyclic.add_node(ChunnelSpec("a"));
  auto b = cyclic.add_node(ChunnelSpec("b"));
  ASSERT_TRUE(cyclic.add_edge(a, b).ok());
  ASSERT_TRUE(cyclic.add_edge(b, a).ok());
  EXPECT_FALSE(rt->endpoint("x", cyclic).ok());
  // Branching (valid DAG but not a chain).
  ChunnelDag branching;
  auto r = branching.add_node(ChunnelSpec("a"));
  auto c1 = branching.add_node(ChunnelSpec("b"));
  auto c2 = branching.add_node(ChunnelSpec("c"));
  ASSERT_TRUE(branching.add_edge(r, c1).ok());
  ASSERT_TRUE(branching.add_edge(r, c2).ok());
  EXPECT_FALSE(rt->endpoint("x", branching).ok());
}

TEST(RuntimeTest, UniqueIdsAreUnique) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; i++) ids.insert(make_unique_id());
  EXPECT_EQ(ids.size(), 1000u);
}

// --- handshake idempotence ---

TEST(HandshakeTest, DuplicateHelloYieldsOneConnection) {
  // A retransmitted hello (same source, same process) must be answered
  // from the accept cache, not create a second connection.
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto listener = srv_rt->endpoint("srv", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h1", 900))
                      .value();

  auto t = world.mem->bind(Addr::mem("h2", 0)).value();
  HelloMsg hello;
  hello.endpoint_name = "dup-test";
  hello.host_id = "h2";
  hello.process_id = "p-fixed";
  Bytes frame = encode_frame(MsgKind::hello, 0, encode_hello(hello));

  std::optional<uint64_t> token;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(t->send_to(listener->addr(), frame).ok());
    auto pkt = t->recv(Deadline::after(seconds(5)));
    ASSERT_TRUE(pkt.ok());
    auto f = decode_frame(pkt.value().payload);
    ASSERT_TRUE(f.ok());
    ASSERT_EQ(f.value().kind, MsgKind::accept);
    auto acc = decode_accept(f.value().payload).value();
    if (!token) token = acc.token;
    EXPECT_EQ(acc.token, *token) << "retransmit created a new connection";
  }
  EXPECT_EQ(listener->connections_accepted(), 1u);
}

// --- anycast connections (§3.2) ---

TEST(AnycastTest, ConnectsToNearestInstanceViaVirtualAddress) {
  auto world = TestWorld::make();
  auto near_rt = world.runtime("near");
  auto far_rt = world.runtime("far");
  auto cli_rt = world.runtime("cli");
  world.sim->set_link("cli", "near", us(50));
  world.sim->set_link("cli", "far", us(500));

  auto near_listener = near_rt->endpoint("svc", ChunnelDag::empty())
                           .value()
                           .listen(Addr::sim("near", 8000))
                           .value();
  auto far_listener = far_rt->endpoint("svc", ChunnelDag::empty())
                          .value()
                          .listen(Addr::sim("far", 8000))
                          .value();

  Addr vip = Addr::sim("kv-anycast", 80);
  ASSERT_TRUE(world.sim->advertise(vip, near_listener->addr(), 1).ok());
  ASSERT_TRUE(world.sim->advertise(vip, far_listener->addr(), 100).ok());

  auto ep = cli_rt->endpoint("cli", ChunnelDag::empty()).value();
  auto conn = ep.connect(vip, Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();

  // The near instance accepted; data flows to it directly.
  auto srv_conn = near_listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn.value()->send(Msg::of("to-nearest")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "to-nearest");
  EXPECT_EQ(far_listener->connections_accepted(), 0u);

  // Routing change: the near instance withdraws; the next connection
  // reaches the far one — same client code, same virtual address.
  world.sim->withdraw(vip, near_listener->addr());
  auto conn2 = ep.connect(vip, Deadline::after(seconds(5)));
  ASSERT_TRUE(conn2.ok()) << conn2.error().to_string();
  auto far_conn = far_listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn2.value()->send(Msg::of("rerouted")).ok());
  EXPECT_EQ(far_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "rerouted");
}

TEST(AnycastTest, EstablishedConnectionSurvivesRoutingChange) {
  // Because the data path pins to the concrete instance that accepted,
  // an anycast routing flap does not break established connections
  // (the instability that drives people to DNS, per §3.2).
  auto world = TestWorld::make();
  auto a_rt = world.runtime("ia");
  auto b_rt = world.runtime("ib");
  auto cli_rt = world.runtime("cli");

  auto la = a_rt->endpoint("svc", ChunnelDag::empty())
                .value()
                .listen(Addr::sim("ia", 8000))
                .value();
  auto lb = b_rt->endpoint("svc", ChunnelDag::empty())
                .value()
                .listen(Addr::sim("ib", 8000))
                .value();
  Addr vip = Addr::sim("svc-vip", 80);
  ASSERT_TRUE(world.sim->advertise(vip, la->addr(), 1).ok());
  ASSERT_TRUE(world.sim->advertise(vip, lb->addr(), 50).ok());

  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(vip, Deadline::after(seconds(5)))
                  .value();
  auto srv = la->accept(Deadline::after(seconds(5))).value();

  // Routing flips mid-connection.
  ASSERT_TRUE(world.sim->advertise(vip, lb->addr(), 0).ok());

  ASSERT_TRUE(conn->send(Msg::of("still-a")).ok());
  EXPECT_EQ(srv->recv(Deadline::after(seconds(5))).value().payload_str(),
            "still-a");
  EXPECT_EQ(lb->connections_accepted(), 0u);
}

}  // namespace
}  // namespace bertha
