// Tests for the simulated offload devices: SimSwitch (sequencer slots,
// discovery advertisement) and SimNic (offload catalogue, PCIe model,
// crypto-engine admission).
#include <gtest/gtest.h>

#include "core/negotiation.hpp"
#include "sim/simnic.hpp"
#include "sim/simswitch.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

TEST(SimSwitchTest, InstallAdvertisesAndConsumesSlot) {
  auto world = TestWorld::make();
  SimSwitch::Config cfg;
  cfg.sequencer_slots = 1;
  auto sw = SimSwitch::create(world.sim, world.discovery, cfg).value();
  EXPECT_EQ(world.discovery->pool_capacity(sw->slot_pool()), 1u);

  auto m = world.sim->attach("r", 7).value();
  auto addr = sw->install_sequencer_group("g1", 7, {m->local_addr()});
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(sw->groups_installed(), 1u);
  EXPECT_EQ(world.discovery->pool_in_use(sw->slot_pool()), 1u);

  auto entries = world.discovery->query("ordered_mcast").value();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].props.at("group_addr"), addr.value().to_string());
  EXPECT_EQ(entries[0].props.at("sequencer"), "switch");
}

TEST(SimSwitchTest, CapacityEnforced) {
  // The paper's §6 example: two groups want the switch, it fits one.
  auto world = TestWorld::make();
  SimSwitch::Config cfg;
  cfg.sequencer_slots = 1;
  auto sw = SimSwitch::create(world.sim, world.discovery, cfg).value();
  auto m = world.sim->attach("r", 7).value();
  ASSERT_TRUE(sw->install_sequencer_group("g1", 7, {m->local_addr()}).ok());
  auto second = sw->install_sequencer_group("g2", 8, {m->local_addr()});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::resource_exhausted);

  // Removing the first frees the slot.
  ASSERT_TRUE(sw->remove_sequencer_group("g1", 7).ok());
  EXPECT_EQ(world.discovery->pool_in_use(sw->slot_pool()), 0u);
  EXPECT_TRUE(world.discovery->query("ordered_mcast").value().empty());
  EXPECT_TRUE(sw->install_sequencer_group("g2", 8, {m->local_addr()}).ok());
}

TEST(SimSwitchTest, FailedInstallReleasesSlot) {
  auto world = TestWorld::make();
  auto sw = SimSwitch::create(world.sim, world.discovery, {}).value();
  auto m = world.sim->attach("r", 7).value();
  // Non-sim member: group creation fails after the slot acquire.
  auto bad = sw->install_sequencer_group("g", 7, {Addr::udp("1.2.3.4", 1)});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(world.discovery->pool_in_use(sw->slot_pool()), 0u);
}

TEST(SimNicTest, AdvertisesOffloadCatalogue) {
  auto discovery = std::make_shared<DiscoveryState>();
  auto nic = SimNic::create(discovery, {}).value();
  ASSERT_TRUE(nic->advertise_offloads().ok());
  EXPECT_EQ(discovery->query("encrypt").value().size(), 1u);
  EXPECT_EQ(discovery->query("tcpish").value().size(), 1u);
  auto tls = discovery->query("tls").value();
  ASSERT_EQ(tls.size(), 1u);
  EXPECT_EQ(tls[0].priority, 15);
  EXPECT_EQ(tls[0].props.at("offloadable"), "true");
}

TEST(SimNicTest, PcieModelAccumulates) {
  auto discovery = std::make_shared<DiscoveryState>();
  SimNic::Config cfg;
  cfg.pcie_per_kib = us(10);
  cfg.pcie_setup = us(1);
  auto nic = SimNic::create(discovery, cfg).value();
  Duration d = nic->record_pcie_transfer(1024);
  EXPECT_EQ(d, us(11));  // setup + 1 KiB
  nic->record_pcie_transfer(512);
  EXPECT_EQ(nic->pcie_bytes_transferred(), 1536u);
  EXPECT_EQ(nic->pcie_transfers(), 2u);
  nic->reset_counters();
  EXPECT_EQ(nic->pcie_bytes_transferred(), 0u);
}

TEST(SimNicTest, CryptoEnginePoolGatesNegotiation) {
  // Two connections want encrypt/nic but the NIC has one engine: the
  // second negotiation must fall back to encrypt/sw.
  auto world = TestWorld::make();
  SimNic::Config cfg;
  cfg.crypto_engines = 1;
  auto nic_r = SimNic::create(world.discovery, cfg);
  ASSERT_TRUE(nic_r.ok());
  std::shared_ptr<SimNic> nic(std::move(nic_r).value());
  ASSERT_TRUE(nic->advertise_offloads().ok());

  Registry registry;
  ImplInfo sw_info;
  sw_info.type = "encrypt";
  sw_info.name = "encrypt/sw";
  sw_info.endpoints = EndpointConstraint::both;
  struct Noop final : ChunnelImpl {
    explicit Noop(ImplInfo i) : info_(std::move(i)) {}
    const ImplInfo& info() const override { return info_; }
    Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }
    ImplInfo info_;
  };
  ASSERT_TRUE(registry.register_impl(std::make_shared<Noop>(sw_info)).ok());

  HelloMsg hello;
  hello.host_id = "h";  // same host as server -> host-scope offload usable
  hello.offers["encrypt"] = {sw_info};

  DefaultPolicy policy;
  std::vector<ChunnelSpec> chain{ChunnelSpec("encrypt")};
  auto first = negotiate_server(chain, hello, registry, *world.discovery,
                                policy, {}, "h");
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_EQ(first.value().chain[0].impl_name, "encrypt/nic");

  auto second = negotiate_server(chain, hello, registry, *world.discovery,
                                 policy, {}, "h");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().chain[0].impl_name, "encrypt/sw");
}

}  // namespace
}  // namespace bertha
