// Robustness suite: every wire-facing decoder is fed random bytes,
// truncations of valid messages, and bit-flipped valid messages — none
// may crash, hang, or return success on corrupted framing where
// integrity is checked; live listeners must survive adversarial
// datagrams and keep serving.
#include <gtest/gtest.h>

#include "apps/kvproto.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "control/control_wire.hpp"
#include "core/discovery.hpp"
#include "chunnels/shard.hpp"
#include "core/negotiation.hpp"
#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "serialize/text_codec.hpp"
#include "sim/ir_exec.hpp"
#include "synth/ir.hpp"
#include "test_helpers.hpp"
#include "util/rand.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

Bytes random_bytes(Rng& rng, size_t max_len) {
  Bytes b(rng.next_below(max_len + 1));
  for (auto& x : b) x = static_cast<uint8_t>(rng.next_below(256));
  return b;
}

// Each decoder consumed without crashing == pass; results are ignored.
class DecoderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; iter++) {
    Bytes data = random_bytes(rng, 512);
    (void)decode_frame(data);
    (void)decode_hello(data);
    (void)decode_accept(data);
    (void)decode_reject(data);
    (void)decode_transition(data);
    (void)decode_transition_cancel(data);
    (void)decode_subscribe(data);
    (void)decode_unsubscribe(data);
    (void)decode_event_batch(data);
    (void)decode_kv_request(data);
    (void)decode_kv_response(data);
    (void)parse_shard_frame(data);
    (void)parse_mcast_frame(data);
    (void)parse_sequenced_mcast(data);
    (void)parse_mcast_fetch(data);
    (void)parse_mcast_fetch_miss(data);
    (void)parse_mcast_view_start(data);
    (void)decode_ctrl_op(data);
    (void)peek_ctrl_frame(data);
    (void)decode_snapshot_req(data);
    (void)decode_snapshot_rsp(data);
    (void)decode_view_change(data);
    (void)decode_membership(data);
    (void)decode_reshard_op(data);
    (void)decode_reshard_payload(data);
    (void)decode_reshard_ack(data);
    (void)decode_reshard_snapshot_req(data);
    (void)decode_reshard_snapshot_rsp(data);
    (void)decode_program(data);
    (void)text_decode(data);
    (void)deserialize_from_bytes<ChunnelDag>(data);
    (void)deserialize_from_bytes<ImplInfo>(data);
    (void)Addr::parse(to_string(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Every strict prefix of a valid message must decode to an error (or a
// benign success for self-delimiting prefixes), never crash.
TEST(TruncationFuzz, HelloMessagePrefixes) {
  HelloMsg hello;
  hello.endpoint_name = "victim";
  hello.host_id = "h";
  hello.process_id = "p";
  hello.dag = wrap(ChunnelSpec("reliable"), ChunnelSpec("serialize"));
  ImplInfo info;
  info.type = "reliable";
  info.name = "reliable/arq";
  info.resources = {{"pool", 2}};
  info.props = {{"k", "v"}};
  hello.offers["reliable"] = {info};
  Bytes full = encode_hello(hello);
  for (size_t n = 0; n < full.size(); n++) {
    BytesView prefix(full.data(), n);
    auto r = decode_hello(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of length " << n << " decoded";
  }
  EXPECT_TRUE(decode_hello(full).ok());
}

TEST(TruncationFuzz, KvRequestPrefixes) {
  KvRequest req;
  req.op = KvOp::put;
  req.id = 123456789;
  req.key = "user000000000007";
  req.value = std::string(64, 'v');
  Bytes full = encode_kv_request(req);
  for (size_t n = 0; n < full.size(); n++) {
    auto r = decode_kv_request(BytesView(full.data(), n));
    EXPECT_FALSE(r.ok()) << n;
  }
}

TEST(TruncationFuzz, AcceptMessagePrefixes) {
  AcceptMsg a;
  a.token = 42;
  a.host_id = "srv";
  a.process_id = "p";
  NegotiatedNode n1;
  n1.type = "shard";
  n1.impl_name = "shard/xdp";
  n1.args.set("shards", "udp://1.1.1.1:1");
  a.chain = {n1};
  Bytes full = encode_accept(a);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_accept(BytesView(full.data(), n)).ok()) << n;
}

// --- optional trace-context tails ---
//
// The tail is observability, not protocol: a truncated or garbled tail
// must degrade to "no context" and NEVER reject an otherwise-valid
// frame. Prefixes that cut the mandatory fields still fail as before.

TEST(TraceTailFuzz, HelloTailTruncationDegradesToNoContext) {
  HelloMsg hello;
  hello.endpoint_name = "victim";
  hello.host_id = "h";
  hello.process_id = "p";
  hello.dag = wrap(ChunnelSpec("reliable"));
  Bytes bare = encode_hello(hello);
  hello.trace = TraceContext{0x1234567890ULL, 0x42};
  Bytes full = encode_hello(hello);
  ASSERT_GT(full.size(), bare.size());

  // Mandatory-field prefixes still fail.
  for (size_t n = 0; n < bare.size(); n++)
    EXPECT_FALSE(decode_hello(BytesView(full.data(), n)).ok()) << n;
  // Any truncation inside the tail decodes fine, context dropped.
  for (size_t n = bare.size(); n < full.size(); n++) {
    auto r = decode_hello(BytesView(full.data(), n));
    ASSERT_TRUE(r.ok()) << "tail truncation at " << n << " rejected frame";
    EXPECT_FALSE(r.value().trace.valid()) << n;
  }
  auto whole = decode_hello(full);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value().trace.trace_id, 0x1234567890ULL);
}

TEST(TraceTailFuzz, GarbageTailsNeverRejectValidFrames) {
  Rng rng(17);
  HelloMsg hello;
  hello.endpoint_name = "victim";
  hello.host_id = "h";
  Bytes hello_bare = encode_hello(hello);
  TransitionMsg t;
  t.epoch = 3;
  t.new_token = 9;
  Bytes trans_bare = encode_transition(t);
  TransitionCancelMsg c;
  c.epoch = 3;
  Bytes cancel_bare = encode_transition_cancel(c);

  for (int iter = 0; iter < 300; iter++) {
    Bytes junk = random_bytes(rng, 24);
    Bytes h2 = hello_bare;
    h2.insert(h2.end(), junk.begin(), junk.end());
    EXPECT_TRUE(decode_hello(h2).ok()) << "garbage tail rejected hello";
    Bytes t2 = trans_bare;
    t2.insert(t2.end(), junk.begin(), junk.end());
    auto tr = decode_transition(t2);
    ASSERT_TRUE(tr.ok()) << "garbage tail rejected transition";
    EXPECT_EQ(tr.value().epoch, 3u);
    Bytes c2 = cancel_bare;
    c2.insert(c2.end(), junk.begin(), junk.end());
    EXPECT_TRUE(decode_transition_cancel(c2).ok())
        << "garbage tail rejected cancel";
  }

  // Tails starting with the magic byte but carrying truncated/overlong
  // varints are the nastiest case: still no rejection.
  for (int iter = 0; iter < 100; iter++) {
    Bytes evil = {kTraceCtxMagic};
    Bytes junk = random_bytes(rng, 12);
    evil.insert(evil.end(), junk.begin(), junk.end());
    Bytes h2 = hello_bare;
    h2.insert(h2.end(), evil.begin(), evil.end());
    EXPECT_TRUE(decode_hello(h2).ok());
  }
}

// --- Watch-subscription wire messages (subscribe / unsubscribe /
// event_batch) ---

WatchEvent fuzz_event(uint64_t seq, const std::string& name) {
  WatchEvent ev;
  ev.kind = WatchKind::impl_registered;
  ev.seq = seq;
  ev.type = "enc";
  ev.name = name;
  ImplInfo info;
  info.type = "enc";
  info.name = name;
  ev.info = info;
  return ev;
}

TEST(TruncationFuzz, SubscribeMessagePrefixes) {
  SubscribeMsg m;
  m.sub_id = 77;
  m.client_id = "client-abc";
  m.filter = "enc";
  m.last_seq = 123456;
  m.resume = true;
  Bytes full = encode_subscribe(m);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_subscribe(BytesView(full.data(), n)).ok()) << n;
  EXPECT_TRUE(decode_subscribe(full).ok());
}

TEST(TruncationFuzz, UnsubscribeMessagePrefixes) {
  UnsubscribeMsg m;
  m.sub_id = 9;
  m.client_id = "client-abc";
  Bytes full = encode_unsubscribe(m);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_unsubscribe(BytesView(full.data(), n)).ok()) << n;
  EXPECT_TRUE(decode_unsubscribe(full).ok());
}

TEST(TruncationFuzz, EventBatchPrefixes) {
  EventBatchMsg m;
  m.prev_seq = 10;
  m.last_seq = 12;
  m.events = {fuzz_event(11, "enc/a"), fuzz_event(12, "enc/b")};
  Bytes full = encode_event_batch(m);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_event_batch(BytesView(full.data(), n)).ok()) << n;
  EXPECT_TRUE(decode_event_batch(full).ok());
}

// Structurally valid encodings carrying nonsense must decode to errors,
// never crash and never return success: the client trusts seq arithmetic
// on whatever decode_event_batch accepts.
TEST(WatchWireFuzz, AbsurdSeqValuesAreRejected) {
  // Zero-length payloads (an empty frame body) are errors for all three.
  Bytes empty;
  EXPECT_FALSE(decode_subscribe(empty).ok());
  EXPECT_FALSE(decode_unsubscribe(empty).ok());
  EXPECT_FALSE(decode_event_batch(empty).ok());

  // Subscription ids of 0 / missing client ids are meaningless.
  SubscribeMsg s;
  s.sub_id = 0;
  s.client_id = "c";
  EXPECT_FALSE(decode_subscribe(encode_subscribe(s)).ok());
  s.sub_id = 1;
  s.client_id = "";
  EXPECT_FALSE(decode_subscribe(encode_subscribe(s)).ok());
  UnsubscribeMsg u;
  u.sub_id = 0;
  u.client_id = "c";
  EXPECT_FALSE(decode_unsubscribe(encode_unsubscribe(u)).ok());

  // A batch running backwards: last_seq < prev_seq.
  EventBatchMsg back;
  back.prev_seq = 1000;
  back.last_seq = 5;
  EXPECT_FALSE(decode_event_batch(encode_event_batch(back)).ok());

  // Maximal seqs are fine as long as the range is coherent...
  EventBatchMsg huge;
  huge.prev_seq = UINT64_MAX - 1;
  huge.last_seq = UINT64_MAX;
  huge.events = {fuzz_event(UINT64_MAX, "enc/x")};
  EXPECT_TRUE(decode_event_batch(encode_event_batch(huge)).ok());

  // ...but an event seq outside (prev_seq, last_seq] is not.
  EventBatchMsg outside;
  outside.prev_seq = 10;
  outside.last_seq = 20;
  outside.events = {fuzz_event(21, "enc/x")};
  EXPECT_FALSE(decode_event_batch(encode_event_batch(outside)).ok());
  outside.events = {fuzz_event(10, "enc/x")};
  EXPECT_FALSE(decode_event_batch(encode_event_batch(outside)).ok());

  // Non-increasing seqs within a batch.
  EventBatchMsg dup;
  dup.prev_seq = 10;
  dup.last_seq = 20;
  dup.events = {fuzz_event(12, "enc/x"), fuzz_event(12, "enc/y")};
  EXPECT_FALSE(decode_event_batch(encode_event_batch(dup)).ok());

  // A snapshot claiming a prev_seq, or carrying events at another seq.
  EventBatchMsg snap;
  snap.snapshot = true;
  snap.prev_seq = 3;
  snap.last_seq = 9;
  snap.events = {fuzz_event(9, "enc/x")};
  EXPECT_FALSE(decode_event_batch(encode_event_batch(snap)).ok());
  snap.prev_seq = 0;
  snap.events = {fuzz_event(8, "enc/x")};
  EXPECT_FALSE(decode_event_batch(encode_event_batch(snap)).ok());
  snap.events = {fuzz_event(9, "enc/x")};
  EXPECT_TRUE(decode_event_batch(encode_event_batch(snap)).ok());
}

// The frame parser accepts the three new kinds and still rejects the
// out-of-range ones just past them.
TEST(WatchWireFuzz, FrameKindsCoverSubscriptionFrames) {
  for (uint8_t k = 10; k <= 12; k++) {
    Bytes f = encode_frame(static_cast<MsgKind>(k), 42, to_bytes("body"));
    auto r = decode_frame(f);
    ASSERT_TRUE(r.ok()) << "kind " << int(k);
    EXPECT_EQ(static_cast<uint8_t>(r.value().kind), k);
    EXPECT_EQ(r.value().token, 42u);
  }
  Bytes bad = encode_frame(static_cast<MsgKind>(13), 42, {});
  EXPECT_FALSE(decode_frame(bad).ok());
}

// A subscribed server bombarded with garbage subscription frames keeps
// pushing to its real subscriber.
TEST(AdversarialListener, DiscoveryServerSurvivesGarbageSubscriptions) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer::Options so;
  so.coalesce_window = ms(2);
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state, so);
  RemoteDiscovery client(net->bind(Addr::mem("cli", 0)).value(),
                         server.addr());
  auto w = client.watch("enc").value();

  auto attacker = net->bind(Addr::mem("attacker", 0)).value();
  Rng rng(7);
  for (int i = 0; i < 200; i++) {
    MsgKind kind = static_cast<MsgKind>(10 + rng.next_below(3));
    Bytes frame = encode_frame(kind, rng.next_u64(), random_bytes(rng, 96));
    ASSERT_TRUE(attacker->send_to(server.addr(), frame).ok());
  }

  ImplInfo info;
  info.type = "enc";
  info.name = "enc/real";
  ASSERT_TRUE(state->register_impl(info).ok());
  auto ev = w->next(Deadline::after(seconds(5)));
  ASSERT_TRUE(ev.ok()) << ev.error().to_string();
  EXPECT_EQ(ev.value().name, "enc/real");
}

// --- control-plane recovery frames (snapshot / view-change /
// membership, src/control/control_wire.hpp) ---
//
// A catching-up replica installs whatever decode_snapshot_rsp accepts
// wholesale; a truncated or garbled frame must be a clean decode error,
// never a crash and never a partial structure.

CtrlSnapshotRsp fuzz_snapshot_rsp() {
  CtrlSnapshotRsp rsp;
  rsp.from = "p0-r1";
  rsp.view = 3;
  rsp.next_seq = 4242;
  ImplInfo info;
  info.type = "enc";
  info.name = "enc/aes";
  info.resources = {{"pool.a", 1}};
  info.props = {{"k", "v"}};
  rsp.state.impls = {info};
  rsp.state.pools = {{"pool.a", 8, 2}};
  rsp.state.allocs = {{77, {{"pool.a", 2}}}};
  rsp.state.next_alloc = 78;
  DiscoverySnapshot::LeaseEntry lease;
  lease.owner = "client-7";
  lease.ttl_ns = 1000000;
  lease.expires_ns = 2000000;
  lease.impls = {{"enc", "enc/aes"}};
  lease.allocs = {77};
  rsp.state.leases = {lease};
  rsp.state.watch_seq = 12;
  rsp.dedup = {{"client-7#5", to_bytes("cached-response")}};
  rsp.applied = {"p0-r0#3", "p0-r1#9"};
  rsp.event_log.events = {fuzz_event(11, "enc/a"), fuzz_event(12, "enc/b")};
  rsp.event_log.pruned_through = 10;
  rsp.event_log.observed_through = 12;
  // A catch-up taken mid-migration carries the in-flight range state.
  ReshardRangeState rr;
  rr.range = 2;
  rr.modulo = 4;
  rr.epoch = 5;
  rr.role = 1;
  rr.phase = 3;
  rr.dst_rpc = {"mem://ctrl-p2-r0:1"};
  rr.migrated_allocs = {77};
  rr.payload = to_bytes("frozen-cut");
  rsp.reshard = {rr};
  return rsp;
}

TEST(CtrlFrameFuzz, SnapshotFramePrefixesAllFail) {
  CtrlSnapshotReq req;
  req.from = "p0-r2";
  req.reply_uri = "mem://ctrl-p0-r2:2";
  Bytes full = encode_snapshot_req(req);
  ASSERT_EQ(peek_ctrl_frame(full).value(), CtrlFrameKind::snapshot_req);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_snapshot_req(BytesView(full.data(), n)).ok()) << n;
  auto rt = decode_snapshot_req(full);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().reply_uri, req.reply_uri);

  Bytes rsp_full = encode_snapshot_rsp(fuzz_snapshot_rsp());
  ASSERT_EQ(peek_ctrl_frame(rsp_full).value(), CtrlFrameKind::snapshot_rsp);
  for (size_t n = 0; n < rsp_full.size(); n++)
    EXPECT_FALSE(decode_snapshot_rsp(BytesView(rsp_full.data(), n)).ok()) << n;
  auto rsp = decode_snapshot_rsp(rsp_full);
  ASSERT_TRUE(rsp.ok());
  EXPECT_EQ(rsp.value().next_seq, 4242u);
  EXPECT_EQ(rsp.value().state.leases.size(), 1u);
  EXPECT_EQ(rsp.value().event_log.events.size(), 2u);
  EXPECT_EQ(rsp.value().applied.size(), 2u);
  ASSERT_EQ(rsp.value().reshard.size(), 1u);
  EXPECT_EQ(rsp.value().reshard[0].range, 2u);
  EXPECT_EQ(rsp.value().reshard[0].phase, 3u);
  EXPECT_EQ(rsp.value().reshard[0].migrated_allocs,
            (std::vector<uint64_t>{77}));
}

TEST(CtrlFrameFuzz, ViewChangeAndMembershipPrefixesAllFail) {
  CtrlViewChangeMsg vc;
  vc.view = 2;
  vc.from = "p1-r0";
  vc.last_contig = 999;
  Bytes full = encode_view_change(vc);
  ASSERT_EQ(peek_ctrl_frame(full).value(), CtrlFrameKind::view_change);
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_view_change(BytesView(full.data(), n)).ok()) << n;
  auto vt = decode_view_change(full);
  ASSERT_TRUE(vt.ok());
  EXPECT_EQ(vt.value().last_contig, 999u);

  ClusterMembership m;
  m.epoch = 7;
  m.partitions = {{Addr::mem("a", 1), Addr::mem("b", 1)}, {Addr::mem("c", 1)}};
  // Post-reshard shape: steering modulo wider than the partition count,
  // home table aliasing buckets back onto live partitions.
  m.modulo = 4;
  m.home = {0, 1, 0, 1};
  Bytes mf = encode_membership(m);
  ASSERT_EQ(peek_ctrl_frame(mf).value(), CtrlFrameKind::membership);
  for (size_t n = 0; n < mf.size(); n++)
    EXPECT_FALSE(decode_membership(BytesView(mf.data(), n)).ok()) << n;
  auto mt = decode_membership(mf);
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(mt.value().epoch, 7u);
  ASSERT_EQ(mt.value().partitions.size(), 2u);
  EXPECT_EQ(mt.value().partitions[0].size(), 2u);
  EXPECT_EQ(mt.value().modulo, 4u);
  EXPECT_EQ(mt.value().home, (std::vector<uint32_t>{0, 1, 0, 1}));
}

// --- resharding frames (fence/install/cutover/retire ops, acks and
// the fenced-payload snapshot pair) ---

ReshardPayload fuzz_reshard_payload() {
  ReshardPayload p;
  ImplInfo info;
  info.type = "enc";
  info.name = "enc/aes";
  info.resources = {{"pool.a", 1}};
  p.state.impls = {info};
  p.state.pools = {{"pool.a", 8, 2}};
  p.state.allocs = {{(uint64_t{2} << DiscoveryState::kAllocNamespaceShift) | 3,
                     {{"pool.a", 2}}}};
  p.state.next_alloc = 4;
  p.state.watch_seq = 17;
  p.dedup = {{"client-7#5", to_bytes("cached")}};
  p.applied = {"p0-r0#3"};
  p.event_log.events = {fuzz_event(16, "enc/a"), fuzz_event(17, "enc/aes")};
  p.event_log.pruned_through = 15;
  p.event_log.observed_through = 17;
  return p;
}

ReshardOp fuzz_reshard_op(ReshardPhase phase) {
  ReshardOp op;
  op.phase = phase;
  op.epoch = 3;
  op.modulo = 4;
  op.range = 2;
  op.from_partition = 0;
  op.to_partition = 2;
  op.dst_rpc = {"mem://ctrl-p2-r0:1", "mem://ctrl-p2-r1:1"};
  op.reply_uri = "mem://ctrl-reshard-coord:0";
  op.cmd_id = 9;
  if (phase == ReshardPhase::install)
    op.payload = encode_reshard_payload(fuzz_reshard_payload());
  return op;
}

TEST(ReshardFrameFuzz, OpAndPayloadPrefixesAllFail) {
  for (ReshardPhase ph : {ReshardPhase::fence, ReshardPhase::install,
                          ReshardPhase::cutover, ReshardPhase::retire}) {
    Bytes full = encode_reshard_op(fuzz_reshard_op(ph));
    for (size_t n = 0; n < full.size(); n++)
      EXPECT_FALSE(decode_reshard_op(BytesView(full.data(), n)).ok())
          << "phase " << int(ph) << " prefix " << n;
    auto rt = decode_reshard_op(full);
    ASSERT_TRUE(rt.ok()) << int(ph);
    EXPECT_EQ(rt.value().phase, ph);
    EXPECT_EQ(rt.value().range, 2u);
    EXPECT_EQ(rt.value().dst_rpc.size(), 2u);
  }

  Bytes pf = encode_reshard_payload(fuzz_reshard_payload());
  for (size_t n = 0; n < pf.size(); n++)
    EXPECT_FALSE(decode_reshard_payload(BytesView(pf.data(), n)).ok()) << n;
  auto pt = decode_reshard_payload(pf);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value().state.impls.size(), 1u);
  EXPECT_EQ(pt.value().dedup.size(), 1u);
  EXPECT_EQ(pt.value().event_log.events.size(), 2u);
}

TEST(ReshardFrameFuzz, AckAndSnapshotFramePrefixesAllFail) {
  ReshardAck ack;
  ack.cmd_id = 42;
  ack.from = "p0-r1";
  Bytes af = encode_reshard_ack(ack);
  ASSERT_EQ(peek_ctrl_frame(af).value(), CtrlFrameKind::reshard_ack);
  for (size_t n = 0; n < af.size(); n++)
    EXPECT_FALSE(decode_reshard_ack(BytesView(af.data(), n)).ok()) << n;
  auto at = decode_reshard_ack(af);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at.value().cmd_id, 42u);
  EXPECT_EQ(at.value().from, "p0-r1");

  ReshardSnapshotReq req;
  req.modulo = 4;
  req.range = 2;
  req.reply_uri = "mem://coord:0";
  Bytes rf = encode_reshard_snapshot_req(req);
  ASSERT_EQ(peek_ctrl_frame(rf).value(), CtrlFrameKind::reshard_snapshot_req);
  for (size_t n = 0; n < rf.size(); n++)
    EXPECT_FALSE(decode_reshard_snapshot_req(BytesView(rf.data(), n)).ok())
        << n;
  EXPECT_TRUE(decode_reshard_snapshot_req(rf).ok());

  ReshardSnapshotRsp rsp;
  rsp.range = 2;
  rsp.from = "p0-r0";
  rsp.payload = encode_reshard_payload(fuzz_reshard_payload());
  Bytes sf = encode_reshard_snapshot_rsp(rsp);
  ASSERT_EQ(peek_ctrl_frame(sf).value(), CtrlFrameKind::reshard_snapshot_rsp);
  for (size_t n = 0; n < sf.size(); n++)
    EXPECT_FALSE(decode_reshard_snapshot_rsp(BytesView(sf.data(), n)).ok())
        << n;
  auto st = decode_reshard_snapshot_rsp(sf);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(decode_reshard_payload(st.value().payload).ok());
}

// Bit flips across an install op (the frame whose payload gets applied
// wholesale at a sequenced point): whatever decode admits must survive
// the apply path — payload decode, range extraction, ingestion into a
// live state — without crashing. A flip may deny a migration step
// (clean decode error, coordinator retries), never corrupt the apply.
class ReshardBitflipFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReshardBitflipFuzz, InstallOpBitflipsNeverCrashTheApplyPath) {
  Rng rng(GetParam());
  Bytes good = encode_reshard_op(fuzz_reshard_op(ReshardPhase::install));
  for (int iter = 0; iter < 400; iter++) {
    Bytes bad = good;
    size_t byte = rng.next_below(bad.size());
    bad[byte] ^= static_cast<uint8_t>(1u << rng.next_below(8));
    auto op = decode_reshard_op(bad);
    if (!op.ok()) continue;
    auto pay = decode_reshard_payload(op.value().payload);
    if (!pay.ok()) continue;  // clean reject: the install is refused
    DiscoveryState state;
    state.ingest_snapshot(pay.value().state, /*emit_events=*/true);
    (void)state.extract_range(op.value().modulo ? op.value().modulo : 1,
                              op.value().range);
    (void)state.export_snapshot();
  }
  // A truncated-then-patched payload length can never smuggle a partial
  // structure: the whole-frame decode round-trips exactly.
  auto rt = decode_reshard_op(good);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(encode_reshard_op(rt.value()), good);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReshardBitflipFuzz,
                         ::testing::Values(17, 170, 1700));

// Bit flips across the snapshot response: either a clean decode error
// or a structurally complete decode — never a crash, and never success
// on a mangled kind byte.
class CtrlBitflipFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CtrlBitflipFuzz, SnapshotRspBitflipsNeverCrash) {
  Rng rng(GetParam());
  Bytes good = encode_snapshot_rsp(fuzz_snapshot_rsp());
  for (int iter = 0; iter < 400; iter++) {
    Bytes bad = good;
    size_t byte = rng.next_below(bad.size());
    bad[byte] ^= static_cast<uint8_t>(1u << rng.next_below(8));
    (void)decode_snapshot_rsp(bad);
    (void)peek_ctrl_frame(bad);
    // The member-loop demux path: a mangled frame must fall out of all
    // three parsers without crashing.
    (void)parse_sequenced_mcast(bad);
    (void)parse_mcast_fetch_miss(bad);
  }
  // A wrong kind byte can never decode as a snapshot.
  Bytes wrong_kind = good;
  wrong_kind[2] = static_cast<uint8_t>(CtrlFrameKind::view_change);
  EXPECT_FALSE(decode_snapshot_rsp(wrong_kind).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrlBitflipFuzz,
                         ::testing::Values(101, 202, 303));

// Bit flips in a KV request must be caught by the shard-field integrity
// check or the structural checks whenever they alter semantics.
class BitflipFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitflipFuzz, KvRequestBitflipsNeverCrash) {
  Rng rng(GetParam());
  KvRequest req;
  req.op = KvOp::get;
  req.id = 7;
  req.key = "user000000000001";
  Bytes good = encode_kv_request(req);
  for (int iter = 0; iter < 300; iter++) {
    Bytes bad = good;
    size_t byte = rng.next_below(bad.size());
    bad[byte] ^= static_cast<uint8_t>(1u << rng.next_below(8));
    auto r = decode_kv_request(bad);
    if (r.ok()) {
      // A flip that decodes must not have silently changed the key
      // while keeping the shard field consistent.
      EXPECT_EQ(r.value().key, req.key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitflipFuzz, ::testing::Values(11, 22, 33));

// A representative synthesized program: match + parse + dedup + strip
// ahead of a hash steer over a multi-entry table — every encoder branch
// (tables, varint args, initial_seq, fingerprint) is exercised.
ProgramIR fuzz_program_ir() {
  ProgramIR ir;
  ir.slot = SlotKind::match_action;
  ir.vip = "sim://fuzz-vip:80";
  ir.table = {"sim://b:1", "sim://b:2", "sim://b:3"};
  ir.instrs = {{IrOp::match_magic, 'S', '1'},
               {IrOp::skip_varint_body, 0, 0},
               {IrOp::hash_steer, 2, 8}};
  ir.source_fingerprint = 0x1234abcdULL;
  return ir;
}

TEST(TruncationFuzz, SynthProgramPrefixes) {
  Bytes full = encode_program(fuzz_program_ir());
  for (size_t n = 0; n < full.size(); n++)
    EXPECT_FALSE(decode_program(BytesView(full.data(), n)).ok()) << n;
  EXPECT_TRUE(decode_program(BytesView(full)).ok());
}

// Bit flips in a program frame: the decoder either rejects cleanly or
// yields a program that still passes structural validation and compiles
// to something that can only forward to an address that was in some
// table — a corrupt frame can deny an offload, never mis-program the
// switch. Exercises the deploy path (control plane ships programs in
// encoded form, DESIGN.md §11).
class ProgramBitflipFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProgramBitflipFuzz, ProgramBitflipsNeverCrashOrMisprogram) {
  Rng rng(GetParam());
  Bytes good = encode_program(fuzz_program_ir());
  Bytes sample = random_bytes(rng, 64);
  for (int iter = 0; iter < 400; iter++) {
    Bytes bad = good;
    size_t byte = rng.next_below(bad.size());
    bad[byte] ^= static_cast<uint8_t>(1u << rng.next_below(8));
    auto r = decode_program(bad);
    if (!r.ok()) continue;
    // decode re-validates internally: anything it admits must be a
    // structurally sound program...
    ASSERT_TRUE(validate_program(r.value()).ok())
        << "decode admitted an invalid program: " << to_string(r.value());
    // ...and installable ones must execute without crashing (a flipped
    // table address may still fail compilation — that is a clean
    // install-time error, not a hazard).
    auto prog = CompiledProgram::compile(r.value());
    if (!prog.ok()) continue;
    auto act = prog.value()->action();
    (void)act(BytesView(sample));
    (void)act(BytesView(good));  // magic-shaped input through the parser
    (void)act(BytesView());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramBitflipFuzz,
                         ::testing::Values(7, 77, 777));

// A live listener bombarded with garbage keeps accepting and serving.
TEST(AdversarialListener, SurvivesGarbageAndKeepsServing) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto listener = srv_rt->endpoint("victim", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 700))
                      .value();

  auto attacker = world.mem->bind(Addr::mem("attacker", 0)).value();
  Rng rng(99);
  for (int i = 0; i < 300; i++) {
    Bytes junk = random_bytes(rng, 128);
    ASSERT_TRUE(attacker->send_to(listener->addr(), junk).ok());
  }
  // Valid-magic frames with bogus kinds/tokens/payloads.
  for (int i = 0; i < 100; i++) {
    Bytes frame = encode_frame(static_cast<MsgKind>(1 + rng.next_below(5)),
                               rng.next_u64(), random_bytes(rng, 64));
    ASSERT_TRUE(attacker->send_to(listener->addr(), frame).ok());
  }

  // Still serves real clients.
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)));
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn.value()->send(Msg::of("still alive")).ok());
  EXPECT_EQ(srv_conn->recv(Deadline::after(seconds(5))).value().payload_str(),
            "still alive");
}

// Data frames with unknown tokens (stale/forged) are dropped without
// disturbing an established connection.
TEST(AdversarialListener, ForgedTokensIgnored) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto listener = srv_rt->endpoint("victim", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h1", 701))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();

  auto attacker = world.mem->bind(Addr::mem("attacker", 0)).value();
  for (uint64_t forged = 100; forged < 150; forged++) {
    Bytes frame = encode_frame(MsgKind::data, forged, to_bytes("evil"));
    ASSERT_TRUE(attacker->send_to(listener->addr(), frame).ok());
  }
  // A forged close for a token that doesn't exist is also harmless.
  ASSERT_TRUE(attacker
                  ->send_to(listener->addr(),
                            encode_frame(MsgKind::close, 9999, {}))
                  .ok());

  ASSERT_TRUE(conn->send(Msg::of("legit")).ok());
  auto got = srv_conn->recv(Deadline::after(seconds(5)));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().payload_str(), "legit");
  // No forged payload leaked into the stream.
  EXPECT_FALSE(srv_conn->recv(Deadline::after(ms(100))).ok());
}

// Double close from either side, in any order, is safe.
TEST(CloseSemantics, DoubleAndCrossedClosesAreIdempotent) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h1");
  auto cli_rt = world.runtime("h2");
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("reliable")))
                      .value()
                      .listen(Addr::mem("h1", 702))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv_conn = listener->accept(Deadline::after(seconds(5))).value();
  conn->close();
  conn->close();
  srv_conn->close();
  srv_conn->close();
  listener->close();
  listener->close();
  EXPECT_FALSE(conn->send(Msg::of("x")).ok());
}

// Closing the listener while a client is mid-connect doesn't hang the
// client: it times out or fails cleanly.
TEST(CloseSemantics, ListenerCloseDuringConnect) {
  auto world = TestWorld::make();
  RuntimeConfig cfg;
  cfg.host_id = "h2";
  cfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h2");
  cfg.discovery = world.discovery;
  cfg.handshake_timeout = ms(100);
  cfg.handshake_retries = 2;
  auto cli_rt = Runtime::create(std::move(cfg)).value();

  auto srv_rt = world.runtime("h1");
  auto listener = srv_rt->endpoint("srv", ChunnelDag::empty())
                      .value()
                      .listen(Addr::mem("h1", 703))
                      .value();
  Addr addr = listener->addr();
  listener->close();  // gone before the client dials

  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(addr, Deadline::after(seconds(5)));
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::connection_failed);
}

}  // namespace
}  // namespace bertha
