// Tests for the application substrates: KV store, KV wire protocol,
// request application, and the YCSB-style workload generator
// (distribution properties, determinism, workload mixes).
#include <gtest/gtest.h>

#include <map>

#include "apps/kvproto.hpp"
#include "apps/kvserver.hpp"
#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"
#include "util/hash.hpp"

namespace bertha {
namespace {

// --- KvStore ---

TEST(KvStoreTest, PutGetEraseSize) {
  KvStore kv;
  EXPECT_EQ(kv.size(), 0u);
  kv.put("a", "1");
  kv.put("b", "2");
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.get("a").value_or(""), "1");
  EXPECT_FALSE(kv.get("missing").has_value());
  kv.put("a", "updated");
  EXPECT_EQ(kv.get("a").value_or(""), "updated");
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_EQ(kv.size(), 1u);
}

// --- KV protocol ---

TEST(KvProtoTest, RequestRoundTrip) {
  KvRequest req;
  req.op = KvOp::put;
  req.id = 0xdeadbeef12345678ULL;
  req.key = "user000000000042";
  req.value = std::string(100, 'v');
  Bytes b = encode_kv_request(req);
  auto got = decode_kv_request(b);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), req);
}

TEST(KvProtoTest, ShardFieldLivesAtFixedOffset) {
  // The paper's Listing 4 hashes payload[10..14]; our encoding puts
  // fnv1a32(key) exactly there, independent of key/value lengths.
  for (const auto& [key, value] :
       std::map<std::string, std::string>{{"k", ""},
                                          {"a-much-longer-key", "payload"},
                                          {"user000000000042", "x"}}) {
    KvRequest req;
    req.op = KvOp::get;
    req.id = 7;
    req.key = key;
    req.value = value;
    Bytes b = encode_kv_request(req);
    ASSERT_GE(b.size(), kKvShardFieldOffset + kKvShardFieldLen);
    EXPECT_EQ(get_u32_le(b, kKvShardFieldOffset),
              static_cast<uint32_t>(fnv1a64(key)));
  }
}

TEST(KvProtoTest, TamperedShardFieldRejected) {
  KvRequest req;
  req.op = KvOp::get;
  req.id = 1;
  req.key = "k";
  Bytes b = encode_kv_request(req);
  b[kKvShardFieldOffset] ^= 0xff;
  EXPECT_FALSE(decode_kv_request(b).ok());
}

TEST(KvProtoTest, ResponseRoundTrip) {
  KvResponse rsp;
  rsp.status = KvStatus::not_found;
  rsp.id = 99;
  rsp.value = "val";
  auto got = decode_kv_response(encode_kv_response(rsp));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), rsp);
}

TEST(KvProtoTest, MalformedRejected) {
  EXPECT_FALSE(decode_kv_request(to_bytes("X")).ok());
  EXPECT_FALSE(decode_kv_request(Bytes(20, 0)).ok());
  EXPECT_FALSE(decode_kv_response(to_bytes("K")).ok());
  // Trailing junk.
  KvRequest req;
  req.key = "k";
  Bytes b = encode_kv_request(req);
  b.push_back(0);
  EXPECT_FALSE(decode_kv_request(b).ok());
}

TEST(ApplyRequestTest, AllOps) {
  KvStore kv;
  KvRequest put{KvOp::put, 1, "k", "v"};
  EXPECT_EQ(apply_kv_request(kv, put).status, KvStatus::ok);
  KvRequest get{KvOp::get, 2, "k", ""};
  auto r = apply_kv_request(kv, get);
  EXPECT_EQ(r.status, KvStatus::ok);
  EXPECT_EQ(r.value, "v");
  EXPECT_EQ(r.id, 2u);
  KvRequest upd{KvOp::update, 3, "k", "v2"};
  EXPECT_EQ(apply_kv_request(kv, upd).status, KvStatus::ok);
  EXPECT_EQ(kv.get("k").value_or(""), "v2");
  KvRequest del{KvOp::del, 4, "k", ""};
  EXPECT_EQ(apply_kv_request(kv, del).status, KvStatus::ok);
  EXPECT_EQ(apply_kv_request(kv, del).status, KvStatus::not_found);
  KvRequest miss{KvOp::get, 5, "k", ""};
  EXPECT_EQ(apply_kv_request(kv, miss).status, KvStatus::not_found);
}

// --- YCSB ---

TEST(YcsbTest, KeysAreWellFormedAndDistinct) {
  std::set<std::string> keys;
  for (uint64_t i = 0; i < 1000; i++) {
    std::string k = YcsbGenerator::key_for(i);
    EXPECT_EQ(k.size(), 16u);
    EXPECT_EQ(k.substr(0, 4), "user");
    keys.insert(k);
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(YcsbTest, DeterministicUnderSeed) {
  YcsbConfig cfg;
  cfg.seed = 7;
  YcsbGenerator a(cfg), b(cfg);
  for (int i = 0; i < 100; i++) {
    KvRequest ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.op, rb.op);
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.value, rb.value);
  }
}

TEST(YcsbTest, LoadPhaseCoversAllRecords) {
  YcsbConfig cfg;
  cfg.record_count = 50;
  YcsbGenerator gen(cfg);
  std::set<std::string> keys;
  for (uint64_t i = 0; i < cfg.record_count; i++) {
    KvRequest req = gen.load_request(i);
    EXPECT_EQ(req.op, KvOp::put);
    EXPECT_EQ(req.value.size(), cfg.value_size);
    keys.insert(req.key);
  }
  EXPECT_EQ(keys.size(), 50u);
}

struct MixCase {
  YcsbWorkload workload;
  double expect_reads;
  double tolerance;
};

class YcsbMixTest : public ::testing::TestWithParam<MixCase> {};

TEST_P(YcsbMixTest, ReadFractionMatchesSpec) {
  YcsbConfig cfg;
  cfg.workload = GetParam().workload;
  cfg.record_count = 100;
  cfg.seed = 11;
  YcsbGenerator gen(cfg);
  int reads = 0, total = 10000;
  for (int i = 0; i < total; i++)
    if (gen.next().op == KvOp::get) reads++;
  EXPECT_NEAR(reads / static_cast<double>(total), GetParam().expect_reads,
              GetParam().tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, YcsbMixTest,
    ::testing::Values(MixCase{YcsbWorkload::a, 0.50, 0.02},
                      MixCase{YcsbWorkload::b, 0.95, 0.01},
                      MixCase{YcsbWorkload::c, 1.00, 0.0001},
                      MixCase{YcsbWorkload::f, 0.50, 0.02}));

TEST(YcsbTest, ZipfianIsSkewedUniformIsNot) {
  auto top_share = [](KeyDistribution dist) {
    YcsbConfig cfg;
    cfg.distribution = dist;
    cfg.workload = YcsbWorkload::c;
    cfg.record_count = 1000;
    cfg.seed = 13;
    YcsbGenerator gen(cfg);
    std::map<std::string, int> counts;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; i++) counts[gen.next().key]++;
    std::vector<int> sorted;
    for (auto& [k, c] : counts) sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    int top10 = 0;
    for (size_t i = 0; i < 10 && i < sorted.size(); i++) top10 += sorted[i];
    return top10 / static_cast<double>(kN);
  };
  double zipf = top_share(KeyDistribution::zipfian);
  double uniform = top_share(KeyDistribution::uniform);
  EXPECT_GT(zipf, 0.25);     // zipf(0.99): top-10 of 1000 keys dominate
  EXPECT_LT(uniform, 0.05);  // uniform: top-10 get ~1%
}

TEST(YcsbTest, ZipfianSamplesInRange) {
  ZipfianGenerator z(100, 0.99, Rng(17));
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.next(), 100u);
}

TEST(YcsbTest, LatestDistributionPrefersNewRecords) {
  YcsbConfig cfg;
  cfg.workload = YcsbWorkload::d;
  cfg.distribution = KeyDistribution::latest;
  cfg.record_count = 1000;
  cfg.seed = 19;
  YcsbGenerator gen(cfg);
  // After some inserts, reads should frequently hit the newest records.
  int hits_new = 0, reads = 0;
  std::set<std::string> recent;
  for (int i = 0; i < 5000; i++) {
    KvRequest req = gen.next();
    if (req.op == KvOp::put) {
      recent.insert(req.key);
    } else {
      reads++;
      // "New" = one of the ~5% inserted keys or the very tail of the
      // preload; approximate via the recent set only.
      if (recent.count(req.key)) hits_new++;
    }
  }
  ASSERT_GT(reads, 0);
  // Inserted records are ~5% of the keyspace but get a far larger read
  // share under `latest`.
  EXPECT_GT(hits_new / static_cast<double>(reads), 0.15);
}

TEST(YcsbTest, ScanBatchesAreConsecutive) {
  YcsbConfig cfg;
  cfg.workload = YcsbWorkload::e;
  cfg.record_count = 500;
  cfg.max_scan_len = 8;
  cfg.seed = 23;
  YcsbGenerator gen(cfg);
  int scans_seen = 0;
  for (int i = 0; i < 200 && scans_seen < 20; i++) {
    auto batch = gen.next_batch();
    ASSERT_GE(batch.size(), 1u);
    ASSERT_LE(batch.size(), 8u);
    if (batch.size() > 1) {
      scans_seen++;
      for (const auto& req : batch) EXPECT_EQ(req.op, KvOp::get);
    }
  }
  EXPECT_GT(scans_seen, 0);
}

TEST(YcsbTest, RequestIdsAreUnique) {
  YcsbConfig cfg;
  YcsbGenerator gen(cfg);
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; i++) ids.insert(gen.next().id);
  EXPECT_EQ(ids.size(), 1000u);
}

}  // namespace
}  // namespace bertha

#include "apps/kvclient.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

using testing_support::TestWorld;

struct KvClientFixture : ::testing::Test {
  void start_service(double loss = 0.0, uint64_t seed = 1) {
    world = TestWorld::make(seed);
    if (loss > 0) {
      MemNetwork::Config lossy;
      lossy.drop_rate = loss;
      lossy.seed = seed;
      world.mem = MemNetwork::create(lossy);
    }
    srv_rt = world.runtime("srv");
    cli_rt = world.runtime("cli");
    backend = KvBackend::start(srv_rt->transports(), Addr::mem("srv", 0),
                               "srv", 3)
                  .value();
    ChunnelArgs args;
    args.set("shards", format_addr_list(backend->shard_addrs()));
    args.set_u64("field_offset", kKvShardFieldOffset);
    args.set_u64("field_len", kKvShardFieldLen);
    listener = srv_rt->endpoint("kv", wrap(ChunnelSpec("shard", args)))
                   .value()
                   .listen(Addr::mem("srv", 0))
                   .value();
  }

  TestWorld world;
  std::shared_ptr<Runtime> srv_rt, cli_rt;
  std::unique_ptr<KvBackend> backend;
  std::unique_ptr<Listener> listener;
};

TEST_F(KvClientFixture, BasicOperations) {
  start_service();
  auto client = KvClient::connect(cli_rt, listener->addr(),
                                  Deadline::after(seconds(5)))
                    .value();
  EXPECT_FALSE(client->get("missing").ok());
  ASSERT_TRUE(client->put("k1", "v1").ok());
  EXPECT_EQ(client->get("k1").value(), "v1");
  ASSERT_TRUE(client->put("k1", "v2").ok());
  EXPECT_EQ(client->get("k1").value(), "v2");
  ASSERT_TRUE(client->erase("k1").ok());
  EXPECT_FALSE(client->get("k1").ok());
  EXPECT_FALSE(client->erase("k1").ok());
  EXPECT_EQ(client->retransmissions(), 0u);
  client->close();
  backend->stop();
}

TEST_F(KvClientFixture, RetriesThroughLoss) {
  start_service(/*loss=*/0.3, /*seed=*/5);
  KvClient::Options opts;
  opts.rpc_timeout = ms(50);
  opts.retries = 20;
  auto client = KvClient::connect(cli_rt, listener->addr(), opts,
                                  Deadline::after(seconds(30)))
                    .value();
  for (int i = 0; i < 20; i++) {
    std::string k = "key-" + std::to_string(i);
    ASSERT_TRUE(client->put(k, "v").ok()) << k;
    EXPECT_EQ(client->get(k).value(), "v") << k;
  }
  // 30% loss over 40+ RPCs: retransmissions must have happened, and
  // idempotent retry hid them all.
  EXPECT_GT(client->retransmissions(), 0u);
  client->close();
  backend->stop();
}

TEST_F(KvClientFixture, RejectsBadOptions) {
  start_service();
  KvClient::Options bad;
  bad.retries = -1;
  EXPECT_FALSE(
      KvClient::connect(cli_rt, listener->addr(), bad, Deadline::never()).ok());
  backend->stop();
}

TEST_F(KvClientFixture, FailsAfterBackendGone) {
  start_service();
  auto client = KvClient::connect(cli_rt, listener->addr(),
                                  KvClient::Options{ms(30), 1},
                                  Deadline::after(seconds(5)))
                    .value();
  ASSERT_TRUE(client->put("k", "v").ok());
  backend->stop();  // shards gone; requests now vanish
  auto r = client->get("k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unavailable);
  client->close();
}

}  // namespace
}  // namespace bertha
