// The sharded, replicated discovery control plane (src/control/):
// partition routing, sequenced apply, replica convergence, exactly-once
// mutations across replicas, watch seq-resume across failover, lease
// survival across failover, and the runtime bootstrap path.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/rsm.hpp"
#include "chunnels/shard.hpp"
#include "control/cluster.hpp"
#include "core/wire.hpp"
#include "net/fault.hpp"
#include "util/clock.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

ImplInfo info_of(const std::string& type, const std::string& name,
                 std::vector<ResourceReq> resources = {}) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = 1;
  i.resources = std::move(resources);
  return i;
}

BytesView key_of(const std::string& s) {
  return BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::shared_ptr<DefaultTransportFactory> mem_factory(
    const std::shared_ptr<MemNetwork>& net, const std::string& host) {
  return std::make_shared<DefaultTransportFactory>(net, nullptr, host);
}

// Finds two keys (prefix0..prefixN) hashing to different partitions.
std::pair<std::string, std::string> split_keys(const PartitionMap& pm,
                                               const std::string& prefix) {
  std::string first = prefix + "0";
  for (int i = 1; i < 64; i++) {
    std::string k = prefix + std::to_string(i);
    if (pm.index_for_type(k) != pm.index_for_type(first)) return {first, k};
  }
  ADD_FAILURE() << "no split key found for " << prefix;
  return {first, first};
}

// --- PartitionMap ---

TEST(PartitionMapTest, AgreesWithShardHashAndRoutesOps) {
  PartitionMap pm(4);
  for (const std::string t : {"offload", "reliable", "shard", "ordered_mcast",
                              "serialize", "pool.hw"}) {
    EXPECT_EQ(pm.index_for_type(t), shard_pick(key_of(t), 4)) << t;
    EXPECT_EQ(pm.index_for_pool(t), pm.index_for_type(t)) << t;
    EXPECT_LT(pm.index_for_type(t), 4u);
  }
  // Single partition: everything maps to 0 (and shard_pick agrees).
  PartitionMap one(1);
  EXPECT_EQ(one.index_for_type("anything"), 0u);

  // Allocation ids carry their partition in the high bits.
  uint64_t id = (uint64_t{3} << DiscoveryState::kAllocNamespaceShift) | 17;
  EXPECT_EQ(PartitionMap::index_for_alloc(id), 3u);

  DiscRequest reg;
  reg.op = DiscOp::register_impl;
  reg.entry = info_of("offload", "offload/hw");
  auto reg_idx = pm.index_for_request(reg);
  ASSERT_TRUE(reg_idx.ok());
  EXPECT_EQ(reg_idx.value(), pm.index_for_type("offload"));

  // A multi-pool acquire is routable only when every pool co-locates.
  auto [pa, pb] = split_keys(pm, "pool.split");
  DiscRequest acq;
  acq.op = DiscOp::acquire;
  acq.resources = {{pa, 1}, {pb, 1}};
  auto split = pm.index_for_request(acq);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.error().code, Errc::invalid_argument);
  acq.resources = {{pa, 1}, {pa, 2}};
  ASSERT_TRUE(pm.index_for_request(acq).ok());

  // Release routes by id namespace; out-of-range ids are rejected.
  DiscRequest rel;
  rel.op = DiscOp::release;
  rel.alloc_id = (uint64_t{9} << DiscoveryState::kAllocNamespaceShift) | 1;
  EXPECT_FALSE(pm.index_for_request(rel).ok());
}

// --- SequencedApplyWindow ---

TEST(SequencedApplyWindowTest, ReleasesInOrderAcrossGapsAndDuplicates) {
  SequencedApplyWindow w;
  auto seqs = [](const std::vector<std::pair<uint64_t, Bytes>>& v) {
    std::vector<uint64_t> out;
    for (const auto& [s, b] : v) out.push_back(s);
    return out;
  };

  EXPECT_EQ(seqs(w.offer(0, to_bytes("a"))), (std::vector<uint64_t>{0}));
  // Gap: 2 buffers behind missing 1.
  EXPECT_TRUE(w.offer(2, to_bytes("c")).empty());
  EXPECT_TRUE(w.has_gap());
  EXPECT_EQ(w.next_seq(), 1u);
  EXPECT_EQ(w.gap_end(), 2u);
  // Duplicates of buffered and already-released seqs are dropped.
  EXPECT_TRUE(w.offer(2, to_bytes("c-dup")).empty());
  EXPECT_TRUE(w.offer(0, to_bytes("a-dup")).empty());
  EXPECT_EQ(w.buffered(), 1u);
  // Filling the gap releases the whole run.
  EXPECT_EQ(seqs(w.offer(1, to_bytes("b"))), (std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(w.has_gap());

  // Abandoning a gap releases what is contiguous beyond it.
  EXPECT_TRUE(w.offer(5, to_bytes("f")).empty());
  EXPECT_TRUE(w.offer(6, to_bytes("g")).empty());
  EXPECT_EQ(seqs(w.skip_to(5)), (std::vector<uint64_t>{5, 6}));
  EXPECT_EQ(w.next_seq(), 7u);
  // skip_to never rewinds.
  EXPECT_TRUE(w.skip_to(3).empty());
  EXPECT_EQ(w.next_seq(), 7u);
}

// --- Cluster routing ---

TEST(ControlTest, ShardedClusterRoutesRegistrationsQueriesAndPools) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();

  const PartitionMap& pm = client->partition_map();
  auto [t0, t1] = split_keys(pm, "type");
  ASSERT_TRUE(client->register_impl(info_of(t0, t0 + "/x")).ok());
  ASSERT_TRUE(client->register_impl(info_of(t1, t1 + "/y")).ok());

  // Queries route back to the owning partition.
  auto q0 = client->query(t0);
  ASSERT_TRUE(q0.ok());
  ASSERT_EQ(q0.value().size(), 1u);
  EXPECT_EQ(q0.value()[0].name, t0 + "/x");
  ASSERT_TRUE(client->query(t1).ok());

  // And the entries physically live on exactly one partition's replicas.
  size_t p0 = pm.index_for_type(t0);
  EXPECT_EQ(cluster->replica(p0, 0)->state()->query(t0).value().size(), 1u);
  EXPECT_TRUE(cluster->replica(1 - p0, 0)->state()->query(t0).value().empty());

  // Pools: capacity, admission, and id-routed release.
  auto [pa, pb] = split_keys(pm, "pool.q");
  ASSERT_TRUE(client->set_pool(pa, 2).ok());
  ASSERT_TRUE(client->set_pool(pb, 2).ok());
  auto a = client->acquire({{pa, 1}});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(PartitionMap::index_for_alloc(a.value()), pm.index_for_pool(pa))
      << "alloc id not namespaced by its partition";
  auto b = client->acquire({{pb, 2}});
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());

  // Cross-partition admission is refused, not half-applied.
  auto cross = client->acquire({{pa, 1}, {pb, 1}});
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.error().code, Errc::invalid_argument);
  EXPECT_EQ(cluster->replica(pm.index_for_pool(pa), 0)->state()->pool_in_use(pa),
            1u);

  ASSERT_TRUE(client->release(a.value()).ok());
  ASSERT_TRUE(client->release(b.value()).ok());
  EXPECT_FALSE(
      client->release(uint64_t{9} << DiscoveryState::kAllocNamespaceShift)
          .ok());
  EXPECT_EQ(cluster->replica(pm.index_for_pool(pa), 0)->state()->pool_in_use(pa),
            0u);
}

TEST(ControlTest, EmptyFilterWatchFansInAllPartitions) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.server.coalesce_window = ms(2);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto obs = cluster->client("obs").value();
  auto writer = cluster->client("wr").value();

  auto w = obs->watch("").value();
  auto [t0, t1] = split_keys(obs->partition_map(), "fan");
  ASSERT_TRUE(writer->register_impl(info_of(t0, t0 + "/a")).ok());
  ASSERT_TRUE(writer->register_impl(info_of(t1, t1 + "/b")).ok());

  std::set<std::string> seen;
  uint64_t last_seq = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (seen.size() < 2 && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    // The fan-in re-stamps a single strictly-increasing seq domain.
    EXPECT_GT(ev.value().seq, last_seq);
    last_seq = ev.value().seq;
    seen.insert(ev.value().name);
  }
  EXPECT_TRUE(seen.count(t0 + "/a"));
  EXPECT_TRUE(seen.count(t1 + "/b"));
}

// --- Replication ---

TEST(ControlTest, ReplicasApplyIdenticallyAndConverge) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();

  ASSERT_TRUE(client->set_pool("pool.c", 4).ok());
  for (int i = 0; i < 8; i++)
    ASSERT_TRUE(
        client->register_impl(info_of("offload", "o" + std::to_string(i)))
            .ok());
  auto a = client->acquire({{"pool.c", 2}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(client->unregister_impl("offload", "o7").ok());

  // Every replica converges to the identical catalogue, pool accounting
  // AND watch seq (the invariant seq-resume failover rests on).
  auto converged = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    for (size_t r = 1; r < 3; r++) {
      auto [e, s] = cluster->replica(0, r)->state()->catalogue_snapshot();
      if (s != s0 || e.size() != e0.size()) return false;
      if (cluster->replica(0, r)->state()->pool_in_use("pool.c") != 2)
        return false;
    }
    return e0.size() == 7;
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!converged() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(converged()) << "replicas diverged";
  for (size_t r = 0; r < 3; r++) {
    EXPECT_EQ(cluster->replica(0, r)->state()->live_allocs(), 1u);
    EXPECT_EQ(cluster->replica(0, r)->gaps_skipped(), 0u);
  }
}

TEST(ControlTest, RetriedMutationLandingOnAnotherReplicaExecutesOnce) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();
  ASSERT_TRUE(client->set_pool("pool.d", 4).ok());

  // The failover-retry shape, driven at the protocol level: the same
  // idempotent mutation submitted to TWO different replicas (as a client
  // whose first response was lost would after rotating). The replicated
  // dedup cache must return the recorded response, not execute twice.
  DiscRequest req;
  req.op = DiscOp::acquire;
  req.resources = {{"pool.d", 1}};
  req.client_id = "retry-client";
  req.idem_key = 99;
  Bytes body = encode_request(req);

  auto raw = net->bind(Addr::mem("raw-cli", 0)).value();
  auto submit_to = [&](const Addr& server) -> uint64_t {
    EXPECT_TRUE(
        raw->send_to(server, encode_frame(MsgKind::discovery, 1, body)).ok());
    auto pkt = raw->recv(Deadline::after(seconds(5)));
    EXPECT_TRUE(pkt.ok());
    auto frame = decode_frame(pkt.value().payload);
    EXPECT_TRUE(frame.ok());
    auto rsp = decode_response(frame.value().payload);
    EXPECT_TRUE(rsp.ok() && rsp.value().success);
    return rsp.ok() ? rsp.value().alloc_id : 0;
  };
  uint64_t first = submit_to(cluster->partition_servers(0)[0]);
  uint64_t second = submit_to(cluster->partition_servers(0)[1]);
  EXPECT_EQ(first, second) << "retry re-executed instead of deduping";
  ASSERT_NE(first, 0u);

  uint64_t hits = 0;
  for (size_t r = 0; r < 3; r++)
    hits += cluster->replica(0, r)->replicated_dedup_hits();
  EXPECT_GE(hits, 1u);
  Deadline dl = Deadline::after(seconds(5));
  auto settled = [&] {
    for (size_t r = 0; r < 3; r++)
      if (cluster->replica(0, r)->state()->pool_in_use("pool.d") != 1)
        return false;
    return true;
  };
  while (!settled() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(settled()) << "duplicate execution leaked pool capacity";
}

// --- Failover ---

TEST(ControlTest, WatchStreamResumesAcrossReplicaFailoverWithoutSnapshot) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  auto stats = std::make_shared<FaultStats>();
  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(60);
  rpc.retries = 5;
  rpc.watch_failover_timeout = ms(150);  // >> keepalive
  rpc.stats = stats;
  auto obs = cluster->client("obs", rpc).value();
  auto writer = cluster->client("wr").value();

  auto w = obs->watch("offload").value();
  std::map<std::string, int> seen;
  uint64_t last_seq = 0;
  auto expect_events = [&](int upto) {
    Deadline dl = Deadline::after(seconds(10));
    while (static_cast<int>(seen.size()) < upto && !dl.expired()) {
      auto ev = w->next(Deadline::after(ms(100)));
      if (!ev.ok()) continue;
      EXPECT_GT(ev.value().seq, last_seq)
          << "replicated watch seq went backwards across failover";
      last_seq = ev.value().seq;
      seen[ev.value().name]++;
    }
    EXPECT_EQ(static_cast<int>(seen.size()), upto);
    for (const auto& [name, n] : seen)
      EXPECT_EQ(n, 1) << name << " duplicated";
  };

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "pre" + std::to_string(i)))
            .ok());
  expect_events(3);

  // Kill the replica pushing the observer's stream. The observer issues
  // no RPCs, so only the push-silence watchdog can notice.
  Addr active = obs->partition_client(0).active_server();
  const auto& servers = cluster->partition_servers(0);
  size_t victim = 0;
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(0, victim);

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "post" + std::to_string(i)))
            .ok());
  expect_events(6);
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(seen.count("pre" + std::to_string(i)));
    EXPECT_TRUE(seen.count("post" + std::to_string(i)));
  }

  EXPECT_GE(obs->server_failovers(), 1u) << "watchdog never rotated";
  EXPECT_GE(stats->watch_resubscribes.load(), 1u);
  // The resume was served from the new replica's replicated event log by
  // seq alone — never the snapshot fallback.
  EXPECT_EQ(stats->watch_snapshots.load(), 0u);
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_EQ(cluster->replica(0, r)->server().snapshots_served(), 0u);
    }
}

TEST(ControlTest, LeasesSurviveReplicaFailoverWithoutSpuriousExpiry) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(25);
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  // The observer needs the push-silence watchdog too: its stream may be
  // attached to the replica we kill.
  RemoteDiscovery::Options orpc;
  orpc.rpc_timeout = ms(60);
  orpc.retries = 5;
  orpc.watch_failover_timeout = ms(150);
  auto obs = cluster->client("obs", orpc).value();
  auto w = obs->watch("offload").value();

  RemoteDiscovery::Options wrpc;
  wrpc.rpc_timeout = ms(60);
  wrpc.retries = 5;
  wrpc.lease_ttl = ms(250);  // heartbeat every ~62ms
  auto writer = cluster->client("wr", wrpc).value();
  ASSERT_TRUE(writer->register_impl(info_of("offload", "leased/hw")).ok());

  // Wait for the registration to be visible.
  Deadline dl = Deadline::after(seconds(5));
  bool registered = false;
  while (!registered && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    registered = ev.ok() && ev.value().kind == WatchKind::impl_registered;
  }
  ASSERT_TRUE(registered);

  // Kill the replica the writer heartbeats into. The next heartbeat
  // times out, rotates, and lands on a live replica — replicated, so
  // every replica's lease table stays renewed and NO replica's sweep
  // reaps the owner.
  Addr active = writer->partition_client(0).active_server();
  const auto& servers = cluster->partition_servers(0);
  size_t victim = 0;
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(0, victim);

  // Watch for spurious expiry across several TTL windows (>> the one
  // sweep interval the failover is allowed to straddle).
  Deadline quiet = Deadline::after(ms(800));
  while (!quiet.expired()) {
    auto ev = w->try_next();
    if (ev && ev->kind == WatchKind::impl_unregistered)
      FAIL() << "lease expired spuriously during failover: " << ev->name;
    sleep_for(ms(10));
  }
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_EQ(cluster->replica(0, r)->state()->query("offload").value().size(),
                1u);
      EXPECT_EQ(cluster->replica(0, r)->state()->lease_count(), 1u);
    }

  // Now stop heartbeating (drop the writer): the lease must expire
  // exactly once, via the replicated sweep.
  writer.reset();
  dl = Deadline::after(seconds(5));
  int expiries = 0;
  while (!dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (ev.ok() && ev.value().kind == WatchKind::impl_unregistered &&
        ev.value().name == "leased/hw")
      expiries++;
  }
  EXPECT_EQ(expiries, 1);
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_TRUE(
          cluster->replica(0, r)->state()->query("offload").value().empty());
      EXPECT_EQ(cluster->replica(0, r)->state()->lease_count(), 0u);
    }
}

// --- Self-healing: catch-up, view change, gap-miss, membership ---

TEST(ControlRecoveryTest, RestartedReplicaCatchesUpFromPeerSnapshot) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  auto stats = std::make_shared<FaultStats>();
  RemoteDiscovery::Options orpc;
  orpc.rpc_timeout = ms(60);
  orpc.retries = 5;
  orpc.watch_failover_timeout = ms(150);
  orpc.stats = stats;
  auto obs = cluster->client("obs", orpc).value();
  auto w = obs->watch("offload").value();

  RemoteDiscovery::Options wrpc;
  wrpc.rpc_timeout = ms(60);
  wrpc.retries = 5;
  auto writer = cluster->client("wr", wrpc).value();
  ASSERT_TRUE(writer->set_pool("pool.r", 4).ok());
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "pre" + std::to_string(i)))
            .ok());
  auto alloc = writer->acquire({{"pool.r", 2}});
  ASSERT_TRUE(alloc.ok());

  // Kill one replica, mutate while it is down, then restart it: the
  // rejoin must come back through a peer snapshot + sequenced suffix,
  // not from an assumed-empty partition and not via bounded skips.
  cluster->kill_replica(0, 2);
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "post" + std::to_string(i)))
            .ok());
  ASSERT_TRUE(cluster->restart_replica(0, 2).ok());
  ASSERT_TRUE(cluster->replica(0, 2)->wait_ready(seconds(10)))
      << "restarted replica never installed a snapshot";

  auto converged = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    for (size_t r = 1; r < 3; r++) {
      auto [e, s] = cluster->replica(0, r)->state()->catalogue_snapshot();
      if (s != s0 || e.size() != e0.size()) return false;
      if (cluster->replica(0, r)->state()->pool_in_use("pool.r") != 2)
        return false;
    }
    return e0.size() == 10;
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!converged() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(converged()) << "restarted replica diverged";
  EXPECT_GE(cluster->replica(0, 2)->catchups(), 1u);
  EXPECT_EQ(cluster->replica(0, 2)->gaps_skipped(), 0u)
      << "catch-up must replace bounded skips";
  // The lease table transferred too: the writer's lease is live on the
  // restarted replica (not re-granted, not missing).
  EXPECT_EQ(cluster->replica(0, 2)->state()->lease_count(),
            cluster->replica(0, 0)->state()->lease_count());

  // The restarted replica can serve a seq-resumed watch stream: kill
  // the other two and push one more registration through it.
  cluster->kill_replica(0, 0);
  cluster->kill_replica(0, 1);
  ASSERT_TRUE(writer->register_impl(info_of("offload", "after/x")).ok());
  bool seen_after = false;
  dl = Deadline::after(seconds(10));
  uint64_t last_seq = 0;
  while (!seen_after && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    EXPECT_GT(ev.value().seq, last_seq) << "watch seq regressed";
    last_seq = ev.value().seq;
    seen_after = ev.value().name == "after/x";
  }
  EXPECT_TRUE(seen_after);
  // Resume came from the transferred event log by seq — no snapshot.
  EXPECT_EQ(stats->watch_snapshots.load(), 0u);
}

TEST(ControlRecoveryTest, SequencerKillTriggersViewChangeAndServiceResumes) {
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.sequencer_candidates = 2;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(15);
  cfg.replica.stats = stats;
  cfg.tuning.view_silence_timeout = ms(100);
  cfg.tuning.view_ack_timeout = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(250);
  rpc.retries = 6;
  auto client = cluster->client("c0", rpc).value();
  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        client->register_impl(info_of("offload", "pre" + std::to_string(i)))
            .ok());
  EXPECT_TRUE(cluster->sequencer_at(0, 1) != nullptr &&
              !cluster->sequencer_at(0, 1)->active())
      << "candidate 1 must start standing by";

  // Kill the active (view-0) sequencer: replicas detect silence, agree
  // on view 1, and the standby takes over at the agreed seq. A mutation
  // issued immediately afterwards must land within its retry budget.
  cluster->kill_sequencer(0, 0);
  Stopwatch sw;
  ASSERT_TRUE(client->register_impl(info_of("offload", "during/x")).ok());
  EXPECT_LT(sw.elapsed(), seconds(2)) << "view change took too long";

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        client->register_impl(info_of("offload", "post" + std::to_string(i)))
            .ok());

  auto converged = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    for (size_t r = 1; r < 3; r++) {
      auto [e, s] = cluster->replica(0, r)->state()->catalogue_snapshot();
      if (s != s0 || e.size() != e0.size()) return false;
    }
    return e0.size() == 7;
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!converged() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(converged()) << "replicas diverged across the view change";

  EXPECT_TRUE(cluster->sequencer_at(0, 1)->active());
  EXPECT_GE(cluster->sequencer_at(0, 1)->view(), 1u);
  for (size_t r = 0; r < 3; r++) {
    EXPECT_GE(cluster->replica(0, r)->current_view(), 1u);
    EXPECT_GE(cluster->replica(0, r)->view_changes(), 1u);
    EXPECT_EQ(cluster->replica(0, r)->gaps_skipped(), 0u);
  }
  EXPECT_GE(stats->view_changes.load(), 3u);  // ctrl.view_change counter

  // Exactly-once across the change: every registration exists once on
  // every replica (re-proposals were absorbed by the applied-ids set).
  for (size_t r = 0; r < 3; r++) {
    auto entries = cluster->replica(0, r)->state()->query("offload").value();
    std::set<std::string> names;
    for (const auto& e : entries) names.insert(e.name);
    EXPECT_EQ(names.size(), entries.size()) << "duplicate applies";
  }
}

TEST(ControlRecoveryTest, EvictedGapTriggersCatchupNotSkip) {
  auto net = MemNetwork::create();
  auto stats = std::make_shared<FaultStats>();
  // Tiny sequencer resend log: a replica that falls behind by more than
  // 4 seqs can no longer be healed by retransmission.
  FaultInjectingTransport* lossy = nullptr;
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = Duration::zero();  // only explicit ops
  cfg.replica.gap_timeout = ms(30);
  cfg.replica.stats = stats;
  cfg.tuning.sequencer_resend_log = 4;
  cfg.decorate = [&](TransportPtr t, const std::string& role) -> TransportPtr {
    if (role != "ctrl-p0-r2-member") return t;
    auto* ft = new FaultInjectingTransport(std::move(t),
                                           FaultInjectingTransport::Options{});
    lossy = ft;
    return TransportPtr(ft);
  };
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  ASSERT_NE(lossy, nullptr);

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(100);
  rpc.retries = 5;
  auto client = cluster->client("c0", rpc).value();
  ASSERT_TRUE(client->register_impl(info_of("offload", "seed/x")).ok());

  // Deafen r2, push far more ops than the resend log holds, then heal:
  // r2's fetch for the lost prefix comes back as a miss and must be
  // answered by a peer snapshot — never by a bounded skip.
  lossy->partition(/*tx=*/false, /*rx=*/true);
  for (int i = 0; i < 24; i++)
    ASSERT_TRUE(
        client->register_impl(info_of("offload", "o" + std::to_string(i)))
            .ok());
  lossy->partition(false, false);
  // One more sequenced op exposes the gap to r2.
  ASSERT_TRUE(client->register_impl(info_of("offload", "tail/x")).ok());

  auto converged = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    auto [e2, s2] = cluster->replica(0, 2)->state()->catalogue_snapshot();
    return s2 == s0 && e2.size() == e0.size() && e0.size() == 26;
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!converged() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(converged()) << "deafened replica never caught up";
  EXPECT_GE(cluster->replica(0, 2)->gap_misses(), 1u);
  EXPECT_GE(cluster->replica(0, 2)->catchups(), 1u);
  EXPECT_EQ(cluster->replica(0, 2)->gaps_skipped(), 0u)
      << "evicted range must heal via peer catch-up, not skip";
  EXPECT_GE(stats->gap_misses.load(), 1u);  // ctrl.gap_miss counter
  EXPECT_GE(stats->catchups.load(), 1u);    // ctrl.catchup counter
}

TEST(ControlRecoveryTest, TightenedWatchdogDetectsPushSilenceFaster) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  // Same failover threshold, two watchdog cadences: the control knob
  // under test. The slow client's poll period dominates its detection
  // latency; the fast client is bounded by threshold + one tick.
  auto make_obs = [&](const std::string& id, Duration watchdog) {
    RemoteDiscovery::Options rpc;
    rpc.rpc_timeout = ms(60);
    rpc.retries = 5;
    rpc.watch_failover_timeout = ms(120);
    rpc.watchdog_interval = watchdog;
    return cluster->client(id, rpc).value();
  };
  auto slow = make_obs("slow", ms(900));
  auto fast = make_obs("fast", ms(25));
  auto ws = slow->watch("offload").value();
  auto wf = fast->watch("offload").value();

  auto writer = cluster->client("wr").value();
  ASSERT_TRUE(writer->register_impl(info_of("offload", "w/x")).ok());
  auto wait_event = [](WatcherPtr& w) {
    auto ev = w->next(Deadline::after(seconds(5)));
    ASSERT_TRUE(ev.ok()) << "stream never started";
  };
  wait_event(ws);
  wait_event(wf);

  // Kill each observer's push source promptly after client creation so
  // the slow watchdog's first post-kill tick is most of its period away.
  std::set<size_t> victims;
  for (auto* obs : {slow.get(), fast.get()}) {
    Addr active = obs->partition_client(0).active_server();
    auto servers = cluster->partition_servers(0);
    for (size_t r = 0; r < servers.size(); r++)
      if (servers[r] == active) victims.insert(r);
  }
  ASSERT_LT(victims.size(), 3u) << "need one surviving replica";
  for (size_t v : victims) cluster->kill_replica(0, v);

  Stopwatch sw;
  Duration fast_detect = Duration::zero(), slow_detect = Duration::zero();
  Deadline dl = Deadline::after(seconds(5));
  while ((fast_detect == Duration::zero() ||
          slow_detect == Duration::zero()) &&
         !dl.expired()) {
    if (fast_detect == Duration::zero() && fast->server_failovers() >= 1)
      fast_detect = sw.elapsed();
    if (slow_detect == Duration::zero() && slow->server_failovers() >= 1)
      slow_detect = sw.elapsed();
    sleep_for(ms(5));
  }
  ASSERT_NE(fast_detect, Duration::zero()) << "fast watchdog never rotated";
  ASSERT_NE(slow_detect, Duration::zero()) << "slow watchdog never rotated";
  EXPECT_LT(fast_detect, slow_detect)
      << "tightened watchdog_interval must speed up detection";
}

TEST(ControlRecoveryTest, MembershipEpochAddsReplicaAndResteersClients) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 2;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(60);
  rpc.retries = 6;
  auto client = cluster->client("c0", rpc).value();
  ASSERT_TRUE(client->register_impl(info_of("offload", "m/x")).ok());

  // Epoch 1 is the boot config, adopted when the client was minted;
  // applying it again is a stale no-op.
  ClusterMembership m1 = cluster->membership();
  EXPECT_EQ(m1.epoch, 1u);
  EXPECT_EQ(client->partition_map().epoch(), 1u);
  auto stale = client->apply_membership(m1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, Errc::already_exists);

  // Grow the partition online: the joiner catches up from its peers and
  // the bumped epoch steers the client at three replicas.
  auto added = cluster->add_replica(0);
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  EXPECT_EQ(added.value(), 2u);
  ASSERT_TRUE(cluster->replica(0, 2)->wait_ready(seconds(10)));
  ClusterMembership m2 = cluster->membership();
  EXPECT_EQ(m2.epoch, 2u);
  EXPECT_EQ(m2.partitions[0].size(), 3u);
  ASSERT_TRUE(client->apply_membership(m2).ok());
  EXPECT_EQ(client->partition_client(0).server_count(), 3u);
  EXPECT_EQ(client->partition_map().replicas(0).size(), 3u);

  // Wait for the joiner to fully converge, then retire the two original
  // replicas: the client must keep answering from the added one.
  auto caught_up = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    auto [e2, s2] = cluster->replica(0, 2)->state()->catalogue_snapshot();
    return s2 == s0 && e2.size() == e0.size();
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!caught_up() && !dl.expired()) sleep_for(ms(10));
  ASSERT_TRUE(caught_up());
  EXPECT_GE(cluster->replica(0, 2)->catchups(), 1u);

  cluster->kill_replica(0, 0);
  cluster->kill_replica(0, 1);
  auto q = client->query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().size(), 1u);

  // Partition-count changes are legal (that is what online
  // repartitioning does), but the steering must stay sound: every home
  // entry names a partition and the modulo never regresses — bucket
  // identities, and with them alloc-id namespaces, must stay stable.
  ClusterMembership bad;
  bad.epoch = 99;
  bad.partitions = {m2.partitions[0], m2.partitions[0]};
  bad.modulo = 2;
  bad.home = {0, 2};  // names no partition
  EXPECT_FALSE(client->apply_membership(bad).ok());
  bad.home = {0, 1};  // a sound split shape adopts fine
  ASSERT_TRUE(client->apply_membership(bad).ok());
  EXPECT_EQ(client->partitions(), 2u);
  ClusterMembership shrunk;
  shrunk.epoch = 100;
  shrunk.partitions = {m2.partitions[0]};
  shrunk.modulo = 1;
  auto reg = client->apply_membership(shrunk);
  ASSERT_FALSE(reg.ok());
  EXPECT_EQ(reg.error().code, Errc::invalid_argument);
  EXPECT_EQ(client->partition_map().epoch(), 99u);
}

// --- Satellite: retry jitter decorrelation ---

TEST(ControlTest, BackoffSeedsDecorrelatePerClient) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  RemoteDiscovery::Options opts;  // backoff_seed = 0: derive from client id
  RemoteDiscovery a(net->bind(Addr::mem("a", 0)).value(), server.addr(), opts);
  RemoteDiscovery b(net->bind(Addr::mem("b", 0)).value(), server.addr(), opts);
  EXPECT_NE(a.backoff_seed(), 0u);
  EXPECT_NE(b.backoff_seed(), 0u);
  // Identical options, different clients, different retry schedules: a
  // fleet retrying into a recovering replica spreads out instead of
  // thundering in lockstep.
  EXPECT_NE(a.backoff_seed(), b.backoff_seed());

  RemoteDiscovery::Options pinned;
  pinned.backoff_seed = 42;  // tests that need reproducible backoff
  RemoteDiscovery c(net->bind(Addr::mem("c", 0)).value(), server.addr(),
                    pinned);
  EXPECT_EQ(c.backoff_seed(), 42u);
}

// --- Runtime bootstrap ---

TEST(ControlTest, RuntimeBootstrapsFailoverDiscoveryFromServerList) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 2;
  cfg.transports = mem_factory(net, "ctrl");
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RuntimeConfig rcfg;
  rcfg.host_id = "h-boot";
  rcfg.transports = mem_factory(net, "h-boot");
  rcfg.discovery_servers = cluster->partition_servers(0);
  rcfg.discovery_rpc.rpc_timeout = ms(60);
  rcfg.discovery_rpc.retries = 5;
  auto rt = Runtime::create(std::move(rcfg)).value();

  ASSERT_TRUE(rt->discovery().register_impl(info_of("offload", "boot/x")).ok());
  ASSERT_EQ(rt->discovery().query("offload").value().size(), 1u);

  // Kill the active replica: the runtime's discovery handle rotates and
  // keeps answering.
  auto remote =
      std::dynamic_pointer_cast<RemoteDiscovery>(rt->config().discovery);
  ASSERT_NE(remote, nullptr);
  const auto& servers = cluster->partition_servers(0);
  size_t victim = remote->active_server() == servers[0] ? 0 : 1;
  cluster->kill_replica(0, victim);

  auto q = rt->discovery().query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().size(), 1u);
  EXPECT_GE(remote->server_failovers(), 1u);
}

}  // namespace
}  // namespace bertha
