// The sharded, replicated discovery control plane (src/control/):
// partition routing, sequenced apply, replica convergence, exactly-once
// mutations across replicas, watch seq-resume across failover, lease
// survival across failover, and the runtime bootstrap path.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/rsm.hpp"
#include "chunnels/shard.hpp"
#include "control/cluster.hpp"
#include "core/wire.hpp"
#include "test_helpers.hpp"

namespace bertha {
namespace {

ImplInfo info_of(const std::string& type, const std::string& name,
                 std::vector<ResourceReq> resources = {}) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = 1;
  i.resources = std::move(resources);
  return i;
}

BytesView key_of(const std::string& s) {
  return BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::shared_ptr<DefaultTransportFactory> mem_factory(
    const std::shared_ptr<MemNetwork>& net, const std::string& host) {
  return std::make_shared<DefaultTransportFactory>(net, nullptr, host);
}

// Finds two keys (prefix0..prefixN) hashing to different partitions.
std::pair<std::string, std::string> split_keys(const PartitionMap& pm,
                                               const std::string& prefix) {
  std::string first = prefix + "0";
  for (int i = 1; i < 64; i++) {
    std::string k = prefix + std::to_string(i);
    if (pm.index_for_type(k) != pm.index_for_type(first)) return {first, k};
  }
  ADD_FAILURE() << "no split key found for " << prefix;
  return {first, first};
}

// --- PartitionMap ---

TEST(PartitionMapTest, AgreesWithShardHashAndRoutesOps) {
  PartitionMap pm(4);
  for (const std::string t : {"offload", "reliable", "shard", "ordered_mcast",
                              "serialize", "pool.hw"}) {
    EXPECT_EQ(pm.index_for_type(t), shard_pick(key_of(t), 4)) << t;
    EXPECT_EQ(pm.index_for_pool(t), pm.index_for_type(t)) << t;
    EXPECT_LT(pm.index_for_type(t), 4u);
  }
  // Single partition: everything maps to 0 (and shard_pick agrees).
  PartitionMap one(1);
  EXPECT_EQ(one.index_for_type("anything"), 0u);

  // Allocation ids carry their partition in the high bits.
  uint64_t id = (uint64_t{3} << DiscoveryState::kAllocNamespaceShift) | 17;
  EXPECT_EQ(PartitionMap::index_for_alloc(id), 3u);

  DiscRequest reg;
  reg.op = DiscOp::register_impl;
  reg.entry = info_of("offload", "offload/hw");
  auto reg_idx = pm.index_for_request(reg);
  ASSERT_TRUE(reg_idx.ok());
  EXPECT_EQ(reg_idx.value(), pm.index_for_type("offload"));

  // A multi-pool acquire is routable only when every pool co-locates.
  auto [pa, pb] = split_keys(pm, "pool.split");
  DiscRequest acq;
  acq.op = DiscOp::acquire;
  acq.resources = {{pa, 1}, {pb, 1}};
  auto split = pm.index_for_request(acq);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.error().code, Errc::invalid_argument);
  acq.resources = {{pa, 1}, {pa, 2}};
  ASSERT_TRUE(pm.index_for_request(acq).ok());

  // Release routes by id namespace; out-of-range ids are rejected.
  DiscRequest rel;
  rel.op = DiscOp::release;
  rel.alloc_id = (uint64_t{9} << DiscoveryState::kAllocNamespaceShift) | 1;
  EXPECT_FALSE(pm.index_for_request(rel).ok());
}

// --- SequencedApplyWindow ---

TEST(SequencedApplyWindowTest, ReleasesInOrderAcrossGapsAndDuplicates) {
  SequencedApplyWindow w;
  auto seqs = [](const std::vector<std::pair<uint64_t, Bytes>>& v) {
    std::vector<uint64_t> out;
    for (const auto& [s, b] : v) out.push_back(s);
    return out;
  };

  EXPECT_EQ(seqs(w.offer(0, to_bytes("a"))), (std::vector<uint64_t>{0}));
  // Gap: 2 buffers behind missing 1.
  EXPECT_TRUE(w.offer(2, to_bytes("c")).empty());
  EXPECT_TRUE(w.has_gap());
  EXPECT_EQ(w.next_seq(), 1u);
  EXPECT_EQ(w.gap_end(), 2u);
  // Duplicates of buffered and already-released seqs are dropped.
  EXPECT_TRUE(w.offer(2, to_bytes("c-dup")).empty());
  EXPECT_TRUE(w.offer(0, to_bytes("a-dup")).empty());
  EXPECT_EQ(w.buffered(), 1u);
  // Filling the gap releases the whole run.
  EXPECT_EQ(seqs(w.offer(1, to_bytes("b"))), (std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(w.has_gap());

  // Abandoning a gap releases what is contiguous beyond it.
  EXPECT_TRUE(w.offer(5, to_bytes("f")).empty());
  EXPECT_TRUE(w.offer(6, to_bytes("g")).empty());
  EXPECT_EQ(seqs(w.skip_to(5)), (std::vector<uint64_t>{5, 6}));
  EXPECT_EQ(w.next_seq(), 7u);
  // skip_to never rewinds.
  EXPECT_TRUE(w.skip_to(3).empty());
  EXPECT_EQ(w.next_seq(), 7u);
}

// --- Cluster routing ---

TEST(ControlTest, ShardedClusterRoutesRegistrationsQueriesAndPools) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();

  const PartitionMap& pm = client->partition_map();
  auto [t0, t1] = split_keys(pm, "type");
  ASSERT_TRUE(client->register_impl(info_of(t0, t0 + "/x")).ok());
  ASSERT_TRUE(client->register_impl(info_of(t1, t1 + "/y")).ok());

  // Queries route back to the owning partition.
  auto q0 = client->query(t0);
  ASSERT_TRUE(q0.ok());
  ASSERT_EQ(q0.value().size(), 1u);
  EXPECT_EQ(q0.value()[0].name, t0 + "/x");
  ASSERT_TRUE(client->query(t1).ok());

  // And the entries physically live on exactly one partition's replicas.
  size_t p0 = pm.index_for_type(t0);
  EXPECT_EQ(cluster->replica(p0, 0)->state()->query(t0).value().size(), 1u);
  EXPECT_TRUE(cluster->replica(1 - p0, 0)->state()->query(t0).value().empty());

  // Pools: capacity, admission, and id-routed release.
  auto [pa, pb] = split_keys(pm, "pool.q");
  ASSERT_TRUE(client->set_pool(pa, 2).ok());
  ASSERT_TRUE(client->set_pool(pb, 2).ok());
  auto a = client->acquire({{pa, 1}});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(PartitionMap::index_for_alloc(a.value()), pm.index_for_pool(pa))
      << "alloc id not namespaced by its partition";
  auto b = client->acquire({{pb, 2}});
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());

  // Cross-partition admission is refused, not half-applied.
  auto cross = client->acquire({{pa, 1}, {pb, 1}});
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.error().code, Errc::invalid_argument);
  EXPECT_EQ(cluster->replica(pm.index_for_pool(pa), 0)->state()->pool_in_use(pa),
            1u);

  ASSERT_TRUE(client->release(a.value()).ok());
  ASSERT_TRUE(client->release(b.value()).ok());
  EXPECT_FALSE(
      client->release(uint64_t{9} << DiscoveryState::kAllocNamespaceShift)
          .ok());
  EXPECT_EQ(cluster->replica(pm.index_for_pool(pa), 0)->state()->pool_in_use(pa),
            0u);
}

TEST(ControlTest, EmptyFilterWatchFansInAllPartitions) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 2;
  cfg.replicas = 1;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.server.coalesce_window = ms(2);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto obs = cluster->client("obs").value();
  auto writer = cluster->client("wr").value();

  auto w = obs->watch("").value();
  auto [t0, t1] = split_keys(obs->partition_map(), "fan");
  ASSERT_TRUE(writer->register_impl(info_of(t0, t0 + "/a")).ok());
  ASSERT_TRUE(writer->register_impl(info_of(t1, t1 + "/b")).ok());

  std::set<std::string> seen;
  uint64_t last_seq = 0;
  Deadline dl = Deadline::after(seconds(10));
  while (seen.size() < 2 && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (!ev.ok()) continue;
    // The fan-in re-stamps a single strictly-increasing seq domain.
    EXPECT_GT(ev.value().seq, last_seq);
    last_seq = ev.value().seq;
    seen.insert(ev.value().name);
  }
  EXPECT_TRUE(seen.count(t0 + "/a"));
  EXPECT_TRUE(seen.count(t1 + "/b"));
}

// --- Replication ---

TEST(ControlTest, ReplicasApplyIdenticallyAndConverge) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(20);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();

  ASSERT_TRUE(client->set_pool("pool.c", 4).ok());
  for (int i = 0; i < 8; i++)
    ASSERT_TRUE(
        client->register_impl(info_of("offload", "o" + std::to_string(i)))
            .ok());
  auto a = client->acquire({{"pool.c", 2}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(client->unregister_impl("offload", "o7").ok());

  // Every replica converges to the identical catalogue, pool accounting
  // AND watch seq (the invariant seq-resume failover rests on).
  auto converged = [&] {
    auto [e0, s0] = cluster->replica(0, 0)->state()->catalogue_snapshot();
    for (size_t r = 1; r < 3; r++) {
      auto [e, s] = cluster->replica(0, r)->state()->catalogue_snapshot();
      if (s != s0 || e.size() != e0.size()) return false;
      if (cluster->replica(0, r)->state()->pool_in_use("pool.c") != 2)
        return false;
    }
    return e0.size() == 7;
  };
  Deadline dl = Deadline::after(seconds(10));
  while (!converged() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(converged()) << "replicas diverged";
  for (size_t r = 0; r < 3; r++) {
    EXPECT_EQ(cluster->replica(0, r)->state()->live_allocs(), 1u);
    EXPECT_EQ(cluster->replica(0, r)->gaps_skipped(), 0u);
  }
}

TEST(ControlTest, RetriedMutationLandingOnAnotherReplicaExecutesOnce) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();
  auto client = cluster->client("c0").value();
  ASSERT_TRUE(client->set_pool("pool.d", 4).ok());

  // The failover-retry shape, driven at the protocol level: the same
  // idempotent mutation submitted to TWO different replicas (as a client
  // whose first response was lost would after rotating). The replicated
  // dedup cache must return the recorded response, not execute twice.
  DiscRequest req;
  req.op = DiscOp::acquire;
  req.resources = {{"pool.d", 1}};
  req.client_id = "retry-client";
  req.idem_key = 99;
  Bytes body = encode_request(req);

  auto raw = net->bind(Addr::mem("raw-cli", 0)).value();
  auto submit_to = [&](const Addr& server) -> uint64_t {
    EXPECT_TRUE(
        raw->send_to(server, encode_frame(MsgKind::discovery, 1, body)).ok());
    auto pkt = raw->recv(Deadline::after(seconds(5)));
    EXPECT_TRUE(pkt.ok());
    auto frame = decode_frame(pkt.value().payload);
    EXPECT_TRUE(frame.ok());
    auto rsp = decode_response(frame.value().payload);
    EXPECT_TRUE(rsp.ok() && rsp.value().success);
    return rsp.ok() ? rsp.value().alloc_id : 0;
  };
  uint64_t first = submit_to(cluster->partition_servers(0)[0]);
  uint64_t second = submit_to(cluster->partition_servers(0)[1]);
  EXPECT_EQ(first, second) << "retry re-executed instead of deduping";
  ASSERT_NE(first, 0u);

  uint64_t hits = 0;
  for (size_t r = 0; r < 3; r++)
    hits += cluster->replica(0, r)->replicated_dedup_hits();
  EXPECT_GE(hits, 1u);
  Deadline dl = Deadline::after(seconds(5));
  auto settled = [&] {
    for (size_t r = 0; r < 3; r++)
      if (cluster->replica(0, r)->state()->pool_in_use("pool.d") != 1)
        return false;
    return true;
  };
  while (!settled() && !dl.expired()) sleep_for(ms(10));
  EXPECT_TRUE(settled()) << "duplicate execution leaked pool capacity";
}

// --- Failover ---

TEST(ControlTest, WatchStreamResumesAcrossReplicaFailoverWithoutSnapshot) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  auto stats = std::make_shared<FaultStats>();
  RemoteDiscovery::Options rpc;
  rpc.rpc_timeout = ms(60);
  rpc.retries = 5;
  rpc.watch_failover_timeout = ms(150);  // >> keepalive
  rpc.stats = stats;
  auto obs = cluster->client("obs", rpc).value();
  auto writer = cluster->client("wr").value();

  auto w = obs->watch("offload").value();
  std::map<std::string, int> seen;
  uint64_t last_seq = 0;
  auto expect_events = [&](int upto) {
    Deadline dl = Deadline::after(seconds(10));
    while (static_cast<int>(seen.size()) < upto && !dl.expired()) {
      auto ev = w->next(Deadline::after(ms(100)));
      if (!ev.ok()) continue;
      EXPECT_GT(ev.value().seq, last_seq)
          << "replicated watch seq went backwards across failover";
      last_seq = ev.value().seq;
      seen[ev.value().name]++;
    }
    EXPECT_EQ(static_cast<int>(seen.size()), upto);
    for (const auto& [name, n] : seen)
      EXPECT_EQ(n, 1) << name << " duplicated";
  };

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "pre" + std::to_string(i)))
            .ok());
  expect_events(3);

  // Kill the replica pushing the observer's stream. The observer issues
  // no RPCs, so only the push-silence watchdog can notice.
  Addr active = obs->partition_client(0).active_server();
  const auto& servers = cluster->partition_servers(0);
  size_t victim = 0;
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(0, victim);

  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(
        writer->register_impl(info_of("offload", "post" + std::to_string(i)))
            .ok());
  expect_events(6);
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(seen.count("pre" + std::to_string(i)));
    EXPECT_TRUE(seen.count("post" + std::to_string(i)));
  }

  EXPECT_GE(obs->server_failovers(), 1u) << "watchdog never rotated";
  EXPECT_GE(stats->watch_resubscribes.load(), 1u);
  // The resume was served from the new replica's replicated event log by
  // seq alone — never the snapshot fallback.
  EXPECT_EQ(stats->watch_snapshots.load(), 0u);
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_EQ(cluster->replica(0, r)->server().snapshots_served(), 0u);
    }
}

TEST(ControlTest, LeasesSurviveReplicaFailoverWithoutSpuriousExpiry) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 3;
  cfg.transports = mem_factory(net, "ctrl");
  cfg.replica.sweep_period = ms(25);
  cfg.replica.server.coalesce_window = ms(2);
  cfg.replica.server.keepalive = ms(25);
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  // The observer needs the push-silence watchdog too: its stream may be
  // attached to the replica we kill.
  RemoteDiscovery::Options orpc;
  orpc.rpc_timeout = ms(60);
  orpc.retries = 5;
  orpc.watch_failover_timeout = ms(150);
  auto obs = cluster->client("obs", orpc).value();
  auto w = obs->watch("offload").value();

  RemoteDiscovery::Options wrpc;
  wrpc.rpc_timeout = ms(60);
  wrpc.retries = 5;
  wrpc.lease_ttl = ms(250);  // heartbeat every ~62ms
  auto writer = cluster->client("wr", wrpc).value();
  ASSERT_TRUE(writer->register_impl(info_of("offload", "leased/hw")).ok());

  // Wait for the registration to be visible.
  Deadline dl = Deadline::after(seconds(5));
  bool registered = false;
  while (!registered && !dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    registered = ev.ok() && ev.value().kind == WatchKind::impl_registered;
  }
  ASSERT_TRUE(registered);

  // Kill the replica the writer heartbeats into. The next heartbeat
  // times out, rotates, and lands on a live replica — replicated, so
  // every replica's lease table stays renewed and NO replica's sweep
  // reaps the owner.
  Addr active = writer->partition_client(0).active_server();
  const auto& servers = cluster->partition_servers(0);
  size_t victim = 0;
  for (size_t r = 0; r < servers.size(); r++)
    if (servers[r] == active) victim = r;
  cluster->kill_replica(0, victim);

  // Watch for spurious expiry across several TTL windows (>> the one
  // sweep interval the failover is allowed to straddle).
  Deadline quiet = Deadline::after(ms(800));
  while (!quiet.expired()) {
    auto ev = w->try_next();
    if (ev && ev->kind == WatchKind::impl_unregistered)
      FAIL() << "lease expired spuriously during failover: " << ev->name;
    sleep_for(ms(10));
  }
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_EQ(cluster->replica(0, r)->state()->query("offload").value().size(),
                1u);
      EXPECT_EQ(cluster->replica(0, r)->state()->lease_count(), 1u);
    }

  // Now stop heartbeating (drop the writer): the lease must expire
  // exactly once, via the replicated sweep.
  writer.reset();
  dl = Deadline::after(seconds(5));
  int expiries = 0;
  while (!dl.expired()) {
    auto ev = w->next(Deadline::after(ms(100)));
    if (ev.ok() && ev.value().kind == WatchKind::impl_unregistered &&
        ev.value().name == "leased/hw")
      expiries++;
  }
  EXPECT_EQ(expiries, 1);
  for (size_t r = 0; r < 3; r++)
    if (cluster->alive(0, r)) {
      EXPECT_TRUE(
          cluster->replica(0, r)->state()->query("offload").value().empty());
      EXPECT_EQ(cluster->replica(0, r)->state()->lease_count(), 0u);
    }
}

// --- Satellite: retry jitter decorrelation ---

TEST(ControlTest, BackoffSeedsDecorrelatePerClient) {
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  RemoteDiscovery::Options opts;  // backoff_seed = 0: derive from client id
  RemoteDiscovery a(net->bind(Addr::mem("a", 0)).value(), server.addr(), opts);
  RemoteDiscovery b(net->bind(Addr::mem("b", 0)).value(), server.addr(), opts);
  EXPECT_NE(a.backoff_seed(), 0u);
  EXPECT_NE(b.backoff_seed(), 0u);
  // Identical options, different clients, different retry schedules: a
  // fleet retrying into a recovering replica spreads out instead of
  // thundering in lockstep.
  EXPECT_NE(a.backoff_seed(), b.backoff_seed());

  RemoteDiscovery::Options pinned;
  pinned.backoff_seed = 42;  // tests that need reproducible backoff
  RemoteDiscovery c(net->bind(Addr::mem("c", 0)).value(), server.addr(),
                    pinned);
  EXPECT_EQ(c.backoff_seed(), 42u);
}

// --- Runtime bootstrap ---

TEST(ControlTest, RuntimeBootstrapsFailoverDiscoveryFromServerList) {
  auto net = MemNetwork::create();
  DiscoveryCluster::Config cfg;
  cfg.partitions = 1;
  cfg.replicas = 2;
  cfg.transports = mem_factory(net, "ctrl");
  auto cluster = DiscoveryCluster::start(std::move(cfg)).value();

  RuntimeConfig rcfg;
  rcfg.host_id = "h-boot";
  rcfg.transports = mem_factory(net, "h-boot");
  rcfg.discovery_servers = cluster->partition_servers(0);
  rcfg.discovery_rpc.rpc_timeout = ms(60);
  rcfg.discovery_rpc.retries = 5;
  auto rt = Runtime::create(std::move(rcfg)).value();

  ASSERT_TRUE(rt->discovery().register_impl(info_of("offload", "boot/x")).ok());
  ASSERT_EQ(rt->discovery().query("offload").value().size(), 1u);

  // Kill the active replica: the runtime's discovery handle rotates and
  // keeps answering.
  auto remote =
      std::dynamic_pointer_cast<RemoteDiscovery>(rt->config().discovery);
  ASSERT_NE(remote, nullptr);
  const auto& servers = cluster->partition_servers(0);
  size_t victim = remote->active_server() == servers[0] ? 0 : 1;
  cluster->kill_replica(0, victim);

  auto q = rt->discovery().query("offload");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().size(), 1u);
  EXPECT_GE(remote->server_failovers(), 1u);
}

}  // namespace
}  // namespace bertha
