// Tests for the binary codec and the textual fallback codec, including
// property-style roundtrips over randomized inputs (TEST_P over seeds).
#include <gtest/gtest.h>

#include "serialize/codec.hpp"
#include "serialize/text_codec.hpp"
#include "util/rand.hpp"

namespace bertha {
namespace {

TEST(CodecTest, VarintKnownEncodings) {
  Writer w;
  w.put_varint(0);
  w.put_varint(127);
  w.put_varint(128);
  w.put_varint(300);
  const Bytes& b = w.bytes();
  EXPECT_EQ(b[0], 0x00);
  EXPECT_EQ(b[1], 0x7f);
  EXPECT_EQ(b[2], 0x80);
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[4], 0xac);
  EXPECT_EQ(b[5], 0x02);
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.put_varint(v);
    Reader r(w.bytes());
    auto got = r.get_varint();
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(got.value(), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(CodecTest, SvarintZigzag) {
  for (int64_t v : std::initializer_list<int64_t>{0, -1, 1, -64, 63,
                                                  INT64_MIN, INT64_MAX}) {
    Writer w;
    w.put_svarint(v);
    Reader r(w.bytes());
    auto got = r.get_svarint();
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(got.value(), v);
  }
}

TEST(CodecTest, SmallNegativesStaySmall) {
  Writer w;
  w.put_svarint(-1);
  EXPECT_EQ(w.size(), 1u);  // zigzag: -1 -> 1
}

TEST(CodecTest, F64RoundTrip) {
  for (double v : {0.0, -0.0, 1.5, -3.14159, 1e300, -1e-300}) {
    Writer w;
    w.put_f64(v);
    Reader r(w.bytes());
    auto got = r.get_f64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
  }
}

TEST(CodecTest, StringAndBytes) {
  Writer w;
  w.put_string("hello");
  w.put_bytes(to_bytes("world"));
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "hello");
  EXPECT_EQ(to_string(r.get_bytes().value()), "world");
  EXPECT_TRUE(r.at_end());
}

TEST(CodecTest, EofErrors) {
  Bytes empty;
  Reader r(empty);
  EXPECT_FALSE(r.get_u8().ok());
  EXPECT_FALSE(r.get_varint().ok());
  EXPECT_FALSE(r.get_f64().ok());
}

TEST(CodecTest, TruncatedStringFails) {
  Writer w;
  w.put_varint(100);  // claims 100 bytes
  w.put_raw(to_bytes("short"));
  Reader r(w.bytes());
  auto got = r.get_string();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, Errc::protocol_error);
}

TEST(CodecTest, VarintOverflowRejected) {
  // 10 bytes of 0xff is > 64 bits.
  Bytes b(10, 0xff);
  Reader r(b);
  EXPECT_FALSE(r.get_varint().ok());
}

TEST(CodecTest, BadBoolRejected) {
  Bytes b{2};
  Reader r(b);
  EXPECT_FALSE(r.get_bool().ok());
}

TEST(CodecTest, ContainerSerde) {
  std::vector<std::string> v{"a", "bb", "ccc"};
  auto bytes = serialize_to_bytes(v);
  auto got = deserialize_from_bytes<std::vector<std::string>>(bytes);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), v);

  std::map<std::string, uint32_t> m{{"x", 1}, {"y", 2}};
  auto mb = serialize_to_bytes(m);
  auto mg = deserialize_from_bytes<std::map<std::string, uint32_t>>(mb);
  ASSERT_TRUE(mg.ok());
  EXPECT_EQ(mg.value(), m);

  std::optional<int32_t> some = -5, none;
  EXPECT_EQ(deserialize_from_bytes<std::optional<int32_t>>(
                serialize_to_bytes(some))
                .value(),
            some);
  EXPECT_EQ(deserialize_from_bytes<std::optional<int32_t>>(
                serialize_to_bytes(none))
                .value(),
            none);
}

TEST(CodecTest, TrailingBytesRejected) {
  Bytes b = serialize_to_bytes<uint32_t>(5);
  b.push_back(0);
  EXPECT_FALSE(deserialize_from_bytes<uint32_t>(b).ok());
}

TEST(CodecTest, LyingContainerLengthRejected) {
  Writer w;
  w.put_varint(1 << 30);  // vector claims 2^30 elements
  auto got = deserialize_from_bytes<std::vector<uint64_t>>(w.bytes());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, Errc::protocol_error);
}

// Property: arbitrary byte strings round-trip through the text codec.
class TextCodecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextCodecProperty, RoundTripRandomPayloads) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; iter++) {
    Bytes data(rng.next_below(512), 0);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_below(256));
    Bytes encoded = text_encode(data);
    auto decoded = text_decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), data);
    // The text form is strictly larger (header + 2x expansion).
    EXPECT_GT(encoded.size(), data.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextCodecProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(TextCodecTest, RejectsMalformed) {
  EXPECT_FALSE(text_decode(to_bytes("")).ok());
  EXPECT_FALSE(text_decode(to_bytes("XXX 3\nabcdef")).ok());
  EXPECT_FALSE(text_decode(to_bytes("TXT x\nab")).ok());
  EXPECT_FALSE(text_decode(to_bytes("TXT 3\nab")).ok());       // short body
  EXPECT_FALSE(text_decode(to_bytes("TXT 1\nzz")).ok());       // bad hex
  EXPECT_FALSE(text_decode(to_bytes("TXT 1")).ok());           // no newline
}

// Property: random structured values round-trip through Serde.
class SerdeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeProperty, RandomMapsRoundTrip) {
  Rng rng(GetParam() ^ 0xabcd);
  for (int iter = 0; iter < 20; iter++) {
    std::map<std::string, std::vector<int64_t>> value;
    size_t keys = rng.next_below(8);
    for (size_t k = 0; k < keys; k++) {
      std::string key(1 + rng.next_below(12), 'k');
      for (auto& c : key) c = static_cast<char>('a' + rng.next_below(26));
      std::vector<int64_t> v(rng.next_below(16));
      for (auto& x : v) x = static_cast<int64_t>(rng.next_u64());
      value[key] = std::move(v);
    }
    auto bytes = serialize_to_bytes(value);
    auto got = deserialize_from_bytes<decltype(value)>(bytes);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeProperty,
                         ::testing::Values(7, 21, 99, 1234));

}  // namespace
}  // namespace bertha
