// The batched datapath I/O runtime (src/io/): BufferPool semantics
// (size classes, thread caches, double-return, cross-thread and
// post-destruction returns), native sendmmsg/recvmmsg batching on
// UDP/UDS with partial batches and EINTR, the bulk-dequeue path on mem
// transports, the fallback adapter for batch-unaware transports, the
// epoll Reactor (delivery, remove/shutdown races, fd and pull-thread
// paths), the batch chunnel's single-batched-flush regression, hop
// latency histograms, and the steady-state zero-allocation guarantee
// for the UDP rx path.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "chunnels/batch.hpp"
#include "core/endpoint.hpp"
#include "io/batch.hpp"
#include "io/buffer_pool.hpp"
#include "io/reactor.hpp"
#include "net/memchan.hpp"
#include "net/udp.hpp"
#include "net/uds.hpp"
#include "serialize/codec.hpp"
#include "test_helpers.hpp"
#include "trace/hop_stats.hpp"

// --- counting allocator hooks (for the zero-alloc rx guarantee) -------
//
// Global operator new/delete overrides are per-binary (same technique as
// trace_test). Counting is always on; assertions only look at deltas.

static std::atomic<uint64_t> g_allocs{0};

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace bertha {
namespace {

using testing_support::TestWorld;

Bytes payload_of(std::string_view s) { return to_bytes(s); }

// --- BufferPool -------------------------------------------------------

TEST(BufferPoolTest, AcquireSizesAndOversize) {
  BufferPool pool;
  auto b = pool.acquire(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_GE(b.capacity(), 100u);
  auto big = pool.acquire(BufferPool::kMaxClassBytes + 1);
  EXPECT_EQ(big.size(), BufferPool::kMaxClassBytes + 1);
  EXPECT_EQ(pool.stats().oversize, 1u);
}

TEST(BufferPoolTest, ResizePreservesContentAndReusesCapacity) {
  BufferPool pool;
  auto b = pool.acquire(4);
  std::memcpy(b.data(), "abcd", 4);
  const uint8_t* before = b.data();
  b.resize(3);  // shrink keeps the block
  EXPECT_EQ(b.data(), before);
  b.resize(200);  // grow within a bigger class; prefix preserved
  EXPECT_EQ(std::memcmp(b.data(), "abc", 3), 0);
}

TEST(BufferPoolTest, DoubleResetIsIdempotent) {
  BufferPool pool;
  auto b = pool.acquire(64);
  b.reset();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  b.reset();  // second return must be a no-op, not a double free
  EXPECT_EQ(b.size(), 0u);
}

TEST(BufferPoolTest, SteadyStateServesFromCaches) {
  BufferPool pool;
  for (int i = 0; i < 32; i++) {
    auto b = pool.acquire(1024);
    b.resize(512);
  }  // each iteration returns its block before the next acquire
  auto s = pool.stats();
  EXPECT_EQ(s.acquires, 32u);
  // First acquire allocates; everything after recycles.
  EXPECT_GE(s.thread_hits + s.shared_hits, 31u);
  EXPECT_EQ(s.fresh, 1u);
}

TEST(BufferPoolTest, CrossThreadReturnIsSafe) {
  BufferPool pool;
  auto b = pool.acquire(256);
  std::thread t([buf = std::move(b)]() mutable { buf.reset(); });
  t.join();
  auto again = pool.acquire(256);
  EXPECT_EQ(again.size(), 256u);
}

TEST(BufferPoolTest, ReturnAfterPoolDestructionIsSafe) {
  PooledBytes survivor;
  {
    BufferPool pool;
    survivor = pool.acquire(512);
  }
  // The handle pins the pool core; returning now must not crash.
  survivor.reset();
}

// --- native batch transports -----------------------------------------

TEST(UdpBatchTest, SendBatchRecvBatchRoundTrip) {
  auto a = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  auto b = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();

  std::vector<Datagram> out(8);
  for (size_t i = 0; i < out.size(); i++) {
    out[i].dst = b->local_addr();
    out[i].payload.assign(payload_of("msg" + std::to_string(i)));
  }
  auto sent = send_batch(*a, out);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), 8u);

  std::set<std::string> got;
  std::vector<Datagram> in(32);
  while (got.size() < 8) {
    auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    for (size_t i = 0; i < n.value(); i++) {
      got.insert(to_string(in[i].payload.view()));
      EXPECT_EQ(in[i].src, a->local_addr());
    }
  }
  for (int i = 0; i < 8; i++)
    EXPECT_TRUE(got.count("msg" + std::to_string(i))) << i;
}

TEST(UdpBatchTest, PartialBatchReturnsOnlyWhatArrived) {
  auto a = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  auto b = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(a->send_to(b->local_addr(), payload_of("p")).ok());
  sleep_for(ms(50));  // let all three land in the socket buffer
  std::vector<Datagram> in(32);
  auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);  // partial batch, not a blocked wait for 32
}

TEST(UdpBatchTest, ExpiredDeadlineIsNonBlockingPoll) {
  auto t = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  std::vector<Datagram> in(4);
  auto n = recv_batch(*t, std::span<Datagram>(in),
                      Deadline::after(Duration::zero()));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, Errc::timed_out);
}

TEST(UdsBatchTest, SendBatchRecvBatchRoundTrip) {
  auto a = UdsTransport::bind(Addr::uds("")).value();
  auto b = UdsTransport::bind(Addr::uds("")).value();
  std::vector<Datagram> out(5);
  for (size_t i = 0; i < out.size(); i++) {
    out[i].dst = b->local_addr();
    out[i].payload.assign(payload_of("u" + std::to_string(i)));
  }
  ASSERT_TRUE(send_batch(*a, out).ok());
  size_t got = 0;
  std::vector<Datagram> in(16);
  while (got < 5) {
    auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    got += n.value();
  }
  EXPECT_EQ(got, 5u);
}

TEST(MemBatchTest, BulkDequeueDrainsQueueInOneCall) {
  auto net = MemNetwork::create();
  auto a = net->bind(Addr::mem("a", 1)).value();
  auto b = net->bind(Addr::mem("b", 1)).value();
  for (int i = 0; i < 10; i++)
    ASSERT_TRUE(a->send_to(b->local_addr(), payload_of("m")).ok());
  std::vector<Datagram> in(32);
  auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 10u);  // single-lock bulk dequeue gets them all
  EXPECT_EQ(in[0].src, a->local_addr());
}

// EINTR during a blocked recvmmsg wait must retry, not surface an error.
TEST(UdpBatchTest, EintrDuringBlockedRecvRetries) {
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, nullptr), 0);

  auto a = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  auto b = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  std::atomic<bool> done{false};
  Result<size_t> res = err(Errc::internal, "unset");
  std::vector<Datagram> in(8);
  std::thread receiver([&] {
    res = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(10)));
    done = true;
  });
  sleep_for(ms(50));  // let it block
  pthread_kill(receiver.native_handle(), SIGUSR1);
  sleep_for(ms(50));
  EXPECT_FALSE(done.load());  // signal alone must not wake it with an error
  ASSERT_TRUE(a->send_to(b->local_addr(), payload_of("after-eintr")).ok());
  receiver.join();
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  EXPECT_EQ(res.value(), 1u);
  EXPECT_EQ(to_string(in[0].payload.view()), "after-eintr");
}

// --- fallback adapter -------------------------------------------------

// A decorator that deliberately hides the inner transport's batch
// interface: what every batch-unaware Transport looks like.
class PlainTransport final : public Transport {
 public:
  explicit PlainTransport(TransportPtr inner) : inner_(std::move(inner)) {}
  Result<void> send_to(const Addr& dst, BytesView payload) override {
    return inner_->send_to(dst, payload);
  }
  Result<Packet> recv(Deadline deadline) override {
    return inner_->recv(deadline);
  }
  const Addr& local_addr() const override { return inner_->local_addr(); }
  void close() override { inner_->close(); }

 private:
  TransportPtr inner_;
};

TEST(FallbackAdapterTest, BatchCallsWorkOnPlainTransports) {
  auto net = MemNetwork::create();
  PlainTransport a(net->bind(Addr::mem("a", 1)).value());
  PlainTransport b(net->bind(Addr::mem("b", 1)).value());
  ASSERT_EQ(as_batch(&a), nullptr);  // genuinely batch-unaware

  std::vector<Datagram> out(6);
  for (size_t i = 0; i < out.size(); i++) {
    out[i].dst = Addr::mem("b", 1);
    out[i].payload.assign(payload_of("f" + std::to_string(i)));
  }
  auto sent = send_batch(a, out);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), 6u);

  size_t got = 0;
  std::vector<Datagram> in(16);
  while (got < 6) {
    auto n = recv_batch(b, std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    for (size_t i = 0; i < n.value(); i++)
      EXPECT_EQ(to_string(in[i].payload.view()),
                "f" + std::to_string(got + i));
    got += n.value();
  }
}

// --- reactor ----------------------------------------------------------

TEST(ReactorTest, DeliversUdpTrafficThroughEpollWorkers) {
  auto reactor = Reactor::create().value();
  auto rx = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  auto tx = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  Addr dst = rx->local_addr();

  std::mutex mu;
  std::vector<std::string> got;
  std::shared_ptr<Transport> shared_rx(std::move(rx));
  auto id = reactor->add(shared_rx, [&](std::span<Datagram> batch) {
    std::lock_guard<std::mutex> lk(mu);
    for (auto& d : batch) got.push_back(to_string(d.payload.view()));
  });
  ASSERT_TRUE(id.ok());

  for (int i = 0; i < 20; i++)
    ASSERT_TRUE(tx->send_to(dst, payload_of("r" + std::to_string(i))).ok());
  Deadline dl = Deadline::after(seconds(10));
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (got.size() >= 20) break;
    }
    ASSERT_FALSE(dl.expired()) << "reactor never delivered all datagrams";
    sleep_for(ms(5));
  }
  reactor->remove(id.value());
  auto s = reactor->stats();
  EXPECT_GE(s.datagrams, 20u);
  EXPECT_GE(s.batches, 1u);
  reactor->shutdown();
}

TEST(ReactorTest, PullThreadServesNonFdTransports) {
  auto net = MemNetwork::create();
  auto rx = net->bind(Addr::mem("rx", 1)).value();
  auto tx = net->bind(Addr::mem("tx", 1)).value();
  ASSERT_EQ(rx->poll_fd(), -1);  // forces the fallback pull thread

  auto reactor = Reactor::create().value();
  std::atomic<size_t> got{0};
  std::shared_ptr<Transport> shared_rx(std::move(rx));
  auto id = reactor->add(shared_rx,
                         [&](std::span<Datagram> b) { got += b.size(); });
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 10; i++)
    ASSERT_TRUE(tx->send_to(Addr::mem("rx", 1), payload_of("m")).ok());
  Deadline dl = Deadline::after(seconds(10));
  while (got.load() < 10 && !dl.expired()) sleep_for(ms(5));
  EXPECT_EQ(got.load(), 10u);
  reactor->shutdown();  // shutdown (not remove) must also stop pullers
}

TEST(ReactorTest, ShutdownWakesIdleWorkersPromptly) {
  Reactor::Options opts;
  opts.workers = 3;
  auto reactor = Reactor::create(opts).value();
  auto rx = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  std::shared_ptr<Transport> shared_rx(std::move(rx));
  ASSERT_TRUE(reactor->add(shared_rx, [](std::span<Datagram>) {}).ok());
  Stopwatch sw;
  reactor->shutdown();  // workers are all blocked in epoll_wait
  EXPECT_LT(sw.elapsed(), seconds(5));
  reactor->shutdown();  // idempotent
}

TEST(ReactorTest, RemoveDuringTrafficNeverDeliversAfterReturn) {
  auto reactor = Reactor::create().value();
  auto rx = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  Addr dst = rx->local_addr();
  std::shared_ptr<Transport> shared_rx(std::move(rx));

  std::atomic<bool> removed{false};
  std::atomic<bool> delivered_after_remove{false};
  auto id = reactor->add(shared_rx, [&](std::span<Datagram>) {
    if (removed.load()) delivered_after_remove = true;
  });
  ASSERT_TRUE(id.ok());

  std::atomic<bool> stop{false};
  std::thread sender([&] {
    auto tx = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
    while (!stop.load()) (void)tx->send_to(dst, payload_of("flood"));
  });
  sleep_for(ms(30));  // traffic flowing through the handler
  reactor->remove(id.value());  // blocks until the handler is quiesced
  removed = true;
  sleep_for(ms(30));
  stop = true;
  sender.join();
  EXPECT_FALSE(delivered_after_remove.load());
  reactor->shutdown();
}

TEST(ReactorTest, ClosingTransportRetiresRegistration) {
  auto reactor = Reactor::create().value();
  auto net = MemNetwork::create();
  auto rx = net->bind(Addr::mem("rx", 9)).value();
  std::shared_ptr<Transport> shared_rx(std::move(rx));
  auto id = reactor->add(shared_rx, [](std::span<Datagram>) {});
  ASSERT_TRUE(id.ok());
  shared_rx->close();  // pull thread sees cancelled and retires
  sleep_for(ms(50));
  reactor->remove(id.value());  // already-retired id: no-op, no deadlock
  reactor->shutdown();
}

// --- batch chunnel: one flush, one batched send -----------------------

// Records every send/send_batch the batch chunnel issues and makes the
// wire datagrams available for decoding.
class CountingConn final : public Connection {
 public:
  Result<void> send(Msg m) override {
    std::lock_guard<std::mutex> lk(mu_);
    plain_sends_++;
    wires_.push_back(std::move(m.payload));
    return ok();
  }
  Result<void> send_batch(std::span<Msg> msgs) override {
    std::lock_guard<std::mutex> lk(mu_);
    batch_sends_++;
    for (Msg& m : msgs) wires_.push_back(std::move(m.payload));
    return ok();
  }
  Result<Msg> recv(Deadline) override {
    return err(Errc::unavailable, "send-only");
  }
  const Addr& local_addr() const override { return addr_; }
  const Addr& peer_addr() const override { return addr_; }
  void close() override {}

  int plain_sends() const {
    std::lock_guard<std::mutex> lk(mu_);
    return plain_sends_;
  }
  int batch_sends() const {
    std::lock_guard<std::mutex> lk(mu_);
    return batch_sends_;
  }
  std::vector<Bytes> wires() const {
    std::lock_guard<std::mutex> lk(mu_);
    return wires_;
  }

 private:
  mutable std::mutex mu_;
  int plain_sends_ = 0;
  int batch_sends_ = 0;
  std::vector<Bytes> wires_;
  Addr addr_ = Addr::mem("counting", 1);
};

TEST(BatchChunnelBatchingTest, OversizedFlushIssuesOneBatchedSend) {
  auto counter = std::make_shared<CountingConn>();
  BatchOptions opts;
  opts.max_batch = 6;
  // Two ~20-byte framed items fit per datagram, but five raw payloads
  // stay under the byte watermark — so the count trigger fires on the
  // sixth send with all six pending, and the flush must split them.
  opts.max_bytes = 56;
  opts.linger = seconds(10);
  BatchChunnel impl(opts);
  WrapContext ctx;
  auto conn = impl.wrap(counter, ctx).value();

  for (int i = 0; i < 6; i++) {
    Msg m;
    m.payload = Bytes(10, static_cast<uint8_t>('a' + i));
    ASSERT_TRUE(conn->send(std::move(m)).ok());
  }
  conn->close();

  // The flush of 6 pending messages must go out as ONE batched transport
  // call carrying three wire datagrams — not three sequential sends.
  EXPECT_EQ(counter->batch_sends(), 1);
  EXPECT_EQ(counter->plain_sends(), 0);
  auto wires = counter->wires();
  ASSERT_EQ(wires.size(), 3u);

  // And the wire format must still unbatch to all six, in order.
  int seen = 0;
  for (const Bytes& wire : wires) {
    Reader r(wire);
    ASSERT_EQ(r.get_u8().value(), 'B');
    ASSERT_EQ(r.get_u8().value(), 'A');
    uint64_t count = r.get_varint().value();
    for (uint64_t k = 0; k < count; k++) {
      Bytes item = r.get_bytes().value();
      ASSERT_EQ(item.size(), 10u);
      EXPECT_EQ(item[0], static_cast<uint8_t>('a' + seen));
      seen++;
    }
  }
  EXPECT_EQ(seen, 6);
}

TEST(BatchChunnelBatchingTest, SingleDatagramFlushStaysAPlainSend) {
  auto counter = std::make_shared<CountingConn>();
  BatchOptions opts;
  opts.max_batch = 4;
  opts.max_bytes = 32 * 1024;
  opts.linger = seconds(10);
  BatchChunnel impl(opts);
  WrapContext ctx;
  auto conn = impl.wrap(counter, ctx).value();
  for (int i = 0; i < 4; i++) ASSERT_TRUE(conn->send(Msg::of("small")).ok());
  conn->close();
  EXPECT_EQ(counter->plain_sends(), 1);
  EXPECT_EQ(counter->batch_sends(), 0);
}

// --- hop latency histograms ------------------------------------------

TEST(HopStatsTest, HistogramRecordsAndSummarizes) {
  AtomicHistogram h;
  for (uint64_t v : {100u, 200u, 400u, 800u, 100000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_GT(h.mean(), 0.0);
  // Log-bucketed: p50 lands within a quarter-octave of 400.
  EXPECT_GE(h.percentile(50), 200.0);
  EXPECT_LE(h.percentile(50), 800.0);
  EXPECT_GE(h.percentile(95), 50000.0);
}

TEST(HopStatsTest, FoldsIntoSnapshotsViaProvider) {
  auto stats = std::make_shared<HopLatencyStats>();
  stats->cell("encrypt/xor")->send_ns.record(1234);
  stats->cell("encrypt/xor")->recv_ns.record(5678);
  MetricsRegistry m;
  attach_hop_stats_provider(m, stats);
  auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.count("hop.send.encrypt/xor"), 1u);
  ASSERT_EQ(snap.histograms.count("hop.recv.encrypt/xor"), 1u);
  EXPECT_EQ(snap.histograms["hop.send.encrypt/xor"].count, 1u);
  // The text exporter carries them too.
  EXPECT_NE(m.to_string().find("hop.send.encrypt/xor"), std::string::npos);
}

TEST(HopStatsTest, TracedConnectionsFeedPerHopHistograms) {
  auto world = TestWorld::make();
  // A runtime with tracing enabled (sampling nearly off — hop histograms
  // must record EVERY message regardless of path sampling).
  RuntimeConfig cfg;
  cfg.host_id = "h-cli";
  cfg.transports = std::make_shared<DefaultTransportFactory>(
      world.mem, world.sim, "h-cli");
  cfg.discovery = world.discovery;
  Tracer::Options topts;
  topts.enabled = true;
  topts.sample_every = 1 << 30;
  cfg.tracer = std::make_shared<Tracer>(topts);
  auto cli_rt = Runtime::create(std::move(cfg)).value();
  ASSERT_TRUE(register_builtin_chunnels(*cli_rt).ok());
  auto srv_rt = world.runtime("h-srv");

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("encrypt")))
                      .value()
                      .listen(Addr::mem("h-srv", 77))
                      .value();
  auto conn = cli_rt->endpoint("cli", wrap(ChunnelSpec("encrypt")))
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(conn->send(Msg::of("tick")).ok());
    ASSERT_TRUE(srv->recv(Deadline::after(seconds(5))).ok());
  }

  auto snap = cli_rt->metrics()->snapshot();
  bool found = false;
  for (const auto& [name, summary] : snap.histograms) {
    if (name.rfind("hop.send.", 0) == 0 && summary.count >= 10) found = true;
  }
  EXPECT_TRUE(found) << "no hop.send.* histogram with >=10 samples in:\n"
                     << cli_rt->metrics()->to_string();
  conn->close();
  listener->close();
}

// --- zero-allocation steady state ------------------------------------

TEST(ZeroAllocTest, UdpRecvBatchSteadyStateDoesNotAllocate) {
  auto a = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();
  auto b = UdpTransport::bind(Addr::udp("127.0.0.1", 0)).value();

  std::vector<Datagram> in(16);
  auto fill = [&](int n) {
    for (int i = 0; i < n; i++)
      ASSERT_TRUE(a->send_to(b->local_addr(), Bytes(1000, 0x5a)).ok());
    sleep_for(ms(50));
  };

  // Warm-up round: first use grows each slot's pooled buffer.
  fill(16);
  size_t drained = 0;
  while (drained < 16) {
    auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    drained += n.value();
  }

  // Steady state: same slots, packets already queued — zero heap allocs.
  fill(16);
  uint64_t before = g_allocs.load();
  drained = 0;
  while (drained < 16) {
    auto n = recv_batch(*b, std::span<Datagram>(in), Deadline::after(seconds(5)));
    ASSERT_TRUE(n.ok());
    drained += n.value();
  }
  uint64_t delta = g_allocs.load() - before;
  EXPECT_EQ(delta, 0u) << "steady-state rx path allocated " << delta
                       << " times";
}

}  // namespace
}  // namespace bertha
