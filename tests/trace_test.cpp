// The tracing & metrics subsystem: tracer mechanics (determinism, the
// disabled-tracer zero-cost guarantee, ring bounds, sampling), the wire
// trace-context tail, the unified MetricsRegistry, exporters (including
// Chrome trace-event JSON schema validation), and trace propagation
// end-to-end — retried discovery RPCs under fault injection, a full live
// transition under one trace id, rollback/revert spans, and degraded-mode
// write queueing with replay spans.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>

#include "core/discovery_cache.hpp"
#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "net/fault.hpp"
#include "test_helpers.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"

// --- counting allocator hooks (for the disabled-tracer guarantee) ------
//
// Global operator new/delete overrides are per-binary, which is exactly
// why this lives in its own test executable. Counting is always on; the
// assertions only look at deltas.

static std::atomic<uint64_t> g_allocs{0};

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace bertha {
namespace {

using testing_support::TestWorld;

// A tracer on a fake clock: every span gets deterministic timestamps.
TracerPtr fake_clock_tracer(std::shared_ptr<uint64_t> clock,
                            uint32_t sample_every = 1) {
  Tracer::Options o;
  o.sample_every = sample_every;
  o.now_ns = [clock] { return *clock; };
  return std::make_shared<Tracer>(o);
}

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const SpanRecord*> find_all(const std::vector<SpanRecord>& spans,
                                        const std::string& name) {
  std::vector<const SpanRecord*> out;
  for (const auto& s : spans)
    if (s.name == name) out.push_back(&s);
  return out;
}

bool has_tag(const SpanRecord& s, const std::string& key,
             const std::string& value = "") {
  for (const auto& [k, v] : s.tags)
    if (k == key && (value.empty() || v == value)) return true;
  return false;
}

// --- Tracer mechanics --------------------------------------------------

TEST(TracerTest, DeterministicSpansUnderClockOverride) {
  auto clock = std::make_shared<uint64_t>(1000);
  auto tracer = fake_clock_tracer(clock);

  Span root = tracer->span("connect");
  *clock = 1500;
  Span child = tracer->span("negotiate", root.context());
  child.tag("endpoint", "srv");
  child.tag_u64("attempt", 1);
  *clock = 1700;
  child.finish();
  *clock = 2000;
  root.finish();

  auto spans = tracer->collect();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: root first.
  EXPECT_EQ(spans[0].name, "connect");
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].end_ns, 2000u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "negotiate");
  EXPECT_EQ(spans[1].start_ns, 1500u);
  EXPECT_EQ(spans[1].duration_ns(), 200u);
  EXPECT_EQ(spans[1].trace_id, spans[0].trace_id);
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_TRUE(has_tag(spans[1], "endpoint", "srv"));
  EXPECT_TRUE(has_tag(spans[1], "attempt", "1"));

  // A second identical run on a fresh tracer yields identical local ids
  // and timestamps (the tracer id salts the upper bits; compare lows).
  auto clock2 = std::make_shared<uint64_t>(1000);
  auto tracer2 = fake_clock_tracer(clock2);
  Span r2 = tracer2->span("connect");
  *clock2 = 1500;
  Span c2 = tracer2->span("negotiate", r2.context());
  *clock2 = 1700;
  c2.finish();
  *clock2 = 2000;
  r2.finish();
  auto spans2 = tracer2->collect();
  ASSERT_EQ(spans2.size(), 2u);
  for (size_t i = 0; i < 2; i++) {
    EXPECT_EQ(spans2[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(spans2[i].end_ns, spans[i].end_ns);
    EXPECT_EQ(spans2[i].span_id & 0xffffffffu, spans[i].span_id & 0xffffffffu);
  }

  // Collect drained everything; nothing shows twice.
  EXPECT_TRUE(tracer->collect().empty());
}

TEST(TracerTest, DisabledTracerAllocatesNothing) {
  Tracer::Options o;
  o.enabled = false;
  auto tracer = std::make_shared<Tracer>(o);

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; i++) {
    Span s = tracer->span("hot-path");
    s.tag("key", "value");
    s.tag_u64("n", static_cast<uint64_t>(i));
    Span child = trace_span(tracer, "child", s.context());
    child.finish();
    s.finish();
    (void)tracer->sample_path();
  }
  uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "disabled tracer allocated";
  EXPECT_EQ(tracer->span_count(), 0u);
  EXPECT_TRUE(tracer->collect().empty());

  // Null tracer through the helper is equally free.
  before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; i++) {
    Span s = trace_span(nullptr, "hot-path");
    s.tag("key", "value");
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
}

TEST(TracerTest, BoundedRingDropsOldestUnderLoad) {
  auto clock = std::make_shared<uint64_t>(0);
  Tracer::Options o;
  o.ring_capacity = 16;
  o.thread_buffer = 4;
  o.now_ns = [clock] { return *clock; };
  auto tracer = std::make_shared<Tracer>(o);

  for (int i = 0; i < 100; i++) {
    *clock = static_cast<uint64_t>(i) * 10;
    tracer->span("s").finish();
  }
  auto spans = tracer->collect();
  // Ring keeps at most capacity plus whatever still sat in the thread
  // buffer; the oldest spans are the ones dropped.
  EXPECT_LE(spans.size(), o.ring_capacity + o.thread_buffer);
  EXPECT_GT(tracer->dropped(), 0u);
  EXPECT_EQ(spans.back().start_ns, 990u) << "newest span was dropped";
}

TEST(TracerTest, SamplePathGatesOneInN) {
  Tracer::Options o;
  o.sample_every = 8;
  auto tracer = std::make_shared<Tracer>(o);
  int sampled = 0;
  for (int i = 0; i < 80; i++)
    if (tracer->sample_path()) sampled++;
  EXPECT_EQ(sampled, 10);

  Tracer::Options off;
  off.sample_every = 0;
  auto no_paths = std::make_shared<Tracer>(off);
  for (int i = 0; i < 10; i++) EXPECT_FALSE(no_paths->sample_path());
}

TEST(TracerTest, AmbientContextScopesNestAndRestore) {
  EXPECT_FALSE(current_trace_context().valid());
  {
    SpanScope outer(TraceContext{7, 1});
    EXPECT_EQ(current_trace_context().trace_id, 7u);
    {
      SpanScope inner(TraceContext{7, 2});
      EXPECT_EQ(current_trace_context().span_id, 2u);
      // An invalid context installs nothing.
      SpanScope noop(TraceContext{});
      EXPECT_EQ(current_trace_context().span_id, 2u);
    }
    EXPECT_EQ(current_trace_context().span_id, 1u);
  }
  EXPECT_FALSE(current_trace_context().valid());
}

// --- wire context tail -------------------------------------------------

TEST(TraceContextTest, TailRoundTripsAndDecodesTolerantly) {
  // Round trip.
  Writer w;
  w.put_string("payload");
  put_trace_context(w, TraceContext{0xabcdef12345ULL, 42});
  Bytes frame = std::move(w).take();
  Reader r(frame);
  ASSERT_TRUE(r.get_string().ok());
  TraceContext ctx = read_trace_context_tail(r);
  EXPECT_EQ(ctx.trace_id, 0xabcdef12345ULL);
  EXPECT_EQ(ctx.span_id, 42u);

  // Invalid context appends nothing: frames are byte-identical to the
  // pre-tracing wire format.
  Writer w2;
  w2.put_string("payload");
  put_trace_context(w2, TraceContext{});
  Bytes bare = std::move(w2).take();
  Reader r2(bare);
  ASSERT_TRUE(r2.get_string().ok());
  EXPECT_TRUE(r2.at_end());
  EXPECT_FALSE(read_trace_context_tail(r2).valid());

  // Truncated tails (every strict prefix) degrade to "no context".
  for (size_t cut = bare.size(); cut < frame.size(); cut++) {
    Bytes trunc(frame.begin(), frame.begin() + cut);
    Reader tr(trunc);
    ASSERT_TRUE(tr.get_string().ok());
    EXPECT_FALSE(read_trace_context_tail(tr).valid()) << "cut at " << cut;
  }

  // Garbage where the tail should be: wrong magic, then random bytes.
  Bytes garbage = bare;
  garbage.push_back(0x99);
  garbage.push_back(0xff);
  Reader gr(garbage);
  ASSERT_TRUE(gr.get_string().ok());
  EXPECT_FALSE(read_trace_context_tail(gr).valid());
}

TEST(TraceContextTest, MessageDecodersCarryAndTolerateContexts) {
  HelloMsg h;
  h.endpoint_name = "ep";
  h.host_id = "h";
  h.trace = TraceContext{11, 22};
  auto h2 = decode_hello(encode_hello(h));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2.value().trace.trace_id, 11u);
  EXPECT_EQ(h2.value().trace.span_id, 22u);

  // Without a context the frame stays valid and decodes to "none".
  h.trace = TraceContext{};
  auto h3 = decode_hello(encode_hello(h));
  ASSERT_TRUE(h3.ok());
  EXPECT_FALSE(h3.value().trace.valid());

  TransitionMsg t;
  t.epoch = 3;
  t.new_token = 4;
  t.trace = TraceContext{5, 6};
  auto t2 = decode_transition(encode_transition(t));
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value().trace.trace_id, 5u);

  TransitionCancelMsg c;
  c.epoch = 8;
  c.trace = TraceContext{5, 7};
  auto c2 = decode_transition_cancel(encode_transition_cancel(c));
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2.value().trace.span_id, 7u);
}

// --- MetricsRegistry ---------------------------------------------------

TEST(MetricsTest, CountersGaugesHistogramsAndProviders) {
  MetricsRegistry m;
  auto c = m.counter("requests");
  c->fetch_add(3, std::memory_order_relaxed);
  // Same name, same instrument.
  EXPECT_EQ(m.counter("requests").get(), c.get());
  m.gauge("depth")->store(-2, std::memory_order_relaxed);
  for (int i = 1; i <= 100; i++) m.observe("latency", i);

  m.attach_provider("ext", [](MetricsRegistry::Snapshot& s) {
    s.counters["external.count"] = 17;
  });

  auto snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("requests"), 3u);
  EXPECT_EQ(snap.counters.at("external.count"), 17u);
  EXPECT_EQ(snap.gauges.at("depth"), -2.0);
  const auto& h = snap.histograms.at("latency");
  EXPECT_EQ(h.count, 100u);
  EXPECT_GT(h.p95, h.p50);

  // Re-attach under the same name replaces, not duplicates.
  m.attach_provider("ext", [](MetricsRegistry::Snapshot& s) {
    s.counters["external.count"] = 18;
  });
  EXPECT_EQ(m.snapshot().counters.at("external.count"), 18u);

  auto text = m.to_string();
  EXPECT_NE(text.find("requests"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);
}

TEST(MetricsTest, RuntimeRegistryAggregatesLegacyCounters) {
  auto world = TestWorld::make();
  auto rt = world.runtime("h1", /*builtins=*/false);
  rt->fault_stats().rpc_retries.fetch_add(5);
  rt->transitions().stats_sink()->update(
      [](TransitionStats& s) { s.completed = 2; });

  auto snap = rt->metrics()->snapshot();
  EXPECT_EQ(snap.counters.at("fault.rpc_retries"), 5u);
  EXPECT_EQ(snap.counters.at("transition.completed"), 2u);
  EXPECT_EQ(snap.counters.count("trace.spans_recorded"), 1u);
  // The legacy accessors remain the source of truth.
  EXPECT_EQ(rt->fault_stats().rpc_retries.load(), 5u);
  EXPECT_EQ(rt->transitions().stats().completed, 2u);
}

TEST(MetricsTest, TelemetryCellsExportThroughRegistry) {
  auto world = TestWorld::make();
  auto srv_rt = world.runtime("h-srv");
  auto cli_rt = world.runtime("h-cli");

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("telemetry")))
                      .value()
                      .listen(Addr::mem("h-srv", 40))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  ASSERT_TRUE(conn->send(Msg::of("ping")).ok());
  ASSERT_TRUE(srv->recv(Deadline::after(seconds(5))).ok());

  auto snap = srv_rt->metrics()->snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("telemetry.", 0) == 0 &&
        name.find(".msgs_received") != std::string::npos && value >= 1) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "telemetry cells missing from registry:\n"
                     << srv_rt->metrics()->to_string();
}

// --- exporters ---------------------------------------------------------
//
// A deliberately tiny JSON parser — just enough to schema-check the
// Chrome trace output without external dependencies.

struct JsonValue {
  enum Kind { object, array, string, number, boolean, null } kind = null;
  std::map<std::string, JsonValue> fields;
  std::vector<JsonValue> items;
  std::string str;
  double num = 0;
  bool b = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(JsonValue* out) { return value(out) && (skip_ws(), pos_ == s_.size()); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      pos_++;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool string_lit(std::string* out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    pos_++;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;
            out->push_back('?');
            break;
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      pos_++;
      out->kind = JsonValue::object;
      skip_ws();
      if (consume('}')) return true;
      do {
        std::string key;
        if (!string_lit(&key) || !consume(':')) return false;
        JsonValue v;
        if (!value(&v)) return false;
        out->fields[key] = std::move(v);
      } while (consume(','));
      return consume('}');
    }
    if (c == '[') {
      pos_++;
      out->kind = JsonValue::array;
      skip_ws();
      if (consume(']')) return true;
      do {
        JsonValue v;
        if (!value(&v)) return false;
        out->items.push_back(std::move(v));
      } while (consume(','));
      return consume(']');
    }
    if (c == '"') {
      out->kind = JsonValue::string;
      return string_lit(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::boolean;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::boolean;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // number
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E'))
      end++;
    if (end == pos_) return false;
    out->kind = JsonValue::number;
    out->num = std::strtod(s_.c_str() + pos_, nullptr);
    pos_ = end;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceExportTest, ChromeTraceJsonIsSchemaValid) {
  auto clock = std::make_shared<uint64_t>(1000);
  auto tracer = fake_clock_tracer(clock);
  Span root = tracer->span("client.connect");
  root.tag("endpoint", "with \"quotes\" and \\slashes\\ and\nnewlines");
  *clock = 2500;
  Span child = tracer->span("server.negotiate", root.context());
  *clock = 4000;
  child.finish();
  *clock = 5000;
  root.finish();
  // A second, unrelated trace gets its own pid row.
  Span other = tracer->span("path.send");
  *clock = 5100;
  other.finish();

  std::string json = export_chrome_trace(tracer->collect());
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::object);
  ASSERT_EQ(doc.fields.count("traceEvents"), 1u);
  const auto& events = doc.fields["traceEvents"];
  ASSERT_EQ(events.kind, JsonValue::array);
  ASSERT_EQ(events.items.size(), 3u);

  std::set<double> pids;
  for (const auto& ev : events.items) {
    ASSERT_EQ(ev.kind, JsonValue::object);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"})
      ASSERT_EQ(ev.fields.count(key), 1u) << "missing " << key;
    EXPECT_EQ(ev.fields.at("ph").str, "X");
    EXPECT_EQ(ev.fields.at("ts").kind, JsonValue::number);
    EXPECT_EQ(ev.fields.at("dur").kind, JsonValue::number);
    ASSERT_EQ(ev.fields.count("args"), 1u);
    EXPECT_EQ(ev.fields.at("args").fields.count("trace_id"), 1u);
    pids.insert(ev.fields.at("pid").num);
  }
  EXPECT_EQ(pids.size(), 2u) << "each trace gets its own pid row";

  // Timestamps are microseconds: the 1000ns start renders as 1us.
  const auto& first = events.items[0];
  EXPECT_EQ(first.fields.at("name").str, "client.connect");
  EXPECT_DOUBLE_EQ(first.fields.at("ts").num, 1.0);
  EXPECT_DOUBLE_EQ(first.fields.at("dur").num, 4.0);
}

TEST(TraceExportTest, TextSummaryShowsTreeAndLatencies) {
  auto clock = std::make_shared<uint64_t>(0);
  auto tracer = fake_clock_tracer(clock);
  Span root = tracer->span("client.connect");
  *clock = 100;
  Span child = tracer->span("server.negotiate", root.context());
  child.tag_u64("epoch", 1);
  *clock = 30100;
  child.finish();
  *clock = 50000;
  root.finish();

  std::string text = export_text_summary(tracer->collect());
  EXPECT_NE(text.find("client.connect"), std::string::npos);
  EXPECT_NE(text.find("server.negotiate"), std::string::npos);
  EXPECT_NE(text.find("epoch=1"), std::string::npos);
  EXPECT_NE(text.find("phase latency"), std::string::npos);
  // The child is indented under the root.
  size_t root_at = text.find("client.connect");
  size_t child_at = text.find("server.negotiate");
  EXPECT_GT(child_at, root_at);
}

// --- propagation through fault-injected discovery RPCs -----------------

ImplInfo impl_of(const std::string& type, const std::string& name) {
  ImplInfo i;
  i.type = type;
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = 10;
  return i;
}

TEST(TracePropagationTest, RetriedRpcSharesTraceAndDedupIsTagged) {
  auto tracer = std::make_shared<Tracer>();
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer::Options so;
  so.tracer = tracer;
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state, so);

  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), {});
  std::atomic<bool> drop_next_rsp{false};
  fault->set_recv_filter([&](const Addr&, BytesView) {
    return drop_next_rsp.exchange(false);
  });
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(100);
  ro.retries = 3;
  ro.backoff = {ms(5), 2.0, ms(20), 0.1};
  ro.tracer = tracer;
  RemoteDiscovery client(TransportPtr(fault), server.addr(), ro);

  // The response to the first attempt is lost; the retry is answered
  // from the server's dedup cache.
  drop_next_rsp = true;
  ASSERT_TRUE(client.register_impl(impl_of("offload", "offload/hw")).ok());
  ASSERT_EQ(server.dedup_hits(), 1u);

  auto spans = tracer->collect();
  const SpanRecord* rpc = find_span(spans, "rpc.register_impl");
  ASSERT_NE(rpc, nullptr);
  EXPECT_TRUE(has_tag(*rpc, "retried", "1"));
  EXPECT_TRUE(has_tag(*rpc, "attempts", "2"));

  // Both resend attempts are children of the one logical RPC span —
  // same trace id, so the retry is visibly part of the same story.
  auto attempts = find_all(spans, "rpc.attempt");
  ASSERT_EQ(attempts.size(), 2u);
  for (const auto* a : attempts) {
    EXPECT_EQ(a->trace_id, rpc->trace_id);
    EXPECT_EQ(a->parent_id, rpc->span_id);
  }

  // The server saw the op twice: one real execution and one dedup-cache
  // replay, both joined to the client's trace via the wire context.
  auto serves = find_all(spans, "serve.register_impl");
  ASSERT_EQ(serves.size(), 2u);
  int dedup_tagged = 0;
  for (const auto* s : serves) {
    EXPECT_EQ(s->trace_id, rpc->trace_id) << "wire context lost";
    if (has_tag(*s, "dedup_hit", "1")) dedup_tagged++;
  }
  EXPECT_EQ(dedup_tagged, 1);
}

TEST(TracePropagationTest, ContextSurvivesDropDupReorderTransport) {
  auto tracer = std::make_shared<Tracer>();
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer::Options so;
  so.tracer = tracer;
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state, so);

  FaultInjectingTransport::Options fo;
  fo.drop = 0.2;
  fo.duplicate = 0.2;
  fo.reorder = 0.2;
  fo.seed = 7;
  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), fo);
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(80);
  ro.retries = 8;
  ro.backoff = {ms(5), 2.0, ms(20), 0.1};
  ro.tracer = tracer;
  RemoteDiscovery client(TransportPtr(fault), server.addr(), ro);

  for (int i = 0; i < 10; i++) {
    auto q = client.query("offload");
    ASSERT_TRUE(q.ok()) << q.error().to_string();
  }

  // Every serve-side span must belong to some client rpc span's trace:
  // drop/dup/reorder can multiply or reorder frames but never corrupt
  // the propagated context.
  auto spans = tracer->collect();
  std::set<uint64_t> rpc_traces;
  for (const auto& s : spans)
    if (s.name == "rpc.query") rpc_traces.insert(s.trace_id);
  EXPECT_EQ(rpc_traces.size(), 10u);
  size_t serves = 0;
  for (const auto& s : spans)
    if (s.name == "serve.query") {
      serves++;
      EXPECT_EQ(rpc_traces.count(s.trace_id), 1u)
          << "serve span with unknown trace id";
    }
  EXPECT_GE(serves, 10u);
}

// --- degraded-mode writes ----------------------------------------------

TEST(DegradedWriteTest, QueuedWritesReplayOnRecoveryWithSpans) {
  auto tracer = std::make_shared<Tracer>();
  auto net = MemNetwork::create();
  auto state = std::make_shared<DiscoveryState>();
  ASSERT_TRUE(state->register_impl(impl_of("offload", "offload/sw")).ok());
  DiscoveryServer server(net->bind(Addr::mem("disc", 1)).value(), state);

  auto* fault = new FaultInjectingTransport(
      net->bind(Addr::mem("cli", 0)).value(), {});
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(60);
  ro.retries = 0;
  auto remote = std::make_shared<RemoteDiscovery>(TransportPtr(fault),
                                                  server.addr(), ro);
  auto stats = std::make_shared<FaultStats>();
  CachingDiscovery::Options co;
  co.probe_period = ms(50);
  co.tracer = tracer;
  co.metrics = std::make_shared<MetricsRegistry>();
  CachingDiscovery cache(remote, co, stats);

  ASSERT_TRUE(cache.query("offload").ok());  // warm the cache
  fault->partition(true, true);
  ASSERT_TRUE(cache.query("offload").ok());  // trip degraded mode
  ASSERT_TRUE(cache.degraded());

  // Writes during the outage queue instead of failing, and the degraded
  // catalogue serves them back immediately.
  ASSERT_TRUE(cache.register_impl(impl_of("offload", "offload/hw")).ok());
  ASSERT_TRUE(cache.register_impl(impl_of("crypt", "crypt/aes")).ok());
  // Latest-wins: re-registering the same impl replaces the queued entry.
  ImplInfo hw2 = impl_of("offload", "offload/hw");
  hw2.priority = 99;
  ASSERT_TRUE(cache.register_impl(hw2).ok());
  EXPECT_EQ(cache.pending_writes(), 2u);
  auto q = cache.query("offload");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().size(), 2u) << "queued write invisible to queries";

  // Nothing reached the real service yet.
  EXPECT_TRUE(state->query("crypt").value().empty());

  // Heal: the probe notices, queued writes replay before the recovery
  // event goes out.
  auto w = cache.watch("");
  ASSERT_TRUE(w.ok());
  fault->partition(false, false);
  auto ev = w.value()->next(Deadline::after(seconds(3)));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().name, kDiscoveryRecoveredEvent);
  EXPECT_EQ(cache.pending_writes(), 0u);
  auto replayed = state->query("offload");
  ASSERT_TRUE(replayed.ok());
  bool found_hw = false;
  for (const auto& i : replayed.value())
    if (i.name == "offload/hw") {
      found_hw = true;
      EXPECT_EQ(i.priority, 99) << "stale queued write replayed";
    }
  EXPECT_TRUE(found_hw);
  EXPECT_EQ(state->query("crypt").value().size(), 1u);

  // One span per replayed mutation, plus queue/exit markers.
  auto spans = tracer->collect();
  EXPECT_EQ(find_all(spans, "discovery.replay_write").size(), 2u);
  EXPECT_GE(find_all(spans, "discovery.queue_write").size(), 2u);
  const SpanRecord* exit_span = find_span(spans, "discovery.degraded_exit");
  ASSERT_NE(exit_span, nullptr);
  EXPECT_TRUE(has_tag(*exit_span, "replay_writes", "2"));

  auto snap = co.metrics->snapshot();
  EXPECT_EQ(snap.counters.at("discovery.queued_writes"), 3u);
  EXPECT_EQ(snap.counters.at("discovery.replayed_writes"), 2u);
}

// --- the single-trace integration story --------------------------------

class InfoChunnel final : public ChunnelImpl {
 public:
  explicit InfoChunnel(ImplInfo info) : info_(std::move(info)) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }

 private:
  ImplInfo info_;
};

ImplInfo offload_info(const std::string& name, int32_t priority) {
  ImplInfo i;
  i.type = "offload";
  i.name = name;
  i.scope = Scope::host;
  i.endpoints = EndpointConstraint::server;
  i.priority = priority;
  return i;
}

TransitionTuning fast_tuning() {
  TransitionTuning t;
  t.offer_retry = ms(25);
  t.ack_timeout = ms(1000);
  t.drain_timeout = ms(300);
  t.sweep_period = ms(10);
  return t;
}

std::string bound_impl(const ConnPtr& conn, const std::string& type) {
  auto* t = dynamic_cast<TransitionableConnection*>(conn.get());
  if (!t) return "";
  for (const auto& n : t->chain())
    if (n.type == type) return n.impl_name;
  return "";
}

// One trace id covers the whole story: the client's connect, the
// server-side negotiation, the discovery RPCs the server makes while
// negotiating (including a fault-injected retry), and the live
// transition that later upgrades the connection.
TEST(TraceIntegrationTest, OneTraceSpansConnectDiscoveryAndTransition) {
  auto tracer = std::make_shared<Tracer>();  // shared by every component
  auto world = TestWorld::make();
  auto state = std::make_shared<DiscoveryState>();

  DiscoveryServer::Options dso;
  dso.tracer = tracer;
  dso.keepalive = seconds(10);  // keep pushes off the fault window
  DiscoveryServer disc_server(world.mem->bind(Addr::mem("disc", 1)).value(),
                              state, dso);

  // The server runtime reaches discovery over RPC through a fault
  // transport, so the test can drop one request and force a retry in
  // the middle of negotiation.
  auto* fault = new FaultInjectingTransport(
      world.mem->bind(Addr::mem("h-srv", 9)).value(), {});
  std::atomic<bool> drop_next_req{false};
  fault->set_send_filter([&](const Addr&, BytesView) {
    return drop_next_req.exchange(false);
  });
  RemoteDiscovery::Options ro;
  ro.rpc_timeout = ms(120);
  ro.retries = 3;
  ro.backoff = {ms(5), 2.0, ms(20), 0.1};
  ro.tracer = tracer;
  auto remote = std::make_shared<RemoteDiscovery>(TransportPtr(fault),
                                                  disc_server.addr(), ro);

  RuntimeConfig scfg;
  scfg.host_id = "h-srv";
  scfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-srv");
  scfg.discovery = remote;
  scfg.tracer = tracer;
  scfg.transition_tuning = fast_tuning();
  scfg.handshake_timeout = ms(1000);
  auto srv_rt = Runtime::create(std::move(scfg)).value();

  RuntimeConfig ccfg;
  ccfg.host_id = "h-cli";
  ccfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-cli");
  ccfg.discovery = state;  // the client talks to the state directly
  ccfg.tracer = tracer;
  ccfg.transition_tuning = fast_tuning();
  ccfg.handshake_timeout = ms(1000);
  auto cli_rt = Runtime::create(std::move(ccfg)).value();

  ASSERT_TRUE(srv_rt
                  ->register_chunnel(
                      std::make_shared<InfoChunnel>(offload_info("offload/sw", 0)))
                  .ok());

  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  // Let the controller's startup watch subscribe finish before arming
  // the drop, so the lost frame is negotiation's discovery query.
  sleep_for(ms(100));
  (void)tracer->collect();  // discard setup-time spans

  drop_next_req = true;
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(10)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();
  EXPECT_FALSE(drop_next_req.load()) << "no discovery RPC during negotiation";

  // Provoke the live transition and wait for cutover + drain.
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(state->register_impl(hw).ok());
  // Full round trips: the client-side offer handling runs inside the
  // application's own recv call.
  Deadline dl = Deadline::after(seconds(10));
  while (bound_impl(srv, "offload") != "offload/hw") {
    ASSERT_FALSE(dl.expired()) << "no transition after 10s";
    ASSERT_TRUE(conn->send(Msg::of("m")).ok());
    ASSERT_TRUE(srv->recv(Deadline::after(seconds(5))).ok());
    ASSERT_TRUE(srv->send(Msg::of("r")).ok());
    ASSERT_TRUE(conn->recv(Deadline::after(seconds(5))).ok());
  }

  // Cutover is observable before the old chain drains; the drain span is
  // recorded by the sweeper afterwards, so keep collecting until it lands.
  auto spans = tracer->collect();
  Deadline drain_dl = Deadline::after(seconds(10));
  while (find_span(spans, "transition.drain") == nullptr) {
    ASSERT_FALSE(drain_dl.expired()) << "old chain never drained";
    sleep_for(ms(20));
    auto more = tracer->collect();
    spans.insert(spans.end(), std::make_move_iterator(more.begin()),
                 std::make_move_iterator(more.end()));
  }
  const SpanRecord* connect = find_span(spans, "client.connect");
  ASSERT_NE(connect, nullptr);
  const uint64_t trace = connect->trace_id;

  // Everything below happened under the connect's trace id — across the
  // wire, across threads, across processes-worth of components.
  for (const char* name :
       {"server.negotiate", "server.build_stack", "client.build_stack",
        "rpc.query", "serve.query", "transition.offer", "transition.stage",
        "transition.cutover", "transition.drain", "client.transition"}) {
    const SpanRecord* s = find_span(spans, name);
    ASSERT_NE(s, nullptr) << "missing span " << name;
    EXPECT_EQ(s->trace_id, trace) << name << " not in the connect trace";
  }

  // The injected retry rode the same trace: the negotiation-time rpc
  // span retried once and both attempts are its children.
  const SpanRecord* retried = nullptr;
  for (const auto& s : spans)
    if (s.trace_id == trace && s.name.rfind("rpc.", 0) == 0 &&
        has_tag(s, "retried", "1"))
      retried = &s;
  ASSERT_NE(retried, nullptr) << "injected retry not visible in the trace";
  size_t attempts = 0;
  for (const auto& s : spans)
    if (s.name == "rpc.attempt" && s.parent_id == retried->span_id) attempts++;
  EXPECT_GE(attempts, 2u);

  // The trace renders: both exporters accept the real span set.
  JsonValue doc;
  ASSERT_TRUE(JsonParser(export_chrome_trace(spans)).parse(&doc));
  EXPECT_GE(doc.fields["traceEvents"].items.size(), spans.size());
  EXPECT_NE(export_text_summary(spans).find("client.connect"),
            std::string::npos);
}

// The rollback path: lost acks make the server roll back and cancel; the
// client reverts onto its draining old stack. The rollback, the cancel's
// wire context, and the client's revert all join the offer's trace.
TEST(TraceIntegrationTest, RollbackAndRevertSpansShareTheOfferTrace) {
  auto tracer = std::make_shared<Tracer>();
  auto world = TestWorld::make();

  auto drop_acks = std::make_shared<std::atomic<bool>>(false);
  auto cli_factory = std::make_shared<FaultInjectingFactory>(
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-cli"),
      FaultInjectingTransport::Options{});
  cli_factory->set_send_filter([drop_acks](const Addr&, BytesView p) {
    return drop_acks->load() && p.size() >= kWireHeaderSize &&
           p[2] == static_cast<uint8_t>(MsgKind::transition_ack);
  });

  TransitionTuning tuning;
  tuning.offer_retry = ms(25);
  tuning.ack_timeout = ms(250);
  tuning.drain_timeout = ms(2000);
  tuning.sweep_period = ms(10);

  RuntimeConfig scfg;
  scfg.host_id = "h-srv";
  scfg.transports =
      std::make_shared<DefaultTransportFactory>(world.mem, world.sim, "h-srv");
  scfg.discovery = world.discovery;
  scfg.transition_tuning = tuning;
  scfg.tracer = tracer;
  auto srv_rt = Runtime::create(std::move(scfg)).value();
  RuntimeConfig ccfg;
  ccfg.host_id = "h-cli";
  ccfg.transports = cli_factory;
  ccfg.discovery = world.discovery;
  ccfg.transition_tuning = tuning;
  ccfg.tracer = tracer;
  auto cli_rt = Runtime::create(std::move(ccfg)).value();

  ASSERT_TRUE(srv_rt
                  ->register_chunnel(
                      std::make_shared<InfoChunnel>(offload_info("offload/sw", 0)))
                  .ok());
  auto listener = srv_rt->endpoint("srv", wrap(ChunnelSpec("offload")))
                      .value()
                      .listen(Addr::mem("h-srv", 100))
                      .value();
  auto conn = cli_rt->endpoint("cli", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(5)))
                  .value();
  auto srv = listener->accept(Deadline::after(seconds(5))).value();

  drop_acks->store(true);
  ImplInfo hw = offload_info("offload/hw", 50);
  ASSERT_TRUE(srv_rt->register_chunnel(std::make_shared<InfoChunnel>(hw)).ok());
  ASSERT_TRUE(world.discovery->register_impl(hw).ok());

  Deadline dl = Deadline::after(seconds(10));
  while (srv_rt->transitions().stats().rolled_back == 0 ||
         cli_rt->transitions().stats().reverts == 0) {
    ASSERT_FALSE(dl.expired()) << "rollback/revert never happened";
    (void)conn->send(Msg::of("probe"));
    (void)srv->recv(Deadline::after(ms(20)));
    (void)conn->recv(Deadline::after(ms(20)));
  }
  drop_acks->store(false);

  auto spans = tracer->collect();
  const SpanRecord* offer = find_span(spans, "transition.offer");
  ASSERT_NE(offer, nullptr);
  for (const char* name :
       {"transition.rollback", "client.transition", "client.revert"}) {
    const SpanRecord* s = find_span(spans, name);
    ASSERT_NE(s, nullptr) << "missing span " << name;
    EXPECT_EQ(s->trace_id, offer->trace_id)
        << name << " lost the transition's trace";
  }
  const SpanRecord* rollback = find_span(spans, "transition.rollback");
  EXPECT_TRUE(has_tag(*rollback, "epoch"));
}

}  // namespace
}  // namespace bertha
