// Tests for candidate assembly/filtering/ranking and server-side
// negotiation (§4.3), including the policy preferences and resource
// admission behaviors the paper describes.
#include <gtest/gtest.h>

#include "core/negotiation.hpp"

namespace bertha {
namespace {

ImplInfo impl(std::string type, std::string name, EndpointConstraint ep,
              Scope scope = Scope::application, int prio = 0) {
  ImplInfo i;
  i.type = std::move(type);
  i.name = std::move(name);
  i.endpoints = ep;
  i.scope = scope;
  i.priority = prio;
  return i;
}

class PassthroughChunnel final : public ChunnelImpl {
 public:
  explicit PassthroughChunnel(ImplInfo info) : info_(std::move(info)) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }

 private:
  ImplInfo info_;
};

// --- rank_candidates ---

TEST(RankCandidatesTest, ClientProvidedWinsUnderDefaultPolicy) {
  DefaultPolicy policy;
  auto client_push =
      impl("shard", "shard/client-push", EndpointConstraint::client,
           Scope::application, 5);
  auto xdp = impl("shard", "shard/xdp", EndpointConstraint::server,
                  Scope::host, 10);
  auto ranked = rank_candidates(ChunnelSpec("shard"), {client_push},
                                {xdp, client_push}, {}, policy,
                                /*same_host=*/false);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].info.name, "shard/client-push");
  EXPECT_EQ(ranked[1].info.name, "shard/xdp");
}

TEST(RankCandidatesTest, WithoutClientOfferPriorityDecides) {
  DefaultPolicy policy;
  auto client_push =
      impl("shard", "shard/client-push", EndpointConstraint::client,
           Scope::application, 5);
  auto xdp = impl("shard", "shard/xdp", EndpointConstraint::server,
                  Scope::host, 10);
  auto fallback = impl("shard", "shard/fallback", EndpointConstraint::server,
                       Scope::application, 0);
  // Client offers nothing: client-push is filtered (endpoints=client
  // requires a client factory), xdp beats fallback on priority.
  auto ranked =
      rank_candidates(ChunnelSpec("shard"), {}, {client_push, xdp, fallback},
                      {}, policy, false);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].info.name, "shard/xdp");
  EXPECT_EQ(ranked[1].info.name, "shard/fallback");
}

TEST(RankCandidatesTest, BothEndpointConstraintNeedsBothSides) {
  DefaultPolicy policy;
  auto arq = impl("reliable", "reliable/arq", EndpointConstraint::both);
  EXPECT_TRUE(rank_candidates(ChunnelSpec("reliable"), {}, {arq}, {}, policy,
                              true)
                  .empty());
  EXPECT_TRUE(rank_candidates(ChunnelSpec("reliable"), {arq}, {}, {}, policy,
                              true)
                  .empty());
  EXPECT_EQ(rank_candidates(ChunnelSpec("reliable"), {arq}, {arq}, {}, policy,
                            true)
                .size(),
            1u);
}

TEST(RankCandidatesTest, HostScopedBothEndsRequiresSameHost) {
  DefaultPolicy policy;
  auto hw = impl("x", "x/hw", EndpointConstraint::both, Scope::host, 10);
  EXPECT_TRUE(
      rank_candidates(ChunnelSpec("x"), {hw}, {hw}, {}, policy, false).empty());
  EXPECT_EQ(
      rank_candidates(ChunnelSpec("x"), {hw}, {hw}, {}, policy, true).size(),
      1u);
}

TEST(RankCandidatesTest, ScopeConstraintFiltersWiderImpls) {
  DefaultPolicy policy;
  auto rack_impl = impl("m", "m/switch", EndpointConstraint::server,
                        Scope::rack, 20);
  auto app_impl = impl("m", "m/sw", EndpointConstraint::server,
                       Scope::application, 0);
  ChunnelSpec host_constrained("m", ChunnelArgs(), Scope::host);
  auto ranked = rank_candidates(host_constrained, {}, {rack_impl, app_impl},
                                {}, policy, true);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].info.name, "m/sw");
}

TEST(RankCandidatesTest, NetworkProvidedServerImplIsUsable) {
  DefaultPolicy policy;
  auto offload = impl("m", "m/switch:sim://g:7", EndpointConstraint::server,
                      Scope::rack, 20);
  auto ranked = rank_candidates(ChunnelSpec("m"), {}, {}, {offload}, policy,
                                false);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_TRUE(ranked[0].network_provided);
}

TEST(RankCandidatesTest, SoftwareOnlyPolicyForbidsOffloads) {
  SoftwareOnlyPolicy policy;
  auto hw = impl("e", "e/nic", EndpointConstraint::server, Scope::host, 10);
  auto sw = impl("e", "e/sw", EndpointConstraint::server, Scope::application);
  auto ranked = rank_candidates(ChunnelSpec("e"), {}, {hw, sw}, {}, policy,
                                true);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].info.name, "e/sw");
}

TEST(RankCandidatesTest, DeterministicTieBreakByName) {
  DefaultPolicy policy;
  auto a = impl("t", "t/aaa", EndpointConstraint::server);
  auto b = impl("t", "t/bbb", EndpointConstraint::server);
  auto ranked = rank_candidates(ChunnelSpec("t"), {}, {b, a}, {}, policy, true);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].info.name, "t/aaa");
}

// --- negotiate_server ---

struct NegotiationFixture : ::testing::Test {
  void SetUp() override {
    ASSERT_TRUE(registry
                    .register_impl(std::make_shared<PassthroughChunnel>(impl(
                        "reliable", "reliable/arq", EndpointConstraint::both)))
                    .ok());
  }

  HelloMsg hello_offering_reliable() {
    HelloMsg h;
    h.endpoint_name = "cli";
    h.host_id = "host-a";
    h.process_id = "p1";
    h.offers["reliable"] = {
        impl("reliable", "reliable/arq", EndpointConstraint::both)};
    return h;
  }

  Registry registry;
  DiscoveryState discovery;
  DefaultPolicy policy;
  std::map<std::string, ChunnelArgs> ads;
};

TEST_F(NegotiationFixture, SelectsCommonImplementation) {
  std::vector<ChunnelSpec> chain{ChunnelSpec("reliable")};
  auto r = negotiate_server(chain, hello_offering_reliable(), registry,
                            discovery, policy, ads, "host-b");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().chain.size(), 1u);
  EXPECT_EQ(r.value().chain[0].impl_name, "reliable/arq");
}

TEST_F(NegotiationFixture, FailsWithoutAnyImplementation) {
  std::vector<ChunnelSpec> chain{ChunnelSpec("exotic")};
  auto r = negotiate_server(chain, hello_offering_reliable(), registry,
                            discovery, policy, ads, "host-b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::incompatible);
}

TEST_F(NegotiationFixture, ClientDagMustMatchTypes) {
  std::vector<ChunnelSpec> chain{ChunnelSpec("reliable")};
  HelloMsg h = hello_offering_reliable();
  h.dag = wrap(ChunnelSpec("reliable"));
  EXPECT_TRUE(negotiate_server(chain, h, registry, discovery, policy, ads,
                               "host-b")
                  .ok());
  h.dag = wrap(ChunnelSpec("compress"));
  auto bad = negotiate_server(chain, h, registry, discovery, policy, ads,
                              "host-b");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::incompatible);
  h.dag = wrap(ChunnelSpec("reliable"), ChunnelSpec("compress"));
  EXPECT_FALSE(negotiate_server(chain, h, registry, discovery, policy, ads,
                                "host-b")
                   .ok());
}

TEST_F(NegotiationFixture, AdvertisementsMergeIntoArgs) {
  std::vector<ChunnelSpec> chain{ChunnelSpec("reliable")};
  ads["reliable"].set("fastpath_addr", "uds://fp");
  auto r = negotiate_server(chain, hello_offering_reliable(), registry,
                            discovery, policy, ads, "host-b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chain[0].args.get("fastpath_addr").value(), "uds://fp");
}

TEST_F(NegotiationFixture, AppArgsSurviveMergeUnlessOverridden) {
  ChunnelArgs app;
  app.set("window", "8");
  std::vector<ChunnelSpec> chain{ChunnelSpec("reliable", app)};
  auto r = negotiate_server(chain, hello_offering_reliable(), registry,
                            discovery, policy, ads, "host-b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chain[0].args.get_u64("window").value(), 8u);
}

TEST_F(NegotiationFixture, ResourceExhaustionFallsBackToNextCandidate) {
  // An accelerated impl that needs a pool slot, plus the plain one.
  auto hw = impl("reliable", "reliable/toe", EndpointConstraint::server,
                 Scope::host, 50);
  hw.resources = {{"nic.toe", 1}};
  ASSERT_TRUE(
      registry.register_impl(std::make_shared<PassthroughChunnel>(hw)).ok());
  ASSERT_TRUE(discovery.set_pool("nic.toe", 1).ok());

  std::vector<ChunnelSpec> chain{ChunnelSpec("reliable")};
  auto first = negotiate_server(chain, hello_offering_reliable(), registry,
                                discovery, policy, ads, "host-b");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().chain[0].impl_name, "reliable/toe");
  EXPECT_EQ(first.value().resource_allocs.size(), 1u);
  EXPECT_EQ(discovery.pool_in_use("nic.toe"), 1u);

  // Second connection: the engine is taken, fall back to software.
  auto second = negotiate_server(chain, hello_offering_reliable(), registry,
                                 discovery, policy, ads, "host-b");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().chain[0].impl_name, "reliable/arq");

  // Releasing makes the engine available again.
  ASSERT_TRUE(discovery.release(first.value().resource_allocs[0]).ok());
  auto third = negotiate_server(chain, hello_offering_reliable(), registry,
                                discovery, policy, ads, "host-b");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().chain[0].impl_name, "reliable/toe");
}

TEST_F(NegotiationFixture, MessagesRoundTrip) {
  HelloMsg h = hello_offering_reliable();
  h.dag = wrap(ChunnelSpec("reliable"));
  auto h2 = decode_hello(encode_hello(h));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2.value().endpoint_name, h.endpoint_name);
  EXPECT_EQ(h2.value().host_id, h.host_id);
  EXPECT_EQ(h2.value().dag, h.dag);
  ASSERT_EQ(h2.value().offers.size(), 1u);
  EXPECT_EQ(h2.value().offers.at("reliable")[0].name, "reliable/arq");

  AcceptMsg a;
  a.token = 42;
  a.host_id = "srv";
  a.process_id = "p9";
  NegotiatedNode n;
  n.type = "reliable";
  n.impl_name = "reliable/arq";
  n.args.set("k", "v");
  a.chain.push_back(n);
  auto a2 = decode_accept(encode_accept(a));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2.value().token, 42u);
  EXPECT_EQ(a2.value().chain, a.chain);

  RejectMsg rej{static_cast<uint8_t>(Errc::incompatible), "no way"};
  auto r2 = decode_reject(encode_reject(rej));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().reason, "no way");
}

TEST_F(NegotiationFixture, MalformedMessagesRejected) {
  EXPECT_FALSE(decode_hello(to_bytes("junk")).ok());
  EXPECT_FALSE(decode_accept(Bytes{}).ok());
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

// --- §6 optimizer integration ---

ImplInfo offloadable_impl(std::string type, std::string name,
                          std::set<std::string> commutes) {
  ImplInfo i = impl(std::move(type), std::move(name),
                    EndpointConstraint::both, Scope::host, 10);
  i.props["offloadable"] = "true";
  std::string csv;
  for (const auto& c : commutes) csv += (csv.empty() ? "" : ",") + c;
  i.props["commutes_with"] = csv;
  return i;
}

ImplInfo host_impl(std::string type, std::string name,
                   std::set<std::string> commutes) {
  ImplInfo i = impl(std::move(type), std::move(name),
                    EndpointConstraint::both, Scope::application, 0);
  i.props["offloadable"] = "false";
  std::string csv;
  for (const auto& c : commutes) csv += (csv.empty() ? "" : ",") + c;
  i.props["commutes_with"] = csv;
  return i;
}

struct OptimizedNegotiationFixture : ::testing::Test {
  void add(const ImplInfo& info) {
    ASSERT_TRUE(
        registry.register_impl(std::make_shared<PassthroughChunnel>(info))
            .ok());
    hello.offers[info.type].push_back(info);
  }

  void SetUp() override {
    hello.endpoint_name = "cli";
    hello.host_id = "h";
    hello.process_id = "p";
  }

  Registry registry;
  DiscoveryState discovery;
  DefaultPolicy policy;
  HelloMsg hello;
  std::map<std::string, ChunnelArgs> ads;
};

TEST_F(OptimizedNegotiationFixture, ReordersNicAdjacentStages) {
  // encrypt |> frame |> tcpish with encrypt/tcpish on the NIC: the
  // optimizer must push frame outermost (the paper's 3x -> 1x case).
  add(offloadable_impl("encrypt", "encrypt/nic", {"frame"}));
  add(host_impl("frame", "frame/sw", {"encrypt", "tcpish"}));
  add(offloadable_impl("tcpish", "tcpish/nic", {"frame"}));

  std::vector<ChunnelSpec> chain{ChunnelSpec("encrypt"), ChunnelSpec("frame"),
                                 ChunnelSpec("tcpish")};
  DagOptimizer opt;
  auto r = negotiate_server(chain, hello, registry, discovery, policy, ads,
                            "h", &opt);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().chain.size(), 3u);
  EXPECT_EQ(r.value().chain[0].type, "frame");
  EXPECT_EQ(r.value().chain[1].type, "encrypt");
  EXPECT_EQ(r.value().chain[2].type, "tcpish");
}

TEST_F(OptimizedNegotiationFixture, NullOptimizerKeepsOrder) {
  add(offloadable_impl("encrypt", "encrypt/nic", {"frame"}));
  add(host_impl("frame", "frame/sw", {"encrypt", "tcpish"}));
  add(offloadable_impl("tcpish", "tcpish/nic", {"frame"}));
  std::vector<ChunnelSpec> chain{ChunnelSpec("encrypt"), ChunnelSpec("frame"),
                                 ChunnelSpec("tcpish")};
  auto r = negotiate_server(chain, hello, registry, discovery, policy, ads,
                            "h", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chain[0].type, "encrypt");
}

TEST_F(OptimizedNegotiationFixture, MergesWhenMergedImplExists) {
  add(host_impl("encrypt", "encrypt/sw", {"frame"}));
  add(host_impl("frame", "frame/sw", {"encrypt", "tcpish"}));
  add(host_impl("tcpish", "tcpish/sw", {"frame"}));
  add(offloadable_impl("tls", "tls/nic", {"frame"}));

  ChunnelSpec enc("encrypt");
  enc.args.set_u64("key", 99);
  std::vector<ChunnelSpec> chain{enc, ChunnelSpec("frame"),
                                 ChunnelSpec("tcpish")};
  DagOptimizer opt;
  opt.add_merge_rule({"encrypt", "tcpish", "tls", true});
  auto r = negotiate_server(chain, hello, registry, discovery, policy, ads,
                            "h", &opt);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().chain.size(), 2u);
  EXPECT_EQ(r.value().chain[0].type, "frame");
  EXPECT_EQ(r.value().chain[1].type, "tls");
  // The cipher key from the absorbed encrypt node survives the merge.
  EXPECT_EQ(r.value().chain[1].args.get_u64("key").value(), 99u);
}

TEST_F(OptimizedNegotiationFixture, RewriteAbandonedWithoutMergedImpl) {
  add(host_impl("encrypt", "encrypt/sw", {"frame"}));
  add(host_impl("frame", "frame/sw", {"encrypt", "tcpish"}));
  add(host_impl("tcpish", "tcpish/sw", {"frame"}));
  // No "tls" implementation anywhere: the rewritten chain cannot bind.
  std::vector<ChunnelSpec> chain{ChunnelSpec("encrypt"), ChunnelSpec("frame"),
                                 ChunnelSpec("tcpish")};
  DagOptimizer opt;
  opt.add_merge_rule({"encrypt", "tcpish", "tls", true});
  auto r = negotiate_server(chain, hello, registry, discovery, policy, ads,
                            "h", &opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().chain.size(), 3u);  // original binding kept
  EXPECT_EQ(r.value().chain[0].type, "encrypt");
}

TEST_F(OptimizedNegotiationFixture, RewriteReleasesSupersededResources) {
  // The tentatively-chosen encrypt/nic holds a crypto engine; after the
  // merge rewrite wins, that reservation must be returned.
  ASSERT_TRUE(discovery.set_pool("nic.engines", 1).ok());
  ImplInfo enc_nic = offloadable_impl("encrypt", "encrypt/nic", {"frame"});
  enc_nic.resources = {{"nic.engines", 1}};
  add(enc_nic);
  add(host_impl("frame", "frame/sw", {"encrypt", "tcpish"}));
  add(host_impl("tcpish", "tcpish/sw", {"frame"}));
  add(offloadable_impl("tls", "tls/nic", {"frame"}));

  std::vector<ChunnelSpec> chain{ChunnelSpec("encrypt"), ChunnelSpec("frame"),
                                 ChunnelSpec("tcpish")};
  DagOptimizer opt;
  opt.add_merge_rule({"encrypt", "tcpish", "tls", true});
  auto r = negotiate_server(chain, hello, registry, discovery, policy, ads,
                            "h", &opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().chain.back().type, "tls");
  EXPECT_EQ(discovery.pool_in_use("nic.engines"), 0u);
}

}  // namespace
}  // namespace bertha

namespace bertha {
namespace {

TEST(RankCandidatesTest, InstanceScopingFiltersForeignOffloads) {
  DefaultPolicy policy;
  auto for_a = impl("ordered_mcast", "ordered_mcast/switch:g-a",
                    EndpointConstraint::server, Scope::rack, 20);
  for_a.props["instance"] = "grp-a";
  auto for_b = impl("ordered_mcast", "ordered_mcast/software:g-b",
                    EndpointConstraint::server, Scope::global, 5);
  for_b.props["instance"] = "grp-b";
  auto generic = impl("ordered_mcast", "ordered_mcast/any",
                      EndpointConstraint::server, Scope::global, 1);

  ChunnelSpec spec_b("ordered_mcast");
  spec_b.args.set("instance", "grp-b");
  auto ranked = rank_candidates(spec_b, {}, {}, {for_a, for_b, generic},
                                policy, false);
  ASSERT_EQ(ranked.size(), 2u);
  // grp-a's switch is excluded despite its priority; the
  // instance-agnostic impl remains eligible.
  EXPECT_EQ(ranked[0].info.name, "ordered_mcast/software:g-b");
  EXPECT_EQ(ranked[1].info.name, "ordered_mcast/any");

  // A spec with no instance requirement rejects instance-bound entries
  // (they serve someone else's group) but accepts generic ones.
  ChunnelSpec spec_any("ordered_mcast");
  auto ranked_any =
      rank_candidates(spec_any, {}, {}, {for_a, for_b, generic}, policy, false);
  ASSERT_EQ(ranked_any.size(), 1u);
  EXPECT_EQ(ranked_any[0].info.name, "ordered_mcast/any");
}

// --- renegotiate_server (live transitions) ---

struct RenegotiationFixture : NegotiationFixture {
  // Registers the accelerated impl (one pool slot) alongside the
  // software one from the base fixture.
  void register_toe() {
    auto hw = impl("reliable", "reliable/toe", EndpointConstraint::server,
                   Scope::host, 50);
    hw.resources = {{"nic.toe", 1}};
    ASSERT_TRUE(
        registry.register_impl(std::make_shared<PassthroughChunnel>(hw)).ok());
    ASSERT_TRUE(discovery.set_pool("nic.toe", 1).ok());
  }

  std::vector<NodeAlloc> zip_allocs(const NegotiationResult& r) {
    std::vector<NodeAlloc> out;
    for (size_t i = 0; i < r.resource_allocs.size(); i++)
      out.push_back({r.alloc_nodes[i], r.resource_allocs[i]});
    return out;
  }

  const std::vector<ChunnelSpec> chain{ChunnelSpec("reliable")};
};

TEST_F(RenegotiationFixture, KeepsIncumbentWithoutReacquiring) {
  register_toe();
  auto first = negotiate_server(chain, hello_offering_reliable(), registry,
                                discovery, policy, ads, "host-b");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().chain[0].impl_name, "reliable/toe");
  ASSERT_EQ(discovery.pool_in_use("nic.toe"), 1u);

  // The pool is exhausted by the incumbent itself. Re-running selection
  // must not evict it by failing to re-acquire its own slot.
  auto r = renegotiate_server(chain, first.value().chain,
                              zip_allocs(first.value()),
                              hello_offering_reliable(), registry, discovery,
                              policy, ads, "host-b");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_FALSE(r.value().changed);
  EXPECT_EQ(r.value().chain[0].impl_name, "reliable/toe");
  ASSERT_EQ(r.value().kept_allocs.size(), 1u);
  EXPECT_EQ(r.value().kept_allocs[0].alloc_id,
            first.value().resource_allocs[0]);
  EXPECT_TRUE(r.value().new_allocs.empty());
  EXPECT_TRUE(r.value().retired_allocs.empty());
  EXPECT_EQ(discovery.pool_in_use("nic.toe"), 1u);
}

TEST_F(RenegotiationFixture, BanForcesFallbackButDefersRelease) {
  register_toe();
  auto first = negotiate_server(chain, hello_offering_reliable(), registry,
                                discovery, policy, ads, "host-b");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().chain[0].impl_name, "reliable/toe");

  auto r = renegotiate_server(chain, first.value().chain,
                              zip_allocs(first.value()),
                              hello_offering_reliable(), registry, discovery,
                              policy, ads, "host-b",
                              {{"reliable", "reliable/toe"}});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r.value().changed);
  EXPECT_EQ(r.value().chain[0].impl_name, "reliable/arq");
  ASSERT_EQ(r.value().retired_allocs.size(), 1u);
  EXPECT_EQ(r.value().retired_allocs[0], first.value().resource_allocs[0]);
  EXPECT_TRUE(r.value().kept_allocs.empty());

  // Drain-before-release: renegotiation itself must not free the slot;
  // the caller releases retired_allocs only after the old chain drains.
  EXPECT_EQ(discovery.pool_in_use("nic.toe"), 1u);
  ASSERT_TRUE(discovery.release(r.value().retired_allocs[0]).ok());
  EXPECT_EQ(discovery.pool_in_use("nic.toe"), 0u);
}

TEST_F(RenegotiationFixture, UpgradesWhenBetterImplAppears) {
  // Start on software; the accelerated impl registers afterwards.
  auto first = negotiate_server(chain, hello_offering_reliable(), registry,
                                discovery, policy, ads, "host-b");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().chain[0].impl_name, "reliable/arq");
  register_toe();

  auto r = renegotiate_server(chain, first.value().chain,
                              zip_allocs(first.value()),
                              hello_offering_reliable(), registry, discovery,
                              policy, ads, "host-b");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r.value().changed);
  EXPECT_EQ(r.value().chain[0].impl_name, "reliable/toe");
  ASSERT_EQ(r.value().new_allocs.size(), 1u);
  EXPECT_EQ(r.value().new_allocs[0].node, 0u);
  EXPECT_TRUE(r.value().retired_allocs.empty());
  EXPECT_EQ(discovery.pool_in_use("nic.toe"), 1u);
}

}  // namespace
}  // namespace bertha
