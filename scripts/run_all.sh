#!/usr/bin/env bash
# Build, test, and regenerate every paper figure.
#
#   scripts/run_all.sh          full run (the archived outputs)
#   QUICK=1 scripts/run_all.sh  smoke variant (~30s of benches)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" --output-on-failure | tee test_output.txt

if [ "${QUICK:-0}" = "1" ]; then export BERTHA_BENCH_QUICK=1; fi
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "### $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
echo "done: test_output.txt + bench_output.txt written"
