// MetricsRegistry: one snapshot call for every counter in the runtime.
//
// Two ways in:
//  - Owned instruments: counter()/gauge() hand out shared atomics the
//    caller bumps directly; observe() feeds a named log-bucketed
//    histogram. All show up in snapshot() under their name.
//  - Providers: attach_provider() registers a closure that folds an
//    existing stats structure (FaultStats, TransitionStats, telemetry
//    cells) into the snapshot at snapshot() time. This is how legacy
//    ad-hoc counters migrate without churning their call sites — the
//    original accessors remain the source of truth and the registry is
//    a thin aggregation view over them.
//
// Thread-safety: instruments are atomics; registration and snapshotting
// take the registry mutex. Providers must be safe to call from any
// thread (they read atomics / take their own locks).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace bertha {

class MetricsRegistry {
 public:
  struct HistogramSummary {
    uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
  };

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;
  };

  // A provider folds externally-owned stats into the snapshot. It must
  // capture shared ownership of whatever it reads.
  using Provider = std::function<void(Snapshot&)>;

  using CounterPtr = std::shared_ptr<std::atomic<uint64_t>>;
  using GaugePtr = std::shared_ptr<std::atomic<int64_t>>;

  // Returns the named counter, creating it on first use. Stable for the
  // registry's lifetime; bump with fetch_add.
  CounterPtr counter(const std::string& name);
  GaugePtr gauge(const std::string& name);

  // Adds one sample to the named histogram (log-bucketed; summarized as
  // count/mean/p50/p95 in the snapshot).
  void observe(const std::string& name, double value);

  // `name` is only for diagnostics/replacement: re-attaching under the
  // same name replaces the previous provider.
  void attach_provider(const std::string& name, Provider p);

  Snapshot snapshot() const;

  // "name value" lines, sorted; histograms as name{count,mean,p50,p95}.
  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CounterPtr> counters_;
  std::map<std::string, GaugePtr> gauges_;
  std::map<std::string, LogHistogram> histograms_;
  std::map<std::string, Provider> providers_;
};

using MetricsPtr = std::shared_ptr<MetricsRegistry>;

class Tracer;

// Standard providers for the runtime's pre-existing counter structures.
// Each captures shared ownership; the original accessors remain the
// source of truth. (The transition-stats provider lives in
// core/renegotiation.{hpp,cpp} next to its types.)
void attach_fault_stats_provider(MetricsRegistry& m, FaultStatsPtr stats);
void attach_tracer_provider(MetricsRegistry& m, std::shared_ptr<Tracer> tracer);

// Null-safe counter bump for optional registries.
inline void metrics_add(const MetricsPtr& m, const std::string& name,
                        uint64_t delta = 1) {
  if (m) m->counter(name)->fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace bertha
