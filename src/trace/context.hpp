// TraceContext: the wire-propagated half of the tracing subsystem.
//
// A context is a (trace id, parent span id) pair. It rides as an
// *optional tail* appended to message payloads (hello, transition,
// transition_cancel, discovery requests): a magic byte 0x54 ('T')
// followed by two varints. Message decoders in this codebase never
// require the reader to be at_end, so peers that don't know about the
// tail simply ignore it, and peers that do call read_trace_context_tail
// after the last mandatory field.
//
// Decoding is deliberately tolerant: a truncated, garbled, or absent
// tail yields an empty (invalid) context and NEVER fails the enclosing
// message. Tracing is observability, not protocol — a bad context must
// not reject an otherwise-valid frame.
#pragma once

#include <cstdint>

#include "serialize/codec.hpp"

namespace bertha {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 means "no context"
  uint64_t span_id = 0;   // the sender-side parent span

  bool valid() const { return trace_id != 0; }
};

inline constexpr uint8_t kTraceCtxMagic = 0x54;  // 'T'

// Appends the context tail; appends nothing for an invalid context, so
// untraced peers produce byte-identical frames to the pre-tracing wire
// format (strict-prefix truncation tests stay meaningful).
inline void put_trace_context(Writer& w, const TraceContext& ctx) {
  if (!ctx.valid()) return;
  w.put_u8(kTraceCtxMagic);
  w.put_varint(ctx.trace_id);
  w.put_varint(ctx.span_id);
}

// Reads a context tail if one is present and well-formed; otherwise
// returns an empty context. Never errors.
inline TraceContext read_trace_context_tail(Reader& r) {
  if (r.at_end()) return {};
  auto magic = r.get_u8();
  if (!magic.ok() || magic.value() != kTraceCtxMagic) return {};
  auto tid = r.get_varint();
  if (!tid.ok()) return {};
  auto sid = r.get_varint();
  if (!sid.ok()) return {};
  TraceContext ctx;
  ctx.trace_id = tid.value();
  ctx.span_id = sid.value();
  return ctx;
}

}  // namespace bertha
