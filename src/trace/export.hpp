// Trace exporters.
//
//  - export_chrome_trace: Chrome trace-event JSON ("X" complete events)
//    loadable in chrome://tracing and Perfetto. Each trace id becomes a
//    pid row, each recording thread a tid row; ids and tags ride in
//    per-event args.
//  - export_text_summary: human-readable span tree per trace (indented,
//    with durations and tags) followed by a per-span-name latency table
//    (count / p50 / p95 / mean, microseconds).
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace bertha {

std::string export_chrome_trace(const std::vector<SpanRecord>& spans);

std::string export_text_summary(const std::vector<SpanRecord>& spans);

}  // namespace bertha
