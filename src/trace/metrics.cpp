#include "trace/metrics.hpp"

#include <sstream>

#include "trace/trace.hpp"

namespace bertha {

MetricsRegistry::CounterPtr MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_shared<std::atomic<uint64_t>>(0);
  return slot;
}

MetricsRegistry::GaugePtr MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_shared<std::atomic<int64_t>>(0);
  return slot;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  histograms_[name].add(value);
}

void MetricsRegistry::attach_provider(const std::string& name, Provider p) {
  std::lock_guard<std::mutex> lk(mu_);
  providers_[name] = std::move(p);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, c] : counters_)
      snap.counters[name] = c->load(std::memory_order_relaxed);
    for (const auto& [name, g] : gauges_)
      snap.gauges[name] = static_cast<double>(g->load(std::memory_order_relaxed));
    for (const auto& [name, h] : histograms_) {
      HistogramSummary s;
      s.count = h.count();
      s.mean = h.mean();
      s.p50 = h.percentile(50);
      s.p95 = h.percentile(95);
      snap.histograms[name] = s;
    }
    providers.reserve(providers_.size());
    for (const auto& [name, p] : providers_) providers.push_back(p);
  }
  // Providers run outside the registry lock: they may take their own
  // locks (e.g. TransitionStatsSink::snapshot) and must not deadlock
  // against a concurrent counter() registration.
  for (const auto& p : providers) p(snap);
  return snap;
}

void attach_fault_stats_provider(MetricsRegistry& m, FaultStatsPtr stats) {
  if (!stats) return;
  m.attach_provider("fault_stats", [stats](MetricsRegistry::Snapshot& snap) {
    auto& c = snap.counters;
    c["fault.rpc_retries"] = stats->rpc_retries.load();
    c["fault.rpc_failures"] = stats->rpc_failures.load();
    c["fault.dedup_hits"] = stats->dedup_hits.load();
    c["fault.lease_grants"] = stats->lease_grants.load();
    c["fault.lease_renewals"] = stats->lease_renewals.load();
    c["fault.lease_expiries"] = stats->lease_expiries.load();
    c["fault.heartbeats_sent"] = stats->heartbeats_sent.load();
    c["fault.lease_recoveries"] = stats->lease_recoveries.load();
    c["fault.degraded_entries"] = stats->degraded_entries.load();
    c["fault.degraded_exits"] = stats->degraded_exits.load();
    c["fault.catalogue_hits"] = stats->catalogue_hits.load();
    c["fault.watch_batches"] = stats->watch_batches.load();
    c["fault.watch_resubscribes"] = stats->watch_resubscribes.load();
    c["fault.watch_snapshots"] = stats->watch_snapshots.load();
    c["fault.server_failovers"] = stats->server_failovers.load();
    c["ctrl.view_change"] = stats->view_changes.load();
    c["ctrl.catchup"] = stats->catchups.load();
    c["ctrl.gap_miss"] = stats->gap_misses.load();
    c["ctrl.reshard.fences"] = stats->reshard_fences.load();
    c["ctrl.reshard.installs"] = stats->reshard_installs.load();
    c["ctrl.reshard.cutovers"] = stats->reshard_cutovers.load();
    c["ctrl.reshard.forwards"] = stats->reshard_forwards.load();
  });
}

void attach_tracer_provider(MetricsRegistry& m,
                            std::shared_ptr<Tracer> tracer) {
  if (!tracer) return;
  m.attach_provider("tracer", [tracer](MetricsRegistry::Snapshot& snap) {
    snap.counters["trace.spans_recorded"] = tracer->span_count();
    snap.counters["trace.spans_dropped"] = tracer->dropped();
  });
}

std::string MetricsRegistry::to_string() const {
  Snapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) os << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges) os << name << " " << v << "\n";
  for (const auto& [name, h] : snap.histograms)
    os << name << "{count=" << h.count << " mean=" << h.mean
       << " p50=" << h.p50 << " p95=" << h.p95 << "}\n";
  return os.str();
}

}  // namespace bertha
