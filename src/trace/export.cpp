#include "trace/export.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/stats.hpp"

namespace bertha {

namespace {

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

std::string format_us(uint64_t v_ns) {
  // Microseconds with nanosecond precision, no scientific notation.
  std::ostringstream os;
  os << v_ns / 1000 << "." << std::setw(3) << std::setfill('0') << v_ns % 1000;
  return os.str();
}

}  // namespace

std::string export_chrome_trace(const std::vector<SpanRecord>& spans) {
  // Small sequential pids keep the viewer's process rows readable; the
  // real 64-bit ids ride in args.
  std::map<uint64_t, int> trace_pid;
  for (const auto& s : spans)
    trace_pid.emplace(s.trace_id, static_cast<int>(trace_pid.size()) + 1);

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"cat\":\"bertha\",\"ph\":\"X\",\"ts\":" << format_us(s.start_ns)
       << ",\"dur\":" << format_us(s.duration_ns())
       << ",\"pid\":" << trace_pid[s.trace_id]
       << ",\"tid\":" << s.thread_index << ",\"args\":{\"trace_id\":\""
       << s.trace_id << "\",\"span_id\":\"" << s.span_id
       << "\",\"parent_id\":\"" << s.parent_id << "\"";
    for (const auto& [k, v] : s.tags) {
      os << ",\"";
      json_escape(os, k);
      os << "\":\"";
      json_escape(os, v);
      os << "\"";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string export_text_summary(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;

  // Index spans by id and group children under parents per trace.
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const auto& s : spans) by_id[s.span_id] = &s;
  std::map<uint64_t, std::vector<const SpanRecord*>> children;
  std::map<uint64_t, std::vector<const SpanRecord*>> roots;  // by trace id
  for (const auto& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id))
      children[s.parent_id].push_back(&s);
    else
      roots[s.trace_id].push_back(&s);  // true roots + orphaned remotes
  }

  std::function<void(const SpanRecord*, int)> emit = [&](const SpanRecord* s,
                                                         int depth) {
    os << std::string(static_cast<size_t>(depth) * 2, ' ') << s->name << "  "
       << format_us(s->duration_ns()) << "us";
    for (const auto& [k, v] : s->tags) os << "  " << k << "=" << v;
    os << "\n";
    for (const auto* c : children[s->span_id]) emit(c, depth + 1);
  };

  for (const auto& [trace_id, trace_roots] : roots) {
    os << "trace " << trace_id << ":\n";
    for (const auto* r : trace_roots) emit(r, 1);
  }

  // Per-name latency table.
  std::map<std::string, SampleSet> by_name;
  for (const auto& s : spans)
    by_name[s.name].add(static_cast<double>(s.duration_ns()) / 1000.0);
  if (!by_name.empty()) {
    os << "phase latency (us):\n";
    for (const auto& [name, set] : by_name) {
      os << "  " << name << "  n=" << set.size() << " p50="
         << set.percentile(50) << " p95=" << set.percentile(95) << "\n";
    }
  }
  return os.str();
}

}  // namespace bertha
