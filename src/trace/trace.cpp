#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>

namespace bertha {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Per-thread cache of (tracer id -> buffer). A thread usually touches
// one or two tracers (client + server runtime in tests); the cache is
// capped so a test binary creating many tracers on one thread cannot
// grow it without bound.
struct ThreadCacheEntry {
  uint64_t tracer_id = 0;
  uint32_t thread_index = 0;
  std::shared_ptr<void> buf;
};
constexpr size_t kThreadCacheCap = 8;
thread_local std::vector<ThreadCacheEntry> t_bufs;

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer(Options opts)
    : enabled_(opts.enabled),
      sample_every_(opts.sample_every),
      ring_capacity_(opts.ring_capacity == 0 ? 1 : opts.ring_capacity),
      thread_buffer_(opts.thread_buffer == 0 ? 1 : opts.thread_buffer),
      now_fn_(std::move(opts.now_ns)),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

uint64_t Tracer::clock_ns() const {
  return now_fn_ ? now_fn_() : steady_now_ns();
}

Span Tracer::span(std::string_view name, TraceContext parent) {
  Span s;
  if (!enabled_) return s;
  s.tracer_ = this;
  s.rec_.name.assign(name);
  if (parent.valid()) {
    s.rec_.trace_id = parent.trace_id;
    s.rec_.parent_id = parent.span_id;
  } else {
    // Unique across tracers in one process so two runtimes' traces never
    // collide; counter-based so fixed workloads yield fixed ids.
    s.rec_.trace_id = (tracer_id_ << 32) |
                      next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  s.rec_.span_id = (tracer_id_ << 32) |
                   next_span_.fetch_add(1, std::memory_order_relaxed);
  s.rec_.start_ns = clock_ns();
  return s;
}

void Span::finish() {
  if (!tracer_) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  rec_.end_ns = t->clock_ns();
  if (rec_.end_ns < rec_.start_ns) rec_.end_ns = rec_.start_ns;
  t->record(std::move(rec_));
}

std::shared_ptr<Tracer::ThreadBuf> Tracer::buf_for_thread(
    uint32_t* thread_index) {
  for (const auto& e : t_bufs) {
    if (e.tracer_id == tracer_id_) {
      *thread_index = e.thread_index;
      return std::static_pointer_cast<ThreadBuf>(e.buf);
    }
  }
  auto buf = std::make_shared<ThreadBuf>();
  uint32_t index = next_thread_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    bufs_.push_back(buf);
  }
  if (t_bufs.size() >= kThreadCacheCap) t_bufs.clear();
  t_bufs.push_back({tracer_id_, index, buf});
  *thread_index = index;
  return buf;
}

void Tracer::record(SpanRecord&& rec) {
  uint32_t thread_index = 0;
  auto buf = buf_for_thread(&thread_index);
  rec.thread_index = thread_index;
  recorded_.fetch_add(1, std::memory_order_relaxed);

  std::vector<SpanRecord> overflow;
  {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->spans.push_back(std::move(rec));
    if (buf->spans.size() >= thread_buffer_) overflow.swap(buf->spans);
  }
  // Drain outside the buffer lock: mu_ and buffer locks are never nested.
  if (!overflow.empty()) push_ring(std::move(overflow));
}

void Tracer::push_ring(std::vector<SpanRecord> batch) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& rec : batch) {
    if (ring_.size() >= ring_capacity_) {
      ring_.pop_front();  // keep the most recent spans under load
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    ring_.push_back(std::move(rec));
  }
}

std::vector<SpanRecord> Tracer::collect() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    bufs = bufs_;
  }
  std::vector<SpanRecord> out;
  for (auto& buf : bufs) {
    std::lock_guard<std::mutex> lk(buf->mu);
    for (auto& rec : buf->spans) out.push_back(std::move(rec));
    buf->spans.clear();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& rec : ring_) out.push_back(std::move(rec));
    ring_.clear();
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.span_id < b.span_id;
  });
  return out;
}

}  // namespace bertha
