// Span-based tracing with lock-cheap per-thread buffers.
//
// A Tracer hands out Spans (RAII: started on creation, recorded on
// finish/destruction). Finished spans land in a per-thread buffer whose
// only lock is uncontended in steady state; full buffers drain into a
// bounded global ring that drops the oldest spans under load. collect()
// drains everything and returns spans ordered by start time.
//
// Determinism: Options::now_ns lets tests drive span timestamps from a
// simulated clock; span and trace ids come from per-tracer counters, so
// a fixed workload yields a fixed trace.
//
// Cost model: a disabled tracer returns inert Spans — no allocation, no
// clock read, no locking (the "allocates nothing" property is asserted
// in tests/trace_test.cpp with a counting operator new). An enabled
// tracer costs one clock read + one buffer push per span; per-message
// path spans are additionally sampled via sample_path() so steady-state
// data traffic does not trace every message.
//
// Spans must not outlive their Tracer (the Runtime owns the tracer for
// exactly this reason).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/context.hpp"

namespace bertha {

class Tracer;

// One finished span. `tags` are flat key/value annotations (epoch,
// attempt number, dedup-hit flags, ...).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t thread_index = 0;  // per-tracer logical thread number
  std::string name;
  std::vector<std::pair<std::string, std::string>> tags;

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

// RAII span handle. Default-constructed (or from a disabled tracer) it
// is inert: every member call is a no-op and nothing is allocated.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : tracer_(o.tracer_), rec_(std::move(o.rec_)) {
    o.tracer_ = nullptr;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      finish();
      tracer_ = o.tracer_;
      rec_ = std::move(o.rec_);
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ~Span() { finish(); }

  bool active() const { return tracer_ != nullptr; }

  // The context a child span (local or remote) should parent to.
  TraceContext context() const {
    return active() ? TraceContext{rec_.trace_id, rec_.span_id}
                    : TraceContext{};
  }

  void tag(std::string_view key, std::string_view value) {
    if (active()) rec_.tags.emplace_back(std::string(key), std::string(value));
  }
  void tag_u64(std::string_view key, uint64_t value) {
    if (active()) rec_.tags.emplace_back(std::string(key), std::to_string(value));
  }

  // Records the span; idempotent.
  void finish();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

class Tracer {
 public:
  struct Options {
    bool enabled = true;
    // Record every Nth per-message path span (sample_path()); 0 disables
    // path spans entirely while keeping control-plane spans.
    uint32_t sample_every = 64;
    size_t ring_capacity = 8192;  // global ring; oldest dropped when full
    size_t thread_buffer = 32;    // spans buffered per thread before drain
    // Clock override for deterministic tests; defaults to steady_clock.
    std::function<uint64_t()> now_ns;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options opts);
  ~Tracer();

  bool enabled() const { return enabled_; }

  // Starts a span. With a valid parent the span joins that trace;
  // otherwise it roots a new one. Inert when disabled.
  Span span(std::string_view name, TraceContext parent = {});

  // True for 1-in-sample_every calls per thread; gates per-message path
  // spans. Atomic-free: a thread-local countdown (the first call on each
  // thread samples, then every Nth), so the unsampled fast path is a TLS
  // read and a decrement. Deterministic for a fixed per-thread workload.
  bool sample_path() {
    if (!enabled_ || sample_every_ == 0) return false;
    struct PathState {
      const Tracer* owner = nullptr;
      uint32_t countdown = 0;
    };
    static thread_local PathState st;
    if (st.owner != this) {
      st.owner = this;
      st.countdown = 1;
    }
    if (--st.countdown == 0) {
      st.countdown = sample_every_;
      return true;
    }
    return false;
  }

  uint64_t clock_ns() const;

  // Drains every thread buffer and the ring; returns spans sorted by
  // (start_ns, span_id). Subsequent calls see only new spans.
  std::vector<SpanRecord> collect();

  size_t span_count() const { return recorded_.load(std::memory_order_relaxed); }
  size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  friend class Span;
  struct ThreadBuf {
    std::mutex mu;
    std::vector<SpanRecord> spans;
  };

  void record(SpanRecord&& rec);
  void push_ring(std::vector<SpanRecord> batch);
  std::shared_ptr<ThreadBuf> buf_for_thread(uint32_t* thread_index);

  const bool enabled_;
  const uint32_t sample_every_;
  const size_t ring_capacity_;
  const size_t thread_buffer_;
  const std::function<uint64_t()> now_fn_;
  const uint64_t tracer_id_;  // globally unique; keys the thread cache

  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<size_t> recorded_{0};
  std::atomic<size_t> dropped_{0};
  std::atomic<uint32_t> next_thread_{0};

  mutable std::mutex mu_;  // guards bufs_ and ring_ (never held with a buf mu)
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::deque<SpanRecord> ring_;
};

using TracerPtr = std::shared_ptr<Tracer>;

// Null-safe span start: inert when the tracer is absent or disabled.
inline Span trace_span(const TracerPtr& t, std::string_view name,
                       TraceContext parent = {}) {
  if (t && t->enabled()) return t->span(name, parent);
  return Span{};
}

// --- Ambient context -------------------------------------------------
//
// The current thread's trace context. Lets deep call chains (policy ->
// discovery client -> RPC encode) pick up the caller's span without
// threading a TraceContext through every signature. SpanScope installs
// a span's context for a lexical region and restores the previous one.

namespace trace_detail {
// Inline thread_local so the accessors compile to a direct TLS load —
// the hop wrappers read this on every message, sampled or not.
inline thread_local TraceContext g_ambient_ctx;
}  // namespace trace_detail

inline TraceContext current_trace_context() {
  return trace_detail::g_ambient_ctx;
}
inline void set_current_trace_context(TraceContext ctx) {
  trace_detail::g_ambient_ctx = ctx;
}

class SpanScope {
 public:
  explicit SpanScope(const Span& s) : SpanScope(s.context()) {}
  explicit SpanScope(TraceContext ctx) : prev_(current_trace_context()) {
    if (ctx.valid()) set_current_trace_context(ctx);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { set_current_trace_context(prev_); }

 private:
  TraceContext prev_;
};

}  // namespace bertha
