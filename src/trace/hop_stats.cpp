#include "trace/hop_stats.hpp"

#include <bit>
#include <cmath>

namespace bertha {

namespace {

int bucket_for(uint64_t v) {
  if (v == 0) return 0;
  int oct = 63 - std::countl_zero(v);
  if (oct >= AtomicHistogram::kOctaves) oct = AtomicHistogram::kOctaves - 1;
  // Next kSubBits bits below the leading one select the sub-bucket.
  int sub = oct >= AtomicHistogram::kSubBits
                ? static_cast<int>((v >> (oct - AtomicHistogram::kSubBits)) &
                                   ((1u << AtomicHistogram::kSubBits) - 1))
                : 0;
  return (oct << AtomicHistogram::kSubBits) | sub;
}

// Representative value: the middle of the bucket's range.
double bucket_value(int idx) {
  int oct = idx >> AtomicHistogram::kSubBits;
  int sub = idx & ((1 << AtomicHistogram::kSubBits) - 1);
  double base = std::ldexp(1.0, oct);
  double step = base / (1 << AtomicHistogram::kSubBits);
  return base + step * (sub + 0.5);
}

}  // namespace

void AtomicHistogram::record(uint64_t v) {
  buckets_[static_cast<size_t>(bucket_for(v))].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t AtomicHistogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double AtomicHistogram::mean() const {
  uint64_t n = count();
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double AtomicHistogram::percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  double rank = q / 100.0 * static_cast<double>(n);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= rank) return bucket_value(i);
  }
  return bucket_value(kBuckets - 1);
}

MetricsRegistry::HistogramSummary AtomicHistogram::summarize() const {
  MetricsRegistry::HistogramSummary s;
  s.count = count();
  s.mean = mean();
  s.p50 = percentile(50);
  s.p95 = percentile(95);
  return s;
}

HopLatencyStats::CellPtr HopLatencyStats::cell(const std::string& hop) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& c = cells_[hop];
  if (!c) c = std::make_shared<Cell>();
  return c;
}

void HopLatencyStats::fold_into(MetricsRegistry::Snapshot& snap) const {
  std::map<std::string, CellPtr> cells;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cells = cells_;
  }
  for (const auto& [name, c] : cells) {
    auto send = c->send_ns.summarize();
    if (send.count) snap.histograms["hop.send." + name] = send;
    auto recv = c->recv_ns.summarize();
    if (recv.count) snap.histograms["hop.recv." + name] = recv;
  }
}

void attach_hop_stats_provider(MetricsRegistry& m, HopStatsPtr stats) {
  m.attach_provider("hop_stats", [stats](MetricsRegistry::Snapshot& snap) {
    stats->fold_into(snap);
  });
}

}  // namespace bertha
