// Streaming per-hop latency aggregation (the ROADMAP "path-span
// aggregation" item).
//
// Sampled path spans record individual messages; these histograms record
// EVERY message's per-layer timing whenever tracing is enabled, at the
// cost of one clock pair and two relaxed fetch_adds per hop — no mutex,
// no allocation, no sampling decision. Exported through MetricsRegistry
// (and therefore the text exporter) as hop.send.<name> / hop.recv.<name>
// summaries.
//
// Semantics match the sampled hop spans: a hop's time is inclusive of
// everything beneath it, and recv time includes blocking for traffic —
// the per-layer cost is the difference between adjacent hops.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/metrics.hpp"
#include "util/clock.hpp"

namespace bertha {

// Lock-free log-scale histogram: quarter-octave buckets over nanoseconds,
// one relaxed fetch_add per record. ~9% worst-case relative error on
// percentiles — plenty for latency distributions, and cheap enough to
// sit on the per-message fast path.
class AtomicHistogram {
 public:
  static constexpr int kSubBits = 2;  // 4 sub-buckets per octave
  static constexpr int kOctaves = 40; // 1ns .. ~18 minutes
  static constexpr int kBuckets = kOctaves << kSubBits;

  void record(uint64_t v);

  uint64_t count() const;
  double mean() const;
  double percentile(double q) const;  // q in [0,100]

  MetricsRegistry::HistogramSummary summarize() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// One send/recv histogram pair per hop name, shared by every connection
// whose stack contains that hop.
class HopLatencyStats {
 public:
  struct Cell {
    AtomicHistogram send_ns;
    AtomicHistogram recv_ns;
  };
  using CellPtr = std::shared_ptr<Cell>;

  // Create-on-first-use; the returned cell is stable and safe to record
  // into from any thread for the stats object's lifetime and beyond.
  CellPtr cell(const std::string& hop);

  // Folds hop.send.<name> / hop.recv.<name> summaries into a snapshot.
  void fold_into(MetricsRegistry::Snapshot& snap) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CellPtr> cells_;
};

using HopStatsPtr = std::shared_ptr<HopLatencyStats>;

// Registers a provider exposing the per-hop histograms in snapshots.
void attach_hop_stats_provider(MetricsRegistry& m, HopStatsPtr stats);

}  // namespace bertha
