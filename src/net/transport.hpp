// Transport: the lowest layer of the stack — an unreliable, unordered
// datagram endpoint, deliberately minimal (the paper's "best-effort,
// end-to-end packet delivery"). Everything above it — reliability,
// ordering, sharding, multicast — is a Chunnel.
#pragma once

#include <memory>

#include "net/addr.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"

namespace bertha {

struct Packet {
  Addr src;
  Bytes payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Fire-and-forget datagram send. May drop silently (like UDP); errors
  // are returned only for local problems (bad addr, closed endpoint).
  virtual Result<void> send_to(const Addr& dst, BytesView payload) = 0;

  // Block until a datagram arrives, the deadline expires (timed_out), or
  // the endpoint is closed (cancelled). Safe to call concurrently with
  // send_to and close from other threads.
  virtual Result<Packet> recv(Deadline deadline = Deadline::never()) = 0;

  virtual const Addr& local_addr() const = 0;

  // Idempotent; wakes blocked recv() calls with cancelled.
  virtual void close() = 0;

  // OS-pollable readiness fd (readable when a datagram is waiting), or
  // -1 for transports without one. The io Reactor multiplexes fd-backed
  // transports on one epoll set and falls back to a pull thread for the
  // rest.
  virtual int poll_fd() const { return -1; }
};

using TransportPtr = std::unique_ptr<Transport>;

// Creates a bound transport of the same family as `bind_addr`.
// For udp/uds, port 0 / empty-suffix names are fleshed out by the OS.
// A TransportFactory is how the runtime and chunnels (e.g. the local
// fast-path chunnel dialing a UDS address) obtain endpoints without
// depending on concrete transport types.
class TransportFactory {
 public:
  virtual ~TransportFactory() = default;
  virtual Result<TransportPtr> bind(const Addr& bind_addr) = 0;
};

}  // namespace bertha
