// Address model.
//
// Bertha connections are datagram-oriented and can run over several
// transports; an Addr names an endpoint on one of them. The URI string
// form is used in wire messages (negotiation, discovery) and logs:
//
//   udp://127.0.0.1:5000     UDP/IPv4 socket
//   uds://name               Linux abstract-namespace unix datagram socket
//   mem://chan:7             in-process channel (tests)
//   sim://node:7             SimNet node endpoint
//   sim://group:7            SimNet multicast group address
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/hash.hpp"
#include "util/result.hpp"

namespace bertha {

enum class AddrKind : uint8_t { invalid = 0, udp, uds, mem, sim };

std::string_view addr_kind_name(AddrKind k);

struct Addr {
  AddrKind kind = AddrKind::invalid;
  std::string host;   // ip / socket name / channel / node name
  uint16_t port = 0;  // unused for uds

  Addr() = default;
  Addr(AddrKind k, std::string h, uint16_t p)
      : kind(k), host(std::move(h)), port(p) {}

  static Addr udp(std::string ip, uint16_t port) {
    return Addr(AddrKind::udp, std::move(ip), port);
  }
  static Addr uds(std::string name) {
    return Addr(AddrKind::uds, std::move(name), 0);
  }
  static Addr mem(std::string chan, uint16_t port) {
    return Addr(AddrKind::mem, std::move(chan), port);
  }
  static Addr sim(std::string node, uint16_t port) {
    return Addr(AddrKind::sim, std::move(node), port);
  }

  bool valid() const { return kind != AddrKind::invalid; }

  // URI form, e.g. "udp://127.0.0.1:5000".
  std::string to_string() const;

  // Parse the URI form back into an Addr.
  static Result<Addr> parse(std::string_view uri);

  friend bool operator==(const Addr& a, const Addr& b) {
    return a.kind == b.kind && a.port == b.port && a.host == b.host;
  }
  friend bool operator!=(const Addr& a, const Addr& b) { return !(a == b); }
  friend bool operator<(const Addr& a, const Addr& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.host != b.host) return a.host < b.host;
    return a.port < b.port;
  }
};

struct AddrHash {
  size_t operator()(const Addr& a) const {
    return static_cast<size_t>(hash_combine(
        hash_combine(static_cast<uint64_t>(a.kind), fnv1a64(a.host)),
        a.port));
  }
};

// Derive a client bind address matching the server's address family
// (udp: wildcard ephemeral; uds: autobind; mem/sim: the host's own
// channel/node with an ephemeral port). Shared by the endpoint layer,
// RemoteDiscovery bootstrap and the control-plane cluster client.
Addr client_bind_for(const Addr& server, const std::string& host_id);

}  // namespace bertha
