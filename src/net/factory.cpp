#include "net/factory.hpp"

#include "net/udp.hpp"
#include "net/uds.hpp"

namespace bertha {

Result<TransportPtr> DefaultTransportFactory::bind(const Addr& addr) {
  switch (addr.kind) {
    case AddrKind::udp:
      return UdpTransport::bind(addr);
    case AddrKind::uds:
      return UdsTransport::bind(addr);
    case AddrKind::mem:
      if (!mem_)
        return err(Errc::unavailable, "no mem network configured");
      return mem_->bind(addr);
    case AddrKind::sim: {
      if (!sim_)
        return err(Errc::unavailable, "no sim network configured");
      const std::string& node = addr.host.empty() ? sim_node_ : addr.host;
      if (node.empty())
        return err(Errc::invalid_argument, "sim bind without node name");
      return sim_->attach(node, addr.port);
    }
    case AddrKind::invalid:
      break;
  }
  return err(Errc::invalid_argument, "cannot bind " + addr.to_string());
}

}  // namespace bertha
