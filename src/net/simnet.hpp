// SimNet: a simulated datagram network.
//
// SimNet stands in for the multi-machine testbeds and in-network devices
// the paper's evaluation uses but that are not available here (see
// DESIGN.md §1.4). It provides:
//
//  * named nodes with sim://node:port endpoints,
//  * per-link one-way latency and loss (defaults apply to unknown links),
//  * multicast group addresses with an optional *hardware sequencer*:
//    the SimSwitch model stamps a global sequence number on packets in
//    transit, with no extra hop — the Tofino/NOPaxos-style offload used
//    by the ordered_mcast chunnel,
//  * anycast service addresses routed to the nearest advertiser — used
//    by the anycast chunnel.
//
// Delivery runs on a single timing thread ordered by due time; with a
// fixed seed, drop decisions and sequencer stamps are deterministic.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "util/queue.hpp"
#include "util/rand.hpp"

namespace bertha {

class SimNet : public std::enable_shared_from_this<SimNet> {
 public:
  struct Config {
    Duration default_latency = us(100);
    double default_loss = 0.0;
    uint64_t seed = 1;
    size_t queue_depth = 8192;
  };

  static std::shared_ptr<SimNet> create(Config cfg);
  static std::shared_ptr<SimNet> create() { return create(Config{}); }
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // Binds sim://<node>:<port>. Port 0 picks an ephemeral port.
  Result<TransportPtr> attach(const std::string& node, uint16_t port);

  // Sets symmetric one-way latency/loss between two nodes. Packets within
  // a single node (same `node` name) are always delivered with
  // `local_latency` (default 1us) and no loss.
  void set_link(const std::string& a, const std::string& b, Duration latency,
                double loss = 0.0);
  void set_local_latency(Duration d);

  // --- Multicast groups (SimSwitch sequencer model) ---
  // Creates group address sim://<group>:<port>. If hw_sequencer, each
  // packet sent to the group is stamped with an 8-byte little-endian
  // global sequence number *prepended* to the payload, assigned at the
  // "switch" (no extra hop, no extra latency). `initial_seq` seeds the
  // counter: when a group migrates between sequencers, the operator
  // must carry the sequence epoch over (a real consensus protocol runs
  // a view change here).
  Result<void> create_group(const std::string& group, uint16_t port,
                            std::vector<Addr> members, bool hw_sequencer,
                            uint64_t initial_seq = 0);
  void remove_group(const std::string& group, uint16_t port);

  // --- Match-action programs (SimSwitch P4 model) ---
  // What a program decides for one packet: where it goes next and,
  // optionally, a rewritten payload (header strip, sequencer stamp) —
  // the switch modifying the packet in transit, still with no extra hop.
  struct ProgramAction {
    Addr dst;
    bool rewrite = false;
    Bytes payload;  // replaces the packet bytes when rewrite is set
  };

  // Installs a steering program on a virtual address: packets sent to
  // `vip` are redirected, in transit and with no extra hop, per the
  // action the program computes from the payload (the P4 match-action
  // model; used for in-switch sharding and synthesized offloads). The
  // program runs on the delivery path under SimNet's lock: it must be
  // pure computation and must not call back into SimNet. Returning an
  // error drops the packet (a table miss, never a mis-steer).
  Result<void> install_program(
      const Addr& vip, std::function<Result<ProgramAction>(BytesView)> act);
  // Steer-only convenience: the original packet is forwarded unmodified
  // to the address `steer` picks.
  Result<void> install_program(const Addr& vip,
                               std::function<Result<Addr>(BytesView)> steer);
  void remove_program(const Addr& vip);
  // Packets steered by the program at `vip` so far.
  uint64_t program_hits(const Addr& vip) const;

  // --- Anycast services ---
  // Advertise: packets addressed to `service` are routed to the current
  // lowest-metric advertiser's real address. Re-advertising with a new
  // metric updates it.
  Result<void> advertise(const Addr& service, const Addr& target,
                         uint32_t metric);
  void withdraw(const Addr& service, const Addr& target);
  // Current winning target for a service (for tests); not_found if none.
  Result<Addr> resolve_anycast(const Addr& service) const;

  uint64_t delivered() const;
  uint64_t dropped() const;

  // Stops the delivery thread and closes all endpoints.
  void shutdown();

 private:
  explicit SimNet(Config cfg);

  friend class SimTransport;
  struct Endpoint {
    BlockingQueue<Packet> q;
    explicit Endpoint(size_t depth) : q(depth) {}
  };

  struct Event {
    TimePoint due;
    Addr dst;
    Packet pkt;
    // min-heap on due time
    friend bool operator<(const Event& a, const Event& b) {
      return a.due > b.due;
    }
  };

  struct Group {
    std::vector<Addr> members;
    bool hw_sequencer = false;
    uint64_t next_seq = 0;
  };

  struct AnycastEntry {
    Addr target;
    uint32_t metric;
  };

  Result<void> send(const Addr& from, const Addr& to, BytesView payload);
  void enqueue_delivery(const Addr& from, const Addr& to, Bytes payload)
      /* requires mu_ */;
  std::pair<Duration, double> link_params(const std::string& a,
                                          const std::string& b) const
      /* requires mu_ */;
  void detach(const Addr& addr);
  void delivery_loop();

  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  Rng rng_;                                  // guarded by mu_
  Duration local_latency_ = us(1);           // guarded by mu_
  uint64_t delivered_ = 0;                   // guarded by mu_
  uint64_t dropped_ = 0;                     // guarded by mu_
  uint16_t next_ephemeral_ = 40000;          // guarded by mu_
  std::priority_queue<Event> events_;        // guarded by mu_
  std::unordered_map<Addr, std::shared_ptr<Endpoint>, AddrHash> endpoints_;
  std::map<std::pair<std::string, std::string>, std::pair<Duration, double>>
      links_;
  std::unordered_map<Addr, Group, AddrHash> groups_;
  std::unordered_map<Addr, std::vector<AnycastEntry>, AddrHash> anycast_;
  struct Program {
    std::function<Result<ProgramAction>(BytesView)> act;
    uint64_t hits = 0;
  };
  std::unordered_map<Addr, Program, AddrHash> programs_;
  std::thread delivery_thread_;
};

// TransportFactory over a SimNet node: binds sim://<node>:<port> where
// the node name must match this factory's node.
class SimTransportFactory final : public TransportFactory {
 public:
  SimTransportFactory(std::shared_ptr<SimNet> net, std::string node)
      : net_(std::move(net)), node_(std::move(node)) {}

  Result<TransportPtr> bind(const Addr& addr) override {
    if (addr.kind != AddrKind::sim || (addr.host != node_ && !addr.host.empty()))
      return err(Errc::invalid_argument,
                 "sim factory for node '" + node_ + "' cannot bind " +
                     addr.to_string());
    return net_->attach(node_, addr.port);
  }

 private:
  std::shared_ptr<SimNet> net_;
  std::string node_;
};

}  // namespace bertha
