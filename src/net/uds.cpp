#include "net/uds.hpp"

#include <sys/socket.h>
#include <sys/un.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace bertha {

namespace {

constexpr size_t kMaxDatagram = 65507;
constexpr char kPrefix[] = "bertha/";

// Abstract-namespace sockaddr: sun_path[0] == '\0', then the name.
// Returns the total socklen to pass to bind/sendto.
Result<socklen_t> to_sockaddr(const Addr& a, sockaddr_un& sa) {
  if (a.kind != AddrKind::uds)
    return err(Errc::invalid_argument,
               "uds transport cannot send to " + a.to_string());
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  std::string name = std::string(kPrefix) + a.host;
  if (name.size() + 1 > sizeof(sa.sun_path))
    return err(Errc::invalid_argument, "uds name too long: " + a.host);
  // sun_path[0] stays '\0' (abstract namespace).
  std::memcpy(sa.sun_path + 1, name.data(), name.size());
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                name.size());
}

Addr from_sockaddr(const sockaddr_un& sa, socklen_t len) {
  size_t path_len = len - offsetof(sockaddr_un, sun_path);
  if (path_len == 0) return Addr::uds("");  // unbound sender
  // Abstract addresses start with '\0'. Autobound names are 5 hex bytes
  // that may not carry our prefix; keep them verbatim (hex-escaped if
  // non-printable) so replies route correctly via the raw name.
  std::string raw(sa.sun_path + 1, path_len - 1);
  if (raw.rfind(kPrefix, 0) == 0) return Addr::uds(raw.substr(sizeof(kPrefix) - 1));
  // Autobind names are not under our prefix: mark with '@' so
  // to_sockaddr_raw can reconstruct them.
  std::string esc = "@";
  static const char* kHex = "0123456789abcdef";
  for (unsigned char c : raw) {
    esc.push_back(kHex[c >> 4]);
    esc.push_back(kHex[c & 0xf]);
  }
  return Addr::uds(esc);
}

// Handles both prefixed names and '@'-escaped autobind names.
Result<socklen_t> to_sockaddr_any(const Addr& a, sockaddr_un& sa) {
  if (!a.host.empty() && a.host[0] == '@') {
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::string_view hex(a.host);
    hex.remove_prefix(1);
    if (hex.size() % 2 != 0)
      return err(Errc::invalid_argument, "bad escaped uds addr");
    size_t n = hex.size() / 2;
    if (n + 1 > sizeof(sa.sun_path))
      return err(Errc::invalid_argument, "uds name too long");
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    for (size_t i = 0; i < n; i++) {
      int hi = nibble(hex[2 * i]), lo = nibble(hex[2 * i + 1]);
      if (hi < 0 || lo < 0)
        return err(Errc::invalid_argument, "bad escaped uds addr");
      sa.sun_path[1 + i] = static_cast<char>((hi << 4) | lo);
    }
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 + n);
  }
  return to_sockaddr(a, sa);
}

}  // namespace

Result<TransportPtr> UdsTransport::bind(const Addr& addr) {
  if (addr.kind != AddrKind::uds)
    return err(Errc::invalid_argument, "not a uds addr: " + addr.to_string());

  Fd sock(::socket(AF_UNIX, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_error(Errc::io_error, "socket");

  if (addr.host.empty()) {
    // Linux autobind: bind with just the family gets a unique abstract name.
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (::bind(sock.get(), reinterpret_cast<sockaddr*>(&sa),
               sizeof(sa_family_t)) < 0)
      return errno_error(Errc::io_error, "autobind");
  } else {
    sockaddr_un sa{};
    BERTHA_TRY_ASSIGN(len, to_sockaddr(addr, sa));
    if (::bind(sock.get(), reinterpret_cast<sockaddr*>(&sa), len) < 0)
      return errno_error(Errc::io_error, "bind uds://" + addr.host);
  }

  sockaddr_un bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(sock.get(), reinterpret_cast<sockaddr*>(&bound), &blen) < 0)
    return errno_error(Errc::io_error, "getsockname");

  BERTHA_TRY_ASSIGN(wake, make_wake_eventfd());
  return TransportPtr(new UdsTransport(std::move(sock), std::move(wake),
                                       from_sockaddr(bound, blen)));
}

UdsTransport::~UdsTransport() { close(); }

Result<void> UdsTransport::send_to(const Addr& dst, BytesView payload) {
  if (closed_.load(std::memory_order_acquire))
    return err(Errc::cancelled, "transport closed");
  if (payload.size() > kMaxDatagram)
    return err(Errc::invalid_argument, "datagram too large");
  sockaddr_un sa{};
  BERTHA_TRY_ASSIGN(len, to_sockaddr_any(dst, sa));
  ssize_t rc = ::sendto(sock_.get(), payload.data(), payload.size(), 0,
                        reinterpret_cast<sockaddr*>(&sa), len);
  if (rc < 0) {
    // A vanished peer is equivalent to packet loss at this layer.
    if (errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN ||
        errno == ENOBUFS)
      return ok();
    return errno_error(Errc::io_error, "sendto uds");
  }
  return ok();
}

Result<Packet> UdsTransport::recv(Deadline deadline) {
  for (;;) {
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");
    BERTHA_TRY(wait_readable(sock_.get(), wake_.get(), deadline));
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");

    // recvfrom lands in a reusable scratch buffer: resizing a fresh
    // vector to 64 KiB would zero it on every receive, which dominates
    // small-packet latency.
    thread_local Bytes scratch(kMaxDatagram);
    Packet pkt;
    sockaddr_un sa{};
    socklen_t len = sizeof(sa);
    ssize_t rc = ::recvfrom(sock_.get(), scratch.data(), scratch.size(),
                            MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&sa), &len);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return errno_error(Errc::io_error, "recvfrom uds");
    }
    pkt.payload.assign(scratch.begin(),
                       scratch.begin() + static_cast<ptrdiff_t>(rc));
    pkt.src = from_sockaddr(sa, len);
    return pkt;
  }
}

namespace {
constexpr size_t kMmsgChunk = 64;
}  // namespace

Result<size_t> UdsTransport::send_batch(std::span<const Datagram> batch) {
  if (closed_.load(std::memory_order_acquire))
    return err(Errc::cancelled, "transport closed");
  size_t done = 0;
  while (done < batch.size()) {
    mmsghdr hdrs[kMmsgChunk];
    iovec iovs[kMmsgChunk];
    sockaddr_un sas[kMmsgChunk];
    size_t k = std::min(kMmsgChunk, batch.size() - done);
    for (size_t i = 0; i < k; i++) {
      const Datagram& d = batch[done + i];
      if (d.payload.size() > kMaxDatagram)
        return err(Errc::invalid_argument, "datagram too large");
      BERTHA_TRY_ASSIGN(len, to_sockaddr_any(d.dst, sas[i]));
      iovs[i].iov_base = const_cast<uint8_t*>(d.payload.data());
      iovs[i].iov_len = d.payload.size();
      std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
      hdrs[i].msg_hdr.msg_name = &sas[i];
      hdrs[i].msg_hdr.msg_namelen = len;
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
    }
    int rc = ::sendmmsg(sock_.get(), hdrs, static_cast<unsigned>(k), 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // Vanished peers / buffer pressure == packet loss (cf. send_to).
      if (errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN ||
          errno == ENOBUFS) {
        done += k;
        continue;
      }
      return errno_error(Errc::io_error, "sendmmsg uds");
    }
    done += static_cast<size_t>(rc);
  }
  return done;
}

Result<size_t> UdsTransport::recv_batch(std::span<Datagram> out,
                                        Deadline deadline) {
  if (out.empty()) return size_t(0);
  size_t want = std::min(out.size(), kMmsgChunk);
  for (;;) {
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");
    BERTHA_TRY(wait_readable(sock_.get(), wake_.get(), deadline));
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");

    mmsghdr hdrs[kMmsgChunk];
    iovec iovs[kMmsgChunk];
    sockaddr_un sas[kMmsgChunk];
    for (size_t i = 0; i < want; i++) {
      PooledBytes& p = out[i].payload;
      p.resize(kMaxDatagram);
      iovs[i].iov_base = p.data();
      iovs[i].iov_len = p.size();
      std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
      hdrs[i].msg_hdr.msg_name = &sas[i];
      hdrs[i].msg_hdr.msg_namelen = sizeof(sas[i]);
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
    }
    int rc = ::recvmmsg(sock_.get(), hdrs, static_cast<unsigned>(want),
                        MSG_DONTWAIT, nullptr);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return errno_error(Errc::io_error, "recvmmsg uds");
    }
    if (rc == 0) continue;
    for (int i = 0; i < rc; i++) {
      out[static_cast<size_t>(i)].payload.resize(hdrs[i].msg_len);
      out[static_cast<size_t>(i)].src =
          from_sockaddr(sas[i], hdrs[i].msg_hdr.msg_namelen);
    }
    for (size_t i = static_cast<size_t>(rc); i < want; i++)
      out[i].payload.clear();
    return static_cast<size_t>(rc);
  }
}

void UdsTransport::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  fire_wake_eventfd(wake_.get());
}

}  // namespace bertha
