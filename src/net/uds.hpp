// Unix-domain datagram transport using the Linux abstract socket
// namespace (no filesystem cleanup needed).
//
// This is the IPC fast path that the local_or_remote chunnel switches to
// when both endpoints are on the same host — the optimization Fig 3/4 of
// the paper measure. Names map to abstract addresses "\0bertha/<name>";
// an empty name requests a Linux autobind (unique kernel-chosen name),
// which clients use for their reply addresses.
#pragma once

#include <atomic>

#include "io/batch.hpp"
#include "net/fd_util.hpp"
#include "net/transport.hpp"

namespace bertha {

class UdsTransport final : public Transport, public BatchTransport {
 public:
  // Binds to uds://<name>; empty name autobinds a unique address.
  static Result<TransportPtr> bind(const Addr& addr);

  ~UdsTransport() override;

  Result<void> send_to(const Addr& dst, BytesView payload) override;
  Result<Packet> recv(Deadline deadline) override;
  const Addr& local_addr() const override { return local_; }
  void close() override;
  int poll_fd() const override { return sock_.get(); }

  // sendmmsg/recvmmsg: one syscall per batch of datagrams.
  Result<size_t> send_batch(std::span<const Datagram> batch) override;
  Result<size_t> recv_batch(std::span<Datagram> out, Deadline deadline) override;

 private:
  UdsTransport(Fd sock, Fd wake, Addr local)
      : sock_(std::move(sock)), wake_(std::move(wake)), local_(std::move(local)) {}

  Fd sock_;
  Fd wake_;
  Addr local_;
  std::atomic<bool> closed_{false};
};

}  // namespace bertha
