// Small RAII and poll helpers shared by the POSIX socket transports.
#pragma once

#include <unistd.h>

#include <utility>

#include "util/clock.hpp"
#include "util/result.hpp"

namespace bertha {

// Owns a file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

// Waits until `fd` is readable, `wake_fd` fires (returns cancelled), or
// the deadline expires (timed_out). `wake_fd` is an eventfd used to
// unblock recv() when another thread closes the transport.
Result<void> wait_readable(int fd, int wake_fd, Deadline deadline);

// Creates a nonblocking eventfd used as a close-wakeup channel.
Result<Fd> make_wake_eventfd();

// Signals the wakeup channel (safe from any thread).
void fire_wake_eventfd(int fd);

// Formats the current errno as "what: strerror(errno)".
Error errno_error(Errc code, const std::string& what);

}  // namespace bertha
