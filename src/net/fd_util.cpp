#include "net/fd_util.hpp"

#include <poll.h>
#include <string.h>
#include <sys/eventfd.h>

#include <cerrno>
#include <string>

namespace bertha {

Result<void> wait_readable(int fd, int wake_fd, Deadline deadline) {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};

    int timeout_ms = -1;
    if (!deadline.is_never()) {
      auto rem = deadline.remaining();
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(rem).count());
      // Round up so we don't spin at sub-millisecond remainders.
      if (rem > Duration::zero() && timeout_ms == 0) timeout_ms = 1;
    }

    int rc = ::poll(fds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error(Errc::io_error, "poll");
    }
    if (fds[1].revents & POLLIN)
      return err(Errc::cancelled, "transport closed");
    if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) return ok();
    if (rc == 0 || deadline.expired())
      return err(Errc::timed_out, "recv deadline expired");
  }
}

Result<Fd> make_wake_eventfd() {
  int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) return errno_error(Errc::io_error, "eventfd");
  return Fd(fd);
}

void fire_wake_eventfd(int fd) {
  uint64_t one = 1;
  // Best-effort: a full eventfd counter still wakes pollers.
  [[maybe_unused]] ssize_t rc = ::write(fd, &one, sizeof(one));
}

Error errno_error(Errc code, const std::string& what) {
  return err(code, what + ": " + ::strerror(errno));
}

}  // namespace bertha
