#include "net/memchan.hpp"

#include <algorithm>

#include "io/batch.hpp"

namespace bertha {

class MemTransport final : public Transport, public BatchTransport {
 public:
  MemTransport(std::shared_ptr<MemNetwork> net,
               std::shared_ptr<MemNetwork::Endpoint> ep, Addr local)
      : net_(std::move(net)), ep_(std::move(ep)), local_(std::move(local)) {}

  ~MemTransport() override { close(); }

  Result<void> send_to(const Addr& dst, BytesView payload) override {
    if (ep_->q.closed()) return err(Errc::cancelled, "transport closed");
    return net_->deliver(local_, dst, payload);
  }

  Result<Packet> recv(Deadline deadline) override {
    return ep_->q.pop(deadline);
  }

  Result<size_t> send_batch(std::span<const Datagram> batch) override {
    if (ep_->q.closed()) return err(Errc::cancelled, "transport closed");
    for (const Datagram& d : batch)
      BERTHA_TRY(net_->deliver(local_, d.dst, d.payload.view()));
    return batch.size();
  }

  // One lock acquisition drains up to a chunk of queued packets.
  Result<size_t> recv_batch(std::span<Datagram> out,
                            Deadline deadline) override {
    if (out.empty()) return size_t(0);
    Packet chunk[kBatchChunk];
    size_t max = std::min(out.size(), kBatchChunk);
    BERTHA_TRY_ASSIGN(n, ep_->q.pop_batch(chunk, max, deadline));
    for (size_t i = 0; i < n; i++) {
      out[i].src = std::move(chunk[i].src);
      out[i].payload.assign(chunk[i].payload);
    }
    return n;
  }

  const Addr& local_addr() const override { return local_; }

  void close() override {
    if (!ep_->q.closed()) {
      ep_->q.close();
      net_->unbind(local_);
    }
  }

 private:
  static constexpr size_t kBatchChunk = 64;

  std::shared_ptr<MemNetwork> net_;
  std::shared_ptr<MemNetwork::Endpoint> ep_;
  Addr local_;
};

Result<TransportPtr> MemNetwork::bind(const Addr& addr) {
  if (addr.kind != AddrKind::mem)
    return err(Errc::invalid_argument, "not a mem addr: " + addr.to_string());
  std::lock_guard<std::mutex> lk(mu_);
  Addr bound = addr;
  if (bound.port == 0) {
    // ~25k ephemeral ports per host. A full range must fail, not spin:
    // the connection-scale tests bind tens of thousands of clients and
    // an exhausted host used to hang here scanning forever.
    for (uint32_t tried = 0;; tried++) {
      if (tried > 65535u - 40000u)
        return err(Errc::resource_exhausted,
                   "mem ephemeral ports exhausted on " + bound.host);
      bound.port = next_ephemeral_++;
      if (next_ephemeral_ == 0) next_ephemeral_ = 40000;
      if (!endpoints_.count(bound)) break;
    }
  } else if (endpoints_.count(bound)) {
    return err(Errc::already_exists, "mem addr in use: " + bound.to_string());
  }
  auto ep = std::make_shared<Endpoint>(cfg_.queue_depth);
  endpoints_[bound] = ep;
  return TransportPtr(new MemTransport(shared_from_this(), ep, bound));
}

Result<void> MemNetwork::deliver(const Addr& from, const Addr& to,
                                 BytesView payload) {
  std::shared_ptr<Endpoint> ep;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.drop_rate > 0 && rng_.chance(cfg_.drop_rate)) {
      dropped_++;
      return ok();  // silent drop, like the real network
    }
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      dropped_++;  // no listener: datagram vanishes
      return ok();
    }
    ep = it->second;
    delivered_++;
  }
  Packet pkt;
  pkt.src = from;
  pkt.payload.assign(payload.begin(), payload.end());
  // Full queue or concurrently-closed endpoint == drop, not error.
  (void)ep->q.push(std::move(pkt));
  return ok();
}

void MemNetwork::unbind(const Addr& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_.erase(addr);
}

uint64_t MemNetwork::delivered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delivered_;
}

uint64_t MemNetwork::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

}  // namespace bertha
