#include "net/addr.hpp"

#include <charconv>

namespace bertha {

std::string_view addr_kind_name(AddrKind k) {
  switch (k) {
    case AddrKind::invalid: return "invalid";
    case AddrKind::udp: return "udp";
    case AddrKind::uds: return "uds";
    case AddrKind::mem: return "mem";
    case AddrKind::sim: return "sim";
  }
  return "?";
}

std::string Addr::to_string() const {
  std::string s(addr_kind_name(kind));
  s += "://";
  s += host;
  if (kind != AddrKind::uds) {
    s += ':';
    s += std::to_string(port);
  }
  return s;
}

Result<Addr> Addr::parse(std::string_view uri) {
  auto sep = uri.find("://");
  if (sep == std::string_view::npos)
    return err(Errc::invalid_argument, "addr missing '://': " + std::string(uri));
  std::string_view scheme = uri.substr(0, sep);
  std::string_view rest = uri.substr(sep + 3);

  AddrKind kind;
  if (scheme == "udp") {
    kind = AddrKind::udp;
  } else if (scheme == "uds") {
    kind = AddrKind::uds;
  } else if (scheme == "mem") {
    kind = AddrKind::mem;
  } else if (scheme == "sim") {
    kind = AddrKind::sim;
  } else {
    return err(Errc::invalid_argument,
               "unknown addr scheme: " + std::string(scheme));
  }

  if (kind == AddrKind::uds) {
    if (rest.empty())
      return err(Errc::invalid_argument, "uds addr missing name");
    return Addr(kind, std::string(rest), 0);
  }

  auto colon = rest.rfind(':');
  if (colon == std::string_view::npos)
    return err(Errc::invalid_argument, "addr missing port: " + std::string(uri));
  std::string_view host = rest.substr(0, colon);
  std::string_view port_s = rest.substr(colon + 1);
  uint16_t port = 0;
  auto [p, ec] = std::from_chars(port_s.data(), port_s.data() + port_s.size(), port);
  if (ec != std::errc() || p != port_s.data() + port_s.size())
    return err(Errc::invalid_argument, "bad port: " + std::string(uri));
  if (host.empty())
    return err(Errc::invalid_argument, "addr missing host: " + std::string(uri));
  return Addr(kind, std::string(host), port);
}

Addr client_bind_for(const Addr& server, const std::string& host_id) {
  switch (server.kind) {
    case AddrKind::udp: return Addr::udp("0.0.0.0", 0);
    case AddrKind::uds: return Addr::uds("");  // autobind
    case AddrKind::mem: return Addr::mem(host_id, 0);
    case AddrKind::sim: return Addr::sim(host_id, 0);
    case AddrKind::invalid: break;
  }
  return Addr();
}

}  // namespace bertha
