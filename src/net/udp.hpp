// UDP datagram transport (IPv4). This is the "full network stack" path in
// the paper's Fig 3/4 evaluation: even on one host, a UDP datagram
// traverses the kernel IP stack, unlike the unix-socket fast path.
#pragma once

#include <atomic>

#include "io/batch.hpp"
#include "net/fd_util.hpp"
#include "net/transport.hpp"

namespace bertha {

class UdpTransport final : public Transport, public BatchTransport {
 public:
  // Binds to `addr` (kind must be udp). Port 0 requests an ephemeral
  // port; the bound address is reflected in local_addr().
  static Result<TransportPtr> bind(const Addr& addr);

  ~UdpTransport() override;

  Result<void> send_to(const Addr& dst, BytesView payload) override;
  Result<Packet> recv(Deadline deadline) override;
  const Addr& local_addr() const override { return local_; }
  void close() override;
  int poll_fd() const override { return sock_.get(); }

  // sendmmsg/recvmmsg: one syscall per batch of datagrams.
  Result<size_t> send_batch(std::span<const Datagram> batch) override;
  Result<size_t> recv_batch(std::span<Datagram> out, Deadline deadline) override;

 private:
  UdpTransport(Fd sock, Fd wake, Addr local)
      : sock_(std::move(sock)), wake_(std::move(wake)), local_(std::move(local)) {}

  Fd sock_;
  Fd wake_;
  Addr local_;
  std::atomic<bool> closed_{false};
};

}  // namespace bertha
