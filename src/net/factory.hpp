// DefaultTransportFactory: dispatches bind() on the address family.
//
// udp:// and uds:// go to the real OS sockets; mem:// and sim:// are
// served when the factory was constructed with the corresponding network
// object. This is what the Bertha runtime uses so that a negotiated
// address of any family can be dialed uniformly.
#pragma once

#include <memory>

#include "net/memchan.hpp"
#include "net/simnet.hpp"
#include "net/transport.hpp"

namespace bertha {

class DefaultTransportFactory final : public TransportFactory {
 public:
  DefaultTransportFactory() = default;
  explicit DefaultTransportFactory(std::shared_ptr<MemNetwork> mem,
                                   std::shared_ptr<SimNet> sim = nullptr,
                                   std::string sim_node = "")
      : mem_(std::move(mem)), sim_(std::move(sim)), sim_node_(std::move(sim_node)) {}

  Result<TransportPtr> bind(const Addr& addr) override;

 private:
  std::shared_ptr<MemNetwork> mem_;
  std::shared_ptr<SimNet> sim_;
  std::string sim_node_;  // node identity used when binding sim addrs
};

}  // namespace bertha
