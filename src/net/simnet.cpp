#include "net/simnet.hpp"

#include <algorithm>

#include "io/batch.hpp"
#include "util/log.hpp"

namespace bertha {

class SimTransport final : public Transport, public BatchTransport {
 public:
  SimTransport(std::shared_ptr<SimNet> net,
               std::shared_ptr<SimNet::Endpoint> ep, Addr local)
      : net_(std::move(net)), ep_(std::move(ep)), local_(std::move(local)) {}

  ~SimTransport() override { close(); }

  Result<void> send_to(const Addr& dst, BytesView payload) override {
    if (ep_->q.closed()) return err(Errc::cancelled, "transport closed");
    return net_->send(local_, dst, payload);
  }

  Result<Packet> recv(Deadline deadline) override { return ep_->q.pop(deadline); }

  Result<size_t> send_batch(std::span<const Datagram> batch) override {
    if (ep_->q.closed()) return err(Errc::cancelled, "transport closed");
    for (const Datagram& d : batch)
      BERTHA_TRY(net_->send(local_, d.dst, d.payload.view()));
    return batch.size();
  }

  Result<size_t> recv_batch(std::span<Datagram> out,
                            Deadline deadline) override {
    if (out.empty()) return size_t(0);
    constexpr size_t kChunk = 64;
    Packet chunk[kChunk];
    size_t max = std::min(out.size(), kChunk);
    BERTHA_TRY_ASSIGN(n, ep_->q.pop_batch(chunk, max, deadline));
    for (size_t i = 0; i < n; i++) {
      out[i].src = std::move(chunk[i].src);
      out[i].payload.assign(chunk[i].payload);
    }
    return n;
  }

  const Addr& local_addr() const override { return local_; }

  void close() override {
    if (!ep_->q.closed()) {
      ep_->q.close();
      net_->detach(local_);
    }
  }

 private:
  std::shared_ptr<SimNet> net_;
  std::shared_ptr<SimNet::Endpoint> ep_;
  Addr local_;
};

std::shared_ptr<SimNet> SimNet::create(Config cfg) {
  auto net = std::shared_ptr<SimNet>(new SimNet(cfg));
  net->delivery_thread_ = std::thread([net] { net->delivery_loop(); });
  return net;
}

SimNet::SimNet(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

SimNet::~SimNet() { shutdown(); }

void SimNet::shutdown() {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [addr, ep] : endpoints_) eps.push_back(ep);
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  for (auto& ep : eps) ep->q.close();
}

Result<TransportPtr> SimNet::attach(const std::string& node, uint16_t port) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_) return err(Errc::cancelled, "simnet shut down");
  Addr bound = Addr::sim(node, port);
  if (bound.port == 0) {
    do {
      bound.port = next_ephemeral_++;
      if (next_ephemeral_ == 0) next_ephemeral_ = 40000;
    } while (endpoints_.count(bound));
  } else if (endpoints_.count(bound)) {
    return err(Errc::already_exists, "sim addr in use: " + bound.to_string());
  }
  auto ep = std::make_shared<Endpoint>(cfg_.queue_depth);
  endpoints_[bound] = ep;
  return TransportPtr(new SimTransport(shared_from_this(), ep, bound));
}

void SimNet::set_link(const std::string& a, const std::string& b,
                      Duration latency, double loss) {
  std::lock_guard<std::mutex> lk(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  links_[key] = {latency, loss};
}

void SimNet::set_local_latency(Duration d) {
  std::lock_guard<std::mutex> lk(mu_);
  local_latency_ = d;
}

std::pair<Duration, double> SimNet::link_params(const std::string& a,
                                                const std::string& b) const {
  if (a == b) return {local_latency_, 0.0};
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second;
  return {cfg_.default_latency, cfg_.default_loss};
}

Result<void> SimNet::create_group(const std::string& group, uint16_t port,
                                  std::vector<Addr> members, bool hw_sequencer,
                                  uint64_t initial_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  Addr gaddr = Addr::sim(group, port);
  if (groups_.count(gaddr))
    return err(Errc::already_exists, "group exists: " + gaddr.to_string());
  for (const auto& m : members) {
    if (m.kind != AddrKind::sim)
      return err(Errc::invalid_argument,
                 "group member must be a sim addr: " + m.to_string());
  }
  Group g;
  g.members = std::move(members);
  g.hw_sequencer = hw_sequencer;
  g.next_seq = initial_seq;
  groups_[gaddr] = std::move(g);
  return ok();
}

void SimNet::remove_group(const std::string& group, uint16_t port) {
  std::lock_guard<std::mutex> lk(mu_);
  groups_.erase(Addr::sim(group, port));
}

Result<void> SimNet::install_program(
    const Addr& vip, std::function<Result<ProgramAction>(BytesView)> act) {
  if (vip.kind != AddrKind::sim)
    return err(Errc::invalid_argument, "program vip must be a sim addr");
  if (!act) return err(Errc::invalid_argument, "null steering program");
  std::lock_guard<std::mutex> lk(mu_);
  if (programs_.count(vip))
    return err(Errc::already_exists, "program exists at " + vip.to_string());
  programs_[vip] = Program{std::move(act), 0};
  return ok();
}

Result<void> SimNet::install_program(
    const Addr& vip, std::function<Result<Addr>(BytesView)> steer) {
  if (!steer) return err(Errc::invalid_argument, "null steering program");
  return install_program(
      vip, std::function<Result<ProgramAction>(BytesView)>(
               [steer = std::move(steer)](BytesView b) -> Result<ProgramAction> {
                 BERTHA_TRY_ASSIGN(dst, steer(b));
                 ProgramAction a;
                 a.dst = std::move(dst);
                 return a;
               }));
}

void SimNet::remove_program(const Addr& vip) {
  std::lock_guard<std::mutex> lk(mu_);
  programs_.erase(vip);
}

uint64_t SimNet::program_hits(const Addr& vip) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = programs_.find(vip);
  return it == programs_.end() ? 0 : it->second.hits;
}

Result<void> SimNet::advertise(const Addr& service, const Addr& target,
                               uint32_t metric) {
  if (service.kind != AddrKind::sim || target.kind != AddrKind::sim)
    return err(Errc::invalid_argument, "anycast requires sim addrs");
  std::lock_guard<std::mutex> lk(mu_);
  auto& entries = anycast_[service];
  for (auto& e : entries) {
    if (e.target == target) {
      e.metric = metric;
      return ok();
    }
  }
  entries.push_back({target, metric});
  return ok();
}

void SimNet::withdraw(const Addr& service, const Addr& target) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = anycast_.find(service);
  if (it == anycast_.end()) return;
  auto& v = it->second;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [&](const AnycastEntry& e) { return e.target == target; }),
          v.end());
  if (v.empty()) anycast_.erase(it);
}

Result<Addr> SimNet::resolve_anycast(const Addr& service) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = anycast_.find(service);
  if (it == anycast_.end() || it->second.empty())
    return err(Errc::not_found, "no advertiser for " + service.to_string());
  const AnycastEntry* best = &it->second.front();
  for (const auto& e : it->second)
    if (e.metric < best->metric) best = &e;
  return best->target;
}

Result<void> SimNet::send(const Addr& from, const Addr& to, BytesView payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_) return err(Errc::cancelled, "simnet shut down");

  // Match-action program: the "switch" steers (and possibly rewrites)
  // the packet in transit.
  Addr dst = to;
  Bytes rewritten;
  if (auto pit = programs_.find(dst); pit != programs_.end()) {
    auto acted = pit->second.act(payload);
    if (!acted.ok()) {
      dropped_++;  // the program rejected the packet (table miss / dup)
      return ok();
    }
    pit->second.hits++;
    ProgramAction a = std::move(acted).value();
    dst = std::move(a.dst);
    if (a.rewrite) {
      rewritten = std::move(a.payload);
      payload = BytesView(rewritten);
    }
  }

  // Anycast: rewrite destination to the nearest advertiser.
  if (auto ait = anycast_.find(dst); ait != anycast_.end() && !ait->second.empty()) {
    const AnycastEntry* best = &ait->second.front();
    for (const auto& e : ait->second)
      if (e.metric < best->metric) best = &e;
    dst = best->target;
  }

  // Multicast group: fan out, stamping a sequence number when the group
  // has a hardware sequencer ("in the switch", so no extra hop).
  if (auto git = groups_.find(dst); git != groups_.end()) {
    Group& g = git->second;
    Bytes stamped;
    if (g.hw_sequencer) {
      stamped.reserve(payload.size() + 8);
      put_u64_le(stamped, g.next_seq++);
      append(stamped, payload);
    }
    for (const auto& m : g.members)
      enqueue_delivery(from, m,
                       g.hw_sequencer ? stamped
                                      : Bytes(payload.begin(), payload.end()));
    return ok();
  }

  enqueue_delivery(from, dst, Bytes(payload.begin(), payload.end()));
  return ok();
}

void SimNet::enqueue_delivery(const Addr& from, const Addr& to, Bytes payload) {
  auto [latency, loss] = link_params(from.host, to.host);
  if (loss > 0 && rng_.chance(loss)) {
    dropped_++;
    return;
  }
  Event ev;
  ev.due = now() + latency;
  ev.dst = to;
  ev.pkt.src = from;
  ev.pkt.payload = std::move(payload);
  events_.push(std::move(ev));
  cv_.notify_one();
}

void SimNet::delivery_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    if (events_.empty()) {
      cv_.wait(lk);
      continue;
    }
    TimePoint due = events_.top().due;
    if (now() < due) {
      cv_.wait_until(lk, due);
      continue;
    }
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    auto it = endpoints_.find(ev.dst);
    if (it == endpoints_.end()) {
      dropped_++;
      continue;
    }
    delivered_++;
    auto ep = it->second;
    lk.unlock();
    (void)ep->q.push(std::move(ev.pkt));  // full/closed queue == drop
    lk.lock();
  }
}

void SimNet::detach(const Addr& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_.erase(addr);
}

uint64_t SimNet::delivered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delivered_;
}

uint64_t SimNet::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

}  // namespace bertha
