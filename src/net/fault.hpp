// FaultInjectingTransport: a decorator over any Transport that injects
// seeded faults — drop, duplicate, reorder, delay, and one-way partition
// — so the fault-tolerance machinery (RPC retries, leases, degraded-mode
// negotiation, transition rollback) can be exercised deterministically.
//
// Probabilistic faults apply independently to the send and receive paths
// of the wrapped endpoint; wrap both ends of a flow to fault both
// directions with independent streams. Filters give tests surgical
// control (e.g. "drop exactly the first discovery response").
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "io/batch.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"
#include "util/rand.hpp"

namespace bertha {

class FaultInjectingTransport final : public Transport,
                                      public BatchTransport {
 public:
  struct Options {
    double drop = 0.0;       // per-datagram drop probability
    double duplicate = 0.0;  // per-datagram duplication probability
    double reorder = 0.0;    // probability a datagram is held past the next
    double delay = 0.0;      // probability a sent datagram is delayed
    Duration delay_min = ms(1);
    Duration delay_max = ms(5);
    uint64_t seed = 1;
  };

  // Returns true to drop the datagram. Called with the remote addr (dst
  // for sends, src for receives) and the raw payload.
  using Filter = std::function<bool(const Addr&, BytesView)>;

  struct Counters {
    uint64_t sent = 0;
    uint64_t tx_dropped = 0;
    uint64_t tx_duplicated = 0;
    uint64_t tx_reordered = 0;
    uint64_t tx_delayed = 0;
    uint64_t received = 0;
    uint64_t rx_dropped = 0;
    uint64_t rx_duplicated = 0;
    uint64_t rx_reordered = 0;
  };

  FaultInjectingTransport(TransportPtr inner, Options opts);
  ~FaultInjectingTransport() override;

  Result<void> send_to(const Addr& dst, BytesView payload) override;
  Result<Packet> recv(Deadline deadline = Deadline::never()) override;
  const Addr& local_addr() const override { return inner_->local_addr(); }
  void close() override;

  // Batch passthrough: faults apply per-datagram inside the batch, with
  // the same seeded decision stream as the unbatched path. poll_fd()
  // stays -1 on purpose — held/pending packets mean fd readiness would
  // lie, so reactor users of a faulted transport take the pull-thread
  // fallback.
  Result<size_t> send_batch(std::span<const Datagram> batch) override;
  Result<size_t> recv_batch(std::span<Datagram> out,
                            Deadline deadline = Deadline::never()) override;

  // One-way partitions, togglable at runtime. partition(true, false)
  // blackholes everything this endpoint sends while still receiving;
  // partition(false, false) heals.
  void partition(bool tx, bool rx);

  void set_send_filter(Filter f);
  void set_recv_filter(Filter f);

  Counters counters() const;
  Transport& inner() { return *inner_; }

 private:
  struct Delayed {
    TimePoint due;
    Addr dst;
    Bytes payload;
  };

  void timer_loop();
  void ensure_timer_locked();

  TransportPtr inner_;
  Options opts_;

  mutable std::mutex mu_;
  Rng rng_;  // guarded by mu_
  bool tx_partitioned_ = false;
  bool rx_partitioned_ = false;
  Filter send_filter_;
  Filter recv_filter_;
  std::optional<std::pair<Addr, Bytes>> tx_held_;  // reorder hold slot
  std::optional<Packet> rx_held_;
  std::deque<Packet> rx_pending_;  // duplicates / released reorders
  Counters n_;

  // Delayed sends, flushed by a lazily started timer thread.
  std::vector<Delayed> delay_q_;  // min-heap by due time
  std::condition_variable delay_cv_;
  std::thread timer_;
  bool timer_started_ = false;
  bool closing_ = false;
};

// TransportFactory wrapper: every bound transport is fault-injected with
// the same knobs (seeds decorrelated per bind so endpoints fault
// independently).
class FaultInjectingFactory final : public TransportFactory {
 public:
  FaultInjectingFactory(std::shared_ptr<TransportFactory> inner,
                        FaultInjectingTransport::Options opts)
      : inner_(std::move(inner)), opts_(opts) {}

  Result<TransportPtr> bind(const Addr& addr) override;

  // Filters installed on every *subsequently* bound transport. Capture a
  // shared atomic flag to arm/disarm mid-test without re-installing.
  void set_send_filter(FaultInjectingTransport::Filter f);
  void set_recv_filter(FaultInjectingTransport::Filter f);

 private:
  std::shared_ptr<TransportFactory> inner_;
  FaultInjectingTransport::Options opts_;
  std::mutex mu_;
  uint64_t binds_ = 0;
  FaultInjectingTransport::Filter send_filter_;
  FaultInjectingTransport::Filter recv_filter_;
};

}  // namespace bertha
