// A connected socketpair presented as a pair of Transports.
//
// This is the "specialized implementation that hardcodes the use of
// IPCs" baseline from Fig 3: two processes (threads here) that skip any
// addressing/negotiation and talk over a pre-wired unix pipe.
#pragma once

#include <atomic>

#include "net/fd_util.hpp"
#include "net/transport.hpp"

namespace bertha {

struct TransportPair {
  TransportPtr a;
  TransportPtr b;
};

// Creates a connected SOCK_SEQPACKET unix socketpair; each side is a
// Transport whose send_to ignores the destination (it is point-to-point).
Result<TransportPair> make_pipe_pair();

}  // namespace bertha
