#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace bertha {

namespace {

constexpr size_t kMaxDatagram = 65507;

Result<sockaddr_in> to_sockaddr(const Addr& a) {
  if (a.kind != AddrKind::udp)
    return err(Errc::invalid_argument,
               "udp transport cannot send to " + a.to_string());
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1)
    return err(Errc::invalid_argument, "bad ipv4 addr: " + a.host);
  return sa;
}

Addr from_sockaddr(const sockaddr_in& sa) {
  char buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
  return Addr::udp(buf, ntohs(sa.sin_port));
}

}  // namespace

Result<TransportPtr> UdpTransport::bind(const Addr& addr) {
  if (addr.kind != AddrKind::udp)
    return err(Errc::invalid_argument, "not a udp addr: " + addr.to_string());

  Fd sock(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_error(Errc::io_error, "socket");

  BERTHA_TRY_ASSIGN(sa, to_sockaddr(addr));
  if (::bind(sock.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0)
    return errno_error(Errc::io_error, "bind");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    return errno_error(Errc::io_error, "getsockname");

  BERTHA_TRY_ASSIGN(wake, make_wake_eventfd());
  return TransportPtr(new UdpTransport(std::move(sock), std::move(wake),
                                       from_sockaddr(bound)));
}

UdpTransport::~UdpTransport() { close(); }

Result<void> UdpTransport::send_to(const Addr& dst, BytesView payload) {
  if (closed_.load(std::memory_order_acquire))
    return err(Errc::cancelled, "transport closed");
  if (payload.size() > kMaxDatagram)
    return err(Errc::invalid_argument, "datagram too large");
  BERTHA_TRY_ASSIGN(sa, to_sockaddr(dst));
  ssize_t rc = ::sendto(sock_.get(), payload.data(), payload.size(), 0,
                        reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc < 0) {
    // Transient buffer pressure behaves like network drop for datagrams.
    if (errno == EAGAIN || errno == ENOBUFS || errno == ECONNREFUSED)
      return ok();
    return errno_error(Errc::io_error, "sendto");
  }
  return ok();
}

Result<Packet> UdpTransport::recv(Deadline deadline) {
  for (;;) {
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");
    BERTHA_TRY(wait_readable(sock_.get(), wake_.get(), deadline));
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");

    // recvfrom lands in a reusable scratch buffer: resizing a fresh
    // vector to 64 KiB would zero it on every receive, which dominates
    // small-packet latency.
    thread_local Bytes scratch(kMaxDatagram);
    Packet pkt;
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    ssize_t rc = ::recvfrom(sock_.get(), scratch.data(), scratch.size(),
                            MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&sa), &len);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNREFUSED)
        continue;  // spurious wakeup or ICMP error; retry
      return errno_error(Errc::io_error, "recvfrom");
    }
    pkt.payload.assign(scratch.begin(),
                       scratch.begin() + static_cast<ptrdiff_t>(rc));
    pkt.src = from_sockaddr(sa);
    return pkt;
  }
}

namespace {
// mmsghdr arrays live on the stack; larger batches go out in chunks.
constexpr size_t kMmsgChunk = 64;
}  // namespace

Result<size_t> UdpTransport::send_batch(std::span<const Datagram> batch) {
  if (closed_.load(std::memory_order_acquire))
    return err(Errc::cancelled, "transport closed");
  size_t done = 0;
  while (done < batch.size()) {
    mmsghdr hdrs[kMmsgChunk];
    iovec iovs[kMmsgChunk];
    sockaddr_in sas[kMmsgChunk];
    size_t k = std::min(kMmsgChunk, batch.size() - done);
    for (size_t i = 0; i < k; i++) {
      const Datagram& d = batch[done + i];
      if (d.payload.size() > kMaxDatagram)
        return err(Errc::invalid_argument, "datagram too large");
      BERTHA_TRY_ASSIGN(sa, to_sockaddr(d.dst));
      sas[i] = sa;
      iovs[i].iov_base = const_cast<uint8_t*>(d.payload.data());
      iovs[i].iov_len = d.payload.size();
      std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
      hdrs[i].msg_hdr.msg_name = &sas[i];
      hdrs[i].msg_hdr.msg_namelen = sizeof(sas[i]);
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
    }
    int rc = ::sendmmsg(sock_.get(), hdrs, static_cast<unsigned>(k), 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // Transient buffer pressure behaves like network drop (cf. send_to);
      // count the chunk as handed off and keep going.
      if (errno == EAGAIN || errno == ENOBUFS || errno == ECONNREFUSED) {
        done += k;
        continue;
      }
      return errno_error(Errc::io_error, "sendmmsg");
    }
    // Partial acceptance: resume after the last datagram the kernel took.
    done += static_cast<size_t>(rc);
  }
  return done;
}

Result<size_t> UdpTransport::recv_batch(std::span<Datagram> out,
                                        Deadline deadline) {
  if (out.empty()) return size_t(0);
  size_t want = std::min(out.size(), kMmsgChunk);
  for (;;) {
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");
    BERTHA_TRY(wait_readable(sock_.get(), wake_.get(), deadline));
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");

    mmsghdr hdrs[kMmsgChunk];
    iovec iovs[kMmsgChunk];
    sockaddr_in sas[kMmsgChunk];
    for (size_t i = 0; i < want; i++) {
      // Pooled capacity is reused across calls; the kernel overwrites it,
      // so the steady state neither allocates nor zero-fills.
      PooledBytes& p = out[i].payload;
      p.resize(kMaxDatagram);
      iovs[i].iov_base = p.data();
      iovs[i].iov_len = p.size();
      std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
      hdrs[i].msg_hdr.msg_name = &sas[i];
      hdrs[i].msg_hdr.msg_namelen = sizeof(sas[i]);
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
    }
    int rc = ::recvmmsg(sock_.get(), hdrs, static_cast<unsigned>(want),
                        MSG_DONTWAIT, nullptr);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNREFUSED)
        continue;  // spurious wakeup, signal, or ICMP error; re-wait
      return errno_error(Errc::io_error, "recvmmsg");
    }
    if (rc == 0) continue;
    for (int i = 0; i < rc; i++) {
      out[static_cast<size_t>(i)].payload.resize(hdrs[i].msg_len);
      out[static_cast<size_t>(i)].src = from_sockaddr(sas[i]);
    }
    // Untouched slots keep their capacity but carry no stale bytes.
    for (size_t i = static_cast<size_t>(rc); i < want; i++)
      out[i].payload.clear();
    return static_cast<size_t>(rc);
  }
}

void UdpTransport::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  fire_wake_eventfd(wake_.get());
}

}  // namespace bertha
