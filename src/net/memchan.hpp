// In-memory datagram network for tests: zero-latency, lossless unless a
// drop rate is configured, fully deterministic with a seed.
//
// A MemNetwork is a namespace of mem://host:port endpoints. Delivery is
// a queue push in the sender's thread, so message interleavings are
// driven entirely by the calling threads.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "net/transport.hpp"
#include "util/queue.hpp"
#include "util/rand.hpp"

namespace bertha {

class MemNetwork : public std::enable_shared_from_this<MemNetwork> {
 public:
  struct Config {
    double drop_rate = 0.0;  // fraction of datagrams silently dropped
    uint64_t seed = 1;       // for the drop decision
    size_t queue_depth = 4096;
  };

  static std::shared_ptr<MemNetwork> create(Config cfg) {
    return std::shared_ptr<MemNetwork>(new MemNetwork(cfg));
  }
  static std::shared_ptr<MemNetwork> create() { return create(Config{}); }

  // Binds mem://<host>:<port>. Port 0 picks a fresh ephemeral port on
  // that host name. Fails with already_exists if taken.
  Result<TransportPtr> bind(const Addr& addr);

  // Counters (for loss-injection assertions in tests).
  uint64_t delivered() const;
  uint64_t dropped() const;

 private:
  explicit MemNetwork(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  friend class MemTransport;
  struct Endpoint {
    BlockingQueue<Packet> q;
    explicit Endpoint(size_t depth) : q(depth) {}
  };

  // Called by MemTransport::send_to.
  Result<void> deliver(const Addr& from, const Addr& to, BytesView payload);
  void unbind(const Addr& addr);

  Config cfg_;
  mutable std::mutex mu_;
  Rng rng_;  // guarded by mu_
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint16_t next_ephemeral_ = 40000;
  std::unordered_map<Addr, std::shared_ptr<Endpoint>, AddrHash> endpoints_;
};

// Factory over a MemNetwork (satisfies TransportFactory for the runtime).
class MemTransportFactory final : public TransportFactory {
 public:
  explicit MemTransportFactory(std::shared_ptr<MemNetwork> net)
      : net_(std::move(net)) {}
  Result<TransportPtr> bind(const Addr& addr) override {
    return net_->bind(addr);
  }

 private:
  std::shared_ptr<MemNetwork> net_;
};

}  // namespace bertha
