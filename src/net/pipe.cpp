#include "net/pipe.hpp"

#include <sys/socket.h>

#include <cerrno>

namespace bertha {

namespace {

constexpr size_t kMaxDatagram = 65507;

class PipeTransport final : public Transport {
 public:
  PipeTransport(Fd sock, Fd wake, Addr local)
      : sock_(std::move(sock)), wake_(std::move(wake)), local_(std::move(local)) {}

  ~PipeTransport() override { close(); }

  Result<void> send_to(const Addr& /*dst*/, BytesView payload) override {
    if (closed_.load(std::memory_order_acquire))
      return err(Errc::cancelled, "transport closed");
    ssize_t rc = ::send(sock_.get(), payload.data(), payload.size(), 0);
    if (rc < 0) {
      if (errno == EPIPE || errno == ECONNRESET)
        return err(Errc::unavailable, "pipe peer closed");
      return errno_error(Errc::io_error, "pipe send");
    }
    return ok();
  }

  Result<Packet> recv(Deadline deadline) override {
    for (;;) {
      if (closed_.load(std::memory_order_acquire))
        return err(Errc::cancelled, "transport closed");
      BERTHA_TRY(wait_readable(sock_.get(), wake_.get(), deadline));
      if (closed_.load(std::memory_order_acquire))
        return err(Errc::cancelled, "transport closed");
      thread_local Bytes scratch(kMaxDatagram);
      Packet pkt;
      ssize_t rc =
          ::recv(sock_.get(), scratch.data(), scratch.size(), MSG_DONTWAIT);
      if (rc < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
        return errno_error(Errc::io_error, "pipe recv");
      }
      if (rc == 0) return err(Errc::unavailable, "pipe peer closed");
      pkt.payload.assign(scratch.begin(),
                         scratch.begin() + static_cast<ptrdiff_t>(rc));
      pkt.src = Addr::uds("pipe-peer");
      return pkt;
    }
  }

  const Addr& local_addr() const override { return local_; }

  void close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    fire_wake_eventfd(wake_.get());
    ::shutdown(sock_.get(), SHUT_RDWR);
  }

 private:
  Fd sock_;
  Fd wake_;
  Addr local_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<TransportPair> make_pipe_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, fds) < 0)
    return errno_error(Errc::io_error, "socketpair");
  Fd a(fds[0]), b(fds[1]);
  BERTHA_TRY_ASSIGN(wa, make_wake_eventfd());
  BERTHA_TRY_ASSIGN(wb, make_wake_eventfd());
  TransportPair pair;
  pair.a = TransportPtr(
      new PipeTransport(std::move(a), std::move(wa), Addr::uds("pipe-a")));
  pair.b = TransportPtr(
      new PipeTransport(std::move(b), std::move(wb), Addr::uds("pipe-b")));
  return pair;
}

}  // namespace bertha
