#include "net/fault.hpp"

#include <algorithm>
#include <utility>

namespace bertha {

FaultInjectingTransport::FaultInjectingTransport(TransportPtr inner,
                                                 Options opts)
    : inner_(std::move(inner)), opts_(opts), rng_(opts.seed) {
  opts_.drop = std::clamp(opts_.drop, 0.0, 1.0);
  opts_.duplicate = std::clamp(opts_.duplicate, 0.0, 1.0);
  opts_.reorder = std::clamp(opts_.reorder, 0.0, 1.0);
  opts_.delay = std::clamp(opts_.delay, 0.0, 1.0);
  if (opts_.delay_max < opts_.delay_min) opts_.delay_max = opts_.delay_min;
}

FaultInjectingTransport::~FaultInjectingTransport() {
  close();
  if (timer_.joinable()) timer_.join();
}

void FaultInjectingTransport::ensure_timer_locked() {
  if (timer_started_ || closing_) return;
  timer_started_ = true;
  timer_ = std::thread([this] { timer_loop(); });
}

void FaultInjectingTransport::timer_loop() {
  auto by_due = [](const Delayed& a, const Delayed& b) { return a.due > b.due; };
  std::unique_lock<std::mutex> lk(mu_);
  while (!closing_) {
    if (delay_q_.empty()) {
      delay_cv_.wait(lk);
      continue;
    }
    TimePoint due = delay_q_.front().due;
    if (now() < due) {
      delay_cv_.wait_until(lk, due);
      continue;
    }
    std::pop_heap(delay_q_.begin(), delay_q_.end(), by_due);
    Delayed d = std::move(delay_q_.back());
    delay_q_.pop_back();
    lk.unlock();
    (void)inner_->send_to(d.dst, d.payload);
    lk.lock();
  }
}

Result<void> FaultInjectingTransport::send_to(const Addr& dst,
                                              BytesView payload) {
  auto by_due = [](const Delayed& a, const Delayed& b) { return a.due > b.due; };
  std::optional<std::pair<Addr, Bytes>> flush;
  bool dup = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    n_.sent++;
    if (send_filter_ && send_filter_(dst, payload)) {
      n_.tx_dropped++;
      return {};
    }
    if (tx_partitioned_ || rng_.chance(opts_.drop)) {
      n_.tx_dropped++;
      return {};
    }
    dup = rng_.chance(opts_.duplicate);
    if (dup) n_.tx_duplicated++;
    if (rng_.chance(opts_.delay)) {
      n_.tx_delayed++;
      Duration extra(
          rng_.next_in(opts_.delay_min.count(), opts_.delay_max.count()));
      delay_q_.push_back({now() + extra, dst, Bytes(payload.begin(),
                                                    payload.end())});
      std::push_heap(delay_q_.begin(), delay_q_.end(), by_due);
      ensure_timer_locked();
      delay_cv_.notify_all();
      if (!dup) return {};
      // A duplicated+delayed datagram: one copy now, one later.
      dup = false;
    } else if (!tx_held_ && rng_.chance(opts_.reorder)) {
      // Hold this datagram; it goes out right after the next send, i.e.
      // the pair arrives swapped.
      n_.tx_reordered++;
      tx_held_.emplace(dst, Bytes(payload.begin(), payload.end()));
      return {};
    }
    if (tx_held_) {
      flush = std::move(tx_held_);
      tx_held_.reset();
    }
  }
  auto r = inner_->send_to(dst, payload);
  if (dup) (void)inner_->send_to(dst, payload);
  if (flush) (void)inner_->send_to(flush->first, flush->second);
  return r;
}

Result<Packet> FaultInjectingTransport::recv(Deadline deadline) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!rx_pending_.empty()) {
        Packet p = std::move(rx_pending_.front());
        rx_pending_.pop_front();
        n_.received++;
        return p;
      }
    }
    auto r = inner_->recv(deadline);
    if (!r.ok()) {
      // Don't strand a held (reordered) packet behind a quiet link.
      std::lock_guard<std::mutex> lk(mu_);
      if (rx_held_) {
        Packet p = std::move(*rx_held_);
        rx_held_.reset();
        n_.received++;
        return p;
      }
      return r;
    }
    Packet p = std::move(r).value();
    std::lock_guard<std::mutex> lk(mu_);
    if (recv_filter_ && recv_filter_(p.src, p.payload)) {
      n_.rx_dropped++;
      continue;
    }
    if (rx_partitioned_ || rng_.chance(opts_.drop)) {
      n_.rx_dropped++;
      continue;
    }
    if (rng_.chance(opts_.duplicate)) {
      n_.rx_duplicated++;
      rx_pending_.push_back(p);
    }
    if (!rx_held_ && rng_.chance(opts_.reorder)) {
      n_.rx_reordered++;
      rx_held_ = std::move(p);
      continue;
    }
    if (rx_held_) {
      rx_pending_.push_back(std::move(*rx_held_));
      rx_held_.reset();
    }
    n_.received++;
    return p;
  }
}

Result<size_t> FaultInjectingTransport::send_batch(
    std::span<const Datagram> batch) {
  // Per-datagram on purpose: each send draws its own fault decisions, so
  // a batched sender is chaos-tested exactly like an unbatched one.
  size_t sent = 0;
  for (const Datagram& d : batch) {
    BERTHA_TRY(send_to(d.dst, d.payload.view()));
    sent++;
  }
  return sent;
}

Result<size_t> FaultInjectingTransport::recv_batch(std::span<Datagram> out,
                                                   Deadline deadline) {
  if (out.empty()) return size_t(0);
  for (;;) {
    size_t n = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      while (n < out.size() && !rx_pending_.empty()) {
        out[n].src = std::move(rx_pending_.front().src);
        out[n].payload.assign(rx_pending_.front().payload);
        rx_pending_.pop_front();
        n_.received++;
        n++;
      }
    }
    if (n > 0) return n;

    // Pull a fresh batch from the inner transport and run every datagram
    // through the same fault pipeline recv() applies.
    std::vector<Datagram> fresh(out.size());
    auto r = bertha::recv_batch(*inner_, std::span<Datagram>(fresh), deadline);
    if (!r.ok()) {
      // Don't strand a held (reordered) packet behind a quiet link.
      std::lock_guard<std::mutex> lk(mu_);
      if (rx_held_) {
        out[0].src = std::move(rx_held_->src);
        out[0].payload.assign(rx_held_->payload);
        rx_held_.reset();
        n_.received++;
        return size_t(1);
      }
      return r.error();
    }
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < r.value(); i++) {
      Datagram& d = fresh[i];
      if (recv_filter_ && recv_filter_(d.src, d.payload.view())) {
        n_.rx_dropped++;
        continue;
      }
      if (rx_partitioned_ || rng_.chance(opts_.drop)) {
        n_.rx_dropped++;
        continue;
      }
      auto to_packet = [&d] {
        Packet p;
        p.src = d.src;
        p.payload = d.payload.to_bytes();
        return p;
      };
      if (rng_.chance(opts_.duplicate)) {
        n_.rx_duplicated++;
        rx_pending_.push_back(to_packet());
      }
      if (!rx_held_ && rng_.chance(opts_.reorder)) {
        n_.rx_reordered++;
        rx_held_ = to_packet();
        continue;
      }
      auto deliver = [&](Packet p) {
        if (n < out.size()) {
          out[n].src = std::move(p.src);
          out[n].payload.assign(p.payload);
          n_.received++;
          n++;
        } else {
          rx_pending_.push_back(std::move(p));
        }
      };
      // Matches recv(): the current datagram goes out first, then the
      // held one — that inversion is what "reorder" means.
      std::optional<Packet> held;
      if (rx_held_) {
        held = std::move(*rx_held_);
        rx_held_.reset();
      }
      deliver(to_packet());
      if (held) deliver(std::move(*held));
    }
    if (n > 0) return n;
    // Every datagram in the pull was dropped/held; wait for more.
  }
}

void FaultInjectingTransport::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closing_ = true;
  }
  delay_cv_.notify_all();
  inner_->close();
}

void FaultInjectingTransport::partition(bool tx, bool rx) {
  std::lock_guard<std::mutex> lk(mu_);
  tx_partitioned_ = tx;
  rx_partitioned_ = rx;
}

void FaultInjectingTransport::set_send_filter(Filter f) {
  std::lock_guard<std::mutex> lk(mu_);
  send_filter_ = std::move(f);
}

void FaultInjectingTransport::set_recv_filter(Filter f) {
  std::lock_guard<std::mutex> lk(mu_);
  recv_filter_ = std::move(f);
}

FaultInjectingTransport::Counters FaultInjectingTransport::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return n_;
}

Result<TransportPtr> FaultInjectingFactory::bind(const Addr& addr) {
  auto t = inner_->bind(addr);
  if (!t.ok()) return t;
  FaultInjectingTransport::Options opts = opts_;
  FaultInjectingTransport::Filter sf, rf;
  {
    std::lock_guard<std::mutex> lk(mu_);
    opts.seed = opts_.seed + 0x9e3779b97f4a7c15ull * ++binds_;
    sf = send_filter_;
    rf = recv_filter_;
  }
  auto* ft = new FaultInjectingTransport(std::move(t).value(), opts);
  if (sf) ft->set_send_filter(std::move(sf));
  if (rf) ft->set_recv_filter(std::move(rf));
  return TransportPtr(ft);
}

void FaultInjectingFactory::set_send_filter(FaultInjectingTransport::Filter f) {
  std::lock_guard<std::mutex> lk(mu_);
  send_filter_ = std::move(f);
}

void FaultInjectingFactory::set_recv_filter(FaultInjectingTransport::Filter f) {
  std::lock_guard<std::mutex> lk(mu_);
  recv_filter_ = std::move(f);
}

}  // namespace bertha
