#include "synth/pattern.hpp"

#include <algorithm>
#include <sstream>

#include "chunnels/common.hpp"
#include "util/hash.hpp"

namespace bertha {

namespace {

// The frame chunnel's fixed header: 3 id bytes + 1 flag byte, followed
// by a varint body length (chunnels/framing.cpp).
constexpr uint64_t kFrameFixedHeader = 4;

struct Lowering {
  std::vector<IrInstr> instrs;
  std::vector<std::string> table;
  SlotKind slot = SlotKind::match_action;
  bool steers = false;       // emitted a terminal hash_steer/forward
  bool does_work = false;    // drop/strip/stamp/steer beyond pure parsing
  std::vector<std::string> notes;
};

Result<void> lower_shard(const StageInfo& s, Lowering& out) {
  BERTHA_TRY_ASSIGN(csv, s.args.get("shards"));
  BERTHA_TRY_ASSIGN(shards, parse_addr_list(csv));
  if (shards.empty())
    return err(Errc::invalid_argument, "synth: shard stage with no shards");
  uint64_t off = s.args.get_u64_or("field_offset", 0);
  uint64_t len = s.args.get_u64_or("field_len", 4);
  out.instrs.push_back({IrOp::match_magic, 'S', '1'});
  out.instrs.push_back({IrOp::skip_varint_body, 0, 0});  // reply uri
  out.instrs.push_back({IrOp::hash_steer, off, len});
  for (const auto& a : shards) out.table.push_back(a.to_string());
  out.steers = true;
  out.does_work = true;
  std::ostringstream os;
  os << "shard: steer field(+" << off << "," << len << ") over "
     << shards.size() << " backends";
  out.notes.push_back(os.str());
  return ok();
}

Result<void> lower_dedup(const StageInfo& s, Lowering& out) {
  uint64_t window = s.args.get_u64_or("window", 4096);
  out.instrs.push_back({IrOp::match_magic, 'D', '1'});
  out.instrs.push_back({IrOp::drop_dup, window, 0});
  out.does_work = true;
  out.notes.push_back("dedup: drop ids seen within window " +
                      std::to_string(window));
  return ok();
}

Result<void> lower_frame(const StageInfo& s, const SynthOptions& opts,
                         Lowering& out) {
  (void)s;
  out.instrs.push_back({IrOp::skip_fixed, kFrameFixedHeader, 0});
  out.instrs.push_back({IrOp::skip_varint, 0, 0});  // body length
  out.notes.push_back(opts.strip_parsed_headers ? "frame: parse + strip"
                                                : "frame: parse through");
  return ok();
}

Result<void> lower_mcast_seq(const StageInfo& s, const SynthOptions& opts,
                             Lowering& out) {
  BERTHA_TRY_ASSIGN(group, s.args.get("group_addr"));
  out.slot = SlotKind::sequencer;
  out.instrs.push_back({IrOp::prepend_seq, 0, 0});
  out.instrs.push_back({IrOp::forward, out.table.size(), 0});
  out.table.push_back(group);
  out.steers = true;
  out.does_work = true;
  out.notes.push_back("mcast_seq: stamp from " +
                      std::to_string(opts.initial_seq) + ", forward to " +
                      group);
  return ok();
}

}  // namespace

std::vector<StageInfo> wire_order_stages(
    const std::vector<NegotiatedNode>& chain) {
  auto stages = describe_stages(chain);
  std::reverse(stages.begin(), stages.end());
  return stages;
}

uint64_t chain_fingerprint(const std::vector<StageInfo>& stages, size_t n) {
  Writer w;
  for (size_t i = 0; i < n && i < stages.size(); i++) {
    w.put_string(stages[i].type);
    w.put_string(stages[i].impl_name);
    serde_put(w, stages[i].args);
  }
  return fnv1a64(w.bytes());
}

Result<SynthPlan> synthesize_prefix(const std::vector<StageInfo>& stages,
                                    const SynthOptions& opts) {
  if (opts.vip.empty())
    return err(Errc::invalid_argument, "synth: options need a vip");

  Lowering low;
  SynthPlan plan;
  for (const auto& s : stages) {
    if (low.steers) break;  // a steering decision ends the program
    std::string pattern = s.args.get_or("synth.pattern", "");
    Result<void> lowered = ok();
    if (pattern == "shard") {
      lowered = lower_shard(s, low);
    } else if (pattern == "dedup") {
      lowered = lower_dedup(s, low);
    } else if (pattern == "frame") {
      lowered = lower_frame(s, opts, low);
      if (opts.strip_parsed_headers) low.does_work = true;
    } else if (pattern == "mcast_seq") {
      lowered = lower_mcast_seq(s, opts, low);
    } else {
      break;  // unannotated stage: the walk must not look past it
    }
    // A malformed annotated stage (e.g. shard with an unparsable shard
    // list) also stops the walk rather than failing synthesis outright:
    // whatever was lowered before it may still be worth offloading.
    if (!lowered.ok()) break;
    plan.stages_covered++;
    plan.covered.push_back(s.type + "/" + s.impl_name);
  }

  if (plan.stages_covered == 0)
    return err(Errc::not_found, "synth: no offloadable prefix");
  if (!low.does_work)
    return err(Errc::not_found,
               "synth: covered prefix performs no offloadable work");

  // Non-steering programs (dedup-only, framing strip) continue to a
  // fixed software destination.
  if (!low.steers) {
    if (opts.default_dst.empty())
      return err(Errc::not_found,
                 "synth: prefix does not steer and no default destination");
    if (opts.strip_parsed_headers)
      low.instrs.push_back({IrOp::strip_to_cursor, 0, 0});
    low.instrs.push_back({IrOp::forward, low.table.size(), 0});
    low.table.push_back(opts.default_dst);
  }

  plan.ir.slot = low.slot;
  plan.ir.vip = opts.vip;
  plan.ir.table = std::move(low.table);
  plan.ir.instrs = std::move(low.instrs);
  plan.ir.initial_seq = low.slot == SlotKind::sequencer ? opts.initial_seq : 0;
  plan.ir.source_fingerprint = chain_fingerprint(stages, plan.stages_covered);
  BERTHA_TRY(validate_program(plan.ir));

  std::ostringstream os;
  for (size_t i = 0; i < low.notes.size(); i++)
    os << (i ? "; " : "") << low.notes[i];
  plan.summary = os.str();
  return plan;
}

}  // namespace bertha
