#include "synth/ir.hpp"

#include <sstream>

namespace bertha {

namespace {

// Hard bounds: the decoder is wire-facing, so a corrupt length field
// must not drive allocation or execution cost.
constexpr uint64_t kMaxInstrs = 64;
constexpr uint64_t kMaxTable = 1024;
constexpr uint64_t kMaxWindow = 1 << 20;
constexpr uint64_t kMaxSkip = 1 << 20;

bool steering_op(IrOp op) { return op == IrOp::hash_steer || op == IrOp::forward; }

}  // namespace

Result<void> validate_program(const ProgramIR& ir) {
  if (ir.slot != SlotKind::match_action && ir.slot != SlotKind::sequencer)
    return err(Errc::invalid_argument, "program: unknown slot kind");
  if (ir.vip.empty())
    return err(Errc::invalid_argument, "program: missing vip");
  if (ir.instrs.empty() || ir.instrs.size() > kMaxInstrs)
    return err(Errc::invalid_argument, "program: instruction count");
  if (ir.table.size() > kMaxTable)
    return err(Errc::invalid_argument, "program: table too large");
  bool stamped = false;
  for (size_t i = 0; i < ir.instrs.size(); i++) {
    const IrInstr& in = ir.instrs[i];
    bool last = i + 1 == ir.instrs.size();
    switch (in.op) {
      case IrOp::match_magic:
        break;
      case IrOp::skip_fixed:
        if (in.a > kMaxSkip)
          return err(Errc::invalid_argument, "program: skip too large");
        break;
      case IrOp::skip_varint:
      case IrOp::skip_varint_body:
      case IrOp::strip_to_cursor:
        break;
      case IrOp::hash_steer:
        if (!last)
          return err(Errc::invalid_argument,
                     "program: steering must be the final instruction");
        if (ir.table.empty())
          return err(Errc::invalid_argument, "program: hash_steer needs a table");
        if (in.b == 0 || in.b > 64)
          return err(Errc::invalid_argument, "program: hash_steer field length");
        if (in.a > kMaxSkip)
          return err(Errc::invalid_argument, "program: hash_steer field offset");
        break;
      case IrOp::drop_dup:
        if (in.a == 0 || in.a > kMaxWindow)
          return err(Errc::invalid_argument, "program: drop_dup window");
        break;
      case IrOp::prepend_seq:
        stamped = true;
        break;
      case IrOp::forward:
        if (!last)
          return err(Errc::invalid_argument,
                     "program: steering must be the final instruction");
        if (in.a >= ir.table.size())
          return err(Errc::invalid_argument, "program: forward index out of range");
        break;
      default:
        return err(Errc::invalid_argument, "program: unknown op");
    }
  }
  if (!steering_op(ir.instrs.back().op))
    return err(Errc::invalid_argument,
               "program: no destination decision (hash_steer/forward)");
  if (stamped && ir.slot != SlotKind::sequencer)
    return err(Errc::invalid_argument,
               "program: prepend_seq requires a sequencer slot");
  if (!stamped && ir.slot == SlotKind::sequencer)
    return err(Errc::invalid_argument,
               "program: sequencer slot without prepend_seq");
  return ok();
}

Bytes encode_program(const ProgramIR& ir) {
  Writer w;
  w.put_u8('P');
  w.put_u8('1');
  w.put_u8(static_cast<uint8_t>(ir.slot));
  w.put_string(ir.vip);
  w.put_varint(ir.table.size());
  for (const auto& t : ir.table) w.put_string(t);
  w.put_varint(ir.instrs.size());
  for (const auto& in : ir.instrs) {
    w.put_u8(static_cast<uint8_t>(in.op));
    w.put_varint(in.a);
    w.put_varint(in.b);
  }
  w.put_varint(ir.initial_seq);
  w.put_varint(ir.source_fingerprint);
  return std::move(w).take();
}

Result<ProgramIR> decode_program(BytesView b) {
  Reader r(b);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'P' || m1 != '1')
    return err(Errc::invalid_argument, "not a program frame");
  ProgramIR ir;
  BERTHA_TRY_ASSIGN(slot, r.get_u8());
  ir.slot = static_cast<SlotKind>(slot);
  BERTHA_TRY_ASSIGN(vip, r.get_string());
  ir.vip = std::move(vip);
  BERTHA_TRY_ASSIGN(nt, r.get_varint());
  if (nt > kMaxTable)
    return err(Errc::invalid_argument, "program: table too large");
  ir.table.reserve(nt);
  for (uint64_t i = 0; i < nt; i++) {
    BERTHA_TRY_ASSIGN(t, r.get_string());
    ir.table.push_back(std::move(t));
  }
  BERTHA_TRY_ASSIGN(ni, r.get_varint());
  if (ni > kMaxInstrs)
    return err(Errc::invalid_argument, "program: too many instructions");
  ir.instrs.reserve(ni);
  for (uint64_t i = 0; i < ni; i++) {
    IrInstr in;
    BERTHA_TRY_ASSIGN(op, r.get_u8());
    in.op = static_cast<IrOp>(op);
    BERTHA_TRY_ASSIGN(a, r.get_varint());
    BERTHA_TRY_ASSIGN(bb, r.get_varint());
    in.a = a;
    in.b = bb;
    ir.instrs.push_back(in);
  }
  BERTHA_TRY_ASSIGN(seq, r.get_varint());
  ir.initial_seq = seq;
  BERTHA_TRY_ASSIGN(fp, r.get_varint());
  ir.source_fingerprint = fp;
  if (!r.at_end())
    return err(Errc::invalid_argument, "program: trailing bytes");
  BERTHA_TRY(validate_program(ir));
  return ir;
}

std::string to_string(const ProgramIR& ir) {
  std::ostringstream os;
  os << (ir.slot == SlotKind::sequencer ? "sequencer" : "match-action") << "@"
     << ir.vip << ":";
  for (const auto& in : ir.instrs) {
    os << " ";
    switch (in.op) {
      case IrOp::match_magic:
        os << "match '" << static_cast<char>(in.a) << static_cast<char>(in.b)
           << "';";
        break;
      case IrOp::skip_fixed:
        os << "skip " << in.a << ";";
        break;
      case IrOp::skip_varint:
        os << "skipv;";
        break;
      case IrOp::skip_varint_body:
        os << "skipvb;";
        break;
      case IrOp::hash_steer:
        os << "hash_steer(+" << in.a << "," << in.b << ")%" << ir.table.size();
        break;
      case IrOp::drop_dup:
        os << "drop_dup(w=" << in.a << ");";
        break;
      case IrOp::strip_to_cursor:
        os << "strip;";
        break;
      case IrOp::prepend_seq:
        os << "prepend_seq(from=" << ir.initial_seq << ");";
        break;
      case IrOp::forward:
        os << "forward[" << in.a << "]";
        break;
    }
  }
  return os.str();
}

}  // namespace bertha
