// ProgramIR: the match-action intermediate representation offload
// synthesis compiles negotiated chunnel prefixes into (DESIGN.md §11).
//
// A program is a straight-line instruction list executed over one
// datagram with a read cursor. Match instructions inspect header bytes;
// a mismatch is a *table miss* (the packet is not for this program's
// source chain — it is dropped, never mis-steered). Action instructions
// pick a destination (hash_steer / forward), drop duplicates against a
// bounded seen-window, strip already-parsed header bytes, or prepend a
// sequencer stamp. This is deliberately tiny: it models what a
// reconfigurable pipeline (P4 match-action stages plus a sequencer
// register) can actually do at line rate — no loops, no writes past the
// parsed region, bounded state.
//
// The encoded form travels through discovery props and the control
// plane, so the decoder is wire-facing: it must reject truncated or
// corrupted frames (fuzzed in tests/fuzz_test.cpp) — a bad program
// frame degrades to "no offload installed", never a crash.
#pragma once

#include <string>
#include <vector>

#include "serialize/codec.hpp"

namespace bertha {

enum class IrOp : uint8_t {
  // Matches (miss => drop):
  match_magic = 1,  // a,b: the two bytes at the cursor; advances 2
  // Parses (cursor movement through headers already validated upstream):
  skip_fixed = 2,        // a: advance a bytes
  skip_varint = 3,       // advance past one varint (its bytes only)
  skip_varint_body = 4,  // read varint L, advance past the varint and L bytes
  // Actions:
  hash_steer = 5,  // a=field_offset, b=field_len (relative to the cursor):
                   // dst = table[fnv1a64(field) % table.size()]
  drop_dup = 6,    // a=window: varint msg-id at cursor; drop if recently seen
  strip_to_cursor = 7,  // rewrite the packet to drop bytes [0, cursor)
  prepend_seq = 8,      // prepend a u64 LE global sequence stamp
  forward = 9,          // a=table index: fixed destination
};

struct IrInstr {
  IrOp op{};
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const IrInstr& o) const {
    return op == o.op && a == o.a && b == o.b;
  }
};

// Which kind of switch slot the program occupies: a stamping program
// needs the sequencer register; everything else is a match-action stage.
enum class SlotKind : uint8_t { match_action = 1, sequencer = 2 };

struct ProgramIR {
  SlotKind slot = SlotKind::match_action;
  std::string vip;  // virtual service address the program attaches to
  // Destination table (addresses in URI form) for hash_steer / forward.
  std::vector<std::string> table;
  std::vector<IrInstr> instrs;
  uint64_t initial_seq = 0;  // prepend_seq seed (sequence-epoch handover)
  // FNV digest of the source chain (types + impls + steering args) this
  // program was compiled from; negotiation surfaces it so a bound
  // connection can be traced back to the software chain it replaced.
  uint64_t source_fingerprint = 0;

  bool operator==(const ProgramIR& o) const {
    return slot == o.slot && vip == o.vip && table == o.table &&
           instrs == o.instrs && initial_seq == o.initial_seq &&
           source_fingerprint == o.source_fingerprint;
  }
};

// Structural validity: ops in range, exactly one destination decision
// (hash_steer or forward) and it is the final instruction, table indices
// in bounds, non-empty table iff a steering op needs it, bounded window
// and instruction count. Decoded programs are validated before install.
Result<void> validate_program(const ProgramIR& ir);

// Wire form: 'P' '1' | slot | vip | table | instrs | initial_seq | fp.
Bytes encode_program(const ProgramIR& ir);
Result<ProgramIR> decode_program(BytesView b);

// One-line human form for golden tests and logs, e.g.
//   "match-action@sim://vip:9: match 'S1'; skipvb; hash_steer(+0,4)%3"
std::string to_string(const ProgramIR& ir);

}  // namespace bertha
