// Offload pattern library: recognizes compilable prefixes of a
// negotiated chunnel chain and lowers them to ProgramIR (DESIGN.md §11).
//
// The walk consumes stages outermost-first as seen on the wire. Note
// that this is the REVERSE of the negotiated chain order: chain[0] is
// the app-facing wrapper, so its header is applied first on send and
// every later stage wraps around it — the LAST chain element's header is
// what a switch parser sees first. Use wire_order_stages() to get the
// walk's input from a negotiated chain.
// Each implementation opts in by annotating its ImplInfo props with
// "synth.pattern"; the annotation travels through negotiation into the
// bound node's merged args, which is where StageInfo exposes it. Known
// patterns:
//
//   shard      'S1' | varint reply-uri | payload   -> match, skip the
//              reply uri, hash the shard field, steer to table[h % n].
//              Terminal: steering decides the destination.
//   dedup      'D1' | varint msg-id | payload      -> match, drop the
//              packet if the id was recently seen (bounded window).
//   frame      [id0 id1 id2 flags][varint len][..] -> parse through the
//              fixed header and length varint; with strip_parsed_headers
//              the program also rewrites the packet to shed the framing
//              (the "framing strip" offload: backends receive bare
//              payloads and skip the frame chunnel entirely).
//   mcast_seq  'M1' | ...                          -> sequencer slot:
//              stamp a global sequence number and forward to the real
//              group address (the NOPaxos-style in-network sequencer).
//
// Unknown or unannotated stages (encrypt, serialize, ...) stop the walk:
// a program never reaches past bytes it cannot prove it parsed. If the
// walk consumes nothing offloadable, synthesis reports not_found and the
// chain simply stays in software — synthesis failing is never an error
// at the connection level.
#pragma once

#include "core/negotiation.hpp"
#include "synth/ir.hpp"

namespace bertha {

struct SynthOptions {
  // Virtual address the compiled program will attach to (ProgramIR.vip).
  std::string vip;
  // Fallthrough destination for programs whose covered prefix does not
  // itself steer (dedup-only, framing-strip): the software endpoint the
  // packet continues to. Required for those patterns.
  std::string default_dst;
  // Rewrite packets to shed the headers the program parsed (framing
  // strip). Only meaningful for non-steering programs: a steering
  // program forwards the original bytes so the backend's software chain
  // still parses its own headers.
  bool strip_parsed_headers = false;
  // Seed for sequencer programs (sequence-epoch handover, §3.2).
  uint64_t initial_seq = 0;
};

struct SynthPlan {
  ProgramIR ir;
  size_t stages_covered = 0;          // prefix length consumed
  std::vector<std::string> covered;   // "type/impl_name" per covered stage
  std::string summary;                // human-readable lowering, for spans
};

// StageInfos of `chain` in wire order (outermost header first) — the
// input synthesize_prefix expects. describe_stages() order, reversed.
std::vector<StageInfo> wire_order_stages(
    const std::vector<NegotiatedNode>& chain);

// Digest of the first `n` stages (types + impls + merged args): the
// provenance a synthesized impl advertises so a bound connection can be
// traced back to the software chain its program replaced.
uint64_t chain_fingerprint(const std::vector<StageInfo>& stages, size_t n);

// Lowers the longest recognizable prefix of `stages`. not_found when no
// prefix compiles to a program that does real work (nothing annotated,
// or parse-only coverage with nothing to strip, drop, or steer).
Result<SynthPlan> synthesize_prefix(const std::vector<StageInfo>& stages,
                                    const SynthOptions& opts);

}  // namespace bertha
