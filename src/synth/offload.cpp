#include "synth/offload.hpp"

#include <sstream>
#include <thread>

#include "util/log.hpp"

namespace bertha {

namespace {

// The steering anchor decides what the registered impl claims to be: a
// shard-steering program advertises as an in-network shard dispatcher
// (same contract as the hand-written "shard/switch" offload, so the
// existing client factory binds it), a sequencer program as an
// in-network ordered_mcast sequencer.
struct Anchor {
  std::string pattern;  // "shard" / "mcast_seq" / "" (transparent)
  std::string type;
  const StageInfo* stage = nullptr;
};

Anchor find_anchor(const std::vector<StageInfo>& stages, size_t covered) {
  Anchor a;
  for (size_t i = 0; i < covered && i < stages.size(); i++) {
    std::string p = stages[i].args.get_or("synth.pattern", "");
    if (p == "shard" || p == "mcast_seq") {
      a.pattern = p;
      a.type = stages[i].type;
      a.stage = &stages[i];
    }
  }
  return a;
}

std::string join_covered(const std::vector<std::string>& covered) {
  std::ostringstream os;
  for (size_t i = 0; i < covered.size(); i++) os << (i ? "," : "") << covered[i];
  return os.str();
}

}  // namespace

Result<SynthesizedOffloadPtr> synthesize_offload(
    const std::vector<StageInfo>& stages, const SynthOptions& opts,
    const SynthContext& ctx) {
  if (!ctx.sw || !ctx.discovery)
    return err(Errc::invalid_argument,
               "synthesize_offload needs a switch and discovery");

  // --- compile ---
  Span compile_span = trace_span(ctx.tracer, "synth.compile", ctx.parent);
  auto plan_r = synthesize_prefix(stages, opts);
  if (!plan_r.ok()) {
    compile_span.tag("outcome", "declined");
    compile_span.tag("reason", plan_r.error().message);
    metrics_add(ctx.metrics, "synth.declined");
    return plan_r.error();
  }
  SynthPlan plan = std::move(plan_r).value();
  compile_span.tag("outcome", "ok");
  compile_span.tag_u64("stages_covered", plan.stages_covered);
  compile_span.tag_u64("fingerprint", plan.ir.source_fingerprint);
  compile_span.tag("program", to_string(plan.ir));
  metrics_add(ctx.metrics, "synth.compiled");

  // Wire roundtrip before install: the program ships through discovery
  // props and the control plane in encoded form, so a program that does
  // not survive its own codec must never reach a switch slot.
  auto decoded = decode_program(BytesView(encode_program(plan.ir)));
  if (!decoded.ok() || !(decoded.value() == plan.ir)) {
    metrics_add(ctx.metrics, "synth.codec_reject");
    return err(Errc::internal, "synth: program failed codec roundtrip");
  }
  TraceContext compile_ctx = compile_span.context();
  compile_span.finish();

  // --- install ---
  Span install_span = trace_span(ctx.tracer, "synth.install", compile_ctx);
  auto vip_r = ctx.sw->install_program(plan.ir);
  if (!vip_r.ok()) {
    install_span.tag("outcome", vip_r.error().to_string());
    metrics_add(ctx.metrics, "synth.install_failed");
    return vip_r.error();
  }
  Addr vip = std::move(vip_r).value();
  install_span.tag("outcome", "ok");
  install_span.tag("vip", vip.to_string());
  install_span.tag("slot", plan.ir.slot == SlotKind::sequencer
                              ? "sequencer"
                              : "match_action");
  install_span.finish();
  metrics_add(ctx.metrics, "synth.installed");

  auto offload = SynthesizedOffloadPtr(new SynthesizedOffload());
  offload->ctx_ = ctx;
  offload->plan_ = plan;
  offload->vip_ = vip;

  // --- bind into the catalogue (steering programs only) ---
  Anchor anchor = find_anchor(stages, plan.stages_covered);
  if (anchor.pattern.empty()) {
    // Transparent offload (framing strip / dedup in front of a fixed
    // destination): it holds its slot and rewrites traffic, but there is
    // no implementation for negotiation to pick — nothing to register.
    BLOG(info, "synth") << "installed transparent program at "
                        << vip.to_string() << " [" << plan.summary << "]";
    return offload;
  }

  Span bind_span = trace_span(ctx.tracer, "synth.bind", compile_ctx);
  ImplInfo info;
  info.type = anchor.type;
  if (anchor.pattern == "shard") {
    // Same negotiation contract as the hand-registered switch offload
    // (clients resolve the "shard/switch" factory by base name), but
    // distinguishable in the catalogue by its synth props.
    info.name = "shard/switch:synth:" + vip.to_string();
    info.priority = 15;  // in-network beats the host XDP path
    info.props["vip_addr"] = vip.to_string();
  } else {  // mcast_seq
    info.name = "ordered_mcast/switch:synth:" + vip.to_string();
    info.priority = 20;  // hardware beats software sequencers
    info.props["group_addr"] = vip.to_string();
    info.props["sequencer"] = "switch";
  }
  info.scope = Scope::rack;
  info.endpoints = EndpointConstraint::server;
  // Each negotiated binding claims one flow-table entry on the switch;
  // staged-then-rolled-back transitions must hand the entry back (the
  // slot-leak regression in tests/synth_test.cpp).
  info.resources = {ResourceReq{ctx.sw->flow_pool(), 1}};
  info.props["switch"] = ctx.sw->name();
  if (!ctx.instance.empty()) info.props["instance"] = ctx.instance;
  info.props["offloadable"] = "true";
  info.props["size_factor"] =
      anchor.stage->args.get_or("size_factor", "1");
  info.props["synthesized"] = "true";
  info.props["synth.fingerprint"] =
      std::to_string(plan.ir.source_fingerprint);
  info.props["synth.chain"] = join_covered(plan.covered);

  auto reg = ctx.discovery->register_impl(info);
  if (!reg.ok()) {
    bind_span.tag("outcome", reg.error().to_string());
    // Unwind fully: the slot must not leak behind a failed registration.
    (void)ctx.sw->remove_program(vip);
    metrics_add(ctx.metrics, "synth.bind_failed");
    return reg.error();
  }
  offload->info_ = info;
  bind_span.tag("outcome", "ok");
  bind_span.tag("impl", info.name);
  bind_span.finish();
  metrics_add(ctx.metrics, "synth.registered");
  BLOG(info, "synth") << "synthesized " << info.name << " at "
                      << vip.to_string() << " [" << plan.summary << "]";

  offload->start_watch();
  return offload;
}

SynthesizedOffload::~SynthesizedOffload() {
  (void)remove();
  if (!watch_thread_.joinable()) return;
  // The watch thread itself can run the final release (it holds a
  // transient strong ref while reacting to a revocation): it must not
  // join itself.
  if (watch_thread_.get_id() == std::this_thread::get_id())
    watch_thread_.detach();
  else
    watch_thread_.join();
}

bool SynthesizedOffload::removed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return removed_;
}

Result<void> SynthesizedOffload::remove() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (removed_) return ok();
    removed_ = true;
  }
  if (watcher_) watcher_->cancel();
  auto removed = ctx_.sw->remove_program(vip_);
  if (!info_.name.empty())
    (void)ctx_.discovery->unregister_impl(info_.type, info_.name);
  metrics_add(ctx_.metrics, "synth.withdrawn");
  BLOG(info, "synth") << "withdrew program at " << vip_.to_string();
  return removed;
}

void SynthesizedOffload::start_watch() {
  auto watch_r = ctx_.discovery->watch(info_.type);
  if (!watch_r.ok()) {
    // No watch support (e.g. a bare cache): manual remove() still works,
    // only remote revocation reclaim is unavailable.
    BLOG(warn, "synth") << "no revocation watch for " << info_.name << ": "
                        << watch_r.error().to_string();
    return;
  }
  watcher_ = watch_r.value();
  std::weak_ptr<SynthesizedOffload> weak = weak_from_this();
  WatcherPtr watcher = watcher_;
  std::string type = info_.type;
  std::string name = info_.name;
  watch_thread_ = std::thread([weak, watcher, type, name] {
    for (;;) {
      auto ev = watcher->next();
      if (!ev.ok()) return;  // cancelled / source gone
      if (ev.value().kind != WatchKind::impl_unregistered) continue;
      if (ev.value().type != type || ev.value().name != name) continue;
      // Registration revoked remotely (operator pull, lease expiry):
      // reclaim the switch slot. The revocation already removed the
      // catalogue entry, so the teardown here must not unregister again
      // — remove() tolerates that (unregister_impl of a missing entry
      // is ignored), and connections bound to the program renegotiate
      // off it through the normal revocation fallback.
      if (auto self = weak.lock()) (void)self->remove();
      return;
    }
  });
}

}  // namespace bertha
