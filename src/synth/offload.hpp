// Offload synthesis driver (DESIGN.md §11): the pipeline that takes a
// negotiated chain, compiles its offloadable prefix into ProgramIR
// (synth/pattern.hpp), installs the program into a SimSwitch slot, and
// registers the resulting implementation with the discovery catalogue so
// negotiation — and the live transition controller, via its watch on the
// catalogue — can bind connections to it with no hand-registered offload
// anywhere.
//
// Lifecycle of a synthesized offload:
//
//   synthesize_offload()            compile + install + register
//       │
//       ├─ connections bind it through normal negotiation (the impl's
//       │  priority mirrors the hand-written switch offloads'), or the
//       │  transition controller migrates live connections onto it when
//       │  its registration event arrives,
//       │
//       └─ remove() / revocation    uninstall + slot release + unregister.
//          A revocation observed through the catalogue watch (someone
//          called unregister_impl on this impl, e.g. an operator pulling
//          the offload) triggers the same teardown, so the switch slot is
//          reclaimed even when the withdrawal originated remotely —
//          bound connections renegotiate onto software via the usual
//          revocation fallback.
#pragma once

#include "sim/simswitch.hpp"
#include "synth/pattern.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace bertha {

struct SynthContext {
  std::shared_ptr<SimSwitch> sw;
  // The deployment catalogue to register with: the switch's own
  // discovery handle, or a RemoteDiscovery client into the replicated
  // control plane (src/control/).
  DiscoveryPtr discovery;
  TracerPtr tracer;    // optional: synth.compile / synth.install spans
  MetricsPtr metrics;  // optional: synth.* counters
  // Parent context for the synthesis spans (e.g. the negotiation that
  // triggered it).
  TraceContext parent;
  // Value for the impl's "instance" prop: scopes the offload to one
  // application/service so negotiation for unrelated chains ignores it.
  std::string instance;
};

// A live synthesized offload. Owns the switch slot transitively (the
// program holds it) and the discovery registration.
class SynthesizedOffload
    : public std::enable_shared_from_this<SynthesizedOffload> {
 public:
  ~SynthesizedOffload();

  // Uninstalls the program (releasing its slot) and withdraws the
  // discovery registration. Idempotent; also invoked by the watch when
  // the registration is revoked remotely.
  Result<void> remove();
  bool removed() const;

  const SynthPlan& plan() const { return plan_; }
  const Addr& vip() const { return vip_; }
  // Empty info().name when the program steers to a fixed destination
  // (framing strip, dedup-only): those are transparent offloads — they
  // occupy a slot and rewrite traffic but are not separately negotiable,
  // so nothing is registered for them.
  const ImplInfo& info() const { return info_; }

 private:
  friend Result<std::shared_ptr<SynthesizedOffload>> synthesize_offload(
      const std::vector<StageInfo>& stages, const SynthOptions& opts,
      const SynthContext& ctx);

  SynthesizedOffload() = default;
  void start_watch();
  void watch_loop();

  SynthContext ctx_;
  SynthPlan plan_;
  Addr vip_;
  ImplInfo info_;       // name empty = not registered
  mutable std::mutex mu_;
  bool removed_ = false;
  WatcherPtr watcher_;
  std::thread watch_thread_;
};

using SynthesizedOffloadPtr = std::shared_ptr<SynthesizedOffload>;

// Compiles the offloadable prefix of `stages` and brings it live:
// validate → install into a switch slot → register with discovery
// (steering programs only). Fails with not_found when nothing in the
// chain is offloadable (synthesis declining is not an error condition
// for the connection — it just stays in software), resource_exhausted
// when the switch is out of slots. On failure nothing is left behind:
// a slot acquired for a program that later failed registration has been
// released.
Result<SynthesizedOffloadPtr> synthesize_offload(
    const std::vector<StageInfo>& stages, const SynthOptions& opts,
    const SynthContext& ctx);

}  // namespace bertha
