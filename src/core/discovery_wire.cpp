#include "core/discovery_wire.hpp"

#include "core/discovery.hpp"

namespace bertha {

Bytes encode_request(const DiscRequest& req) {
  Writer w;
  w.put_u8(static_cast<uint8_t>(req.op));
  w.put_string(req.type);
  w.put_string(req.name);
  serde_put(w, std::optional<ImplInfo>(req.entry));
  serde_put(w, req.resources);
  w.put_varint(req.alloc_id);
  w.put_varint(req.capacity);
  w.put_string(req.client_id);
  w.put_varint(req.idem_key);
  w.put_varint(req.ttl_ms);
  put_trace_context(w, req.trace);
  return std::move(w).take();
}

Result<DiscRequest> decode_request(BytesView b) {
  Reader r(b);
  DiscRequest req;
  BERTHA_TRY_ASSIGN(op, r.get_u8());
  if (op < 1 || op > 7) return err(Errc::protocol_error, "bad discovery op");
  req.op = static_cast<DiscOp>(op);
  BERTHA_TRY_ASSIGN(type, r.get_string());
  BERTHA_TRY_ASSIGN(name, r.get_string());
  BERTHA_TRY_ASSIGN(entry, serde_get<std::optional<ImplInfo>>(r));
  BERTHA_TRY_ASSIGN(res, serde_get<std::vector<ResourceReq>>(r));
  BERTHA_TRY_ASSIGN(alloc, r.get_varint());
  BERTHA_TRY_ASSIGN(cap, r.get_varint());
  BERTHA_TRY_ASSIGN(client, r.get_string());
  BERTHA_TRY_ASSIGN(idem, r.get_varint());
  BERTHA_TRY_ASSIGN(ttl, r.get_varint());
  req.type = std::move(type);
  req.name = std::move(name);
  req.entry = std::move(entry);
  req.resources = std::move(res);
  req.alloc_id = alloc;
  req.capacity = cap;
  req.client_id = std::move(client);
  req.idem_key = idem;
  req.ttl_ms = ttl;
  req.trace = read_trace_context_tail(r);
  return req;
}

Bytes encode_response(const DiscResponse& rsp) {
  Writer w;
  w.put_bool(rsp.success);
  w.put_u8(rsp.errc);
  w.put_string(rsp.error);
  serde_put(w, rsp.entries);
  w.put_varint(rsp.alloc_id);
  return std::move(w).take();
}

Result<DiscResponse> decode_response(BytesView b) {
  Reader r(b);
  DiscResponse rsp;
  BERTHA_TRY_ASSIGN(okb, r.get_bool());
  BERTHA_TRY_ASSIGN(ec, r.get_u8());
  BERTHA_TRY_ASSIGN(error, r.get_string());
  BERTHA_TRY_ASSIGN(entries, serde_get<std::vector<ImplInfo>>(r));
  BERTHA_TRY_ASSIGN(alloc, r.get_varint());
  rsp.success = okb;
  rsp.errc = ec;
  rsp.error = std::move(error);
  rsp.entries = std::move(entries);
  rsp.alloc_id = alloc;
  return rsp;
}

DiscResponse error_response(const Error& e) {
  DiscResponse rsp;
  rsp.success = false;
  rsp.errc = static_cast<uint8_t>(e.code);
  rsp.error = e.message;
  return rsp;
}

const char* serve_span_name(DiscOp op) {
  switch (op) {
    case DiscOp::register_impl: return "serve.register_impl";
    case DiscOp::unregister_impl: return "serve.unregister_impl";
    case DiscOp::query: return "serve.query";
    case DiscOp::acquire: return "serve.acquire";
    case DiscOp::release: return "serve.release";
    case DiscOp::set_pool: return "serve.set_pool";
    case DiscOp::heartbeat: return "serve.heartbeat";
  }
  return "serve.unknown";
}

DiscResponse execute_request(DiscoveryState& state, const DiscRequest& req,
                             TimePoint at) {
  DiscResponse rsp;
  bool leased = req.ttl_ms != 0 && !req.client_id.empty();
  Duration ttl = ms(static_cast<int64_t>(req.ttl_ms));
  switch (req.op) {
    case DiscOp::register_impl: {
      if (!req.entry)
        return error_response(err(Errc::invalid_argument, "missing entry"));
      auto r = leased ? state.register_impl_leased_at(*req.entry,
                                                      req.client_id, ttl, at)
                      : state.register_impl(*req.entry);
      if (r.ok()) rsp.success = true;
      else rsp = error_response(r.error());
      break;
    }
    case DiscOp::unregister_impl: {
      auto r = state.unregister_impl(req.type, req.name);
      if (r.ok()) rsp.success = true;
      else rsp = error_response(r.error());
      break;
    }
    case DiscOp::query: {
      auto r = state.query(req.type);
      if (r.ok()) {
        rsp.success = true;
        rsp.entries = std::move(r).value();
      } else {
        rsp = error_response(r.error());
      }
      break;
    }
    case DiscOp::acquire: {
      auto r = leased ? state.acquire_leased_at(req.resources, req.client_id,
                                                ttl, at)
                      : state.acquire(req.resources);
      if (r.ok()) {
        rsp.success = true;
        rsp.alloc_id = r.value();
      } else {
        rsp = error_response(r.error());
      }
      break;
    }
    case DiscOp::release: {
      auto r = state.release(req.alloc_id);
      if (r.ok()) rsp.success = true;
      else rsp = error_response(r.error());
      break;
    }
    case DiscOp::set_pool: {
      auto r = state.set_pool(req.type, req.capacity);
      if (r.ok()) rsp.success = true;
      else rsp = error_response(r.error());
      break;
    }
    case DiscOp::heartbeat: {
      auto r = state.heartbeat_at(req.client_id, at);
      if (r.ok()) rsp.success = true;
      else rsp = error_response(r.error());
      break;
    }
  }
  return rsp;
}

}  // namespace bertha
