#include "core/wire.hpp"

namespace bertha {

Bytes encode_frame(MsgKind kind, uint64_t token, BytesView payload) {
  Bytes out;
  out.reserve(kWireHeaderSize + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<uint8_t>(kind));
  put_u64_le(out, token);
  append(out, payload);
  return out;
}

Result<Frame> decode_frame(BytesView datagram) {
  if (datagram.size() < kWireHeaderSize)
    return err(Errc::protocol_error, "short bertha frame");
  if (datagram[0] != kMagic0 || datagram[1] != kMagic1)
    return err(Errc::protocol_error, "bad bertha magic");
  uint8_t k = datagram[2];
  if (k < static_cast<uint8_t>(MsgKind::hello) ||
      k > static_cast<uint8_t>(MsgKind::event_batch))
    return err(Errc::protocol_error, "bad bertha msg kind");
  Frame f;
  f.kind = static_cast<MsgKind>(k);
  f.token = get_u64_le(datagram, 3);
  f.payload = datagram.subspan(kWireHeaderSize);
  return f;
}

}  // namespace bertha
