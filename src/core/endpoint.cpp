#include "core/endpoint.hpp"

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/renegotiation.hpp"
#include "core/wire.hpp"
#include "io/batch.hpp"
#include "io/timer_wheel.hpp"
#include "util/log.hpp"
#include "util/queue.hpp"
#include "util/sharded_map.hpp"

namespace bertha {

namespace {

struct Peer {
  Addr addr;
  uint64_t token;
};

}  // namespace

// ----------------------------------------------------------------------
// Client-side base: a *group* of per-epoch channels. Each channel is a
// (transport, peers) binding demultiplexed by token; a live transition
// stages a second channel for the new epoch on the same group, frames
// are routed across channels by token, and shared transports are
// refcounted so the old epoch keeps draining over UDP while the new one
// rebases onto a unix socket.
// ----------------------------------------------------------------------

struct RoutedFrame {
  MsgKind kind;
  uint64_t token = 0;
  Bytes payload;
  Addr src;
};

class ClientChannel;

class ClientChannelGroup
    : public std::enable_shared_from_this<ClientChannelGroup> {
 public:
  // A transport shared by the group's channels. `pull_mu` serializes
  // recv: at most one channel pulls a transport at a time and routes
  // frames to their owners, so no channel can miss a frame while blocked
  // inside the kernel.
  struct Port {
    std::shared_ptr<Transport> transport;
    std::shared_ptr<std::mutex> pull_mu = std::make_shared<std::mutex>();
    int users = 0;  // guarded by group mu_
  };
  using PortPtr = std::shared_ptr<Port>;

  using TransitionHandler = std::function<void(
      const TransitionMsg&, const std::shared_ptr<ClientChannel>&)>;
  using CancelHandler = std::function<void(
      const TransitionCancelMsg&, const std::shared_ptr<ClientChannel>&)>;

  static PortPtr make_port(std::shared_ptr<Transport> t) {
    auto p = std::make_shared<Port>();
    p->transport = std::move(t);
    return p;
  }

  std::shared_ptr<ClientChannel> add_channel(PortPtr port,
                                             std::vector<Peer> peers);

  void port_add_user(const PortPtr& p) {
    std::lock_guard<std::mutex> lk(mu_);
    p->users++;
  }
  void port_drop_user(const PortPtr& p) {
    bool close;
    {
      std::lock_guard<std::mutex> lk(mu_);
      close = --p->users <= 0;
    }
    if (close) p->transport->close();
  }

  // Hand a frame to the channel owning its token. Unknown tokens are
  // dropped (stragglers for an epoch that already finished).
  void route(RoutedFrame f);

  void channel_gone(const std::vector<uint64_t>& tokens) {
    for (uint64_t t : tokens) by_token_.erase(t);
  }

  // Drops tokens whose channel died without a clean close (the weak_ptr
  // expired while the token was still registered). Cheap enough to run
  // from a periodic wheel timer; route() also self-heals the entry it
  // trips over, so this only catches tokens no frame ever hits again.
  size_t sweep_dead_tokens() {
    return by_token_.erase_if(
        [](uint64_t, const std::weak_ptr<ClientChannel>& w) {
          return w.expired();
        });
  }

  size_t tokens_live() const { return by_token_.size(); }

  void set_transition_handler(TransitionHandler h) {
    std::lock_guard<std::mutex> lk(mu_);
    handler_ = std::move(h);
  }
  void set_cancel_handler(CancelHandler h) {
    std::lock_guard<std::mutex> lk(mu_);
    cancel_handler_ = std::move(h);
  }
  void on_transition(const TransitionMsg& msg,
                     const std::shared_ptr<ClientChannel>& via);
  void on_transition_cancel(const TransitionCancelMsg& msg,
                            const std::shared_ptr<ClientChannel>& via);

 private:
  friend class ClientChannel;
  std::mutex mu_;  // ports and handlers; by_token_ stripes its own locks
  ShardedMap<std::weak_ptr<ClientChannel>> by_token_{8};
  TransitionHandler handler_;
  CancelHandler cancel_handler_;
};

class ClientChannel final : public Connection,
                            public std::enable_shared_from_this<ClientChannel> {
 public:
  ClientChannel(std::shared_ptr<ClientChannelGroup> group,
                ClientChannelGroup::PortPtr port, std::vector<Peer> peers)
      : group_(std::move(group)),
        port_(std::move(port)),
        peers_(std::move(peers)),
        pending_(8192),
        local_(port_->transport->local_addr()),
        initial_peer_(peers_.front().addr) {
    for (const auto& p : peers_) live_tokens_.insert(p.token);
  }

  ~ClientChannel() override { close(); }

  Result<void> send(Msg m) override {
    ClientChannelGroup::PortPtr port;
    std::vector<Peer> peers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      port = port_;
      peers = peers_;
    }
    // A valid dst narrows the fan-out to that one peer.
    bool sent = false;
    for (const auto& p : peers) {
      if (m.dst.valid() && !(m.dst == p.addr)) continue;
      Bytes frame = encode_frame(MsgKind::data, p.token, m.payload);
      BERTHA_TRY(port->transport->send_to(p.addr, frame));
      sent = true;
    }
    if (!sent)
      return err(Errc::invalid_argument,
                 "dst " + m.dst.to_string() + " is not a peer");
    return ok();
  }

  // Encodes the whole batch (with per-peer fan-out) and hands it to the
  // transport in one send_batch call — one sendmmsg on UDP/UDS.
  Result<void> send_batch(std::span<Msg> msgs) override {
    if (msgs.empty()) return ok();
    ClientChannelGroup::PortPtr port;
    std::vector<Peer> peers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      port = port_;
      peers = peers_;
    }
    std::vector<Datagram> batch;
    batch.reserve(msgs.size() * peers.size());
    for (const Msg& m : msgs) {
      bool matched = false;
      for (const auto& p : peers) {
        if (m.dst.valid() && !(m.dst == p.addr)) continue;
        Datagram d;
        d.dst = p.addr;
        d.payload.assign(encode_frame(MsgKind::data, p.token, m.payload));
        batch.push_back(std::move(d));
        matched = true;
      }
      if (!matched)
        return err(Errc::invalid_argument,
                   "dst " + m.dst.to_string() + " is not a peer");
    }
    BERTHA_TRY(bertha::send_batch(*port->transport, batch));
    return ok();
  }

  // Raw control frame to the (first) peer: transition acks, fins.
  Result<void> send_frame(MsgKind kind, uint64_t token, BytesView payload) {
    ClientChannelGroup::PortPtr port;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      port = port_;
      dst = peers_.front().addr;
    }
    return port->transport->send_to(dst, encode_frame(kind, token, payload));
  }

  // Half-close: tells the server this epoch carries no more client data
  // (per-path FIFO ordering puts the fin after everything sent above).
  // The channel stays open to drain server->client traffic. A
  // transition-driven fin stamps the target epoch in the payload so the
  // server can recognise it as stale after a rollback.
  void send_fin(BytesView payload = {}) {
    ClientChannelGroup::PortPtr port;
    std::vector<Peer> peers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || fin_sent_) return;
      fin_sent_ = true;
      port = port_;
      peers = peers_;
    }
    for (const auto& p : peers)
      (void)port->transport->send_to(
          p.addr, encode_frame(MsgKind::close, p.token, payload));
  }

  // Re-arm send_fin after a reverted transition: the epoch this channel
  // carries became current again and a future transition must be able to
  // half-close it.
  void clear_fin() {
    std::lock_guard<std::mutex> lk(mu_);
    fin_sent_ = false;
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      // Frames another channel's puller routed to us.
      while (auto f = pending_.try_pop()) {
        if (auto m = handle(*f)) return std::move(*m);
      }
      ClientChannelGroup::PortPtr port;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) return err(Errc::cancelled, "connection closed");
        if (live_tokens_.empty())
          return err(Errc::unavailable, "all peers closed the connection");
        port = port_;
      }
      std::unique_lock<std::mutex> pull(*port->pull_mu, std::try_to_lock);
      if (!pull.owns_lock()) {
        // Another channel is pulling this transport and will route our
        // frames; block on our queue (its push wakes us) with a short
        // slice so we retake the pull role when the puller leaves.
        Deadline slice = Deadline::after(ms(10));
        if (!deadline.is_never() && deadline.remaining() < ms(10))
          slice = deadline;
        auto f = pending_.pop(slice);
        if (f.ok()) {
          if (auto m = handle(f.value())) return std::move(*m);
          continue;
        }
        if (f.error().code == Errc::cancelled)
          return err(Errc::cancelled, "connection closed");
        if (deadline.expired())
          return err(Errc::timed_out, "recv deadline expired");
        continue;
      }
      // We are the puller for this transport: receive and route. Tenure
      // is bounded so a rebase (port swap) is noticed promptly.
      Deadline slice = Deadline::after(ms(50));
      if (!deadline.is_never() && deadline.remaining() < ms(50))
        slice = deadline;
      auto pkt_r = port->transport->recv(slice);
      pull.unlock();
      if (!pkt_r.ok()) {
        if (pkt_r.error().code == Errc::timed_out) {
          if (deadline.expired())
            return err(Errc::timed_out, "recv deadline expired");
          continue;
        }
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (!closed_ && port_ != port) continue;  // rebased; retry
          if (closed_) return err(Errc::cancelled, "connection closed");
        }
        return pkt_r.error();
      }
      auto frame_r = decode_frame(pkt_r.value().payload);
      if (!frame_r.ok()) continue;  // stray datagram
      RoutedFrame rf;
      rf.kind = frame_r.value().kind;
      rf.token = frame_r.value().token;
      rf.payload.assign(frame_r.value().payload.begin(),
                        frame_r.value().payload.end());
      rf.src = pkt_r.value().src;
      bool mine;
      {
        std::lock_guard<std::mutex> lk(mu_);
        mine = live_tokens_.count(rf.token) > 0;
      }
      if (mine) {
        if (auto m = handle(rf)) return std::move(*m);
        continue;
      }
      group_->route(std::move(rf));
    }
  }

  const Addr& local_addr() const override { return local_; }

  // Reports the peer negotiated at establishment; a rebase (which
  // changes the live destination) does not alter the logical peer.
  const Addr& peer_addr() const override { return initial_peer_; }

  void close() override {
    ClientChannelGroup::PortPtr port;
    std::vector<Peer> peers;
    bool fin_sent;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
      port = port_;
      peers = peers_;
      fin_sent = fin_sent_;
    }
    if (!fin_sent) {
      for (const auto& p : peers)
        (void)port->transport->send_to(
            p.addr, encode_frame(MsgKind::close, p.token, {}));
    }
    pending_.close();
    std::vector<uint64_t> tokens;
    for (const auto& p : peers) tokens.push_back(p.token);
    group_->channel_gone(tokens);
    group_->port_drop_user(port);
  }

  // Switch the underlying transport and (single) peer address without
  // renegotiating; the token is preserved, so the server simply follows
  // the new reply path. This is how local_or_remote moves an established
  // connection onto a unix socket.
  Result<void> rebase(TransportPtr new_transport, Addr new_peer) {
    auto np = ClientChannelGroup::make_port(
        std::shared_ptr<Transport>(std::move(new_transport)));
    ClientChannelGroup::PortPtr old;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      if (peers_.size() != 1)
        return err(Errc::invalid_argument,
                   "rebase only supported for single-peer connections");
      old = port_;
      port_ = np;
      peers_[0].addr = std::move(new_peer);
    }
    group_->port_add_user(np);
    group_->port_drop_user(old);  // closes the transport if we were the
                                  // last channel on it, waking its puller
    return ok();
  }

  uint64_t token() const {
    std::lock_guard<std::mutex> lk(mu_);
    return peers_.front().token;
  }

  ClientChannelGroup::PortPtr port() const {
    std::lock_guard<std::mutex> lk(mu_);
    return port_;
  }
  Addr peer0() const {
    std::lock_guard<std::mutex> lk(mu_);
    return peers_.front().addr;
  }

  void deliver(RoutedFrame f) { (void)pending_.push(std::move(f)); }

 private:
  // Returns a Msg to surface to the caller, or nullopt to keep looping.
  std::optional<Msg> handle(RoutedFrame& f) {
    switch (f.kind) {
      case MsgKind::data: {
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (!live_tokens_.count(f.token)) return std::nullopt;
        }
        Msg m;
        m.src = f.src;
        m.dst = local_;
        m.payload = std::move(f.payload);
        return m;
      }
      case MsgKind::close: {
        std::lock_guard<std::mutex> lk(mu_);
        live_tokens_.erase(f.token);
        return std::nullopt;  // loop notices live_tokens_.empty()
      }
      case MsgKind::transition: {
        auto msg = decode_transition(f.payload);
        if (msg.ok()) group_->on_transition(msg.value(), shared_from_this());
        return std::nullopt;
      }
      case MsgKind::transition_cancel: {
        auto msg = decode_transition_cancel(f.payload);
        if (msg.ok())
          group_->on_transition_cancel(msg.value(), shared_from_this());
        return std::nullopt;
      }
      default:
        return std::nullopt;  // duplicate accept from a retry, etc.
    }
  }

  std::shared_ptr<ClientChannelGroup> group_;
  mutable std::mutex mu_;
  ClientChannelGroup::PortPtr port_;
  std::vector<Peer> peers_;
  std::unordered_set<uint64_t> live_tokens_;
  BlockingQueue<RoutedFrame> pending_;
  Addr local_;
  Addr initial_peer_;
  bool fin_sent_ = false;
  bool closed_ = false;
};

std::shared_ptr<ClientChannel> ClientChannelGroup::add_channel(
    PortPtr port, std::vector<Peer> peers) {
  auto ch =
      std::make_shared<ClientChannel>(shared_from_this(), port, peers);
  {
    std::lock_guard<std::mutex> lk(mu_);
    port->users++;
  }
  for (const auto& p : peers) by_token_.put(p.token, ch);
  return ch;
}

void ClientChannelGroup::route(RoutedFrame f) {
  std::shared_ptr<ClientChannel> ch;
  std::weak_ptr<ClientChannel> w;
  if (by_token_.get(f.token, &w)) {
    ch = w.lock();
    // Self-heal: the channel died without erasing its token (no clean
    // close); drop the dead entry so churn can't accumulate them.
    if (!ch) by_token_.erase(f.token);
  }
  if (ch) {
    ch->deliver(std::move(f));
    return;
  }
  // Unknown tokens are dropped (stragglers for an epoch that already
  // finished) — except a rollback notice: when the old stack drained
  // before the cancel arrived, its channel (and token) are already gone,
  // yet the cancel is exactly what tells us the epoch we cut over to is
  // dead on the server. Hand it to the cancel handler with no via
  // channel; there is nothing left to clear_fin() on anyway.
  if (f.kind == MsgKind::transition_cancel) {
    auto msg = decode_transition_cancel(f.payload);
    if (msg.ok()) on_transition_cancel(msg.value(), nullptr);
  }
}

void ClientChannelGroup::on_transition(
    const TransitionMsg& msg, const std::shared_ptr<ClientChannel>& via) {
  TransitionHandler h;
  {
    std::lock_guard<std::mutex> lk(mu_);
    h = handler_;
  }
  if (h) {
    h(msg, via);
    return;
  }
  // No handler installed: refuse, so the server rolls back cleanly.
  TransitionAckMsg ack;
  ack.epoch = msg.epoch;
  ack.accepted = false;
  ack.errc = static_cast<uint8_t>(Errc::invalid_argument);
  ack.reason = "peer does not support live transitions";
  (void)via->send_frame(MsgKind::transition_ack, msg.new_token,
                        encode_transition_ack(ack));
}

void ClientChannelGroup::on_transition_cancel(
    const TransitionCancelMsg& msg, const std::shared_ptr<ClientChannel>& via) {
  CancelHandler h;
  {
    std::lock_guard<std::mutex> lk(mu_);
    h = cancel_handler_;
  }
  if (h) h(msg, via);
  // Without a handler there is nothing staged to discard.
}

// ----------------------------------------------------------------------
// Server-side per-connection state and connection object.
// ----------------------------------------------------------------------

struct ServerConnState {
  explicit ServerConnState(uint64_t tok) : token(tok), incoming(16384) {}

  const uint64_t token;
  BlockingQueue<Packet> incoming;  // payloads already stripped of header

  std::mutex reply_mu;
  std::shared_ptr<Transport> reply_transport;
  Addr reply_addr;

  void set_reply_path(std::shared_ptr<Transport> t, const Addr& addr) {
    std::lock_guard<std::mutex> lk(reply_mu);
    reply_transport = std::move(t);
    reply_addr = addr;
  }
};

// Everything the listener remembers about one established connection,
// keyed by its *current* token (a live transition re-keys the entry to
// the new epoch's token at cutover).
struct ConnMeta {
  HelloMsg hello;         // for renegotiation
  Addr established_from;  // client handshake source (logical peer)
  uint64_t epoch = 0;
  std::vector<NegotiatedNode> chain;
  std::vector<NodeAlloc> allocs;  // live reservations by chain position
  std::weak_ptr<TransitionableConnection> conn;
  bool transitioning = false;  // an offer is in flight
  // Negotiated while discovery was unreachable (local software fallbacks
  // only); cleared when a later renegotiation sees a healthy catalogue.
  bool degraded = false;
  // Shared liveness timestamps, re-threaded into every epoch's stack so
  // keepalive state survives cutovers.
  ConnLivenessPtr liveness;
};

// One in-flight transition, indexed under both its tokens.
struct TransitionRecord {
  enum class Phase { awaiting_ack, draining };

  uint64_t old_token = 0;
  uint64_t new_token = 0;
  uint64_t epoch = 0;
  TransitionReason reason = TransitionReason::upgrade;
  bool mandatory = false;
  Phase phase = Phase::awaiting_ack;

  Bytes offer_frame;  // retransmitted until acked
  Deadline next_retry = Deadline::never();
  Deadline ack_deadline = Deadline::never();
  Deadline drain_deadline = Deadline::never();
  TimePoint started{};

  // Client fin on the old token that arrived before the ack: applied at
  // cutover (the old incoming queue is closed once it's the old epoch).
  bool old_fin_seen = false;

  bool degraded = false;  // the renegotiated chain is itself degraded

  // The establishing connection's trace context; cutover/drain/rollback
  // spans and the cancel notice carry it.
  TraceContext trace;

  std::vector<NegotiatedNode> new_chain;
  std::vector<NodeAlloc> kept_allocs;  // carried incumbent slots
  std::vector<NodeAlloc> new_allocs;   // released on rollback
  std::vector<uint64_t> retired_allocs;  // released after drain

  std::shared_ptr<ServerConnState> old_st, new_st;
  ConnPtr new_stack;
  std::shared_ptr<TransitionableConnection> conn;
};

class Listener::Impl : public TransitionHost,
                       public std::enable_shared_from_this<Listener::Impl> {
 public:
  Impl(std::shared_ptr<Runtime> rt, std::vector<ChunnelSpec> chain,
       std::string endpoint_name)
      : rt_(std::move(rt)),
        chain_(std::move(chain)),
        endpoint_name_(std::move(endpoint_name)),
        accept_q_(1024) {}

  ~Impl() override { close(); }

  Result<void> start(const Addr& addr) {
    BERTHA_TRY_ASSIGN(t, rt_->transports().bind(addr));
    primary_addr_ = t->local_addr();
    epoch_salt_ = mint_epoch_salt(rt_->config().host_id + "|" +
                                  rt_->config().process_id + "|" +
                                  primary_addr_.to_string());
    std::shared_ptr<Transport> shared(std::move(t));
    {
      std::lock_guard<std::mutex> lk(mu_);
      transports_.push_back(shared);
    }

    // Run on_listen for every locally registered impl of every type in
    // the chain; they may attach extra transports and advertise args.
    for (const auto& spec : chain_) {
      for (const auto& impl : rt_->registry().lookup_type(spec.type)) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          activated_.insert(spec.type + "/" + impl->info().name);
        }
        BERTHA_TRY(run_on_listen(spec, impl));
      }
    }

    start_demux(shared);
    return ok();
  }

  Result<void> run_on_listen(const ChunnelSpec& spec,
                             const ChunnelImplPtr& impl) {
    ListenContext ctx;
    ctx.listen_addr = primary_addr_;
    ctx.host_id = rt_->config().host_id;
    ctx.transports = &rt_->transports();
    ctx.app_args = spec.args;
    auto self = shared_from_this();
    std::string type = spec.type;
    ctx.add_listen_transport = [self](TransportPtr extra) {
      return self->add_transport(std::move(extra));
    };
    ctx.advertise = [self, type](std::string k, std::string v) {
      std::lock_guard<std::mutex> lk(self->mu_);
      self->advertisements_[type].set(k, std::move(v));
    };
    return impl->on_listen(ctx);
  }

  Result<void> add_transport(TransportPtr t) {
    if (!t) return err(Errc::invalid_argument, "null transport");
    std::shared_ptr<Transport> shared(std::move(t));
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closing_) return err(Errc::cancelled, "listener closed");
      transports_.push_back(shared);
    }
    start_demux(shared);
    return ok();
  }

  Result<ConnPtr> accept(Deadline deadline) { return accept_q_.pop(deadline); }

  const Addr& addr() const { return primary_addr_; }

  uint64_t connections_accepted() const {
    std::lock_guard<std::mutex> lk(mu_);
    return accepted_;
  }

  uint64_t degraded_connections() const {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = 0;
    for (const auto& [tok, m] : meta_)
      if (m.degraded) n++;
    return n;
  }

  // Live connection-table entries across all shards (both epochs of an
  // in-flight transition count until the drain finishes). Regression
  // hook for the churn tests: must return to zero after teardown.
  uint64_t connections_live() const { return conns_.size(); }

  void close() {
    std::vector<std::shared_ptr<Transport>> transports;
    std::vector<std::shared_ptr<ServerConnState>> states;
    std::vector<uint64_t> allocs;
    std::vector<std::thread> threads;
    ReactorPtr reactor;
    std::vector<uint64_t> reactor_ids;
    // Moved out under the lock, destroyed only after it: dropping a
    // transition record (or connection entry) here can release the last
    // reference to a connection stack whose destructor re-enters
    // connection_closed() and takes mu_ again.
    std::unordered_map<uint64_t, ConnMeta> metas;
    std::unordered_map<uint64_t, std::shared_ptr<TransitionRecord>> recs;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closing_) return;
      closing_ = true;
      transports = transports_;
      conns_.for_each([&](uint64_t, const std::shared_ptr<ServerConnState>& st) {
        states.push_back(st);
      });
      for (auto& [tok, m] : meta_)
        for (const auto& a : m.allocs) allocs.push_back(a.alloc_id);
      // In-flight transitions hold slots the meta map doesn't: the
      // not-yet-live side before cutover, the not-yet-drained side after.
      for (auto& [tok, rec] : transitions_) {
        if (tok != rec->old_token) continue;  // visit each record once
        if (rec->phase == TransitionRecord::Phase::awaiting_ack) {
          for (const auto& a : rec->new_allocs) allocs.push_back(a.alloc_id);
        } else {
          for (uint64_t id : rec->retired_allocs) allocs.push_back(id);
        }
      }
      conns_.clear();  // states keeps the refs alive past the lock
      metas.swap(meta_);
      recs.swap(transitions_);
      threads.swap(demux_threads_);
      reactor = std::move(reactor_);
      reactor_ids.swap(reactor_ids_);
    }
    // Unregister from the reactor first: remove() blocks until any
    // in-flight handler invocation finishes, so no demux_datagram runs
    // against the maps we are about to clear.
    if (reactor)
      for (uint64_t id : reactor_ids) reactor->remove(id);
    for (auto& t : transports) t->close();
    for (auto& th : threads)
      if (th.joinable()) th.join();
    for (auto& st : states) st->incoming.close();
    for (uint64_t id : allocs) (void)rt_->discovery().release(id);
    accept_q_.close();
  }

  std::map<std::string, ChunnelArgs> advertisements_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return advertisements_;
  }

  void connection_closed(uint64_t token) {
    std::shared_ptr<ServerConnState> st, other_st;
    std::vector<uint64_t> ids;
    std::shared_ptr<TransitionRecord> rec;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!conns_.take(token, &st)) return;
      auto mit = meta_.find(token);
      if (mit != meta_.end()) {
        for (const auto& a : mit->second.allocs) ids.push_back(a.alloc_id);
        meta_.erase(mit);
      }
      auto tit = transitions_.find(token);
      if (tit != transitions_.end()) {
        // The whole connection is going away mid-transition: tear down
        // the other epoch too. Its slots are disjoint from the meta
        // entry's (pre-cutover meta holds kept+retired and the record
        // holds new; post-cutover meta holds kept+new, record retired).
        rec = tit->second;
        uint64_t other =
            token == rec->old_token ? rec->new_token : rec->old_token;
        transitions_.erase(rec->old_token);
        transitions_.erase(rec->new_token);
        (void)conns_.take(other, &other_st);
        auto omit = meta_.find(other);
        if (omit != meta_.end()) {
          for (const auto& a : omit->second.allocs) ids.push_back(a.alloc_id);
          meta_.erase(omit);
        }
        if (token == rec->old_token) {
          for (const auto& a : rec->new_allocs) ids.push_back(a.alloc_id);
        } else {
          for (uint64_t id : rec->retired_allocs) ids.push_back(id);
        }
      }
    }
    st->incoming.close();
    if (other_st) other_st->incoming.close();
    for (uint64_t id : ids) (void)rt_->discovery().release(id);
  }

  // --- TransitionHost ---

  std::vector<LiveConn> live_connections() const override {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<LiveConn> out;
    out.reserve(meta_.size());
    for (const auto& [tok, m] : meta_) out.push_back({tok, m.chain});
    return out;
  }

  bool refresh_advertisements() override {
    auto before = advertisements_snapshot();
    for (const auto& spec : chain_) {
      for (const auto& impl : rt_->registry().lookup_type(spec.type)) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (closing_) return false;
          if (!activated_.insert(spec.type + "/" + impl->info().name).second)
            continue;  // already ran at listen() or an earlier refresh
        }
        auto r = run_on_listen(spec, impl);
        if (!r.ok())
          BLOG(warn, "listener") << "late on_listen for " << impl->info().name
                                 << " failed: " << r.error().to_string();
      }
    }
    return advertisements_snapshot() != before;
  }

  void bind_stats(StatsSinkPtr sink) override {
    std::lock_guard<std::mutex> lk(mu_);
    stats_ = std::move(sink);
  }

  Result<Begin> begin_transition(
      uint64_t token, TransitionReason reason,
      const std::vector<std::pair<std::string, std::string>>& banned,
      bool mandatory) override;
  void sweep_transitions() override;

 private:
  StatsSinkPtr sink() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }
  template <typename F>
  void stat(F f) {
    if (auto s = sink()) s->update(f);
  }

  void handle_transition_ack(const std::shared_ptr<Transport>& transport,
                             const Addr& src, uint64_t token,
                             BytesView payload);
  void do_cutover(const std::shared_ptr<TransitionRecord>& rec);
  void rollback(const std::shared_ptr<TransitionRecord>& rec, bool declined);
  void transition_drained(uint64_t old_token, bool forced, uint64_t drained);
  // Registers the transport with the runtime's shared reactor (batched
  // epoll rx) or, when the reactor is disabled/unavailable, spawns the
  // classic blocking demux thread.
  void start_demux(std::shared_ptr<Transport> t) {
    auto self = shared_from_this();
    if (ReactorPtr reactor = rt_->reactor()) {
      auto id_r = reactor->add(t, [self, t](std::span<Datagram> batch) {
        for (Datagram& d : batch)
          self->demux_datagram(t, d.src, d.payload.view());
      });
      if (id_r.ok()) {
        bool keep = false;
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (!closing_) {
            reactor_ = reactor;
            reactor_ids_.push_back(id_r.value());
            keep = true;
          }
        }
        // Lost the race with close(): unregister outside the lock.
        if (!keep) reactor->remove(id_r.value());
        return;
      }
      // add() failed; fall back to a dedicated thread below.
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    demux_threads_.emplace_back([self, t] { self->demux_loop(t); });
  }

  void demux_loop(std::shared_ptr<Transport> transport) {
    for (;;) {
      auto pkt_r = transport->recv();
      if (!pkt_r.ok()) return;  // closed
      Packet& pkt = pkt_r.value();
      demux_datagram(transport, pkt.src, pkt.payload);
    }
  }

  // One datagram's worth of demux work, shared by the reactor handler
  // and the fallback thread loop.
  void demux_datagram(const std::shared_ptr<Transport>& transport,
                      const Addr& src, BytesView payload) {
    auto frame_r = decode_frame(payload);
    if (!frame_r.ok()) {
      BLOG(debug, "listener") << "dropping malformed datagram from "
                              << src.to_string();
      return;
    }
    const Frame& f = frame_r.value();

    switch (f.kind) {
      case MsgKind::hello:
        handle_hello(transport, src, f.payload);
        break;
      case MsgKind::data: {
        // Hot path: one striped-shard lock, never the listener mu_ — rx
        // workers demuxing different connections proceed in parallel.
        std::shared_ptr<ServerConnState> st;
        (void)conns_.get(f.token, &st);
        if (!st) break;  // unknown token: connection gone
        st->set_reply_path(transport, src);
        Packet data;
        data.src = src;
        data.payload.assign(f.payload.begin(), f.payload.end());
        (void)st->incoming.push(std::move(data));
        break;
      }
      case MsgKind::close: {
        std::shared_ptr<TransitionRecord> rec;
        {
          std::lock_guard<std::mutex> lk(mu_);
          auto it = transitions_.find(f.token);
          if (it != transitions_.end()) rec = it->second;
        }
        if (!rec) {
          // A fin stamped with a future epoch belonged to a transition
          // that no longer exists (the offer was rolled back and the
          // client told to revert): ignore it instead of tearing down
          // the reverted connection.
          if (!f.payload.empty()) {
            auto fin = decode_transition_cancel(f.payload);
            bool stale = false;
            if (fin.ok()) {
              std::lock_guard<std::mutex> lk(mu_);
              auto mit = meta_.find(f.token);
              stale =
                  mit != meta_.end() && fin.value().epoch > mit->second.epoch;
            }
            if (stale) break;
          }
          connection_closed(f.token);
          break;
        }
        if (f.token == rec->old_token) {
          // Client fin for the pre-transition epoch: per-path FIFO means
          // everything the client sent on the old token is already in
          // the queue, so closing it lets the drain finish naturally.
          std::lock_guard<std::mutex> lk(mu_);
          if (rec->phase == TransitionRecord::Phase::draining) {
            rec->old_st->incoming.close();
          } else {
            rec->old_fin_seen = true;  // applied at cutover
          }
        } else {
          // Close on the new token while the transition is pending:
          // the client abandoned the new epoch.
          rollback(rec, /*declined=*/false);
        }
        break;
      }
      case MsgKind::transition_ack:
        handle_transition_ack(transport, src, f.token, f.payload);
        break;
      default:
        break;  // accept/reject/discovery are not for a listener
    }
  }

  void handle_hello(const std::shared_ptr<Transport>& transport,
                    const Addr& src, BytesView payload);

  std::shared_ptr<Runtime> rt_;
  std::vector<ChunnelSpec> chain_;
  std::string endpoint_name_;
  Addr primary_addr_;
  // High-bits namespace for minted transition epochs (see
  // mint_epoch_salt); derived from host/process/listen address so
  // distinct servers never mint colliding epoch identifiers.
  uint64_t epoch_salt_ = 0;

  BlockingQueue<ConnPtr> accept_q_;

  mutable std::mutex mu_;
  bool closing_ = false;
  uint64_t accepted_ = 0;
  std::atomic<uint64_t> next_token_{1};
  std::vector<std::shared_ptr<Transport>> transports_;
  std::vector<std::thread> demux_threads_;
  // Reactor registrations (when the runtime's reactor demuxes for us).
  ReactorPtr reactor_;
  std::vector<uint64_t> reactor_ids_;
  std::map<std::string, ChunnelArgs> advertisements_;
  // Token -> connection state, looked up on every data datagram. Lock-
  // striped so rx workers demuxing different connections never contend;
  // mutations that must stay coherent with meta_/transitions_ happen
  // under mu_ (mu_ -> shard lock is the only permitted order).
  ShardedMap<std::shared_ptr<ServerConnState>> conns_{32};
  std::unordered_map<uint64_t, ConnMeta> meta_;
  // Both tokens of an in-flight transition map to the same record.
  std::unordered_map<uint64_t, std::shared_ptr<TransitionRecord>> transitions_;
  // (type "/" impl) pairs whose on_listen already ran.
  std::unordered_set<std::string> activated_;
  StatsSinkPtr stats_;
  // Handshake retransmission cache: hello identity -> encoded Accept.
  // Bounded FIFO: retransmissions arrive within the handshake window,
  // so only recent entries matter; old ones are evicted to keep a
  // long-lived listener's memory flat.
  static constexpr size_t kHelloCacheCap = 1024;
  std::unordered_map<std::string, Bytes> hello_cache_;
  std::deque<std::string> hello_cache_order_;
};

// The server half of an established connection.
class ServerConnection final : public Connection {
 public:
  ServerConnection(std::shared_ptr<ServerConnState> st,
                   std::weak_ptr<Listener::Impl> listener, Addr local,
                   Addr peer)
      : st_(std::move(st)),
        listener_(std::move(listener)),
        local_(std::move(local)),
        peer_(std::move(peer)) {}

  ~ServerConnection() override { close(); }

  Result<void> send(Msg m) override {
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(st_->reply_mu);
      t = st_->reply_transport;
      dst = st_->reply_addr;
    }
    if (!t) return err(Errc::unavailable, "no reply path yet");
    Bytes frame = encode_frame(MsgKind::data, st_->token, m.payload);
    return t->send_to(dst, frame);
  }

  Result<void> send_batch(std::span<Msg> msgs) override {
    if (msgs.empty()) return ok();
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(st_->reply_mu);
      t = st_->reply_transport;
      dst = st_->reply_addr;
    }
    if (!t) return err(Errc::unavailable, "no reply path yet");
    std::vector<Datagram> batch(msgs.size());
    for (size_t i = 0; i < msgs.size(); i++) {
      batch[i].dst = dst;
      batch[i].payload.assign(
          encode_frame(MsgKind::data, st_->token, msgs[i].payload));
    }
    BERTHA_TRY(bertha::send_batch(*t, batch));
    return ok();
  }

  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(pkt, st_->incoming.pop(deadline));
    Msg m;
    m.src = std::move(pkt.src);
    m.dst = local_;
    m.payload = std::move(pkt.payload);
    return m;
  }

  const Addr& local_addr() const override { return local_; }
  const Addr& peer_addr() const override { return peer_; }

  void close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    // Best-effort close notice to the client.
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(st_->reply_mu);
      t = st_->reply_transport;
      dst = st_->reply_addr;
    }
    if (t) {
      Bytes frame = encode_frame(MsgKind::close, st_->token, {});
      (void)t->send_to(dst, frame);
    }
    if (auto l = listener_.lock()) l->connection_closed(st_->token);
  }

 private:
  std::shared_ptr<ServerConnState> st_;
  std::weak_ptr<Listener::Impl> listener_;
  Addr local_;
  Addr peer_;
  std::atomic<bool> closed_{false};
};

void Listener::Impl::handle_hello(const std::shared_ptr<Transport>& transport,
                                  const Addr& src, BytesView payload) {
  auto hello_r = decode_hello(payload);
  if (!hello_r.ok()) {
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(Errc::protocol_error),
                       hello_r.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }
  const HelloMsg& hello = hello_r.value();

  // Retransmitted hello (client handshake retry): resend the same Accept
  // instead of creating a second connection.
  std::string cache_key = src.to_string() + "|" + hello.process_id + "|" +
                          hello.endpoint_name;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = hello_cache_.find(cache_key);
    if (it != hello_cache_.end()) {
      Span s = trace_span(rt_->tracer(), "server.negotiate", hello.trace);
      s.tag("dedup_hit", "1");
      (void)transport->send_to(src, it->second);
      return;
    }
  }

  // Parent to the client's wire-propagated connect span; the ambient
  // scope makes discovery RPCs issued during negotiation children too.
  Span neg_span = trace_span(rt_->tracer(), "server.negotiate", hello.trace);
  neg_span.tag("endpoint", hello.endpoint_name);
  SpanScope neg_scope(neg_span);

  auto neg = negotiate_server(chain_, hello, rt_->registry(), rt_->discovery(),
                              *rt_->config().policy, advertisements_snapshot(),
                              rt_->config().host_id,
                              rt_->config().optimizer.get());
  if (!neg.ok()) {
    BLOG(info, "listener") << "rejecting " << hello.endpoint_name << ": "
                           << neg.error().to_string();
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(neg.error().code),
                       neg.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }

  uint64_t token = next_token_.fetch_add(1);
  auto st = std::make_shared<ServerConnState>(token);
  st->set_reply_path(transport, src);

  AcceptMsg accept;
  accept.token = token;
  accept.host_id = rt_->config().host_id;
  accept.process_id = rt_->config().process_id;
  accept.chain = neg.value().chain;
  if (!rt_->config().attestation_secret.empty())
    accept.chain_digest =
        attest_chain(accept.chain, rt_->config().attestation_secret);
  Bytes accept_frame = encode_frame(MsgKind::accept, token,
                                    encode_accept(accept));

  ConnMeta meta;
  meta.hello = hello;
  meta.established_from = src;
  meta.chain = accept.chain;
  meta.degraded = neg.value().degraded;
  if (meta.degraded) neg_span.tag("degraded", "1");
  meta.liveness = std::make_shared<ConnLiveness>();
  ConnLivenessPtr liveness = meta.liveness;
  if (meta.degraded)
    BLOG(warn, "listener") << "degraded establishment for "
                           << hello.endpoint_name
                           << " (discovery unreachable; local fallbacks only)";
  for (size_t i = 0; i < neg.value().resource_allocs.size(); i++)
    meta.allocs.push_back(
        {neg.value().alloc_nodes[i], neg.value().resource_allocs[i]});

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    conns_.put(token, st);
    meta_[token] = std::move(meta);
    if (hello_cache_.emplace(cache_key, accept_frame).second) {
      hello_cache_order_.push_back(cache_key);
      if (hello_cache_order_.size() > kHelloCacheCap) {
        hello_cache_.erase(hello_cache_order_.front());
        hello_cache_order_.pop_front();
      }
    }
    accepted_++;
  }

  // Wrap the server half of the stack.
  ConnPtr base = std::make_shared<ServerConnection>(
      st, weak_from_this(), primary_addr_, src);
  WrapContext ctx;
  ctx.role = Role::server;
  ctx.local_host_id = rt_->config().host_id;
  ctx.peer_host_id = hello.host_id;
  ctx.token = token;
  ctx.listen_addr = primary_addr_;
  ctx.transports = &rt_->transports();
  ctx.liveness = liveness;
  ctx.wheel = rt_->timer_wheel();
  Span build_span =
      trace_span(rt_->tracer(), "server.build_stack", neg_span.context());
  auto wrapped = build_stack(*rt_, accept.chain, std::move(base), ctx);
  build_span.finish();
  if (!wrapped.ok()) {
    BLOG(error, "listener") << "stack build failed: "
                            << wrapped.error().to_string();
    connection_closed(token);
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(wrapped.error().code),
                       wrapped.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }

  // Outermost wrapper: lets the transition controller swap the stack
  // underneath the application at an epoch boundary.
  auto tconn = std::make_shared<TransitionableConnection>(
      std::move(wrapped).value(), accept.chain, /*external_cutover=*/true,
      rt_->transitions().tuning(), rt_->transitions().stats_sink());
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = meta_.find(token);
    if (it != meta_.end()) it->second.conn = tconn;
  }

  // Register the connection before the client learns the token, then
  // hand it to accept().
  (void)transport->send_to(src, accept_frame);
  (void)accept_q_.push(std::move(tconn));
}

// --- Live transitions (TransitionHost) ---

Result<TransitionHost::Begin> Listener::Impl::begin_transition(
    uint64_t token, TransitionReason reason,
    const std::vector<std::pair<std::string, std::string>>& banned,
    bool mandatory) {
  HelloMsg hello;
  std::vector<NegotiatedNode> current;
  std::vector<NodeAlloc> cur_allocs;
  Addr peer;
  std::shared_ptr<TransitionableConnection> tconn;
  std::shared_ptr<ServerConnState> old_st;
  ConnLivenessPtr liveness;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return err(Errc::cancelled, "listener closed");
    auto it = meta_.find(token);
    if (it == meta_.end()) return err(Errc::not_found, "no such connection");
    if (it->second.transitioning) return Begin::busy;
    it->second.transitioning = true;
    hello = it->second.hello;
    current = it->second.chain;
    cur_allocs = it->second.allocs;
    peer = it->second.established_from;
    epoch = epoch_salt_ | ((it->second.epoch + 1) & kEpochCounterMask);
    liveness = it->second.liveness;
    tconn = it->second.conn.lock();
    (void)conns_.get(token, &old_st);
  }
  auto abandon = [&] {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = meta_.find(token);
    if (it != meta_.end()) it->second.transitioning = false;
  };
  if (!tconn || !old_st) {
    abandon();
    return err(Errc::not_found, "connection already torn down");
  }

  // Joins the trace that established the connection (hello.trace); the
  // ambient scope pulls renegotiation-time discovery RPCs in as well.
  Span offer_span = trace_span(rt_->tracer(), "transition.offer", hello.trace);
  offer_span.tag_u64("epoch", epoch);
  SpanScope offer_scope(offer_span);

  // Re-run selection with the incumbent seeded in (renegotiate_server
  // does not touch slots the connection already holds). The runtime's
  // optimizer rides along so a mid-life stage rewrite — a merged offload
  // or a synthesized switch program appearing after establishment — can
  // restage the chain before cutover.
  auto reneg_r = renegotiate_server(
      chain_, current, cur_allocs, hello, rt_->registry(), rt_->discovery(),
      *rt_->config().policy, advertisements_snapshot(), rt_->config().host_id,
      banned, rt_->config().optimizer.get());
  if (!reneg_r.ok()) {
    abandon();
    return reneg_r.error();
  }
  RenegotiationResult reneg = std::move(reneg_r).value();
  auto release_new = [&] {
    for (const auto& a : reneg.new_allocs)
      (void)rt_->discovery().release(a.alloc_id);
  };
  if (!reneg.changed) {
    abandon();
    return Begin::unchanged;
  }

  // Stage the new epoch: fresh token, fresh server state, fresh stack.
  uint64_t new_token = next_token_.fetch_add(1);
  auto new_st = std::make_shared<ServerConnState>(new_token);
  ConnPtr base = std::make_shared<ServerConnection>(new_st, weak_from_this(),
                                                    primary_addr_, peer);
  WrapContext ctx;
  ctx.role = Role::server;
  ctx.local_host_id = rt_->config().host_id;
  ctx.peer_host_id = hello.host_id;
  ctx.token = new_token;
  ctx.listen_addr = primary_addr_;
  ctx.transports = &rt_->transports();
  ctx.liveness = liveness;
  ctx.wheel = rt_->timer_wheel();
  Span stage_span =
      trace_span(rt_->tracer(), "transition.stage", offer_span.context());
  stage_span.tag_u64("epoch", epoch);
  auto stack = build_stack(*rt_, reneg.chain, std::move(base), ctx);
  stage_span.finish();
  if (!stack.ok()) {
    release_new();
    abandon();
    return stack.error();
  }

  TransitionMsg msg;
  msg.epoch = epoch;
  msg.new_token = new_token;
  msg.reason = reason;
  msg.mandatory = mandatory;
  msg.chain = reneg.chain;
  msg.trace = hello.trace;  // client-side handling joins the same trace
  if (!rt_->config().attestation_secret.empty())
    msg.chain_digest =
        attest_chain(reneg.chain, rt_->config().attestation_secret);

  const TransitionTuning& tun = rt_->transitions().tuning();
  auto rec = std::make_shared<TransitionRecord>();
  rec->old_token = token;
  rec->new_token = new_token;
  rec->epoch = epoch;
  rec->reason = reason;
  rec->mandatory = mandatory;
  rec->offer_frame =
      encode_frame(MsgKind::transition, token, encode_transition(msg));
  rec->next_retry = Deadline::after(tun.offer_retry);
  rec->ack_deadline = Deadline::after(tun.ack_timeout);
  rec->started = now();
  rec->degraded = reneg.degraded;
  rec->trace = hello.trace;
  rec->new_chain = reneg.chain;
  rec->kept_allocs = std::move(reneg.kept_allocs);
  rec->new_allocs = std::move(reneg.new_allocs);
  rec->retired_allocs = std::move(reneg.retired_allocs);
  rec->old_st = old_st;
  rec->new_st = new_st;
  rec->new_stack = std::move(stack).value();
  rec->conn = tconn;

  bool registered = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!closing_ && meta_.count(token)) {
      conns_.put(new_token, new_st);
      transitions_[token] = rec;
      transitions_[new_token] = rec;
      registered = true;
    }
  }
  if (!registered) {  // lost a race with close/teardown
    release_new();
    rec->new_stack->close();
    abandon();
    return err(Errc::cancelled, "connection closed during renegotiation");
  }

  // Offer on the *current* reply path; the ack returns on the new token.
  std::shared_ptr<Transport> reply_t;
  Addr reply_dst;
  {
    std::lock_guard<std::mutex> lk(old_st->reply_mu);
    reply_t = old_st->reply_transport;
    reply_dst = old_st->reply_addr;
  }
  if (reply_t) (void)reply_t->send_to(reply_dst, rec->offer_frame);
  stat([](TransitionStats& s) { s.offers_sent++; });
  BLOG(info, "transition") << "offer epoch " << epoch << " token " << token
                           << " -> " << new_token;
  return Begin::started;
}

void Listener::Impl::sweep_transitions() {
  std::vector<std::shared_ptr<TransitionRecord>> retransmit, give_up, force;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [tok, rec] : transitions_) {
      if (tok != rec->old_token) continue;  // visit each record once
      if (rec->phase == TransitionRecord::Phase::awaiting_ack) {
        if (rec->ack_deadline.expired()) {
          give_up.push_back(rec);
        } else if (rec->next_retry.expired()) {
          rec->next_retry =
              Deadline::after(rt_->transitions().tuning().offer_retry);
          retransmit.push_back(rec);
        }
      } else if (rec->drain_deadline.expired()) {
        force.push_back(rec);
      }
    }
  }
  for (auto& rec : retransmit) {
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(rec->old_st->reply_mu);
      t = rec->old_st->reply_transport;
      dst = rec->old_st->reply_addr;
    }
    if (t) (void)t->send_to(dst, rec->offer_frame);
    stat([](TransitionStats& s) { s.offers_sent++; });
  }
  for (auto& rec : give_up) {
    if (rec->mandatory) {
      // A revocation cannot wait on an unresponsive client: close the
      // connection so the slot frees.
      stat([](TransitionStats& s) { s.closed_mandatory++; });
      rollback(rec, /*declined=*/false);
      if (rec->conn) rec->conn->close();
      connection_closed(rec->old_token);
    } else {
      rollback(rec, /*declined=*/false);
    }
  }
  for (auto& rec : force) {
    if (rec->conn) rec->conn->force_drain();  // fires transition_drained
  }
}

void Listener::Impl::handle_transition_ack(
    const std::shared_ptr<Transport>& transport, const Addr& src,
    uint64_t token, BytesView payload) {
  auto ack_r = decode_transition_ack(payload);
  if (!ack_r.ok()) return;
  const TransitionAckMsg& ack = ack_r.value();
  std::shared_ptr<TransitionRecord> rec;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = transitions_.find(token);
    if (it == transitions_.end()) return;  // stale or duplicate
    rec = it->second;
    if (token != rec->new_token) return;  // acks travel the new path
    if (rec->phase != TransitionRecord::Phase::awaiting_ack) return;
    if (ack.epoch != rec->epoch) return;
  }
  if (ack.accepted) {
    // The ack arrived over the new epoch's path: that is the new
    // reply route (it may be a different transport after a rebase).
    rec->new_st->set_reply_path(transport, src);
    do_cutover(rec);
  } else {
    BLOG(info, "transition") << "epoch " << rec->epoch
                             << " declined: " << ack.reason;
    bool mandatory = rec->mandatory;
    rollback(rec, /*declined=*/true);
    if (mandatory) {
      // Revocations cannot be declined; the implementation is going away.
      stat([](TransitionStats& s) { s.closed_mandatory++; });
      if (rec->conn) rec->conn->close();
      connection_closed(rec->old_token);
    }
  }
}

void Listener::Impl::do_cutover(const std::shared_ptr<TransitionRecord>& rec) {
  Span span = trace_span(rt_->tracer(), "transition.cutover", rec->trace);
  span.tag_u64("epoch", rec->epoch);
  bool fin_seen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (rec->phase != TransitionRecord::Phase::awaiting_ack) return;
    // An ack racing the sweep's give-up: rollback() may have erased the
    // record (and released its staged slot allocations) between this
    // thread's phase check in handle_transition_ack and here. Cutting
    // over anyway would resurrect freed reservations into the meta
    // entry — a staged-but-rolled-back transition must stay rolled
    // back, its slots released exactly once.
    auto tit = transitions_.find(rec->old_token);
    if (tit == transitions_.end() || tit->second != rec) return;
    rec->phase = TransitionRecord::Phase::draining;
    rec->drain_deadline =
        Deadline::after(rt_->transitions().tuning().drain_timeout);
    fin_seen = rec->old_fin_seen;
    // Re-key the connection to its new epoch. Kept + new slots ride in
    // the meta entry; retired slots stay on the record until drained.
    auto mit = meta_.find(rec->old_token);
    if (mit != meta_.end()) {
      ConnMeta m = std::move(mit->second);
      meta_.erase(mit);
      m.epoch = rec->epoch;
      m.chain = rec->new_chain;
      m.degraded = rec->degraded;
      m.allocs = rec->kept_allocs;
      m.allocs.insert(m.allocs.end(), rec->new_allocs.begin(),
                      rec->new_allocs.end());
      m.transitioning = true;  // until the drain finishes
      meta_[rec->new_token] = std::move(m);
    }
  }
  auto self = shared_from_this();
  uint64_t old_token = rec->old_token;
  auto r = rec->conn->cutover(
      rec->epoch, rec->new_stack, rec->new_chain,
      [self, old_token](bool forced, uint64_t drained) {
        self->transition_drained(old_token, forced, drained);
      });
  if (!r.ok()) {
    // Stale epoch or the application closed the connection underneath
    // us: tear the (already re-keyed) connection down entirely.
    connection_closed(rec->new_token);
    return;
  }
  if (fin_seen) rec->old_st->incoming.close();
}

void Listener::Impl::rollback(const std::shared_ptr<TransitionRecord>& rec,
                              bool declined) {
  Span span = trace_span(rt_->tracer(), "transition.rollback", rec->trace);
  span.tag_u64("epoch", rec->epoch);
  span.tag("declined", declined ? "1" : "0");
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = transitions_.find(rec->old_token);
    if (it == transitions_.end() || it->second != rec) return;
    if (rec->phase != TransitionRecord::Phase::awaiting_ack)
      return;  // already cut over; too late to roll back
    transitions_.erase(rec->old_token);
    transitions_.erase(rec->new_token);
    conns_.erase(rec->new_token);
    auto mit = meta_.find(rec->old_token);
    if (mit != meta_.end()) mit->second.transitioning = false;
  }
  // Tell the client the offer is dead. It may have cut over and acked
  // into the void (the ack was lost); the cancel — sent on the old
  // token, which the client still drains — makes it revert to the
  // previous epoch instead of waiting on a stack the server will never
  // serve. Sent before the new stack's close frame so a reverting client
  // processes the cancel first (per-path FIFO). Best effort: a lost
  // cancel leaves the client stuck exactly as it would have been without
  // this notice.
  {
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(rec->old_st->reply_mu);
      t = rec->old_st->reply_transport;
      dst = rec->old_st->reply_addr;
    }
    if (t) {
      TransitionCancelMsg cancel;
      cancel.epoch = rec->epoch;
      cancel.trace = rec->trace;
      Bytes frame = encode_frame(MsgKind::transition_cancel, rec->old_token,
                                 encode_transition_cancel(cancel));
      (void)t->send_to(dst, frame);
      stat([](TransitionStats& s) { s.cancels_sent++; });
    }
  }
  rec->new_st->incoming.close();
  for (const auto& a : rec->new_allocs)
    (void)rt_->discovery().release(a.alloc_id);
  rec->new_stack->close();
  stat([declined](TransitionStats& s) {
    if (declined)
      s.declined++;
    else
      s.rolled_back++;
  });
}

void Listener::Impl::transition_drained(uint64_t old_token, bool forced,
                                        uint64_t drained) {
  std::shared_ptr<TransitionRecord> rec;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = transitions_.find(old_token);
    if (it == transitions_.end()) return;
    rec = it->second;
    transitions_.erase(rec->old_token);
    transitions_.erase(rec->new_token);
    conns_.erase(old_token);
    auto mit = meta_.find(rec->new_token);
    if (mit != meta_.end()) mit->second.transitioning = false;
  }
  Span span = trace_span(rt_->tracer(), "transition.drain", rec->trace);
  span.tag_u64("epoch", rec->epoch);
  span.tag_u64("drained_msgs", drained);
  if (forced) span.tag("forced", "1");
  rec->old_st->incoming.close();
  // Drain-before-release: only now do the replaced nodes' slots free.
  for (uint64_t id : rec->retired_allocs) (void)rt_->discovery().release(id);
  uint64_t dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now() -
                                                           rec->started)
          .count());
  stat([forced, drained, dur_ns](TransitionStats& s) {
    s.completed++;
    if (forced) s.forced_cutovers++;
    s.drained_msgs += drained;
    s.total_cutover_ns += dur_ns;
    if (dur_ns > s.max_cutover_ns) s.max_cutover_ns = dur_ns;
  });
  BLOG(info, "transition") << "epoch " << rec->epoch << " drained ("
                           << drained << " msgs, forced=" << forced << ")";
}

// --- Listener public API ---

Listener::~Listener() { impl_->close(); }
const Addr& Listener::addr() const { return impl_->addr(); }
Result<ConnPtr> Listener::accept(Deadline deadline) {
  return impl_->accept(deadline);
}
void Listener::close() { impl_->close(); }
uint64_t Listener::connections_accepted() const {
  return impl_->connections_accepted();
}
uint64_t Listener::degraded_connections() const {
  return impl_->degraded_connections();
}
uint64_t Listener::connections_live() const {
  return impl_->connections_live();
}

// --- Endpoint ---

Result<std::unique_ptr<Listener>> Endpoint::listen(const Addr& addr) {
  auto impl = std::make_shared<Listener::Impl>(rt_, chain_, name_);
  BERTHA_TRY(impl->start(addr));
  // Make the listener's connections eligible for live transitions; the
  // controller's watch/sweep thread starts with the first listener.
  rt_->transitions().attach(impl);
  if (!rt_->transitions().running())
    (void)rt_->transitions().start(rt_->discovery());
  return std::unique_ptr<Listener>(new Listener(std::move(impl)));
}

Result<ConnPtr> Endpoint::connect(const Addr& server, Deadline deadline) {
  return connect(std::vector<Addr>{server}, deadline);
}

Result<ConnPtr> Endpoint::connect(const std::vector<Addr>& servers,
                                  Deadline deadline) {
  if (servers.empty())
    return err(Errc::invalid_argument, "connect needs at least one address");

  Addr bind = client_bind_for(servers.front(), rt_->config().host_id);
  if (!bind.valid())
    return err(Errc::invalid_argument,
               "cannot derive bind addr for " + servers.front().to_string());
  BERTHA_TRY_ASSIGN(t, rt_->transports().bind(bind));
  std::shared_ptr<Transport> transport(std::move(t));

  // Root span for establishment; its context rides in the hello so the
  // server's negotiation (and the discovery RPCs it makes) join this
  // trace. Lives until connect returns.
  Span connect_span =
      trace_span(rt_->tracer(), "client.connect", current_trace_context());
  connect_span.tag("endpoint", name_);
  SpanScope connect_scope(connect_span);

  HelloMsg hello;
  hello.endpoint_name = name_ + "#" + make_unique_id();
  hello.host_id = rt_->config().host_id;
  hello.process_id = rt_->config().process_id;
  hello.dag = ChunnelDag::chain(chain_);
  hello.trace = connect_span.context();
  // Offer everything this process can instantiate for the DAG's types;
  // with an empty DAG (Listing 5) the server's chain governs, so offer
  // every registered type.
  if (chain_.empty()) {
    for (const auto& type : rt_->registry().types())
      hello.offers[type] = rt_->registry().infos_for(type);
  } else {
    for (const auto& spec : chain_)
      hello.offers[spec.type] = rt_->registry().infos_for(spec.type);
  }
  Bytes hello_body = encode_hello(hello);
  Bytes hello_frame = encode_frame(MsgKind::hello, 0, hello_body);

  const auto& cfg = rt_->config();
  std::vector<Peer> peers;
  std::vector<AcceptMsg> accepts;

  for (const Addr& server : servers) {
    std::optional<AcceptMsg> accept;
    Addr accepted_from = server;
    Error last = err(Errc::timed_out, "handshake timed out");
    for (int attempt = 0; attempt <= cfg.handshake_retries && !accept;
         attempt++) {
      if (deadline.expired()) return err(Errc::timed_out, "connect deadline");
      Span att_span = trace_span(rt_->tracer(), "client.hello_attempt",
                                 connect_span.context());
      att_span.tag_u64("attempt", static_cast<uint64_t>(attempt));
      BERTHA_TRY(transport->send_to(server, hello_frame));
      Deadline attempt_dl = Deadline::after(cfg.handshake_timeout);
      for (;;) {
        auto pkt_r = transport->recv(attempt_dl);
        if (!pkt_r.ok()) {
          last = pkt_r.error();
          if (last.code == Errc::timed_out) break;  // retry hello
          return last;
        }
        auto frame_r = decode_frame(pkt_r.value().payload);
        if (!frame_r.ok()) continue;
        const Frame& f = frame_r.value();
        if (f.kind == MsgKind::reject) {
          auto rej = decode_reject(f.payload);
          std::string why = rej.ok() ? rej.value().reason : "(malformed reject)";
          return err(Errc::connection_failed,
                     "server " + server.to_string() + " rejected: " + why);
        }
        if (f.kind != MsgKind::accept) continue;
        // Multi-endpoint connects must attribute each Accept to the
        // server it dialed. A single-target dial accepts a reply from
        // any source: the dialed address may be an anycast/virtual
        // address (§3.2) and the Accept arrives from the concrete
        // instance the network routed us to.
        if (servers.size() > 1 && !(pkt_r.value().src == server)) continue;
        auto acc = decode_accept(f.payload);
        if (!acc.ok()) return acc.error();
        accept = std::move(acc).value();
        accepted_from = pkt_r.value().src;
        break;
      }
    }
    if (!accept)
      return err(Errc::connection_failed,
                 "no response from " + server.to_string() + " (" +
                     last.to_string() + ")");
    // §6 attestation: a client configured with a deployment secret
    // refuses chains the server did not attest with the same secret.
    if (!cfg.attestation_secret.empty() &&
        accept->chain_digest !=
            attest_chain(accept->chain, cfg.attestation_secret)) {
      return err(Errc::connection_failed,
                 "server " + server.to_string() +
                     " failed chain attestation (secret mismatch or "
                     "unattested chain)");
    }
    // Pin the data path to the concrete instance that accepted (equal
    // to `server` except for anycast/virtual addresses).
    peers.push_back({accepted_from, accept->token});
    accepts.push_back(std::move(*accept));
  }

  auto group = std::make_shared<ClientChannelGroup>();
  auto port = ClientChannelGroup::make_port(transport);
  auto channel = group->add_channel(port, peers);

  // Fold dead-token sweeping into the timer wheel: a channel that dies
  // without a clean close leaves an expired weak_ptr in the routing
  // table; route() self-heals entries it trips over and this periodic
  // sweep catches tokens no frame ever hits again, so the table stays
  // bounded under churn. Self-cancels once the group is gone.
  if (auto wheel = rt_->timer_wheel()) {
    std::weak_ptr<ClientChannelGroup> wg = group;
    std::weak_ptr<TimerWheel> ww = wheel;
    auto sweep_id = std::make_shared<uint64_t>(0);
    *sweep_id = wheel->schedule_periodic(seconds(30), [wg, ww, sweep_id] {
      if (auto g = wg.lock()) {
        g->sweep_dead_tokens();
      } else if (auto w = ww.lock()) {
        (void)w->cancel(*sweep_id);
      }
    });
  }

  auto liveness = std::make_shared<ConnLiveness>();

  WrapContext ctx;
  ctx.role = Role::client;
  ctx.local_host_id = cfg.host_id;
  ctx.peer_host_id = accepts.front().host_id;
  ctx.token = peers.front().token;
  ctx.transports = &rt_->transports();
  ctx.liveness = liveness;
  ctx.wheel = rt_->timer_wheel();
  if (peers.size() == 1) {
    std::weak_ptr<ClientChannel> weak = channel;
    ctx.rebase = [weak](TransportPtr nt, Addr np) -> Result<void> {
      auto conn = weak.lock();
      if (!conn) return err(Errc::cancelled, "connection gone");
      return conn->rebase(std::move(nt), std::move(np));
    };
  }

  Span client_build_span =
      trace_span(rt_->tracer(), "client.build_stack", connect_span.context());
  BERTHA_TRY_ASSIGN(stack,
                    build_stack(*rt_, accepts.front().chain, channel, ctx));
  client_build_span.finish();
  auto tconn = std::make_shared<TransitionableConnection>(
      std::move(stack), accepts.front().chain, /*external_cutover=*/false,
      rt_->transitions().tuning(), rt_->transitions().stats_sink());

  // Server-initiated live transitions. The handler runs on whichever
  // thread surfaced the offer frame (inside tconn->recv), so the swap
  // happens on the application's own recv thread.
  struct TransitionCtl {
    std::mutex mu;
    uint64_t current_epoch = 0;
    std::unordered_set<uint64_t> in_progress;
    struct SentAck {
      Bytes payload;
      uint64_t token = 0;
      std::weak_ptr<ClientChannel> via;
    };
    std::map<uint64_t, SentAck> acks;  // epoch -> what we answered
  };
  auto ctl = std::make_shared<TransitionCtl>();
  std::weak_ptr<ClientChannelGroup> wgroup = group;
  std::weak_ptr<TransitionableConnection> wtconn = tconn;
  auto runtime = rt_;
  const bool multi_peer = peers.size() > 1;
  const std::string secret = cfg.attestation_secret;
  const std::string peer_host = accepts.front().host_id;
  group->set_transition_handler([wgroup, wtconn, runtime, ctl, multi_peer,
                                 secret, peer_host, liveness](
                                    const TransitionMsg& msg,
                                    const std::shared_ptr<ClientChannel>& via) {
    auto decline = [&](Errc e, const std::string& why) {
      TransitionAckMsg ack;
      ack.epoch = msg.epoch;
      ack.accepted = false;
      ack.errc = static_cast<uint8_t>(e);
      ack.reason = why;
      Bytes payload = encode_transition_ack(ack);
      (void)via->send_frame(MsgKind::transition_ack, msg.new_token, payload);
      std::lock_guard<std::mutex> lk(ctl->mu);
      ctl->acks[msg.epoch] = {std::move(payload), msg.new_token, via};
      ctl->in_progress.erase(msg.epoch);
    };
    {
      std::lock_guard<std::mutex> lk(ctl->mu);
      auto it = ctl->acks.find(msg.epoch);
      if (it != ctl->acks.end()) {
        // Retransmitted offer: our ack was lost. Resend it on the same
        // channel as the original so the server sees the same path.
        auto ch = it->second.via.lock();
        if (!ch) ch = via;
        (void)ch->send_frame(MsgKind::transition_ack, it->second.token,
                             it->second.payload);
        return;
      }
      if (msg.epoch <= ctl->current_epoch) return;  // stale
      if (!ctl->in_progress.insert(msg.epoch).second)
        return;  // a duplicate raced in while we're still staging
    }
    auto group = wgroup.lock();
    auto tconn = wtconn.lock();
    if (!group || !tconn) return;  // connection being torn down
    // The offer carries the connection's establishment-trace context, so
    // client-side staging + cutover land in the same trace as the
    // server's transition.offer span.
    Span tspan =
        trace_span(runtime->tracer(), "client.transition", msg.trace);
    tspan.tag_u64("epoch", msg.epoch);
    if (multi_peer) {
      decline(Errc::invalid_argument,
              "live transitions unsupported on multi-peer connections");
      return;
    }
    if (!secret.empty() &&
        msg.chain_digest != attest_chain(msg.chain, secret)) {
      decline(Errc::connection_failed, "chain attestation failed");
      return;
    }
    // Stage the new epoch's channel on the same port and peer; chunnels
    // in the new chain may rebase it (e.g. onto a unix socket).
    auto nch = group->add_channel(via->port(), {{via->peer0(), msg.new_token}});
    WrapContext ctx;
    ctx.role = Role::client;
    ctx.local_host_id = runtime->config().host_id;
    ctx.peer_host_id = peer_host;
    ctx.token = msg.new_token;
    ctx.transports = &runtime->transports();
    ctx.liveness = liveness;
    ctx.wheel = runtime->timer_wheel();
    std::weak_ptr<ClientChannel> wnch = nch;
    ctx.rebase = [wnch](TransportPtr nt, Addr np) -> Result<void> {
      auto conn = wnch.lock();
      if (!conn) return err(Errc::cancelled, "connection gone");
      return conn->rebase(std::move(nt), std::move(np));
    };
    auto stack = build_stack(*runtime, msg.chain, nch, ctx);
    if (!stack.ok()) {
      nch->close();
      decline(stack.error().code, stack.error().message);
      return;
    }
    auto cut = tconn->cutover(msg.epoch, std::move(stack).value(), msg.chain,
                              [](bool, uint64_t) {});
    if (!cut.ok()) {
      nch->close();
      decline(cut.error().code, cut.error().message);
      return;
    }
    // Ack travels the *new* channel: its source address teaches the
    // server the new epoch's reply path. The fin then half-closes the
    // old epoch (it trails all previously sent data, per-path FIFO).
    TransitionAckMsg ack;
    ack.epoch = msg.epoch;
    ack.accepted = true;
    Bytes payload = encode_transition_ack(ack);
    (void)nch->send_frame(MsgKind::transition_ack, msg.new_token, payload);
    via->send_fin(encode_transition_cancel({msg.epoch}));
    std::lock_guard<std::mutex> lk(ctl->mu);
    ctl->current_epoch = msg.epoch;
    ctl->acks[msg.epoch] = {std::move(payload), msg.new_token, nch};
    ctl->in_progress.erase(msg.epoch);
  });

  // Server-side rollback notice: the offer we (maybe) acked is dead.
  // Discard the cached ack — the server reuses the epoch number on its
  // next attempt, and a replayed stale ack would poison it — and, if we
  // already cut over, revert to the previous epoch's stack (still
  // draining, so it is intact).
  auto stats_sink = runtime->transitions().stats_sink();
  auto tracer = runtime->tracer();
  group->set_cancel_handler([wtconn, ctl, stats_sink, tracer](
                                const TransitionCancelMsg& msg,
                                const std::shared_ptr<ClientChannel>& via) {
    bool cut_over;
    {
      std::lock_guard<std::mutex> lk(ctl->mu);
      ctl->acks.erase(msg.epoch);
      ctl->in_progress.erase(msg.epoch);
      cut_over = ctl->current_epoch == msg.epoch;
    }
    if (!cut_over) return;  // declined or never staged: nothing to undo
    auto tc = wtconn.lock();
    if (!tc) return;
    Span rspan = trace_span(tracer, "client.revert", msg.trace);
    rspan.tag_u64("epoch", msg.epoch);
    auto r = tc->revert(msg.epoch);
    if (!r.ok()) {
      if (r.error().code == Errc::not_found) {
        // The old stack finished draining before the cancel arrived
        // (ack_timeout > drain_timeout): the epoch we're on is dead on
        // the server and the one we'd revert to is gone. Tear the
        // connection down now so the application re-establishes, instead
        // of parking until keepalive notices.
        BLOG(warn, "transition")
            << "cancel for epoch " << msg.epoch
            << " after drain completed; closing dead-epoch connection";
        rspan.tag("dead_epoch", "1");
        stats_sink->update([](TransitionStats& s) { s.dead_epoch_closes++; });
        tc->close();
        return;
      }
      BLOG(warn, "transition") << "cannot revert epoch " << msg.epoch << ": "
                               << r.error().to_string();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(ctl->mu);
      if (ctl->current_epoch == msg.epoch) ctl->current_epoch = tc->epoch();
    }
    // The old channel is current again; a future transition must be able
    // to half-close it. (via is null only when the cancel arrived on an
    // already-gone token, and that path cannot reach a successful revert.)
    if (via) via->clear_fin();
    stats_sink->update([](TransitionStats& s) { s.reverts++; });
    BLOG(info, "transition") << "reverted epoch " << msg.epoch
                             << " after server rollback";
  });

  return ConnPtr(std::move(tconn));
}

// --- stack construction ---

namespace {

// Child span per layer, recorded only while a path (or other ambient)
// span is active on this thread. SpanScope re-installs the hop's own
// context so nested hops chain parent -> child down the stack.
class HopTraceConnection final : public Connection {
 public:
  HopTraceConnection(ConnPtr inner, TracerPtr tracer, std::string hop,
                     HopLatencyStats::CellPtr cell)
      : inner_(std::move(inner)),
        tracer_(std::move(tracer)),
        cell_(std::move(cell)),
        send_name_("hop.send:" + hop),
        recv_name_("hop.recv:" + hop) {}

  Result<void> send(Msg m) override {
    if (!cell_) return send_spanned(std::move(m));
    Stopwatch sw;
    auto r = send_spanned(std::move(m));
    cell_->send_ns.record(elapsed_ns(sw));
    return r;
  }

  Result<void> send_batch(std::span<Msg> msgs) override {
    // One span / one histogram sample for the whole batch: per-datagram
    // timing inside a batched send is meaningless (the syscall is shared).
    if (!cell_) return send_batch_spanned(msgs);
    Stopwatch sw;
    auto r = send_batch_spanned(msgs);
    cell_->send_ns.record(elapsed_ns(sw));
    return r;
  }

  Result<Msg> recv(Deadline deadline) override {
    if (!cell_) return recv_spanned(deadline);
    Stopwatch sw;
    auto r = recv_spanned(deadline);
    cell_->recv_ns.record(elapsed_ns(sw));
    return r;
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  Result<void> send_spanned(Msg m) {
    TraceContext ctx = current_trace_context();
    if (!ctx.valid()) return inner_->send(std::move(m));
    Span span = tracer_->span(send_name_, ctx);
    SpanScope scope(span);
    return inner_->send(std::move(m));
  }

  Result<void> send_batch_spanned(std::span<Msg> msgs) {
    TraceContext ctx = current_trace_context();
    if (!ctx.valid()) return inner_->send_batch(msgs);
    Span span = tracer_->span(send_name_, ctx);
    SpanScope scope(span);
    return inner_->send_batch(msgs);
  }

  Result<Msg> recv_spanned(Deadline deadline) {
    TraceContext ctx = current_trace_context();
    if (!ctx.valid()) return inner_->recv(deadline);
    Span span = tracer_->span(recv_name_, ctx);
    SpanScope scope(span);
    return inner_->recv(deadline);
  }

  static uint64_t elapsed_ns(const Stopwatch& sw) {
    return static_cast<uint64_t>(sw.elapsed().count());  // Duration is ns
  }

  ConnPtr inner_;
  TracerPtr tracer_;
  HopLatencyStats::CellPtr cell_;  // null: spans only, no histograms
  std::string send_name_;
  std::string recv_name_;
};

// Outermost wrapper: starts a sampled root span per message and makes it
// the ambient context, so every HopTraceConnection underneath records a
// child. Unsampled messages pay one thread-local countdown decrement.
class PathTraceConnection final : public Connection {
 public:
  PathTraceConnection(ConnPtr inner, TracerPtr tracer)
      : inner_(std::move(inner)), tracer_(std::move(tracer)) {}

  Result<void> send(Msg m) override {
    if (!tracer_->sample_path()) return inner_->send(std::move(m));
    Span span = tracer_->span("path.send", current_trace_context());
    span.tag_u64("bytes", m.payload.size());
    SpanScope scope(span);
    return inner_->send(std::move(m));
  }

  Result<void> send_batch(std::span<Msg> msgs) override {
    if (!tracer_->sample_path()) return inner_->send_batch(msgs);
    Span span = tracer_->span("path.send", current_trace_context());
    size_t bytes = 0;
    for (const Msg& m : msgs) bytes += m.payload.size();
    span.tag_u64("bytes", bytes);
    span.tag_u64("batch", msgs.size());
    SpanScope scope(span);
    return inner_->send_batch(msgs);
  }

  Result<Msg> recv(Deadline deadline) override {
    if (!tracer_->sample_path()) return inner_->recv(deadline);
    Span span = tracer_->span("path.recv", current_trace_context());
    SpanScope scope(span);
    auto r = inner_->recv(deadline);
    if (r.ok()) span.tag_u64("bytes", r.value().payload.size());
    return r;
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
  TracerPtr tracer_;
};

}  // namespace

ConnPtr wrap_hop_trace(ConnPtr inner, TracerPtr tracer, std::string hop_name,
                       HopLatencyStats::CellPtr cell) {
  return ConnPtr(std::make_shared<HopTraceConnection>(
      std::move(inner), std::move(tracer), std::move(hop_name),
      std::move(cell)));
}

ConnPtr wrap_path_trace(ConnPtr inner, TracerPtr tracer) {
  return ConnPtr(
      std::make_shared<PathTraceConnection>(std::move(inner), std::move(tracer)));
}

Result<ConnPtr> build_stack(Runtime& rt,
                            const std::vector<NegotiatedNode>& chain,
                            ConnPtr base, WrapContext base_ctx) {
  const TracerPtr& tracer = rt.tracer();
  const bool tracing = tracer && tracer->enabled();
  ConnPtr conn = std::move(base);
  // chain[0] is outermost: wrap from the inside out.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    auto impl_r = rt.registry().lookup(it->type, it->impl_name);
    if (!impl_r.ok()) {
      // No local factory: this side is a passthrough for the node (the
      // work happens at the peer or in the network).
      BLOG(debug, "stack") << "no local factory for " << it->impl_name
                           << "; passthrough";
      continue;
    }
    WrapContext ctx = base_ctx;
    ctx.args = it->args;
    BERTHA_TRY_ASSIGN(wrapped, impl_r.value()->wrap(std::move(conn), ctx));
    conn = std::move(wrapped);
    // Per-hop timing wrapper: each chunnel becomes a child span of the
    // message's path span, and every message (sampled or not) feeds the
    // streaming hop histograms. Inserted only when tracing is on at build
    // time, so a disabled tracer adds zero indirection to the data path.
    if (tracing)
      conn = wrap_hop_trace(std::move(conn), tracer, it->impl_name,
                            rt.hop_stats()->cell(it->impl_name));
  }
  if (tracing && !chain.empty()) conn = wrap_path_trace(std::move(conn), tracer);
  return conn;
}

}  // namespace bertha
