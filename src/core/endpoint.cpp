#include "core/endpoint.hpp"

#include <atomic>
#include <thread>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/wire.hpp"
#include "util/log.hpp"
#include "util/queue.hpp"

namespace bertha {

namespace {

// Derive a client bind address matching the server's address family.
Addr client_bind_addr(const Addr& server, const std::string& host_id) {
  switch (server.kind) {
    case AddrKind::udp: return Addr::udp("0.0.0.0", 0);
    case AddrKind::uds: return Addr::uds("");  // autobind
    case AddrKind::mem: return Addr::mem(host_id, 0);
    case AddrKind::sim: return Addr::sim(host_id, 0);
    case AddrKind::invalid: break;
  }
  return Addr();
}

}  // namespace

// ----------------------------------------------------------------------
// Client-side base connection: a transport plus one or more (peer,
// token) bindings. Demultiplexes by token; supports rebasing onto a new
// transport (the local fast-path switch).
// ----------------------------------------------------------------------

class ClientDataConnection final : public Connection {
 public:
  struct Peer {
    Addr addr;
    uint64_t token;
  };

  ClientDataConnection(std::shared_ptr<Transport> transport,
                       std::vector<Peer> peers)
      : transport_(std::move(transport)),
        peers_(std::move(peers)),
        local_(transport_->local_addr()),
        initial_peer_(peers_.front().addr) {
    for (const auto& p : peers_) live_tokens_.insert(p.token);
  }

  ~ClientDataConnection() override { close(); }

  Result<void> send(Msg m) override {
    std::shared_ptr<Transport> t;
    std::vector<Peer> peers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      t = transport_;
      peers = peers_;
    }
    // A valid dst narrows the fan-out to that one peer.
    bool sent = false;
    for (const auto& p : peers) {
      if (m.dst.valid() && !(m.dst == p.addr)) continue;
      Bytes frame = encode_frame(MsgKind::data, p.token, m.payload);
      BERTHA_TRY(t->send_to(p.addr, frame));
      sent = true;
    }
    if (!sent)
      return err(Errc::invalid_argument,
                 "dst " + m.dst.to_string() + " is not a peer");
    return ok();
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      std::shared_ptr<Transport> t;
      uint64_t epoch;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) return err(Errc::cancelled, "connection closed");
        if (live_tokens_.empty())
          return err(Errc::unavailable, "all peers closed the connection");
        t = transport_;
        epoch = epoch_;
      }
      auto pkt_r = t->recv(deadline);
      if (!pkt_r.ok()) {
        if (pkt_r.error().code == Errc::cancelled) {
          std::lock_guard<std::mutex> lk(mu_);
          if (!closed_ && epoch_ != epoch) continue;  // rebased; retry
        }
        return pkt_r.error();
      }
      auto frame_r = decode_frame(pkt_r.value().payload);
      if (!frame_r.ok()) continue;  // stray datagram
      const Frame& f = frame_r.value();
      switch (f.kind) {
        case MsgKind::data: {
          std::lock_guard<std::mutex> lk(mu_);
          if (!live_tokens_.count(f.token)) continue;
          Msg m;
          m.src = pkt_r.value().src;
          m.dst = local_;
          m.payload.assign(f.payload.begin(), f.payload.end());
          return m;
        }
        case MsgKind::close: {
          std::lock_guard<std::mutex> lk(mu_);
          live_tokens_.erase(f.token);
          if (live_tokens_.empty())
            return err(Errc::unavailable, "peer closed the connection");
          continue;
        }
        default:
          continue;  // duplicate accept from a handshake retry, etc.
      }
    }
  }

  const Addr& local_addr() const override { return local_; }

  // Note: reports the peer negotiated at establishment; a rebase (which
  // changes the live destination) does not alter the logical peer.
  const Addr& peer_addr() const override { return initial_peer_; }

  void close() override {
    std::shared_ptr<Transport> t;
    std::vector<Peer> peers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
      t = transport_;
      peers = peers_;
    }
    for (const auto& p : peers) {
      Bytes frame = encode_frame(MsgKind::close, p.token, {});
      (void)t->send_to(p.addr, frame);
    }
    t->close();
  }

  // Switch the underlying transport and (single) peer address without
  // renegotiating; the token is preserved, so the server simply follows
  // the new reply path. This is how local_or_remote moves an established
  // connection onto a unix socket.
  Result<void> rebase(TransportPtr new_transport, Addr new_peer) {
    std::shared_ptr<Transport> old;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      if (peers_.size() != 1)
        return err(Errc::invalid_argument,
                   "rebase only supported for single-peer connections");
      old = transport_;
      transport_ = std::shared_ptr<Transport>(std::move(new_transport));
      peers_[0].addr = std::move(new_peer);
      epoch_++;
    }
    old->close();  // wakes a blocked recv, which retries on the new one
    return ok();
  }

  uint64_t token() const {
    std::lock_guard<std::mutex> lk(mu_);
    return peers_.front().token;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<Transport> transport_;
  std::vector<Peer> peers_;
  std::unordered_set<uint64_t> live_tokens_;
  Addr local_;
  Addr initial_peer_;
  uint64_t epoch_ = 0;
  bool closed_ = false;
};

// ----------------------------------------------------------------------
// Server-side per-connection state and connection object.
// ----------------------------------------------------------------------

struct ServerConnState {
  explicit ServerConnState(uint64_t tok) : token(tok), incoming(16384) {}

  const uint64_t token;
  BlockingQueue<Packet> incoming;  // payloads already stripped of header

  std::mutex reply_mu;
  std::shared_ptr<Transport> reply_transport;
  Addr reply_addr;

  void set_reply_path(std::shared_ptr<Transport> t, const Addr& addr) {
    std::lock_guard<std::mutex> lk(reply_mu);
    reply_transport = std::move(t);
    reply_addr = addr;
  }
};

class Listener::Impl : public std::enable_shared_from_this<Listener::Impl> {
 public:
  Impl(std::shared_ptr<Runtime> rt, std::vector<ChunnelSpec> chain,
       std::string endpoint_name)
      : rt_(std::move(rt)),
        chain_(std::move(chain)),
        endpoint_name_(std::move(endpoint_name)),
        accept_q_(1024) {}

  ~Impl() { close(); }

  Result<void> start(const Addr& addr) {
    BERTHA_TRY_ASSIGN(t, rt_->transports().bind(addr));
    primary_addr_ = t->local_addr();
    std::shared_ptr<Transport> shared(std::move(t));
    {
      std::lock_guard<std::mutex> lk(mu_);
      transports_.push_back(shared);
    }

    // Run on_listen for every locally registered impl of every type in
    // the chain; they may attach extra transports and advertise args.
    for (const auto& spec : chain_) {
      for (const auto& impl : rt_->registry().lookup_type(spec.type)) {
        ListenContext ctx;
        ctx.listen_addr = primary_addr_;
        ctx.host_id = rt_->config().host_id;
        ctx.transports = &rt_->transports();
        ctx.app_args = spec.args;
        auto self = shared_from_this();
        std::string type = spec.type;
        ctx.add_listen_transport = [self](TransportPtr extra) {
          return self->add_transport(std::move(extra));
        };
        ctx.advertise = [self, type](std::string k, std::string v) {
          std::lock_guard<std::mutex> lk(self->mu_);
          self->advertisements_[type].set(k, std::move(v));
        };
        BERTHA_TRY(impl->on_listen(ctx));
      }
    }

    start_demux(shared);
    return ok();
  }

  Result<void> add_transport(TransportPtr t) {
    if (!t) return err(Errc::invalid_argument, "null transport");
    std::shared_ptr<Transport> shared(std::move(t));
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closing_) return err(Errc::cancelled, "listener closed");
      transports_.push_back(shared);
    }
    start_demux(shared);
    return ok();
  }

  Result<ConnPtr> accept(Deadline deadline) { return accept_q_.pop(deadline); }

  const Addr& addr() const { return primary_addr_; }

  uint64_t connections_accepted() const {
    std::lock_guard<std::mutex> lk(mu_);
    return accepted_;
  }

  void close() {
    std::vector<std::shared_ptr<Transport>> transports;
    std::vector<std::shared_ptr<ServerConnState>> states;
    std::vector<uint64_t> allocs;
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closing_) return;
      closing_ = true;
      transports = transports_;
      for (auto& [tok, st] : conns_) states.push_back(st);
      for (auto& [tok, ids] : allocs_)
        allocs.insert(allocs.end(), ids.begin(), ids.end());
      conns_.clear();
      allocs_.clear();
      threads.swap(demux_threads_);
    }
    for (auto& t : transports) t->close();
    for (auto& th : threads)
      if (th.joinable()) th.join();
    for (auto& st : states) st->incoming.close();
    for (uint64_t id : allocs) (void)rt_->discovery().release(id);
    accept_q_.close();
  }

  std::map<std::string, ChunnelArgs> advertisements_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return advertisements_;
  }

  void connection_closed(uint64_t token) {
    std::shared_ptr<ServerConnState> st;
    std::vector<uint64_t> ids;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = conns_.find(token);
      if (it == conns_.end()) return;
      st = it->second;
      conns_.erase(it);
      auto ait = allocs_.find(token);
      if (ait != allocs_.end()) {
        ids = std::move(ait->second);
        allocs_.erase(ait);
      }
    }
    st->incoming.close();
    for (uint64_t id : ids) (void)rt_->discovery().release(id);
  }

 private:
  void start_demux(std::shared_ptr<Transport> t) {
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    auto self = shared_from_this();
    demux_threads_.emplace_back([self, t] { self->demux_loop(t); });
  }

  void demux_loop(std::shared_ptr<Transport> transport) {
    for (;;) {
      auto pkt_r = transport->recv();
      if (!pkt_r.ok()) return;  // closed
      Packet& pkt = pkt_r.value();

      auto frame_r = decode_frame(pkt.payload);
      if (!frame_r.ok()) {
        BLOG(debug, "listener") << "dropping malformed datagram from "
                                << pkt.src.to_string();
        continue;
      }
      const Frame& f = frame_r.value();

      switch (f.kind) {
        case MsgKind::hello:
          handle_hello(transport, pkt.src, f.payload);
          break;
        case MsgKind::data: {
          std::shared_ptr<ServerConnState> st;
          {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = conns_.find(f.token);
            if (it != conns_.end()) st = it->second;
          }
          if (!st) break;  // unknown token: connection gone
          st->set_reply_path(transport, pkt.src);
          Packet data;
          data.src = pkt.src;
          data.payload.assign(f.payload.begin(), f.payload.end());
          (void)st->incoming.push(std::move(data));
          break;
        }
        case MsgKind::close:
          connection_closed(f.token);
          break;
        default:
          break;  // accept/reject/discovery are not for a listener
      }
    }
  }

  void handle_hello(const std::shared_ptr<Transport>& transport,
                    const Addr& src, BytesView payload);

  std::shared_ptr<Runtime> rt_;
  std::vector<ChunnelSpec> chain_;
  std::string endpoint_name_;
  Addr primary_addr_;

  BlockingQueue<ConnPtr> accept_q_;

  mutable std::mutex mu_;
  bool closing_ = false;
  uint64_t accepted_ = 0;
  std::atomic<uint64_t> next_token_{1};
  std::vector<std::shared_ptr<Transport>> transports_;
  std::vector<std::thread> demux_threads_;
  std::map<std::string, ChunnelArgs> advertisements_;
  std::unordered_map<uint64_t, std::shared_ptr<ServerConnState>> conns_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> allocs_;
  // Handshake retransmission cache: hello identity -> encoded Accept.
  // Bounded FIFO: retransmissions arrive within the handshake window,
  // so only recent entries matter; old ones are evicted to keep a
  // long-lived listener's memory flat.
  static constexpr size_t kHelloCacheCap = 1024;
  std::unordered_map<std::string, Bytes> hello_cache_;
  std::deque<std::string> hello_cache_order_;
};

// The server half of an established connection.
class ServerConnection final : public Connection {
 public:
  ServerConnection(std::shared_ptr<ServerConnState> st,
                   std::weak_ptr<Listener::Impl> listener, Addr local,
                   Addr peer)
      : st_(std::move(st)),
        listener_(std::move(listener)),
        local_(std::move(local)),
        peer_(std::move(peer)) {}

  ~ServerConnection() override { close(); }

  Result<void> send(Msg m) override {
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(st_->reply_mu);
      t = st_->reply_transport;
      dst = st_->reply_addr;
    }
    if (!t) return err(Errc::unavailable, "no reply path yet");
    Bytes frame = encode_frame(MsgKind::data, st_->token, m.payload);
    return t->send_to(dst, frame);
  }

  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(pkt, st_->incoming.pop(deadline));
    Msg m;
    m.src = std::move(pkt.src);
    m.dst = local_;
    m.payload = std::move(pkt.payload);
    return m;
  }

  const Addr& local_addr() const override { return local_; }
  const Addr& peer_addr() const override { return peer_; }

  void close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    // Best-effort close notice to the client.
    std::shared_ptr<Transport> t;
    Addr dst;
    {
      std::lock_guard<std::mutex> lk(st_->reply_mu);
      t = st_->reply_transport;
      dst = st_->reply_addr;
    }
    if (t) {
      Bytes frame = encode_frame(MsgKind::close, st_->token, {});
      (void)t->send_to(dst, frame);
    }
    if (auto l = listener_.lock()) l->connection_closed(st_->token);
  }

 private:
  std::shared_ptr<ServerConnState> st_;
  std::weak_ptr<Listener::Impl> listener_;
  Addr local_;
  Addr peer_;
  std::atomic<bool> closed_{false};
};

void Listener::Impl::handle_hello(const std::shared_ptr<Transport>& transport,
                                  const Addr& src, BytesView payload) {
  auto hello_r = decode_hello(payload);
  if (!hello_r.ok()) {
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(Errc::protocol_error),
                       hello_r.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }
  const HelloMsg& hello = hello_r.value();

  // Retransmitted hello (client handshake retry): resend the same Accept
  // instead of creating a second connection.
  std::string cache_key = src.to_string() + "|" + hello.process_id + "|" +
                          hello.endpoint_name;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = hello_cache_.find(cache_key);
    if (it != hello_cache_.end()) {
      (void)transport->send_to(src, it->second);
      return;
    }
  }

  auto neg = negotiate_server(chain_, hello, rt_->registry(), rt_->discovery(),
                              *rt_->config().policy, advertisements_snapshot(),
                              rt_->config().host_id,
                              rt_->config().optimizer.get());
  if (!neg.ok()) {
    BLOG(info, "listener") << "rejecting " << hello.endpoint_name << ": "
                           << neg.error().to_string();
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(neg.error().code),
                       neg.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }

  uint64_t token = next_token_.fetch_add(1);
  auto st = std::make_shared<ServerConnState>(token);
  st->set_reply_path(transport, src);

  AcceptMsg accept;
  accept.token = token;
  accept.host_id = rt_->config().host_id;
  accept.process_id = rt_->config().process_id;
  accept.chain = neg.value().chain;
  if (!rt_->config().attestation_secret.empty())
    accept.chain_digest =
        attest_chain(accept.chain, rt_->config().attestation_secret);
  Bytes accept_frame = encode_frame(MsgKind::accept, token,
                                    encode_accept(accept));

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    conns_[token] = st;
    if (!neg.value().resource_allocs.empty())
      allocs_[token] = neg.value().resource_allocs;
    if (hello_cache_.emplace(cache_key, accept_frame).second) {
      hello_cache_order_.push_back(cache_key);
      if (hello_cache_order_.size() > kHelloCacheCap) {
        hello_cache_.erase(hello_cache_order_.front());
        hello_cache_order_.pop_front();
      }
    }
    accepted_++;
  }

  // Wrap the server half of the stack.
  ConnPtr base = std::make_shared<ServerConnection>(
      st, weak_from_this(), primary_addr_, src);
  WrapContext ctx;
  ctx.role = Role::server;
  ctx.local_host_id = rt_->config().host_id;
  ctx.peer_host_id = hello.host_id;
  ctx.token = token;
  ctx.listen_addr = primary_addr_;
  ctx.transports = &rt_->transports();
  auto wrapped = build_stack(*rt_, accept.chain, std::move(base), ctx);
  if (!wrapped.ok()) {
    BLOG(error, "listener") << "stack build failed: "
                            << wrapped.error().to_string();
    connection_closed(token);
    Bytes rej = encode_frame(
        MsgKind::reject, 0,
        encode_reject({static_cast<uint8_t>(wrapped.error().code),
                       wrapped.error().message}));
    (void)transport->send_to(src, rej);
    return;
  }

  // Register the connection before the client learns the token, then
  // hand it to accept().
  (void)transport->send_to(src, accept_frame);
  (void)accept_q_.push(std::move(wrapped).value());
}

// --- Listener public API ---

Listener::~Listener() { impl_->close(); }
const Addr& Listener::addr() const { return impl_->addr(); }
Result<ConnPtr> Listener::accept(Deadline deadline) {
  return impl_->accept(deadline);
}
void Listener::close() { impl_->close(); }
uint64_t Listener::connections_accepted() const {
  return impl_->connections_accepted();
}

// --- Endpoint ---

Result<std::unique_ptr<Listener>> Endpoint::listen(const Addr& addr) {
  auto impl = std::make_shared<Listener::Impl>(rt_, chain_, name_);
  BERTHA_TRY(impl->start(addr));
  return std::unique_ptr<Listener>(new Listener(std::move(impl)));
}

Result<ConnPtr> Endpoint::connect(const Addr& server, Deadline deadline) {
  return connect(std::vector<Addr>{server}, deadline);
}

Result<ConnPtr> Endpoint::connect(const std::vector<Addr>& servers,
                                  Deadline deadline) {
  if (servers.empty())
    return err(Errc::invalid_argument, "connect needs at least one address");

  Addr bind = client_bind_addr(servers.front(), rt_->config().host_id);
  if (!bind.valid())
    return err(Errc::invalid_argument,
               "cannot derive bind addr for " + servers.front().to_string());
  BERTHA_TRY_ASSIGN(t, rt_->transports().bind(bind));
  std::shared_ptr<Transport> transport(std::move(t));

  HelloMsg hello;
  hello.endpoint_name = name_ + "#" + make_unique_id();
  hello.host_id = rt_->config().host_id;
  hello.process_id = rt_->config().process_id;
  hello.dag = ChunnelDag::chain(chain_);
  // Offer everything this process can instantiate for the DAG's types;
  // with an empty DAG (Listing 5) the server's chain governs, so offer
  // every registered type.
  if (chain_.empty()) {
    for (const auto& type : rt_->registry().types())
      hello.offers[type] = rt_->registry().infos_for(type);
  } else {
    for (const auto& spec : chain_)
      hello.offers[spec.type] = rt_->registry().infos_for(spec.type);
  }
  Bytes hello_body = encode_hello(hello);
  Bytes hello_frame = encode_frame(MsgKind::hello, 0, hello_body);

  const auto& cfg = rt_->config();
  std::vector<ClientDataConnection::Peer> peers;
  std::vector<AcceptMsg> accepts;

  for (const Addr& server : servers) {
    std::optional<AcceptMsg> accept;
    Addr accepted_from = server;
    Error last = err(Errc::timed_out, "handshake timed out");
    for (int attempt = 0; attempt <= cfg.handshake_retries && !accept;
         attempt++) {
      if (deadline.expired()) return err(Errc::timed_out, "connect deadline");
      BERTHA_TRY(transport->send_to(server, hello_frame));
      Deadline attempt_dl = Deadline::after(cfg.handshake_timeout);
      for (;;) {
        auto pkt_r = transport->recv(attempt_dl);
        if (!pkt_r.ok()) {
          last = pkt_r.error();
          if (last.code == Errc::timed_out) break;  // retry hello
          return last;
        }
        auto frame_r = decode_frame(pkt_r.value().payload);
        if (!frame_r.ok()) continue;
        const Frame& f = frame_r.value();
        if (f.kind == MsgKind::reject) {
          auto rej = decode_reject(f.payload);
          std::string why = rej.ok() ? rej.value().reason : "(malformed reject)";
          return err(Errc::connection_failed,
                     "server " + server.to_string() + " rejected: " + why);
        }
        if (f.kind != MsgKind::accept) continue;
        // Multi-endpoint connects must attribute each Accept to the
        // server it dialed. A single-target dial accepts a reply from
        // any source: the dialed address may be an anycast/virtual
        // address (§3.2) and the Accept arrives from the concrete
        // instance the network routed us to.
        if (servers.size() > 1 && !(pkt_r.value().src == server)) continue;
        auto acc = decode_accept(f.payload);
        if (!acc.ok()) return acc.error();
        accept = std::move(acc).value();
        accepted_from = pkt_r.value().src;
        break;
      }
    }
    if (!accept)
      return err(Errc::connection_failed,
                 "no response from " + server.to_string() + " (" +
                     last.to_string() + ")");
    // §6 attestation: a client configured with a deployment secret
    // refuses chains the server did not attest with the same secret.
    if (!cfg.attestation_secret.empty() &&
        accept->chain_digest !=
            attest_chain(accept->chain, cfg.attestation_secret)) {
      return err(Errc::connection_failed,
                 "server " + server.to_string() +
                     " failed chain attestation (secret mismatch or "
                     "unattested chain)");
    }
    // Pin the data path to the concrete instance that accepted (equal
    // to `server` except for anycast/virtual addresses).
    peers.push_back({accepted_from, accept->token});
    accepts.push_back(std::move(*accept));
  }

  auto base = std::make_shared<ClientDataConnection>(transport, peers);

  WrapContext ctx;
  ctx.role = Role::client;
  ctx.local_host_id = cfg.host_id;
  ctx.peer_host_id = accepts.front().host_id;
  ctx.token = peers.front().token;
  ctx.transports = &rt_->transports();
  if (peers.size() == 1) {
    std::weak_ptr<ClientDataConnection> weak = base;
    ctx.rebase = [weak](TransportPtr nt, Addr np) -> Result<void> {
      auto conn = weak.lock();
      if (!conn) return err(Errc::cancelled, "connection gone");
      return conn->rebase(std::move(nt), std::move(np));
    };
  }

  return build_stack(*rt_, accepts.front().chain, base, ctx);
}

// --- stack construction ---

Result<ConnPtr> build_stack(Runtime& rt,
                            const std::vector<NegotiatedNode>& chain,
                            ConnPtr base, WrapContext base_ctx) {
  ConnPtr conn = std::move(base);
  // chain[0] is outermost: wrap from the inside out.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    auto impl_r = rt.registry().lookup(it->type, it->impl_name);
    if (!impl_r.ok()) {
      // No local factory: this side is a passthrough for the node (the
      // work happens at the peer or in the network).
      BLOG(debug, "stack") << "no local factory for " << it->impl_name
                           << "; passthrough";
      continue;
    }
    WrapContext ctx = base_ctx;
    ctx.args = it->args;
    BERTHA_TRY_ASSIGN(wrapped, impl_r.value()->wrap(std::move(conn), ctx));
    conn = std::move(wrapped);
  }
  return conn;
}

}  // namespace bertha
