#include "core/dag.hpp"

#include <algorithm>
#include <set>

namespace bertha {

ChunnelDag ChunnelDag::chain(std::vector<ChunnelSpec> specs) {
  ChunnelDag d;
  d.nodes_ = std::move(specs);
  for (size_t i = 0; i + 1 < d.nodes_.size(); i++) d.edges_.emplace_back(i, i + 1);
  return d;
}

size_t ChunnelDag::add_node(ChunnelSpec spec) {
  nodes_.push_back(std::move(spec));
  return nodes_.size() - 1;
}

Result<void> ChunnelDag::add_edge(size_t from, size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size())
    return err(Errc::invalid_argument, "dag edge index out of range");
  if (from == to) return err(Errc::invalid_argument, "dag self loop");
  edges_.emplace_back(from, to);
  return ok();
}

Result<void> ChunnelDag::validate() const {
  std::set<std::pair<size_t, size_t>> seen;
  for (auto [a, b] : edges_) {
    if (a >= nodes_.size() || b >= nodes_.size())
      return err(Errc::invalid_argument, "dag edge index out of range");
    if (a == b) return err(Errc::invalid_argument, "dag self loop");
    if (!seen.insert({a, b}).second)
      return err(Errc::invalid_argument, "dag duplicate edge");
  }
  for (const auto& n : nodes_)
    if (n.type.empty())
      return err(Errc::invalid_argument, "dag node with empty type");

  // Kahn's algorithm for cycle detection.
  std::vector<size_t> indeg(nodes_.size(), 0);
  for (auto [a, b] : edges_) indeg[b]++;
  std::vector<size_t> q;
  for (size_t i = 0; i < nodes_.size(); i++)
    if (indeg[i] == 0) q.push_back(i);
  size_t visited = 0;
  while (!q.empty()) {
    size_t n = q.back();
    q.pop_back();
    visited++;
    for (auto [a, b] : edges_)
      if (a == n && --indeg[b] == 0) q.push_back(b);
  }
  if (visited != nodes_.size())
    return err(Errc::invalid_argument, "dag contains a cycle");
  return ok();
}

bool ChunnelDag::is_chain() const {
  if (nodes_.empty()) return true;
  if (edges_.size() != nodes_.size() - 1) return false;
  std::vector<size_t> indeg(nodes_.size(), 0), outdeg(nodes_.size(), 0);
  for (auto [a, b] : edges_) {
    if (a >= nodes_.size() || b >= nodes_.size()) return false;
    outdeg[a]++;
    indeg[b]++;
  }
  size_t sources = 0, sinks = 0;
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (indeg[i] > 1 || outdeg[i] > 1) return false;
    if (indeg[i] == 0) sources++;
    if (outdeg[i] == 0) sinks++;
  }
  return sources == 1 && sinks == 1 && validate().ok();
}

Result<std::vector<ChunnelSpec>> ChunnelDag::as_chain() const {
  if (nodes_.empty()) return std::vector<ChunnelSpec>{};
  if (!is_chain()) return err(Errc::invalid_argument, "dag is not a chain");
  // Find the source and follow next-pointers.
  std::vector<std::optional<size_t>> next(nodes_.size());
  std::vector<size_t> indeg(nodes_.size(), 0);
  for (auto [a, b] : edges_) {
    next[a] = b;
    indeg[b]++;
  }
  size_t cur = 0;
  for (size_t i = 0; i < nodes_.size(); i++)
    if (indeg[i] == 0) cur = i;
  std::vector<ChunnelSpec> out;
  out.reserve(nodes_.size());
  for (;;) {
    out.push_back(nodes_[cur]);
    if (!next[cur]) break;
    cur = *next[cur];
  }
  return out;
}

bool ChunnelDag::same_types(const ChunnelDag& other) const {
  auto a = as_chain();
  auto b = other.as_chain();
  if (!a.ok() || !b.ok()) return false;
  if (a.value().size() != b.value().size()) return false;
  for (size_t i = 0; i < a.value().size(); i++)
    if (a.value()[i].type != b.value()[i].type) return false;
  return true;
}

std::string ChunnelDag::to_string() const {
  auto chain_r = as_chain();
  if (!chain_r.ok()) {
    return "dag(n=" + std::to_string(nodes_.size()) +
           ",e=" + std::to_string(edges_.size()) + ")";
  }
  std::string s;
  for (const auto& n : chain_r.value()) {
    if (!s.empty()) s += " |> ";
    s += n.type;
    if (!n.args.raw().empty()) {
      s += '(';
      bool first = true;
      for (const auto& [k, v] : n.args.raw()) {
        if (!first) s += ',';
        first = false;
        s += k + "=" + v;
      }
      s += ')';
    }
  }
  return s.empty() ? "(empty)" : s;
}

void Serde<ChunnelDag>::put(Writer& w, const ChunnelDag& d) {
  serde_put(w, d.nodes());
  w.put_varint(d.edges().size());
  for (auto [a, b] : d.edges()) {
    w.put_varint(a);
    w.put_varint(b);
  }
}

Result<ChunnelDag> Serde<ChunnelDag>::get(Reader& r) {
  BERTHA_TRY_ASSIGN(nodes, serde_get<std::vector<ChunnelSpec>>(r));
  BERTHA_TRY_ASSIGN(nedges, r.get_varint());
  if (nedges > r.remaining())
    return err(Errc::protocol_error, "dag edge count exceeds input");
  ChunnelDag d;
  for (auto& n : nodes) d.add_node(std::move(n));
  for (uint64_t i = 0; i < nedges; i++) {
    BERTHA_TRY_ASSIGN(a, r.get_varint());
    BERTHA_TRY_ASSIGN(b, r.get_varint());
    BERTHA_TRY(d.add_edge(a, b));
  }
  BERTHA_TRY(d.validate());
  return d;
}

}  // namespace bertha
