// Live renegotiation: transitioning *established* connections between
// implementations of the same chunnel type (the runtime-reconfiguration
// follow-on to the paper's establishment-time negotiation, §4.3).
//
// Protocol (wire kinds transition / transition_ack):
//
//   server                                  client
//     | -- transition{epoch,new_token,chain} ->|   (on the current token)
//     |                                        | stage: build new stack on
//     |                                        | new_token, switch sends
//     | <- transition_ack{epoch,accepted} ---- |   (on the new token)
//     | swap at ack; drain old chain           | drain old chain
//     | -- close(old token) when drained ----> |
//
// An epoch is identified by its connection token: every transition mints
// a fresh token and a freshly built chunnel stack on both sides (the
// analogue of ordered_mcast's initial_seq handover — the new epoch
// starts at an explicit sequence boundary instead of inheriting mid-
// stream state). Old-epoch messages keep flowing through the *old*
// stack until a fin or the drain deadline; per-path FIFO transports
// guarantee the fin trails all old data. The drain-before-release
// invariant: resource slots held by a replaced implementation are
// released only after its chain has drained (see DESIGN.md §4).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/connection.hpp"
#include "core/discovery.hpp"
#include "core/negotiation.hpp"
#include "trace/trace.hpp"

namespace bertha {

// --- Transition handshake messages ---

// Transition epochs are namespaced per listener: the top 16 bits carry
// a salt derived from the minting server's identity (host, process,
// listen address) and the low 48 bits count transitions on the
// connection. Without the salt, two servers independently minting
// "epoch 1" for the same logical flow (e.g. a client re-established
// against a control-plane replica after failover) produce colliding
// epoch identifiers in traces and ack/cancel matching.
inline constexpr int kEpochCounterBits = 48;
inline constexpr uint64_t kEpochCounterMask =
    (uint64_t{1} << kEpochCounterBits) - 1;

// Salt for `server_identity` (any stable identity string); the result
// occupies only the bits above kEpochCounterBits.
uint64_t mint_epoch_salt(std::string_view server_identity);

enum class TransitionReason : uint8_t {
  upgrade = 1,        // a better implementation became usable
  revocation = 2,     // the current implementation is being reclaimed
  policy_change = 3,  // operator re-ran selection
};

struct TransitionMsg {
  uint64_t epoch = 0;      // strictly increasing per connection
  uint64_t new_token = 0;  // the token the new chain will use
  TransitionReason reason = TransitionReason::upgrade;
  // Mandatory offers (revocations) cannot be declined: a decline or ack
  // timeout closes / force-cuts the connection instead of rolling back.
  bool mandatory = false;
  std::vector<NegotiatedNode> chain;
  uint64_t chain_digest = 0;  // attest_chain() when a secret is configured
  // Optional: the connection's original trace context, so client-side
  // transition handling joins the trace that created the connection.
  TraceContext trace;
};

struct TransitionAckMsg {
  uint64_t epoch = 0;
  bool accepted = false;
  uint8_t errc = 0;
  std::string reason;
};

// Rollback notice (wire kind transition_cancel): the server abandoned
// the offer for `epoch`; a client that staged (or cut over to) that
// epoch's stack must discard it and revert to the previous epoch.
struct TransitionCancelMsg {
  uint64_t epoch = 0;
  TraceContext trace;  // optional; ties the revert into the offer's trace
};

Bytes encode_transition(const TransitionMsg& m);
Result<TransitionMsg> decode_transition(BytesView b);
Bytes encode_transition_ack(const TransitionAckMsg& m);
Result<TransitionAckMsg> decode_transition_ack(BytesView b);
Bytes encode_transition_cancel(const TransitionCancelMsg& m);
Result<TransitionCancelMsg> decode_transition_cancel(BytesView b);

// --- Tuning & stats ---

struct TransitionTuning {
  Duration offer_retry = ms(100);    // offer retransmit period
  Duration ack_timeout = ms(1500);   // give up waiting for the ack
  Duration drain_timeout = ms(500);  // bound on old-chain drain
  Duration drain_slice = ms(2);      // old/new poll alternation while draining
  Duration idle_slice = ms(25);      // server-side cutover-notice latency
  Duration sweep_period = ms(25);    // controller sweep / watch poll period
};

struct TransitionStats {
  uint64_t watch_events = 0;
  uint64_t watch_batches = 0;  // coalesced bursts consumed as one unit
  // Upgrade negotiation re-runs triggered by watch batches: a burst of N
  // registrations in one batch re-runs selection once, not N times.
  uint64_t upgrade_runs = 0;
  // Client torn down because a transition_cancel arrived after its old
  // stack finished draining (nothing left to revert onto).
  uint64_t dead_epoch_closes = 0;
  uint64_t offers_sent = 0;       // includes retransmits
  uint64_t completed = 0;         // cutover + drain finished
  uint64_t declined = 0;          // client refused an offer
  uint64_t rolled_back = 0;       // no ack in time (opportunistic offers)
  uint64_t forced_cutovers = 0;   // drain/ack deadline enforced
  uint64_t closed_mandatory = 0;  // connection closed to honor a revocation
  uint64_t cancels_sent = 0;      // rollback notices sent to clients
  uint64_t reverts = 0;           // client-side stacks reverted on cancel
  uint64_t drained_msgs = 0;      // messages delivered from old chains
  uint64_t max_cutover_ns = 0;    // offer sent -> old chain drained
  uint64_t total_cutover_ns = 0;
};

class MetricsRegistry;
class TransitionStatsSink;

// Registers a MetricsRegistry provider exposing a sink's stats as
// "transition.*" counters (one snapshot covers the runtime; the sink
// stays the source of truth).
void attach_transition_stats_provider(MetricsRegistry& m,
                                      std::shared_ptr<TransitionStatsSink> sink);

// Shared between the controller and every attached host.
class TransitionStatsSink {
 public:
  template <typename F>
  void update(F f) {
    std::lock_guard<std::mutex> lk(mu_);
    f(s_);
  }
  TransitionStats snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return s_;
  }

 private:
  mutable std::mutex mu_;
  TransitionStats s_;
};

using StatsSinkPtr = std::shared_ptr<TransitionStatsSink>;

// --- TransitionableConnection ---

// The outermost, application-facing wrapper of every negotiated
// connection. It holds the *current* chunnel stack and, during a
// transition, the previous one; cutover() atomically swaps stacks at the
// epoch boundary while recv() keeps draining the old chain until it
// reports end-of-stream or the drain deadline passes. send() always uses
// the current stack, so the reply to a message drained from the old
// epoch flows out through the new one — exactly the paper's "chunnels
// are per-message" framing.
class TransitionableConnection final : public Connection {
 public:
  // `external_cutover` is true on the server, where cutover() is called
  // from the demux thread while the application may be blocked in
  // recv(): recv then slices its waits (tuning.idle_slice) so a swap is
  // noticed promptly. Client-side cutovers happen on the recv thread
  // itself, so no slicing is needed when idle.
  TransitionableConnection(ConnPtr initial, std::vector<NegotiatedNode> chain,
                           bool external_cutover, TransitionTuning tuning,
                           StatsSinkPtr stats = nullptr);
  ~TransitionableConnection() override;

  Result<void> send(Msg m) override;
  Result<Msg> recv(Deadline deadline) override;
  const Addr& local_addr() const override;
  const Addr& peer_addr() const override;
  void close() override;

  // Swap to `next` as the current stack; the previous stack drains until
  // `on_drained(forced, drained_msgs)` fires (exactly once, possibly
  // from a recv()ing application thread or from force_drain()).
  Result<void> cutover(uint64_t epoch, ConnPtr next,
                       std::vector<NegotiatedNode> new_chain,
                       std::function<void(bool, uint64_t)> on_drained);

  // Deadline enforcement (controller sweep). No-op unless draining.
  void force_drain();

  // Undo a cutover to `epoch` after the server rolled the offer back
  // (transition_cancel): the staged stack is closed and the previous
  // stack — which must still be draining — becomes current again. Fails
  // with not_found once the old stack has finished draining.
  Result<void> revert(uint64_t epoch);

  uint64_t epoch() const;
  std::vector<NegotiatedNode> chain() const;
  bool draining() const;
  // Messages recovered from old chains across all transitions so far.
  uint64_t drained_msgs() const;

 private:
  void finish_drain(bool forced);

  const bool external_cutover_;
  const TransitionTuning tuning_;
  StatsSinkPtr stats_;

  mutable std::mutex mu_;
  ConnPtr cur_;
  ConnPtr old_;  // non-null while draining
  std::vector<NegotiatedNode> chain_;
  // Pre-cutover chain/epoch, kept while old_ drains so revert() can
  // restore them.
  std::vector<NegotiatedNode> prev_chain_;
  uint64_t prev_epoch_ = 0;
  uint64_t epoch_ = 0;
  Deadline drain_deadline_ = Deadline::never();
  std::function<void(bool, uint64_t)> on_drained_;
  uint64_t drained_ = 0;        // current drain
  uint64_t drained_total_ = 0;  // lifetime
  bool closed_ = false;
};

// --- TransitionHost ---

// What the controller needs from a listener: enumerate live connections,
// start a transition, and run deadline sweeps. Implemented by
// Listener::Impl (core/endpoint.cpp).
class TransitionHost {
 public:
  virtual ~TransitionHost() = default;

  struct LiveConn {
    uint64_t token = 0;
    std::vector<NegotiatedNode> chain;
  };

  enum class Begin {
    started,    // offer sent, transition in flight
    unchanged,  // renegotiation picked the same chain
    busy,       // a transition for this connection is already in flight
  };

  virtual std::vector<LiveConn> live_connections() const = 0;

  // Late-activate on_listen hooks for chunnel impls registered after
  // listen() (e.g. an offload library loaded at runtime) so their
  // advertisements are visible to renegotiation. Returns true if any
  // advertisement changed.
  virtual bool refresh_advertisements() = 0;

  virtual Result<Begin> begin_transition(
      uint64_t token, TransitionReason reason,
      const std::vector<std::pair<std::string, std::string>>& banned,
      bool mandatory) = 0;

  // Retransmit pending offers, enforce ack and drain deadlines.
  virtual void sweep_transitions() = 0;

  virtual void bind_stats(StatsSinkPtr sink) = 0;
};

// --- TransitionController ---

// Owned by the Runtime. Subscribes to the discovery watch channel and,
// on deployment changes (or an explicit renegotiate_all / revoke_impl),
// re-runs negotiation for every live connection on every attached
// listener, driving the staged-cutover protocol above.
class TransitionController {
 public:
  explicit TransitionController(TransitionTuning tuning = {},
                                TracerPtr tracer = nullptr);
  ~TransitionController();

  TransitionController(const TransitionController&) = delete;
  TransitionController& operator=(const TransitionController&) = delete;

  const TransitionTuning& tuning() const { return tuning_; }
  StatsSinkPtr stats_sink() const { return sink_; }
  TransitionStats stats() const { return sink_->snapshot(); }

  // Listeners register themselves here (weakly) when they start.
  void attach(std::shared_ptr<TransitionHost> host);

  // Subscribe to `discovery` and run the watch/sweep thread.
  Result<void> start(DiscoveryClient& discovery);
  void stop();
  bool running() const;

  // Operator entry points. Return the number of transitions started.
  uint64_t renegotiate_all(
      TransitionReason reason = TransitionReason::policy_change);
  // Revocation: remove (type, name) from discovery, ban it from future
  // selection, and transition every connection using it (mandatory —
  // affected connections fall back or close *before* their slots free).
  uint64_t revoke_impl(DiscoveryClient& discovery, const std::string& type,
                       const std::string& name);

  // One sweep iteration; useful when the thread isn't running (tests).
  void poll();

 private:
  void run_loop();
  void handle_batch(const std::vector<WatchEvent>& events);
  // Starts transitions on all hosts; `use_filter` restricts to
  // connections whose chain uses (type, name).
  uint64_t trigger(TransitionReason reason, bool mandatory, bool use_filter,
                   const std::string& type, const std::string& name);
  std::vector<std::shared_ptr<TransitionHost>> hosts();

  const TransitionTuning tuning_;
  StatsSinkPtr sink_;
  TracerPtr tracer_;

  mutable std::mutex mu_;
  std::vector<std::weak_ptr<TransitionHost>> hosts_;
  std::vector<std::pair<std::string, std::string>> bans_;
  WatcherPtr watcher_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace bertha
