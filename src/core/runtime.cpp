#include "core/runtime.hpp"

#include <unistd.h>

#include <random>

#include "core/endpoint.hpp"

namespace bertha {

std::string make_unique_id() {
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  uint64_t v = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  v ^= static_cast<uint64_t>(::getpid()) << 48;
  v ^= counter.fetch_add(1) * 0x9e3779b97f4a7c15ULL;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

Result<std::shared_ptr<Runtime>> Runtime::create(RuntimeConfig cfg) {
  if (!cfg.transports)
    return err(Errc::invalid_argument, "RuntimeConfig.transports is required");
  if (cfg.host_id.empty()) {
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0 && host[0]) {
      cfg.host_id = host;
    } else {
      cfg.host_id = "host-" + make_unique_id();
    }
  }
  if (cfg.process_id.empty())
    cfg.process_id = std::to_string(::getpid()) + "-" + make_unique_id();
  if (!cfg.fault_stats) cfg.fault_stats = std::make_shared<FaultStats>();
  if (!cfg.discovery) {
    auto state = std::make_shared<DiscoveryState>();
    state->set_fault_stats(cfg.fault_stats);
    cfg.discovery = std::move(state);
  }
  if (!cfg.policy) cfg.policy = std::make_shared<DefaultPolicy>();
  if (cfg.handshake_retries < 0 || cfg.handshake_timeout <= Duration::zero())
    return err(Errc::invalid_argument, "bad handshake parameters");
  return std::shared_ptr<Runtime>(new Runtime(std::move(cfg)));
}

// Out of line: stop the controller's watch/sweep thread before cfg_
// (and with it the discovery handle) is torn down.
Runtime::~Runtime() { transitions_->stop(); }

Result<void> Runtime::register_chunnel(ChunnelImplPtr impl) {
  return registry_.register_impl(std::move(impl));
}

Result<Endpoint> Runtime::endpoint(std::string name, ChunnelDag dag) {
  BERTHA_TRY(dag.validate());
  BERTHA_TRY_ASSIGN(chain, dag.as_chain());
  return Endpoint(shared_from_this(), std::move(name), std::move(chain));
}

}  // namespace bertha
