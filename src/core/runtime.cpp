#include "core/runtime.hpp"

#include <unistd.h>

#include <random>

#include "chunnels/telemetry.hpp"
#include "core/endpoint.hpp"
#include "io/buffer_pool.hpp"

namespace bertha {

std::string make_unique_id() {
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  uint64_t v = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  v ^= static_cast<uint64_t>(::getpid()) << 48;
  v ^= counter.fetch_add(1) * 0x9e3779b97f4a7c15ULL;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

Result<std::shared_ptr<Runtime>> Runtime::create(RuntimeConfig cfg) {
  if (!cfg.transports)
    return err(Errc::invalid_argument, "RuntimeConfig.transports is required");
  if (cfg.host_id.empty()) {
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0 && host[0]) {
      cfg.host_id = host;
    } else {
      cfg.host_id = "host-" + make_unique_id();
    }
  }
  if (cfg.process_id.empty())
    cfg.process_id = std::to_string(::getpid()) + "-" + make_unique_id();
  if (!cfg.fault_stats) cfg.fault_stats = std::make_shared<FaultStats>();
  if (!cfg.tracer) {
    Tracer::Options topts;
    topts.enabled = false;  // tracing is opt-in; disabled spans are inert
    cfg.tracer = std::make_shared<Tracer>(topts);
  }
  if (!cfg.metrics) cfg.metrics = std::make_shared<MetricsRegistry>();
  std::shared_ptr<RemoteDiscovery> bootstrap_disc;
  if (!cfg.discovery && !cfg.discovery_servers.empty()) {
    BERTHA_TRY_ASSIGN(
        t, cfg.transports->bind(
               client_bind_for(cfg.discovery_servers.front(), cfg.host_id)));
    RemoteDiscovery::Options ropts = cfg.discovery_rpc;
    if (!ropts.stats) ropts.stats = cfg.fault_stats;
    if (!ropts.tracer) ropts.tracer = cfg.tracer;
    if (ropts.watchdog_interval <= Duration::zero())
      ropts.watchdog_interval = cfg.control.watchdog_interval;
    bootstrap_disc = std::make_shared<RemoteDiscovery>(
        std::move(t), cfg.discovery_servers, std::move(ropts));
    cfg.discovery = bootstrap_disc;
  }
  if (!cfg.discovery) {
    auto state = std::make_shared<DiscoveryState>();
    state->set_fault_stats(cfg.fault_stats);
    cfg.discovery = std::move(state);
  }
  if (!cfg.policy) cfg.policy = std::make_shared<DefaultPolicy>();
  if (cfg.handshake_retries < 0 || cfg.handshake_timeout <= Duration::zero())
    return err(Errc::invalid_argument, "bad handshake parameters");
  auto rt = std::shared_ptr<Runtime>(new Runtime(std::move(cfg)));
  // Fold the runtime's pre-existing counter structures into the registry:
  // the accessors (fault_stats(), transitions().stats()) stay the source
  // of truth and the registry snapshots them on demand.
  attach_fault_stats_provider(*rt->cfg_.metrics, rt->cfg_.fault_stats);
  attach_transition_stats_provider(*rt->cfg_.metrics,
                                   rt->transitions_->stats_sink());
  attach_tracer_provider(*rt->cfg_.metrics, rt->cfg_.tracer);
  attach_hop_stats_provider(*rt->cfg_.metrics, rt->hop_stats_);
  attach_buffer_pool_provider(*rt->cfg_.metrics);
  // The bootstrap discovery client predates `rt`, so its lease heartbeat
  // gets the runtime's wheel by late binding. Resolved lazily (at first
  // lease), so runtimes that never lease anything never pay for a wheel;
  // the weak capture keeps the discovery client from pinning the runtime.
  if (bootstrap_disc && rt->cfg_.io.use_wheel) {
    std::weak_ptr<Runtime> wrt = rt;
    bootstrap_disc->set_wheel_source([wrt]() -> TimerWheelPtr {
      auto r = wrt.lock();
      return r ? r->timer_wheel() : nullptr;
    });
  }
  return rt;
}

ReactorPtr Runtime::reactor() {
  std::lock_guard<std::mutex> lk(reactor_mu_);
  if (!cfg_.io.use_reactor || reactor_failed_) return nullptr;
  if (!reactor_) {
    Reactor::Options opts;
    opts.workers = cfg_.io.reactor_workers;
    opts.batch_size = cfg_.io.rx_batch;
    opts.metrics = cfg_.metrics;
    opts.wheel_tick = cfg_.io.wheel_tick;
    opts.wheel_slots = cfg_.io.wheel_slots;
    auto r = Reactor::create(opts);
    if (!r.ok()) {
      reactor_failed_ = true;  // callers fall back to demux threads
      return nullptr;
    }
    reactor_ = std::move(r).value();
  }
  return reactor_;
}

TimerWheelPtr Runtime::timer_wheel() {
  if (!cfg_.io.use_wheel) return nullptr;
  // Prefer the reactor's wheel: one tick thread serves the whole
  // datapath. (reactor() takes reactor_mu_, so call it unlocked.)
  if (auto r = reactor()) {
    if (auto w = r->wheel()) return w;
  }
  std::lock_guard<std::mutex> lk(reactor_mu_);
  if (!wheel_) {
    TimerWheel::Options opts;
    opts.tick = cfg_.io.wheel_tick;
    opts.slots = cfg_.io.wheel_slots;
    opts.metrics = cfg_.metrics;
    wheel_ = TimerWheel::create(opts);
    attach_timer_wheel_provider(*cfg_.metrics, wheel_);
  }
  return wheel_;
}

// Out of line: stop the controller's watch/sweep thread before cfg_
// (and with it the discovery handle) is torn down; then stop the
// reactor (and its timer wheel) so no handler runs against a dying
// runtime.
Runtime::~Runtime() {
  transitions_->stop();
  ReactorPtr reactor;
  TimerWheelPtr wheel;
  {
    std::lock_guard<std::mutex> lk(reactor_mu_);
    reactor = std::move(reactor_);
    wheel = std::move(wheel_);
  }
  if (reactor) reactor->shutdown();
  if (wheel) wheel->stop();
}

Result<void> Runtime::register_chunnel(ChunnelImplPtr impl) {
  // Telemetry chunnels export their per-label counters through the
  // runtime's unified registry (thin view; the chunnel accessors remain).
  if (auto tele = std::dynamic_pointer_cast<TelemetryChunnel>(impl))
    tele->bind_metrics(cfg_.metrics);
  return registry_.register_impl(std::move(impl));
}

Result<Endpoint> Runtime::endpoint(std::string name, ChunnelDag dag) {
  BERTHA_TRY(dag.validate());
  BERTHA_TRY_ASSIGN(chain, dag.as_chain());
  return Endpoint(shared_from_this(), std::move(name), std::move(chain));
}

}  // namespace bertha
