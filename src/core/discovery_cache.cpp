#include "core/discovery_cache.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace bertha {

CachingDiscovery::CachingDiscovery(DiscoveryPtr inner, Options opts,
                                   FaultStatsPtr stats)
    : inner_(std::move(inner)), opts_(opts), stats_(std::move(stats)) {
  probe_thread_ = std::thread([this] { probe_loop(); });
}

CachingDiscovery::~CachingDiscovery() {
  std::vector<std::pair<WatcherPtr, std::thread>> forwarders;
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    forwarders.swap(forwarders_);
    watchers.swap(watchers_);
  }
  probe_cv_.notify_all();
  for (auto& [w, t] : forwarders) w->cancel();
  for (auto& w : watchers)
    if (auto sp = w.lock()) sp->cancel();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (auto& [w, t] : forwarders)
    if (t.joinable()) t.join();
}

bool CachingDiscovery::degraded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return degraded_;
}

void CachingDiscovery::note(bool healthy) {
  std::vector<WatcherPtr> notify;
  std::vector<PendingWrite> replay;
  WatchEvent ev;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (healthy == !degraded_) return;  // no edge
    degraded_ = !healthy;
    if (degraded_) {
      if (stats_) stats_->degraded_entries++;
      {
        Span s = trace_span(opts_.tracer, "discovery.degraded_enter",
                            current_trace_context());
      }
      BLOG(warn, "discovery") << "service unreachable; entering degraded "
                                 "mode (cached catalogue + local fallbacks)";
      probe_cv_.notify_all();
      return;
    }
    if (stats_) stats_->degraded_exits++;
    BLOG(info, "discovery") << "service reachable again; leaving degraded "
                               "mode";
    replay.swap(pending_writes_);
    // Synthetic event: kicks the transition controller into a refresh +
    // upgrade sweep so degraded connections renegotiate for real.
    ev.kind = WatchKind::impl_registered;
    ev.seq = ++seq_;
    ev.name = kDiscoveryRecoveredEvent;
    size_t live = 0;
    for (auto& w : watchers_) {
      auto sp = w.lock();
      if (!sp || sp->cancelled()) continue;
      watchers_[live++] = w;
      notify.push_back(std::move(sp));
    }
    watchers_.resize(live);
  }
  Span exit_span = trace_span(opts_.tracer, "discovery.degraded_exit");
  exit_span.tag_u64("replay_writes", replay.size());
  // Replay queued degraded-mode registrations before announcing recovery,
  // so the upgrade sweep the recovery event triggers sees them. A replay
  // that fails transiently re-queues everything left and re-enters
  // degraded mode — recovery was premature.
  for (size_t i = 0; i < replay.size(); i++) {
    Span s = trace_span(opts_.tracer, "discovery.replay_write",
                        exit_span.context());
    s.tag("type", replay[i].info.type);
    s.tag("impl", replay[i].info.name);
    auto r = inner_->register_impl(replay[i].info);
    if (!r.ok() && transient(r.error())) {
      s.tag("requeued", "1");
      {
        std::lock_guard<std::mutex> lk(mu_);
        pending_writes_.insert(pending_writes_.end(),
                               std::make_move_iterator(replay.begin() +
                                                       static_cast<long>(i)),
                               std::make_move_iterator(replay.end()));
      }
      exit_span.tag("aborted", "1");
      note(false);
      return;
    }
    metrics_add(opts_.metrics, "discovery.replayed_writes");
  }
  for (auto& w : notify)
    if (w->wants(ev)) w->deliver(ev);
}

size_t CachingDiscovery::pending_writes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_writes_.size();
}

void CachingDiscovery::probe_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    if (!degraded_) {
      probe_cv_.wait(lk);
      continue;
    }
    lk.unlock();
    auto q = inner_->query(opts_.probe_type);
    note(q.ok() || !transient(q.error()));
    lk.lock();
    if (!stopping_ && degraded_)
      probe_cv_.wait_for(lk, opts_.probe_period);
  }
}

Result<std::vector<ImplInfo>> CachingDiscovery::query(
    const std::string& type) {
  auto r = inner_->query(type);
  if (r.ok()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      catalogue_[type] = r.value();
    }
    note(true);
    return r;
  }
  if (!transient(r.error())) {
    note(true);  // the service answered, just unhappily
    return r;
  }
  note(false);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = catalogue_.find(type);
  if (it != catalogue_.end()) {
    if (stats_) stats_->catalogue_hits++;
    return it->second;
  }
  // Cold cache: report an empty deployment so negotiation falls back to
  // locally registered software impls instead of failing establishment.
  return std::vector<ImplInfo>{};
}

Result<void> CachingDiscovery::register_impl(const ImplInfo& info) {
  auto r = inner_->register_impl(info);
  note(r.ok() || !transient(r.error()));
  if (r.ok() || !transient(r.error())) return r;
  if (info.type.empty() || info.name.empty()) return r;  // would be rejected
  // Service unreachable: accept the mutation locally. Queue it for replay
  // on recovery (latest-wins per type+name, mirroring the registry's
  // upsert) and fold it into the cached catalogue so degraded queries —
  // and the negotiations they feed — see the new impl immediately.
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find_if(pending_writes_.begin(), pending_writes_.end(),
                           [&](const PendingWrite& w) {
                             return w.info.type == info.type &&
                                    w.info.name == info.name;
                           });
    if (it != pending_writes_.end()) it->info = info;
    else pending_writes_.push_back({info});
    auto& v = catalogue_[info.type];
    auto cit = std::find_if(v.begin(), v.end(), [&](const ImplInfo& e) {
      return e.name == info.name;
    });
    if (cit != v.end()) *cit = info;
    else v.push_back(info);
  }
  metrics_add(opts_.metrics, "discovery.queued_writes");
  Span s = trace_span(opts_.tracer, "discovery.queue_write",
                      current_trace_context());
  s.tag("type", info.type);
  s.tag("impl", info.name);
  return ok();
}

Result<void> CachingDiscovery::unregister_impl(const std::string& type,
                                               const std::string& name) {
  auto r = inner_->unregister_impl(type, name);
  note(r.ok() || !transient(r.error()));
  return r;
}

Result<uint64_t> CachingDiscovery::acquire(
    const std::vector<ResourceReq>& reqs) {
  auto r = inner_->acquire(reqs);
  note(r.ok() || !transient(r.error()));
  return r;
}

Result<void> CachingDiscovery::release(uint64_t alloc_id) {
  auto r = inner_->release(alloc_id);
  note(r.ok() || !transient(r.error()));
  return r;
}

Result<void> CachingDiscovery::set_pool(const std::string& pool,
                                        uint64_t capacity) {
  auto r = inner_->set_pool(pool, capacity);
  note(r.ok() || !transient(r.error()));
  return r;
}

Result<WatcherPtr> CachingDiscovery::watch(const std::string& type_filter) {
  auto local = std::make_shared<DiscoveryWatcher>(type_filter);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return err(Errc::cancelled, "discovery client closing");
    watchers_.push_back(local);
  }
  // Forward the inner client's event stream (server-push batches when the
  // inner client is remote) into the local watcher. Done outside mu_: a
  // remote subscribe handshake can block for an RPC timeout. An inner
  // client without watch support is fine — the local watcher still gets
  // synthetic recovery events.
  auto inner_w = inner_->watch(type_filter);
  if (inner_w.ok()) {
    WatcherPtr iw = std::move(inner_w).value();
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      iw->cancel();
      return err(Errc::cancelled, "discovery client closing");
    }
    forwarders_.emplace_back(
        iw, std::thread([this, iw, local] { forward_loop(iw, local); }));
  }
  return local;
}

void CachingDiscovery::apply_events(const std::vector<WatchEvent>& events) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ev : events) {
    switch (ev.kind) {
      case WatchKind::impl_registered: {
        if (!ev.info) break;  // synthetic events carry no entry
        auto& v = catalogue_[ev.type];
        auto it = std::find_if(v.begin(), v.end(), [&](const ImplInfo& e) {
          return e.name == ev.name;
        });
        if (it != v.end()) *it = *ev.info;
        else v.push_back(*ev.info);
        break;
      }
      case WatchKind::impl_unregistered: {
        auto it = catalogue_.find(ev.type);
        if (it == catalogue_.end()) break;
        std::erase_if(it->second, [&](const ImplInfo& e) {
          return e.name == ev.name;
        });
        break;
      }
      case WatchKind::pool_freed:
        break;  // capacity is not cached
    }
  }
}

void CachingDiscovery::forward_loop(WatcherPtr inner_w, WatcherPtr local) {
  while (!local->cancelled()) {
    auto batch = inner_w->next_batch(Deadline::after(ms(100)));
    if (batch.ok()) {
      apply_events(batch.value());
      std::vector<WatchEvent> fwd;
      for (auto& ev : batch.value())
        if (local->wants(ev)) fwd.push_back(std::move(ev));
      if (!fwd.empty()) local->deliver_batch(std::move(fwd));
      continue;
    }
    if (batch.error().code == Errc::cancelled) break;  // inner watch died
  }
}

}  // namespace bertha
