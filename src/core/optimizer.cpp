#include "core/optimizer.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

namespace bertha {

namespace {

// A permutation is valid iff every non-commuting pair keeps its original
// relative order.
bool order_valid(const std::vector<OptStage>& original,
                 const std::vector<size_t>& perm) {
  for (size_t i = 0; i < perm.size(); i++) {
    for (size_t j = i + 1; j < perm.size(); j++) {
      if (perm[i] > perm[j] &&
          !original[perm[i]].commutes(original[perm[j]]))
        return false;
    }
  }
  return true;
}

std::vector<OptStage> apply_perm(const std::vector<OptStage>& stages,
                                 const std::vector<size_t>& perm) {
  std::vector<OptStage> out;
  out.reserve(perm.size());
  for (size_t i : perm) out.push_back(stages[i]);
  return out;
}

}  // namespace

int DagOptimizer::count_crossings(const std::vector<OptStage>& stages) {
  // Offloadable stages run on the NIC, others on the host CPU. Data
  // starts at the host and must end at the NIC (the wire).
  int crossings = 0;
  bool on_nic = false;  // current location of the data
  for (const auto& s : stages) {
    bool want_nic = s.offloadable;
    if (want_nic != on_nic) {
      crossings++;
      on_nic = want_nic;
    }
  }
  if (!on_nic) crossings++;  // final hop to the wire
  return crossings;
}

double DagOptimizer::pcie_cost(const std::vector<OptStage>& stages) {
  double bytes = 1.0;  // per input byte
  double cost = 0.0;
  bool on_nic = false;
  for (const auto& s : stages) {
    bool want_nic = s.offloadable;
    if (want_nic != on_nic) {
      cost += bytes;
      on_nic = want_nic;
    }
    bytes *= s.size_factor;
  }
  if (!on_nic) cost += bytes;
  return cost;
}

std::vector<OptStage> DagOptimizer::best_valid_order(
    std::vector<OptStage> stages) const {
  if (stages.size() < 2 || stages.size() > 8) return stages;  // 8! is the cap
  std::vector<size_t> perm(stages.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<size_t> best_perm = perm;
  double best_cost = pcie_cost(stages);
  do {
    if (!order_valid(stages, perm)) continue;
    double c = pcie_cost(apply_perm(stages, perm));
    if (c < best_cost - 1e-12) {
      best_cost = c;
      best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return apply_perm(stages, best_perm);
}

namespace {

// Greedily apply merge rules to adjacent stages until none fire.
// Returns the rewrite descriptions performed.
std::vector<std::string> apply_merges(std::vector<OptStage>& stages,
                                      const std::vector<MergeRule>& rules) {
  std::vector<std::string> applied;
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (size_t i = 0; i + 1 < stages.size() && !merged_any; i++) {
      for (const auto& rule : rules) {
        if (stages[i].type == rule.first && stages[i + 1].type == rule.second) {
          OptStage merged;
          merged.type = rule.merged;
          merged.offloadable = rule.merged_offloadable;
          merged.size_factor =
              stages[i].size_factor * stages[i + 1].size_factor;
          // The merged stage commutes only with types both halves
          // commuted with.
          for (const auto& t : stages[i].commutes_with)
            if (stages[i + 1].commutes_with.count(t))
              merged.commutes_with.insert(t);
          applied.push_back("merge '" + rule.first + "'+'" + rule.second +
                            "' -> '" + rule.merged + "'");
          stages[i] = std::move(merged);
          stages.erase(stages.begin() + static_cast<ptrdiff_t>(i + 1));
          merged_any = true;
          break;
        }
      }
    }
  }
  return applied;
}

}  // namespace

Result<PipelinePlan> DagOptimizer::optimize(std::vector<OptStage> stages) const {
  PipelinePlan plan;

  // (c) elide adjacent duplicates of the same type — applying the same
  // idempotent transformation twice in a row is redundant.
  for (size_t i = 0; i + 1 < stages.size();) {
    if (stages[i].type == stages[i + 1].type) {
      plan.applied.push_back("elide duplicate '" + stages[i].type + "'");
      stages.erase(stages.begin() + static_cast<ptrdiff_t>(i + 1));
    } else {
      i++;
    }
  }

  // (a)+(b) jointly: some reorderings only pay off because they make a
  // merge possible ("Bertha could reorder and then merge", §6), so we
  // evaluate each valid permutation *after* greedy merging and pick the
  // cheapest end state. Ties prefer fewer stages, then the original
  // order (the identity permutation is enumerated first).
  std::vector<OptStage> best_stages = stages;
  std::vector<std::string> best_merges = apply_merges(best_stages, merges_);
  bool best_reordered = false;
  double best_cost = pcie_cost(best_stages);

  if (stages.size() >= 2 && stages.size() <= 8) {
    std::vector<size_t> perm(stages.size());
    std::iota(perm.begin(), perm.end(), 0);
    while (std::next_permutation(perm.begin(), perm.end())) {
      if (!order_valid(stages, perm)) continue;
      std::vector<OptStage> candidate = apply_perm(stages, perm);
      auto merges = apply_merges(candidate, merges_);
      double c = pcie_cost(candidate);
      bool better = c < best_cost - 1e-12 ||
                    (c < best_cost + 1e-12 &&
                     candidate.size() < best_stages.size());
      if (better) {
        best_cost = c;
        best_stages = std::move(candidate);
        best_merges = std::move(merges);
        best_reordered = true;
      }
    }
  }

  if (best_reordered) {
    std::string desc = "reorder:";
    for (const auto& s : best_stages) desc += " " + s.type;
    plan.applied.push_back(desc);
  }
  plan.applied.insert(plan.applied.end(), best_merges.begin(),
                      best_merges.end());

  // Merges can unlock a further pure reorder; run one final pass.
  best_stages = best_valid_order(std::move(best_stages));

  plan.pcie_crossings = count_crossings(best_stages);
  plan.pcie_bytes_per_input_byte = pcie_cost(best_stages);
  plan.stages = std::move(best_stages);
  return plan;
}

}  // namespace bertha
