// Chunnel DAG optimizer (paper §6, "Performance Optimization").
//
// The runtime sees the whole pipeline a connection's data traverses and
// can rewrite it before binding implementations:
//
//   (a) *reorder* commuting stages so that offloaded stages sit adjacent
//       to the NIC, avoiding PCIe ping-pong (the paper's
//       encrypt |> http2 |> tcp example: as written, using the NIC's
//       crypto engine costs a 3x increase in PCIe traffic; reordered to
//       http2 |> encrypt |> tcp it costs 1x),
//   (b) *merge* adjacent stages into a combined offload the hardware
//       does provide (encrypt + tcp -> tls),
//   (c) *elide* redundant idempotent stages.
//
// The model: data starts at the host CPU, flows through the stages in
// order, and ends at the NIC (the wire). Every host->nic or nic->host
// transition crosses PCIe carrying the bytes current at that point
// (stages scale size by their size_factor: compression < 1, framing
// > 1). Reordering may only swap stages that commute.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace bertha {

struct OptStage {
  std::string type;
  bool offloadable = false;  // a NIC/offload implementation exists for it
  double size_factor = 1.0;  // output bytes per input byte
  // Types this stage may be reordered across (commutativity is declared
  // pairwise by chunnel authors; it must hold in both directions to
  // allow a swap).
  std::set<std::string> commutes_with;

  bool commutes(const OptStage& other) const {
    return commutes_with.count(other.type) > 0 &&
           other.commutes_with.count(type) > 0;
  }
};

struct MergeRule {
  std::string first;
  std::string second;
  std::string merged;        // merged stage type (e.g. "tls")
  bool merged_offloadable = true;
};

struct PipelinePlan {
  std::vector<OptStage> stages;
  // Diagnostics:
  int pcie_crossings = 0;
  double pcie_bytes_per_input_byte = 0.0;
  std::vector<std::string> applied;  // human-readable rewrites performed
};

class DagOptimizer {
 public:
  void add_merge_rule(MergeRule rule) { merges_.push_back(std::move(rule)); }

  // Cost of a pipeline as-is (no rewriting).
  static int count_crossings(const std::vector<OptStage>& stages);
  static double pcie_cost(const std::vector<OptStage>& stages);

  // Full rewrite: elide -> reorder (exhaustive over valid permutations;
  // chains are short) -> merge -> reorder again. Deterministic.
  Result<PipelinePlan> optimize(std::vector<OptStage> stages) const;

 private:
  std::vector<OptStage> best_valid_order(std::vector<OptStage> stages) const;
  std::vector<MergeRule> merges_;
};

}  // namespace bertha
