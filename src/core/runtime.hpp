// The Bertha runtime (paper §4.1).
//
// A Runtime owns the process-local chunnel Registry, a handle to the
// discovery service, the operator policy, and the transport factory.
// Applications create Endpoints from it:
//
//   auto rt = Runtime::create({...}).value();
//   rt->register_chunnel(std::make_shared<ReliableChunnel>());   // fallback
//   auto ep = rt->endpoint("my-kv-srv",
//                          wrap(ChunnelSpec("shard", args),
//                               ChunnelSpec("reliable"))).value();
//   auto listener = ep.listen(Addr::udp("127.0.0.1", 4242)).value();
//
// which is the C++ rendering of Listing 4/5's
//   bertha::new("my-kv-srv", wrap!(shard(...) |> reliable())).listen(..)
#pragma once

#include <memory>
#include <string>

#include "core/dag.hpp"
#include "core/discovery.hpp"
#include "core/optimizer.hpp"
#include "core/policy.hpp"
#include "core/renegotiation.hpp"
#include "io/reactor.hpp"
#include "net/transport.hpp"
#include "trace/hop_stats.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace bertha {

class Endpoint;

// Datapath I/O runtime knobs (src/io/). Listeners demux through a
// shared epoll reactor instead of one blocking thread per transport;
// disable to fall back to the thread-per-transport rx path.
struct IoOptions {
  bool use_reactor = true;
  int reactor_workers = 2;
  size_t rx_batch = 32;  // datagrams per recv_batch / handler call

  // Timer wheel (io/timer_wheel.hpp): when true, per-connection
  // keepalive beats, dead-peer deadlines, and discovery lease
  // heartbeats arm entries on one shared wheel instead of spawning a
  // thread per connection — the difference between 100k idle
  // connections costing 100k parked threads and costing one tick
  // thread. Disable to fall back to the per-connection-thread path.
  bool use_wheel = true;
  Duration wheel_tick = ms(10);
  size_t wheel_slots = 512;
};

// Control-plane recovery knobs (src/control/ replicas and the
// ordered_mcast sequencer). Tests and latency-sensitive deployments
// tighten the timeouts; the defaults favour stability over detection
// speed.
struct ControlTuning {
  // Sequenced-traffic silence before a replica starts a view-change
  // round against the sequencer. Zero disables failure detection
  // (single-sequencer deployments). Replicated sweeps double as
  // sequencer keepalives, so with sweeps on, silence means failure.
  Duration view_silence_timeout = ms(250);
  // Grace a view-change initiator waits collecting acks past the
  // majority before activating the new sequencer — lets stragglers
  // raise the agreed resume seq.
  Duration view_ack_timeout = ms(50);
  // Per-peer wait for a catch-up snapshot response before trying the
  // next peer.
  Duration catchup_timeout = ms(250);
  // Sequencer resend-log bound: stamped packets retained for gap
  // fetches. Fetches past this horizon come back as misses and trigger
  // a peer catch-up.
  size_t sequencer_resend_log = 4096;
  // Push-silence watchdog poll period for discovery clients; zero
  // derives watch_failover_timeout / 2 (see RemoteDiscovery::Options).
  Duration watchdog_interval = Duration::zero();
};

struct RuntimeConfig {
  // Identity used for scope decisions (host-local fast paths) and, by
  // convention, as this process's SimNet node name. Defaults to the OS
  // hostname.
  std::string host_id;
  // Unique per process; defaults to pid + random.
  std::string process_id;

  // Required: how this runtime binds datagram endpoints.
  std::shared_ptr<TransportFactory> transports;

  // Discovery service handle; defaults to a fresh in-process
  // DiscoveryState (i.e. no external offloads visible).
  DiscoveryPtr discovery;

  // Alternative to `discovery`: the replica set of a remote discovery
  // service (e.g. one partition of the src/control/ cluster). When
  // `discovery` is null and this is non-empty, create() binds a client
  // transport of the first server's family and builds a failover
  // RemoteDiscovery over the whole list with `discovery_rpc` (stats and
  // tracer are threaded in automatically). For a *sharded* cluster,
  // build a ClusterDiscovery (src/control/cluster.hpp) and pass it as
  // `discovery` instead.
  std::vector<Addr> discovery_servers;
  RemoteDiscovery::Options discovery_rpc;

  // Operator implementation-selection policy; defaults to DefaultPolicy.
  PolicyPtr policy;

  // Optional §6 DAG optimizer. When set, listeners rewrite tentatively
  // negotiated pipelines (reorder / merge) before binding; operators add
  // merge rules matching the combined offloads their hardware exposes.
  std::shared_ptr<DagOptimizer> optimizer;

  // Deployment attestation secret (§6 "Deployment Concerns"). When
  // non-empty, servers stamp every Accept with a keyed digest of the
  // negotiated chain and clients verify it, refusing connections whose
  // chain was not attested with the same secret.
  std::string attestation_secret;

  // Connection-establishment handshake parameters.
  Duration handshake_timeout = ms(1000);
  int handshake_retries = 4;

  // Live-renegotiation timing (core/renegotiation.hpp). Tests tighten
  // these; production deployments mostly care about drain_timeout.
  TransitionTuning transition_tuning;

  // Fault-tolerance counters (RPC retries, lease expiries, degraded-mode
  // entries/exits). Defaults to a fresh FaultStats; share one instance
  // across runtimes to aggregate.
  FaultStatsPtr fault_stats;

  // Tracing (src/trace/). Defaults to a disabled tracer (inert spans, no
  // allocation); pass an enabled Tracer to capture cross-layer spans.
  // create() threads it into the transition controller and, where the
  // discovery handle is runtime-owned, the discovery client.
  TracerPtr tracer;

  // Unified metrics (src/trace/metrics.hpp). Defaults to a fresh
  // registry; create() attaches providers exposing fault_stats and the
  // transition controller's stats so one snapshot covers the runtime.
  MetricsPtr metrics;

  // Batched I/O runtime (src/io/).
  IoOptions io;

  // Control-plane recovery tuning. create() folds watchdog_interval
  // into discovery_rpc when a bootstrap RemoteDiscovery is built from
  // discovery_servers; DiscoveryCluster (src/control/) consumes the
  // rest.
  ControlTuning control;
};

class Runtime : public std::enable_shared_from_this<Runtime> {
 public:
  // Validates the config and fills defaults.
  static Result<std::shared_ptr<Runtime>> create(RuntimeConfig cfg);

  // The analogue of bertha::register_chunnel (Listing 5 line 2):
  // makes an implementation instantiable by this process and therefore
  // offered during negotiation.
  Result<void> register_chunnel(ChunnelImplPtr impl);

  // Creates a connection endpoint with a Chunnel DAG (bertha::new).
  // The DAG must validate and be a chain (branch/merge chunnel types
  // embed sub-graphs in their args).
  Result<Endpoint> endpoint(std::string name, ChunnelDag dag);

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  DiscoveryClient& discovery() { return *cfg_.discovery; }
  const RuntimeConfig& config() const { return cfg_; }
  TransportFactory& transports() { return *cfg_.transports; }

  // Live-renegotiation controller (paper follow-on, see
  // core/renegotiation.hpp). Listeners attach themselves on listen();
  // its watch/sweep thread starts lazily with the first listener.
  TransitionController& transitions() { return *transitions_; }

  // Fault-tolerance counters (util/stats.hpp). Never null after create().
  FaultStats& fault_stats() { return *cfg_.fault_stats; }
  const FaultStatsPtr& fault_stats_ptr() const { return cfg_.fault_stats; }

  // Tracing + metrics. Never null after create() (the tracer defaults to
  // disabled, the registry to empty-with-providers).
  const TracerPtr& tracer() const { return cfg_.tracer; }
  const MetricsPtr& metrics() const { return cfg_.metrics; }

  // Shared rx reactor (src/io/), created lazily by the first listener.
  // Null when IoOptions.use_reactor is false or creation failed (callers
  // then fall back to thread-per-transport demux).
  ReactorPtr reactor();

  // Shared timer wheel for connection liveness deadlines. Prefers the
  // reactor's wheel (one tick thread for the whole datapath); falls
  // back to a standalone wheel when the reactor is disabled or failed.
  // Null when IoOptions.use_wheel is false — callers then revert to the
  // per-connection thread path.
  TimerWheelPtr timer_wheel();

  // Per-hop streaming latency histograms, recorded by every traced
  // connection stack (see trace/hop_stats.hpp). Never null.
  const HopStatsPtr& hop_stats() const { return hop_stats_; }

  ~Runtime();

 private:
  explicit Runtime(RuntimeConfig cfg)
      : cfg_(std::move(cfg)),
        transitions_(std::make_unique<TransitionController>(
            cfg_.transition_tuning, cfg_.tracer)),
        hop_stats_(std::make_shared<HopLatencyStats>()) {}

  RuntimeConfig cfg_;
  Registry registry_;
  std::unique_ptr<TransitionController> transitions_;
  HopStatsPtr hop_stats_;

  std::mutex reactor_mu_;
  ReactorPtr reactor_;        // guarded by reactor_mu_
  bool reactor_failed_ = false;
  TimerWheelPtr wheel_;       // standalone fallback; guarded by reactor_mu_
};

// Returns a process-unique random identifier (hex).
std::string make_unique_id();

}  // namespace bertha
