#include "core/policy.hpp"

namespace bertha {

int64_t DefaultPolicy::score(const std::string& /*type*/,
                             const Candidate& c) const {
  int64_t s = 0;
  // Client-provided implementations win over server-provided ones.
  if (c.client_offers && c.info.endpoints == EndpointConstraint::client)
    s += 1'000'000;
  // Then implementation priority (hardware / kernel-bypass impls are
  // registered with higher priorities than plain software).
  s += static_cast<int64_t>(c.info.priority) * 100;
  // Slight preference for network-advertised offloads among equals.
  if (c.network_provided) s += 1;
  return s;
}

int64_t SoftwareOnlyPolicy::score(const std::string& /*type*/,
                                  const Candidate& c) const {
  if (c.info.scope != Scope::application) return -1;
  if (c.network_provided) return -1;
  return static_cast<int64_t>(c.info.priority);
}

}  // namespace bertha
